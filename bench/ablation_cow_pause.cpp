// Ablation: stop-copy vs speculative copy-on-write checkpointing
// (DESIGN.md section 12).
//
// The paper's stop-copy pause pays suspend + scan + audit + map + copy +
// resume with the VM frozen. The CoW path CoW-protects the dirty set and
// resumes immediately, draining the copy in the background -- the pause
// keeps only suspend + scan + audit + protect + resume, so tail pause
// should fall by well over 2x at PARSEC dirty rates (the gate below).
//
// Self-checks (exit nonzero on violation):
//   * byte identity: a CoW run's final backup is bit-identical to a
//     stop-copy twin fed the identical write stream -- clean and under an
//     injected transport-fault + torn-write storm;
//   * determinism: two identical CoW runs produce identical backups and
//     identical pause tails.
#include "bench_util.h"

#include "common/hash.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace {

using namespace crimes;
using namespace crimes::bench;

// Chained FNV-1a over every backup page, in PFN order.
std::uint64_t backup_fingerprint(Checkpointer& cp) {
  Vm& backup = cp.backup();
  std::uint64_t h = kFnv1aOffsetBasis;
  for (std::size_t i = 0; i < backup.page_count(); ++i) {
    const Page& page = backup.page(Pfn{i});
    h = fnv1a({page.data.data(), kPageSize}, h);
  }
  return h;
}

struct TwinRun {
  RunSummary summary;
  std::uint64_t backup_hash = 0;
  std::uint64_t checkpoints = 0;
};

// One full Crimes run of `profile` under `scheme`; the workload's write
// stream is a pure function of the epoch index, so two runs with the same
// profile see identical guest writes regardless of scheme.
TwinRun run_twin(const ParsecProfile& profile, const CheckpointConfig& scheme,
                 const fault::FaultPlan& faults = {}) {
  Hypervisor hypervisor(1u << 21);
  const GuestConfig gc = profile.recommended_guest();
  Vm& vm = hypervisor.create_domain(profile.name, gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config;
  config.checkpoint = scheme;
  config.record_execution = false;
  config.faults = faults;
  Crimes crimes(hypervisor, kernel, config);
  ParsecWorkload app(kernel, profile);
  crimes.set_workload(&app);
  crimes.initialize();

  TwinRun run;
  run.summary = crimes.run(millis(profile.duration_ms * 2));
  run.backup_hash = backup_fingerprint(crimes.checkpointer());
  run.checkpoints = crimes.checkpointer().checkpoints_taken();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out <file.trace.json>] "
                   "[--metrics-out <file.jsonl>]\n",
                   argv[0]);
      return 2;
    }
  }

  // The sweep covers the paper's dirty-rate spectrum: light and heavy
  // PARSEC benchmarks, a request-driven web server, and the malware case
  // study's scan-everything write pattern.
  std::vector<ParsecProfile> rows;
  for (const char* name : {"swaptions", "bodytrack", "fluidanimate"}) {
    ParsecProfile p = ParsecProfile::by_name(name);
    p.duration_ms = 4000.0;
    rows.push_back(std::move(p));
  }
  rows.push_back({"webserver-high", 3000, 140.0, 200.0, 4000.0});
  rows.push_back({"malware-scan", 48000, 330.0, 320.0, 4000.0});

  int failures = 0;
  double gate_ratio = 0.0;

  print_header(
      "Ablation: stop-copy vs speculative CoW pause (ms), 200 ms epoch");
  std::printf("%-16s %10s | %8s %8s %8s | %8s %8s %8s | %6s %9s %9s\n",
              "workload", "dirty/ep", "sc p50", "sc p95", "sc p99", "cow p50",
              "cow p95", "cow p99", "p95 x", "1st-touch", "stall ms");
  for (const ParsecProfile& profile : rows) {
    const RunSummary sc =
        run_parsec_scheme(profile, CheckpointConfig::full(millis(200)));
    const RunSummary cow =
        run_parsec_scheme(profile, CheckpointConfig::cow(millis(200)));
    const double ratio =
        cow.p95_pause_ms() > 0 ? sc.p95_pause_ms() / cow.p95_pause_ms() : 0.0;
    if (profile.name == "fluidanimate") gate_ratio = ratio;
    std::printf(
        "%-16s %10.0f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | %5.1fx "
        "%9zu %9.2f\n",
        profile.name.c_str(), cow.avg_dirty_pages(),
        sc.p50_pause_ms(), sc.p95_pause_ms(), sc.p99_pause_ms(),
        cow.p50_pause_ms(), cow.p95_pause_ms(), cow.p99_pause_ms(), ratio,
        cow.cow_first_touches, to_ms(cow.cow_commit_stall));
    std::fflush(stdout);
  }

  // Gate: at fluidanimate's dirty rate (the paper's worst case) the CoW
  // p95 pause must be at least 2x smaller than stop-copy.
  std::printf("\np95 pause reduction at fluidanimate dirty rate: %.1fx "
              "(gate: >= 2.0x)\n",
              gate_ratio);
  if (gate_ratio < 2.0) {
    std::fprintf(stderr, "FAIL: CoW p95 reduction %.2fx below the 2x gate\n",
                 gate_ratio);
    ++failures;
  }

  // Self-check 1: byte identity against a stop-copy twin, clean run.
  ParsecProfile twin_profile = ParsecProfile::by_name("swaptions");
  twin_profile.duration_ms = 3000.0;
  {
    const TwinRun sc = run_twin(twin_profile, CheckpointConfig::full());
    const TwinRun cow = run_twin(twin_profile, CheckpointConfig::cow());
    const bool ok = sc.backup_hash == cow.backup_hash &&
                    sc.checkpoints == cow.checkpoints;
    std::printf("byte-identity (clean):       %s  (%llu checkpoints, "
                "fingerprint %016llx)\n",
                ok ? "OK" : "FAIL",
                static_cast<unsigned long long>(cow.checkpoints),
                static_cast<unsigned long long>(cow.backup_hash));
    if (!ok) ++failures;
  }

  // Self-check 2: byte identity under a transport-fault + torn-write storm
  // covering the drain. The injector's decisions are a pure function of
  // (seed, kind, epoch, site), so the twins draw identical fault
  // sequences; epochs must commit/fail in lockstep and the surviving
  // backups must still match bit for bit.
  {
    fault::FaultPlan plan;
    plan.seed = 7;
    plan.transport_copy_fail = 0.3;
    plan.torn_write = 0.15;
    plan.until_epoch = 10;
    const TwinRun sc = run_twin(twin_profile, CheckpointConfig::full(), plan);
    const TwinRun cow = run_twin(twin_profile, CheckpointConfig::cow(), plan);
    const bool ok = sc.backup_hash == cow.backup_hash &&
                    sc.checkpoints == cow.checkpoints &&
                    sc.summary.checkpoint_failures ==
                        cow.summary.checkpoint_failures;
    std::printf("byte-identity (fault storm): %s  (%zu failed epoch(s), "
                "%zu retries on the CoW side)\n",
                ok ? "OK" : "FAIL", cow.summary.checkpoint_failures,
                cow.summary.copy_retries);
    if (!ok) ++failures;
  }

  // Self-check 3: determinism -- an identical CoW run reproduces the same
  // backup and the same pause tail.
  {
    const TwinRun a = run_twin(twin_profile, CheckpointConfig::cow());
    const TwinRun b = run_twin(twin_profile, CheckpointConfig::cow());
    const bool ok = a.backup_hash == b.backup_hash &&
                    a.summary.p95_pause_ms() == b.summary.p95_pause_ms() &&
                    a.summary.cow_first_touches == b.summary.cow_first_touches;
    std::printf("determinism (CoW twice):     %s\n", ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  }

  if (!trace_out.empty() || !metrics_out.empty()) {
    print_header("traced CoW run (telemetry on)");
    ParsecProfile traced = ParsecProfile::by_name("swaptions");
    traced.duration_ms = 3000.0;
    (void)run_parsec_scheme_traced(traced, CheckpointConfig::cow(millis(200)),
                                   trace_out, metrics_out);
  }
  return failures == 0 ? 0 : 1;
}
