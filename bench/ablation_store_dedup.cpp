// Ablation: the content-addressed checkpoint store's footprint vs naive
// full-image retention, across retention depth x workload (DESIGN.md
// section 10). For each cell: bytes a naive keep-every-image scheme would
// hold, bytes the store actually holds (dedup + delta-RLE), the resulting
// ratio, and the p95 incremental-GC pause. Every run self-checks that
// each retained generation still materializes byte-identical (per-page
// FNV-1a against digests recorded at commit time).
//
// Exit code: 0 only if every self-check passes AND the paper-style
// acceptance bar holds -- parsec at retention depth >= 8 stores less than
// 50% of the naive footprint.
#include "checkpoint/checkpointer.h"
#include "common/hash.h"
#include "net/virtual_nic.h"
#include "store/checkpoint_store.h"
#include "workload/malware.h"
#include "workload/parsec.h"
#include "workload/web_server.h"

#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace crimes {
namespace {

constexpr Nanos kInterval = millis(20);
constexpr int kEpochs = 48;

struct CellResult {
  double logical_mb = 0.0;
  double physical_mb = 0.0;
  double physical_pct = 0.0;  // physical / logical
  double dedup_ratio = 0.0;
  double gc_p95_us = 0.0;
  std::size_t generations = 0;
  bool restore_ok = true;
};

// Per-page digests of the primary image -- the ground truth a retained
// generation must reproduce.
std::vector<std::uint64_t> image_digests(const Vm& vm) {
  std::vector<std::uint64_t> out(vm.page_count());
  for (std::size_t i = 0; i < vm.page_count(); ++i) {
    out[i] = fnv1a(vm.page(Pfn{i}).bytes());
  }
  return out;
}

CellResult run_cell(const std::string& workload_name, std::size_t depth) {
  Hypervisor hypervisor(1u << 21);  // 8 GiB of machine frames
  GuestConfig gc;
  std::unique_ptr<GuestKernel> kernel;
  VirtualNic nic;
  nic.set_sink([](Packet&&) {});  // egress is irrelevant to this ablation
  std::unique_ptr<Workload> app;

  if (workload_name == "parsec") {
    ParsecProfile profile = ParsecProfile::by_name("raytrace");
    gc = profile.recommended_guest();
    Vm& vm = hypervisor.create_domain(workload_name, gc.page_count);
    kernel = std::make_unique<GuestKernel>(vm, gc);
    kernel->boot();
    app = std::make_unique<ParsecWorkload>(*kernel, profile);
  } else if (workload_name == "webserver") {
    gc.page_count = 8192;
    Vm& vm = hypervisor.create_domain(workload_name, gc.page_count);
    kernel = std::make_unique<GuestKernel>(vm, gc);
    kernel->boot();
    app = std::make_unique<WebServerWorkload>(*kernel, nic,
                                              WebServerProfile::medium());
  } else {  // malware: quiet desktop, scripted exfiltration mid-run
    gc.page_count = 8192;
    Vm& vm = hypervisor.create_domain(workload_name, gc.page_count);
    kernel = std::make_unique<GuestKernel>(vm, gc);
    kernel->boot();
    app = std::make_unique<MalwareWorkload>(*kernel, nic,
                                            /*attack_at=*/millis(400));
  }
  Vm& vm = kernel->vm();

  SimClock clock;
  CheckpointConfig config = CheckpointConfig::full(kInterval);
  config.store.enabled = true;
  config.store.retention.keep_last = depth;
  Checkpointer cp(hypervisor, vm, clock, CostModel::defaults(), config);
  cp.initialize();

  // Ground truth for the self-check: per-page digests of the last `depth`
  // committed epochs (exactly the generations keep_last retains).
  std::deque<std::pair<std::uint64_t, std::vector<std::uint64_t>>> truth;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    app->run_epoch(clock.now(), kInterval);
    clock.advance(kInterval);
    (void)cp.run_checkpoint({});
    truth.emplace_back(cp.checkpoints_taken(), image_digests(vm));
    while (truth.size() > depth) truth.pop_front();
  }

  const store::CheckpointStore& store = *cp.store();
  const store::StoreStats stats = store.stats();

  CellResult cell;
  cell.generations = stats.generations;
  cell.logical_mb = static_cast<double>(stats.bytes_logical) / (1 << 20);
  cell.physical_mb = static_cast<double>(stats.bytes_physical) / (1 << 20);
  cell.physical_pct = 100.0 * static_cast<double>(stats.bytes_physical) /
                      static_cast<double>(stats.bytes_logical);
  cell.dedup_ratio = stats.dedup_ratio();
  cell.gc_p95_us = static_cast<double>(store.gc_pauses().p95()) / 1000.0;

  // Self-check: every generation we hold truth for restores to exactly
  // the recorded per-page digests.
  Vm& scratch = hypervisor.create_domain("scratch", vm.page_count());
  ForeignMapping dst = hypervisor.map_foreign(scratch.id());
  for (const auto& [epoch, digests] : truth) {
    if (!store.has_generation(epoch)) {
      cell.restore_ok = false;
      std::fprintf(stderr, "self-check: generation %llu not retained\n",
                   static_cast<unsigned long long>(epoch));
      continue;
    }
    (void)store.materialize(epoch, dst);
    const Vm& view = scratch;
    for (std::size_t i = 0; i < view.page_count(); ++i) {
      if (fnv1a(view.page(Pfn{i}).bytes()) != digests[i]) {
        cell.restore_ok = false;
        std::fprintf(stderr,
                     "self-check: generation %llu page %zu diverged\n",
                     static_cast<unsigned long long>(epoch), i);
        break;
      }
    }
  }
  return cell;
}

}  // namespace
}  // namespace crimes

int main() {
  using namespace crimes;

  std::printf("\n=== Ablation: checkpoint store dedup vs retention depth "
              "===\n");
  std::printf("(%d epochs @ %.0f ms; naive = one full image per retained "
              "generation)\n\n",
              kEpochs, to_ms(kInterval));
  std::printf("%-10s %6s %5s %12s %13s %9s %7s %10s %8s\n", "workload",
              "depth", "gens", "naive(MiB)", "stored(MiB)", "stored%",
              "dedup", "gc-p95(us)", "restore");

  bool all_ok = true;
  for (const char* workload : {"parsec", "webserver", "malware"}) {
    for (const std::size_t depth : {2u, 8u, 32u}) {
      const CellResult cell = run_cell(workload, depth);
      std::printf("%-10s %6zu %5zu %12.1f %13.2f %8.1f%% %6.1fx %10.1f %8s\n",
                  workload, depth, cell.generations, cell.logical_mb,
                  cell.physical_mb, cell.physical_pct, cell.dedup_ratio,
                  cell.gc_p95_us, cell.restore_ok ? "ok" : "FAIL");
      std::fflush(stdout);
      if (!cell.restore_ok) all_ok = false;
      // Acceptance bar (ISSUE 4): parsec at depth >= 8 must store less
      // than half of what naive full-copy retention would.
      if (std::string(workload) == "parsec" && depth >= 8 &&
          cell.physical_pct >= 50.0) {
        std::fprintf(stderr,
                     "FAIL: parsec depth %zu stored %.1f%% (bar: < 50%%)\n",
                     depth, cell.physical_pct);
        all_ok = false;
      }
    }
  }
  std::printf("\n%s: content addressing + delta-RLE keep deep histories at "
              "a fraction of naive cost\n",
              all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
