// Figure 5: effect of the epoch interval (60-200 ms) under Full
// optimization for freqmine, swaptions, volrend and water-spatial:
//  (a) normalized runtime falls with longer intervals,
//  (b) per-epoch paused time grows,
//  (c) dirty pages per epoch grow (saturating).
// Plus the closed-loop row: the same profiles with the control plane
// choosing the interval live, with its chosen-interval trajectory printed
// next to the static grid so the sweep shows where the controller lands.
#include "bench_util.h"
#include "control/control_plane.h"

#include <cstdio>

namespace {

using namespace crimes;
using namespace crimes::bench;

struct ControlledRun {
  RunSummary summary;
  double final_interval_ms = 0.0;
  std::vector<double> trajectory;  // interval after each decision (ms)
};

// The static sweep's question, asked of the controller: where on the
// interval axis does the closed loop settle for this profile?
ControlledRun run_controlled(const ParsecProfile& profile) {
  Hypervisor hypervisor(1u << 21);
  const GuestConfig gc = profile.recommended_guest();
  Vm& vm = hypervisor.create_domain(profile.name, gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config;
  config.checkpoint = CheckpointConfig::full(millis(100));
  config.record_execution = false;
  config.control.enabled = true;
  config.control.min_interval = millis(60);
  config.control.max_interval = millis(200);  // the figure's sweep range
  config.control.manage_scan = false;
  config.control.manage_window = false;
  config.control.manage_gc = false;
  Crimes crimes(hypervisor, kernel, config);
  ParsecWorkload app(kernel, profile);
  crimes.set_workload(&app);
  crimes.initialize();

  ControlledRun run;
  run.summary = crimes.run(millis(profile.duration_ms * 2));
  run.final_interval_ms = to_ms(crimes.current_interval());
  for (const control::ControlDecision& d : crimes.control_plane()->decisions()) {
    if (d.knob == control::Knob::EpochInterval) run.trajectory.push_back(d.to);
  }
  return run;
}

}  // namespace

int main() {
  const std::vector<std::string> names = {"freqmine", "swaptions", "volrend",
                                          "water-spatial"};
  const std::vector<int> intervals = {60, 80, 100, 120, 140, 160, 180, 200};

  std::vector<std::vector<RunSummary>> grid(names.size());
  std::vector<ControlledRun> controlled(names.size());
  for (std::size_t b = 0; b < names.size(); ++b) {
    ParsecProfile profile = ParsecProfile::by_name(names[b]);
    profile.duration_ms = 2400.0;
    for (const int interval : intervals) {
      grid[b].push_back(run_parsec_scheme(
          profile, CheckpointConfig::full(millis(interval))));
    }
    controlled[b] = run_controlled(profile);
  }

  const auto print_grid = [&](const char* title, auto value) {
    print_header(title);
    std::printf("%-10s", "interval");
    for (const auto& n : names) std::printf(" %13s", n.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      std::printf("%-10d", intervals[i]);
      for (std::size_t b = 0; b < names.size(); ++b) {
        std::printf(" %13.3f", value(grid[b][i]));
      }
      std::printf("\n");
    }
    // The closed-loop row: same metric, interval chosen by the control
    // plane (its final position is in the trajectory table below).
    std::printf("%-10s", "closed");
    for (std::size_t b = 0; b < names.size(); ++b) {
      std::printf(" %13.3f", value(controlled[b].summary));
    }
    std::printf("\n");
  };

  print_grid("Figure 5a: normalized runtime vs epoch interval (Full)",
             [](const RunSummary& s) { return s.normalized_runtime(); });
  print_grid("Figure 5b: paused time per epoch (ms)",
             [](const RunSummary& s) { return s.avg_pause_ms(); });
  print_grid("Figure 5c: dirty pages per epoch",
             [](const RunSummary& s) { return s.avg_dirty_pages(); });
  print_grid("Figure 5b': p95 paused time per epoch (ms)",
             [](const RunSummary& s) { return s.p95_pause_ms(); });
  print_grid("Figure 5b'': p99 paused time per epoch (ms)",
             [](const RunSummary& s) { return s.p99_pause_ms(); });

  // SLO health across the sweep: longer intervals spend more pause-budget
  // epochs. Healthy configs show zeros; the counts come from the always-on
  // per-tenant monitor, not a separate instrumented run.
  print_header("SLO health per configuration (warn/critical epochs, "
               "postmortems)");
  std::printf("%-10s", "interval");
  for (const auto& n : names) std::printf(" %13s", n.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    std::printf("%-10d", intervals[i]);
    for (std::size_t b = 0; b < names.size(); ++b) {
      const RunSummary& s = grid[b][i];
      char cell[32];
      std::snprintf(cell, sizeof cell, "%zu/%zu/%zu", s.slo_warn_epochs,
                    s.slo_critical_epochs, s.postmortems_dumped);
      std::printf(" %13s", cell);
    }
    std::printf("\n");
  }
  // Where the controller walked: every interval it chose, in decision
  // order, ending at its settling point. Read against the grids above to
  // see which static row the closed loop converged toward.
  print_header("closed-loop chosen-interval trajectory (ms)");
  for (std::size_t b = 0; b < names.size(); ++b) {
    std::printf("%-14s 100", names[b].c_str());
    for (const double ms : controlled[b].trajectory) {
      std::printf(" -> %.0f", ms);
    }
    std::printf("   (final %.0f, %zu moves)\n",
                controlled[b].final_interval_ms,
                controlled[b].trajectory.size());
  }

  std::printf("\npaper: runtime falls, pause and dirty pages rise with the "
              "interval; dirty pages saturate toward the working set. Tail "
              "pause (p95/p99, log2-bucket accuracy) tracks the mean when "
              "the working set is stable\n");
  return 0;
}
