// Figure 5: effect of the epoch interval (60-200 ms) under Full
// optimization for freqmine, swaptions, volrend and water-spatial:
//  (a) normalized runtime falls with longer intervals,
//  (b) per-epoch paused time grows,
//  (c) dirty pages per epoch grow (saturating).
#include "bench_util.h"

#include <cstdio>

int main() {
  using namespace crimes;
  using namespace crimes::bench;

  const std::vector<std::string> names = {"freqmine", "swaptions", "volrend",
                                          "water-spatial"};
  const std::vector<int> intervals = {60, 80, 100, 120, 140, 160, 180, 200};

  std::vector<std::vector<RunSummary>> grid(names.size());
  for (std::size_t b = 0; b < names.size(); ++b) {
    ParsecProfile profile = ParsecProfile::by_name(names[b]);
    profile.duration_ms = 2400.0;
    for (const int interval : intervals) {
      grid[b].push_back(run_parsec_scheme(
          profile, CheckpointConfig::full(millis(interval))));
    }
  }

  const auto print_grid = [&](const char* title, auto value) {
    print_header(title);
    std::printf("%-10s", "interval");
    for (const auto& n : names) std::printf(" %13s", n.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      std::printf("%-10d", intervals[i]);
      for (std::size_t b = 0; b < names.size(); ++b) {
        std::printf(" %13.3f", value(grid[b][i]));
      }
      std::printf("\n");
    }
  };

  print_grid("Figure 5a: normalized runtime vs epoch interval (Full)",
             [](const RunSummary& s) { return s.normalized_runtime(); });
  print_grid("Figure 5b: paused time per epoch (ms)",
             [](const RunSummary& s) { return s.avg_pause_ms(); });
  print_grid("Figure 5c: dirty pages per epoch",
             [](const RunSummary& s) { return s.avg_dirty_pages(); });
  print_grid("Figure 5b': p95 paused time per epoch (ms)",
             [](const RunSummary& s) { return s.p95_pause_ms(); });
  print_grid("Figure 5b'': p99 paused time per epoch (ms)",
             [](const RunSummary& s) { return s.p99_pause_ms(); });

  // SLO health across the sweep: longer intervals spend more pause-budget
  // epochs. Healthy configs show zeros; the counts come from the always-on
  // per-tenant monitor, not a separate instrumented run.
  print_header("SLO health per configuration (warn/critical epochs, "
               "postmortems)");
  std::printf("%-10s", "interval");
  for (const auto& n : names) std::printf(" %13s", n.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    std::printf("%-10d", intervals[i]);
    for (std::size_t b = 0; b < names.size(); ++b) {
      const RunSummary& s = grid[b][i];
      char cell[32];
      std::snprintf(cell, sizeof cell, "%zu/%zu/%zu", s.slo_warn_epochs,
                    s.slo_critical_epochs, s.postmortems_dumped);
      std::printf(" %13s", cell);
    }
    std::printf("\n");
  }
  std::printf("\npaper: runtime falls, pause and dirty pages rise with the "
              "interval; dirty pages saturate toward the working set. Tail "
              "pause (p95/p99, log2-bucket accuracy) tracks the mean when "
              "the working set is stable\n");
  return 0;
}
