// Ablation: adaptive epoch-interval tuning vs fixed intervals on a
// *phase-changing* workload (heavy dirtying, then light, then heavy).
// A fixed short interval wastes pause time in the light phase; a fixed
// long interval overpays during bursts; the controller tracks the target
// pause-overhead ratio through both.
#include "core/crimes.h"
#include "workload/parsec.h"

#include <cstdio>

namespace {

using namespace crimes;

// Alternates between a hot and a cold touch rate every `phase_ms`.
class PhasedWorkload final : public Workload {
 public:
  PhasedWorkload(GuestKernel& kernel, double hot_rate, double cold_rate,
                 double phase_ms, double duration_ms)
      : kernel_(&kernel),
        rng_(5),
        hot_rate_(hot_rate),
        cold_rate_(cold_rate),
        phase_ms_(phase_ms),
        duration_ms_(duration_ms) {
    buffer_ = kernel.heap().malloc(16384 * kPageSize - 64);
  }

  [[nodiscard]] std::string name() const override { return "phased"; }

  void run_epoch(Nanos, Nanos duration) override {
    const double ms = to_ms(duration);
    const bool hot =
        static_cast<int>(to_ms(elapsed_) / phase_ms_) % 2 == 0;
    const double rate = hot ? hot_rate_ : cold_rate_;
    const auto touches = static_cast<std::uint64_t>(rate * ms);
    for (std::uint64_t i = 0; i < touches; ++i) {
      const std::uint64_t off =
          rng_.next_below(16384) * kPageSize + rng_.next_below(500) * 8;
      kernel_->write_value<std::uint64_t>(buffer_ + off, rng_.next_u64());
    }
    elapsed_ += duration;
  }

  [[nodiscard]] bool finished() const override {
    return to_ms(elapsed_) >= duration_ms_;
  }

 private:
  GuestKernel* kernel_;
  Rng rng_;
  Vaddr buffer_;
  double hot_rate_, cold_rate_, phase_ms_, duration_ms_;
  Nanos elapsed_{0};
};

struct Row {
  std::string label;
  double norm = 0;
  double avg_pause = 0;
  std::size_t epochs = 0;
  std::size_t adjustments = 0;
};

Row run_one(const std::string& label, Nanos initial, bool adaptive) {
  Hypervisor hypervisor(1u << 19);
  GuestConfig gc;
  gc.page_count = 32768;
  Vm& vm = hypervisor.create_domain("phased", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config;
  config.checkpoint = CheckpointConfig::full(initial);
  config.record_execution = false;
  config.adaptive.enabled = adaptive;
  config.adaptive.target_overhead = 0.03;
  config.adaptive.min_interval = millis(20);
  config.adaptive.max_interval = millis(300);
  Crimes crimes(hypervisor, kernel, config);

  PhasedWorkload app(kernel, /*hot=*/400.0, /*cold=*/10.0,
                     /*phase_ms=*/800.0, /*duration_ms=*/4000.0);
  crimes.set_workload(&app);
  crimes.initialize();
  const RunSummary summary = crimes.run(millis(8000));
  return Row{label, summary.normalized_runtime(), summary.avg_pause_ms(),
             summary.epochs, crimes.interval_adjustments()};
}

}  // namespace

int main() {
  std::printf("\n=== Ablation: adaptive epoch interval (phased workload) "
              "===\n");
  std::printf("%-20s %12s %12s %8s %12s\n", "policy", "norm-runtime",
              "avg-pause", "epochs", "adjustments");
  for (const Row& row :
       {run_one("fixed 20ms", millis(20), false),
        run_one("fixed 100ms", millis(100), false),
        run_one("fixed 300ms", millis(300), false),
        run_one("adaptive(3%)", millis(100), true)}) {
    std::printf("%-20s %12.3f %12.3f %8zu %12zu\n", row.label.c_str(),
                row.norm, row.avg_pause, row.epochs, row.adjustments);
  }
  std::printf("\nadaptive tuning reaches the long-interval runtime while "
              "keeping the average epoch (and thus the scan cadence / "
              "buffering delay) shorter whenever the dirty rate allows\n");
  return 0;
}
