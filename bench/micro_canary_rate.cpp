// Micro-benchmarks (google-benchmark, REAL wall-clock time):
//  * canary validation rate (the paper claims ~90,000 canaries/ms),
//  * the two dirty-bitmap scan algorithms,
//  * memcpy vs socket+cipher checkpoint transports,
//  * VMI process-list walks (warm translation cache).
#include "checkpoint/transport.h"
#include "common/rng.h"
#include "guestos/guest_kernel.h"
#include "hypervisor/hypervisor.h"
#include "vmi/vmi_session.h"

#include <benchmark/benchmark.h>

namespace crimes {
namespace {

// Canary validation the way the CanaryScanModule does it once it has the
// table in hand: read 8 bytes through the (warm) mapping and compare.
void BM_CanaryValidationRate(benchmark::State& state) {
  Hypervisor hypervisor(1u << 19);
  GuestConfig gc;
  gc.page_count = 32768;
  gc.canary_table_pages = 512;
  Vm& vm = hypervisor.create_domain("canaries", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<Vaddr> canaries;
  canaries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Vaddr obj = kernel.heap().malloc(24);
    canaries.push_back(obj + 24);
  }
  const std::uint64_t key = kernel.heap().canary_key();

  std::size_t corrupt = 0;
  for (auto _ : state) {
    for (const Vaddr canary : canaries) {
      const auto pa = kernel.page_table().translate(canary);
      std::uint64_t value;
      std::vector<std::byte> buf(8);
      vm.read_phys(*pa, buf);
      std::memcpy(&value, buf.data(), 8);
      if (value != (key ^ canary.value())) ++corrupt;
    }
    benchmark::DoNotOptimize(corrupt);
  }
  // Reported per second; divide by 1000 to compare with the paper's
  // ~90,000 canaries/ms claim.
  state.counters["canaries/s"] = benchmark::Counter(
      static_cast<double>(count) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CanaryValidationRate)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_BitmapScan(benchmark::State& state) {
  const auto pages = static_cast<std::size_t>(state.range(0));
  const bool chunked = state.range(1) != 0;
  DirtyBitmap bitmap(pages);
  Rng rng(42);
  for (std::size_t i = 0; i < pages / 100; ++i) {
    bitmap.mark(Pfn{rng.next_below(pages)});
  }
  for (auto _ : state) {
    if (chunked) {
      benchmark::DoNotOptimize(bitmap.scan_chunked());
    } else {
      benchmark::DoNotOptimize(bitmap.scan_naive());
    }
  }
  state.SetLabel(chunked ? "chunked" : "bit-by-bit");
}
BENCHMARK(BM_BitmapScan)
    ->Args({262144, 0})
    ->Args({262144, 1})
    ->Args({4194304, 0})
    ->Args({4194304, 1});

void BM_Transport(benchmark::State& state) {
  const bool use_memcpy = state.range(0) != 0;
  Hypervisor hypervisor(1u << 18);
  Vm& primary = hypervisor.create_domain("p", 8192);
  Vm& backup = hypervisor.create_domain("b", 8192);
  backup.pause();
  std::vector<Pfn> dirty;
  Rng rng(7);
  for (std::size_t i = 0; i < 2000; ++i) dirty.push_back(Pfn{i * 4});
  for (const Pfn pfn : dirty) {
    primary.page(pfn).data[0] = static_cast<std::byte>(rng.next_u64());
  }

  const CostModel& costs = CostModel::defaults();
  MemcpyTransport mem(costs);
  SocketTransport sock(costs);
  Transport& transport =
      use_memcpy ? static_cast<Transport&>(mem) : sock;
  ForeignMapping src(primary), dst(backup);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transport.copy(src, dst, dirty));
  }
  state.SetLabel(transport.name());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dirty.size()) *
                          static_cast<std::int64_t>(kPageSize));
}
BENCHMARK(BM_Transport)->Arg(1)->Arg(0);

void BM_VmiProcessList(benchmark::State& state) {
  Hypervisor hypervisor(1u << 18);
  GuestConfig gc;
  gc.page_count = 8192;
  Vm& vm = hypervisor.create_domain("guest", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();
  for (int i = 0; i < 48; ++i) {
    (void)kernel.spawn_process("p" + std::to_string(i), 1);
  }
  VmiSession vmi(hypervisor, vm.id(), kernel.symbols(), kernel.flavor(),
                 CostModel::defaults());
  vmi.init();
  vmi.preprocess();
  (void)vmi.process_list();  // warm the translation cache

  for (auto _ : state) {
    benchmark::DoNotOptimize(vmi.process_list());
  }
}
BENCHMARK(BM_VmiProcessList);

}  // namespace
}  // namespace crimes

BENCHMARK_MAIN();
