// Figure 7: web-server latency and throughput vs. epoch interval, for
// Synchronous Safety (full output buffering) vs. Best Effort Safety,
// normalized against an unprotected baseline.
//
// Paper: best-effort is ~1x across the board (the VM is network-bound and
// its dirty rate is low); synchronous latency grows with the interval and
// throughput collapses, because the closed-loop client and the buffered
// TCP handshakes throttle the offered load.
#include "bench_util.h"

#include <cstdio>

int main() {
  using namespace crimes;
  using namespace crimes::bench;

  const WebServerProfile profile = WebServerProfile::medium();
  const Nanos run_time = millis(4000);

  // Unprotected baseline (paper: 17094 req/s, 2.83 ms).
  const WebRunResult base = run_web(profile, SafetyMode::Disabled,
                                    CheckpointConfig::full(millis(100)),
                                    run_time);
  std::printf("\nbaseline (no protection): %.0f req/s, %.2f ms mean latency "
              "(paper: 17094 req/s, 2.83 ms)\n",
              base.throughput_rps, base.mean_latency_ms);

  print_header("Figure 7: web server vs epoch interval (normalized)");
  std::printf("%-10s %12s %12s %12s %12s\n", "interval", "sync-lat",
              "be-lat", "sync-tput", "be-tput");

  for (int interval = 20; interval <= 200; interval += 20) {
    const WebRunResult sync =
        run_web(profile, SafetyMode::Synchronous,
                CheckpointConfig::full(millis(interval)), run_time);
    const WebRunResult best_effort =
        run_web(profile, SafetyMode::BestEffort,
                CheckpointConfig::full(millis(interval)), run_time);
    std::printf("%-10d %12.2f %12.2f %12.3f %12.3f\n", interval,
                sync.mean_latency_ms / base.mean_latency_ms,
                best_effort.mean_latency_ms / base.mean_latency_ms,
                sync.throughput_rps / base.throughput_rps,
                best_effort.throughput_rps / base.throughput_rps);
    std::fflush(stdout);
  }
  std::printf("\npaper: sync latency rises / throughput falls with the "
              "interval; best effort stays ~1x\n");
  return 0;
}
