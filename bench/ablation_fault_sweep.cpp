// Resilience ablation: sweep the injected fault rate and measure what the
// recovery machinery costs (DESIGN.md section 9, EXPERIMENTS.md
// `ablation_fault_sweep`).
//
// A FaultPlan::transport_storm at rate r aborts copy attempts (rate r),
// tears backup writes (r/2), errors bitmap reads (r/4), and kills pool
// workers (r/4), confined to the first `kFaultEpochs` epochs so every run
// converges on the same final backup image as the fault-free run. Reported
// per rate:
//
//   faults     injector decisions that fired
//   retries    copy attempts redone after an abort or checksum mismatch
//   failed     epochs whose checkpoint exhausted its retries
//   recovery   virtual time burnt on failure handling (wasted attempts,
//              backoff, undo-log restores, rereads, respawns)
//   degraded   epochs the SafetyGovernor held the pipeline in Best Effort
//   hold       worst output-buffer residency of any packet (a failed
//              checkpoint keeps Synchronous outputs on the host until a
//              commit covers them)
//
// Everything runs in virtual time: the table is identical on every
// machine. Two self-checks print PASS/FAIL lines: same-seed determinism
// and byte-identity of the faulty runs' final backup vs. the clean run.
#include "core/crimes.h"
#include "workload/parsec.h"

#include <cstdio>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace crimes;

constexpr Nanos kInterval = millis(50);
constexpr std::size_t kEpochs = 24;
constexpr std::size_t kFaultEpochs = 16;  // faults stop; the backlog drains

// One packet per epoch through the output buffer: its worst-case residency
// is the user-visible price of riding out checkpoint failures.
class EpochTalker : public Workload {
 public:
  EpochTalker(GuestKernel& kernel, VirtualNic& nic, std::size_t epochs)
      : kernel_(&kernel), nic_(&nic), remaining_(epochs) {
    buffer_ = kernel_->heap().malloc(kPageSize);
  }
  [[nodiscard]] std::string name() const override { return "epoch-talker"; }
  void run_epoch(Nanos start, Nanos /*duration*/) override {
    if (remaining_ == 0) return;
    --remaining_;
    ++epoch_;
    // Dirty a page with values keyed to the epoch *number*, not the clock:
    // fault handling stretches virtual time, and the byte-identity
    // self-check requires the guest's writes to be time-independent.
    for (std::size_t i = 0; i < 8; ++i) {
      kernel_->write_value<std::uint64_t>(
          buffer_ + (i * 64) % kPageSize,
          (static_cast<std::uint64_t>(epoch_) << 8) + i);
    }
    Packet packet;
    packet.kind = PacketKind::Data;
    packet.size_bytes = 256;
    packet.payload = "epoch output";
    nic_->send(std::move(packet), start);
  }
  [[nodiscard]] bool finished() const override { return remaining_ == 0; }

 private:
  GuestKernel* kernel_;
  VirtualNic* nic_;
  Vaddr buffer_{0};
  std::size_t remaining_;
  std::size_t epoch_ = 0;
};

std::uint64_t backup_fingerprint(Crimes& crimes) {
  Vm& backup = crimes.checkpointer().backup();
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  for (std::size_t i = 0; i < backup.page_count(); ++i) {
    const Pfn pfn{i};
    if (!backup.is_backed(pfn)) {
      mix(0x9E);
      continue;
    }
    for (const std::byte b : backup.page(pfn).bytes()) {
      mix(std::to_integer<std::uint64_t>(b));
    }
  }
  return h;
}

struct SweepPoint {
  double rate = 0.0;
  RunSummary summary;
  double max_hold_ms = 0.0;
  std::uint64_t backup_hash = 0;
};

SweepPoint run_one(double rate, std::uint64_t seed = 1) {
  Hypervisor hypervisor(1u << 19);
  GuestConfig gc;
  gc.page_count = 4096;
  Vm& vm = hypervisor.create_domain("guest", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config;
  config.checkpoint = CheckpointConfig::full(kInterval);
  config.mode = SafetyMode::Synchronous;
  config.record_execution = false;
  if (rate > 0.0) {
    config.faults =
        fault::FaultPlan::transport_storm(rate, 0, kFaultEpochs, seed);
  }

  Crimes crimes(hypervisor, kernel, config);
  EpochTalker app(kernel, crimes.nic(), kEpochs);
  crimes.set_workload(&app);
  crimes.initialize();

  SweepPoint point;
  point.rate = rate;
  point.summary = crimes.run(kInterval * static_cast<std::int64_t>(kEpochs));
  for (const DeliveredPacket& d : crimes.network().log()) {
    const double hold = to_ms(d.released_at - d.packet.sent_at);
    if (hold > point.max_hold_ms) point.max_hold_ms = hold;
  }
  point.backup_hash = backup_fingerprint(crimes);
  return point;
}

}  // namespace

int main() {
  std::printf("CRIMES resilience ablation: transport-storm fault sweep\n");
  std::printf(
      "(%zu epochs of %.0f ms; faults confined to the first %zu epochs)\n\n",
      kEpochs, to_ms(kInterval), kFaultEpochs);
  std::printf(
      "%6s %7s %8s %7s %12s %9s %10s %10s\n", "rate", "faults", "retries",
      "failed", "recovery_ms", "degraded", "hold_ms", "norm_rt");

  std::vector<SweepPoint> points;
  for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    points.push_back(run_one(rate));
    const SweepPoint& p = points.back();
    std::printf("%6.2f %7llu %8zu %7zu %12.3f %9zu %10.3f %10.3f\n", p.rate,
                static_cast<unsigned long long>(p.summary.faults_injected),
                p.summary.copy_retries, p.summary.checkpoint_failures,
                to_ms(p.summary.recovery_time), p.summary.degraded_epochs,
                p.max_hold_ms, p.summary.normalized_runtime());
  }

  // Self-check 1: same seed, same run -- every observable must match.
  const SweepPoint a = run_one(0.1);
  const SweepPoint b = run_one(0.1);
  const bool deterministic =
      a.summary.faults_injected == b.summary.faults_injected &&
      a.summary.copy_retries == b.summary.copy_retries &&
      a.summary.checkpoint_failures == b.summary.checkpoint_failures &&
      a.summary.total_pause == b.summary.total_pause &&
      a.backup_hash == b.backup_hash;
  std::printf("\nself-check determinism (seed 1, rate 0.10): %s\n",
              deterministic ? "PASS" : "FAIL");

  // Self-check 2: every faulty run's final backup is byte-identical to the
  // fault-free run's (failed epochs retain the dirty bitmap; the post-storm
  // epochs drain the backlog).
  bool converged = true;
  for (const SweepPoint& p : points) {
    if (p.backup_hash != points.front().backup_hash) converged = false;
  }
  std::printf("self-check backup byte-identity across rates: %s\n",
              converged ? "PASS" : "FAIL");

  return deterministic && converged ? 0 : 1;
}
