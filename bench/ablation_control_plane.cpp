// Control-plane ablation: does closing the loop beat every static knob
// setting an operator could have picked?
//
// Leg 1 (diurnal): a sine-modulated workload whose dirty rate swings ~6x
// over a 3 s "day". A static epoch interval must be provisioned for one
// phase of the cycle and eats the cost in the other; the controller
// re-tunes as the telemetry moves. The controller run must Pareto-
// dominate or match-within-noise (eps = 2%) EVERY member of a static
// interval grid on (pause p95, mean vulnerability window, overhead over
// native) -- if any static row beats it on all three axes at once, the
// closed loop lost to an open one and the bench fails.
//
// Leg 2 (storm): the same comparison under a mid-run transport-fault
// storm with replication on, where the controller additionally manages
// the in-flight window against replication lag.
//
// Self-checks (all gate the exit code):
//   - same-seed determinism: two identical controller runs produce the
//     same epoch count, total pause, and decision stream, element for
//     element;
//   - replay equality: ControlPlane::replay over the recorded input
//     history re-derives the live decision stream exactly (decisions are
//     evidence, not heuristics -- DESIGN.md section 14);
//   - loop overhead: with every knob pinned (min == max), the enabled
//     loop adds <1% mean pause versus control off -- the observe/decide
//     cost is real but negligible;
//   - zero cost disabled: a control-off run charges nothing to
//     PhaseCosts::control and runs no cycles.
#include "bench_util.h"
#include "control/control_plane.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

using namespace crimes;
using namespace crimes::bench;

constexpr double kWorkMs = 12000.0;
constexpr std::size_t kWorkingSetPages = 6000;
constexpr double kEps = 0.02;  // match-within-noise band for domination

// A guest program with a diurnal load pattern: page-touch rate follows a
// sine around `base_rate` with period `period_ms`, so dirty-pages-per-
// epoch swings between quiet-night and busy-day phases. Same uniform
// touch model as ParsecWorkload (whose internals are private), minus the
// heap churn it uses to feed canary scans.
class DiurnalWorkload final : public Workload {
 public:
  DiurnalWorkload(GuestKernel& kernel, double base_rate, double amplitude,
                  double period_ms, std::uint64_t seed = 42)
      : kernel_(&kernel),
        base_rate_(base_rate),
        amplitude_(amplitude),
        period_ms_(period_ms),
        rng_(seed) {
    buffer_ = kernel_->heap().malloc(kWorkingSetPages * kPageSize -
                                     2 * kCanaryBytes);
  }

  [[nodiscard]] std::string name() const override { return "diurnal"; }

  void run_epoch(Nanos start, Nanos duration) override {
    const double phase = 2.0 * M_PI * to_ms(start) / period_ms_;
    const double rate = base_rate_ * (1.0 + amplitude_ * std::sin(phase));
    const double exact = rate * to_ms(duration) + carry_;
    const auto touches = static_cast<std::uint64_t>(exact);
    carry_ = exact - static_cast<double>(touches);

    const std::size_t usable =
        kWorkingSetPages * kPageSize - 2 * kCanaryBytes - 8;
    for (std::uint64_t i = 0; i < touches; ++i) {
      const std::uint64_t page = rng_.next_below(kWorkingSetPages);
      std::uint64_t off =
          page * kPageSize + rng_.next_below(kPageSize / 8) * 8;
      if (off > usable) off = usable;
      kernel_->write_value<std::uint64_t>(buffer_ + off, rng_.next_u64());
    }
    elapsed_ += duration;
    kernel_->tick(static_cast<std::uint64_t>(duration.count()));
  }

  [[nodiscard]] bool finished() const override {
    return to_ms(elapsed_) >= kWorkMs * 2;
  }

 private:
  GuestKernel* kernel_;
  double base_rate_;
  double amplitude_;
  double period_ms_;
  Rng rng_;
  Vaddr buffer_;
  Nanos elapsed_{0};
  double carry_ = 0.0;
};

struct LegResult {
  RunSummary summary;
  double p95_ms = 0.0;
  double vuln_ms = 0.0;   // mean vulnerability window per epoch
  // Throughput cost as overhead over native (normalized_runtime - 1):
  // comparing full runtimes would dilute the checkpointing cost with the
  // work time both configs get for free.
  double overhead = 0.0;
  std::vector<control::ControlDecision> decisions;
  std::vector<control::ControlInputs> history;
};

CrimesConfig leg_config(Nanos interval, bool controller, bool storm) {
  CrimesConfig config;
  config.checkpoint = CheckpointConfig::full(interval);
  config.mode = SafetyMode::BestEffort;
  config.record_execution = false;
  config.slo.budget.pause_ms = 8.0;
  config.slo.budget.vulnerability_ms = 150.0;
  if (storm) {
    config.checkpoint.store.enabled = true;
    config.checkpoint.store.journal = true;
    config.replication.enabled = true;
    config.replication.heartbeat.interval = millis(100);
    config.faults = fault::FaultPlan::transport_storm(0.05, 10, 60, 7);
  }
  if (controller) {
    config.control.enabled = true;
    config.control.min_interval = millis(20);
    config.control.max_interval = millis(300);
    config.control.target_overhead = 0.05;
    config.control.history_capacity = 4096;  // keep the whole run replayable
    config.control.decision_capacity = 4096;
  }
  return config;
}

LegResult run_leg(const CrimesConfig& config) {
  Hypervisor hypervisor(1u << 21);
  GuestConfig gc;
  gc.page_count = kWorkingSetPages + 4096;
  Vm& vm = hypervisor.create_domain("diurnal", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  Crimes crimes(hypervisor, kernel, config);
  DiurnalWorkload app(kernel, /*base_rate=*/30.0, /*amplitude=*/0.8,
                      /*period_ms=*/3000.0);
  crimes.set_workload(&app);
  crimes.initialize();

  LegResult leg;
  leg.summary = crimes.run(millis(kWorkMs));
  leg.p95_ms = leg.summary.p95_pause_ms();
  leg.overhead = leg.summary.normalized_runtime() - 1.0;
  // Mean vulnerability window (BestEffort): lost-on-attack time per epoch
  // = interval actually run + the pause behind it. Averaging over the run
  // charges the controller for every interval it chose.
  leg.vuln_ms = leg.summary.epochs == 0
                    ? 0.0
                    : to_ms(leg.summary.work_time + leg.summary.total_pause) /
                          static_cast<double>(leg.summary.epochs);
  if (const control::ControlPlane* plane = crimes.control_plane()) {
    leg.decisions = plane->decisions();
    leg.history = plane->history();
  }
  return leg;
}

// True when `candidate` beats `ctrl` on every axis at once (all at least
// matching within eps, at least one strictly better beyond eps). Lower is
// better on all three axes.
bool dominates(const LegResult& candidate, const LegResult& ctrl) {
  const double c[3] = {candidate.p95_ms, candidate.vuln_ms,
                       candidate.overhead};
  const double x[3] = {ctrl.p95_ms, ctrl.vuln_ms, ctrl.overhead};
  bool all_leq = true, any_strict = false;
  for (int i = 0; i < 3; ++i) {
    if (c[i] > x[i] * (1.0 + kEps)) all_leq = false;
    if (c[i] < x[i] * (1.0 - kEps)) any_strict = true;
  }
  return all_leq && any_strict;
}

void print_row(const char* label, const LegResult& leg) {
  std::printf("%-12s %6zu %9.3f %9.3f %9.1f %8.2f%% %5zu %6zu\n", label,
              leg.summary.epochs, leg.summary.avg_pause_ms(), leg.p95_ms,
              leg.vuln_ms, 100.0 * leg.overhead, leg.summary.control_adjustments,
              leg.summary.control_holds);
}

// One scenario: controller vs the static grid, with the domination check.
bool run_scenario(const char* title, bool storm, LegResult& ctrl_out) {
  print_header(title);
  std::printf("%-12s %6s %9s %9s %9s %9s %6s %6s\n", "config", "epochs",
              "avg_ms", "p95_ms", "vuln_ms", "ovh%", "moves", "holds");

  const LegResult ctrl = run_leg(leg_config(millis(100), true, storm));
  print_row("controller", ctrl);

  bool never_dominated = true;
  for (const int interval_ms : {40, 80, 120, 200}) {
    const LegResult fixed =
        run_leg(leg_config(millis(interval_ms), false, storm));
    char label[32];
    std::snprintf(label, sizeof label, "static-%d", interval_ms);
    print_row(label, fixed);
    if (dominates(fixed, ctrl)) {
      std::printf("  ^ dominates the controller on all three axes\n");
      never_dominated = false;
    }
  }
  std::printf("self-check no static interval dominates the controller "
              "(eps=%.0f%%): %s\n",
              kEps * 100.0, never_dominated ? "PASS" : "FAIL");
  ctrl_out = ctrl;
  return never_dominated;
}

// The diurnal controller leg again, telemetry exported for
// check_trace.py: every control_decide span must sit on its own lane,
// off the pipeline, the CoW drain track, and the postmortem lane.
int run_traced(const std::string& trace_out, const std::string& metrics_out) {
  Hypervisor hypervisor(1u << 21);
  GuestConfig gc;
  gc.page_count = kWorkingSetPages + 4096;
  Vm& vm = hypervisor.create_domain("diurnal", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config = leg_config(millis(100), true, false);
  config.telemetry = true;
  Crimes crimes(hypervisor, kernel, config);
  DiurnalWorkload app(kernel, /*base_rate=*/30.0, /*amplitude=*/0.8,
                      /*period_ms=*/3000.0);
  crimes.set_workload(&app);
  crimes.initialize();
  crimes.telemetry()->set_export_paths(trace_out, metrics_out);
  (void)crimes.run(millis(kWorkMs));

  if (!crimes.telemetry()->flush_exports()) {
    std::fprintf(stderr, "failed to write telemetry exports\n");
    return 1;
  }
  std::printf("traced diurnal controller run written to %s\n",
              trace_out.c_str());
  return 0;
}

bool same_decisions(const std::vector<control::ControlDecision>& a,
                    const std::vector<control::ControlDecision>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out, metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out <f.trace.json>] "
                   "[--metrics-out <f.jsonl>]\n",
                   argv[0]);
      return 2;
    }
  }
  // Trace export mode runs just the controller leg: the Pareto sweep has
  // its own ctest entry, and check_trace only needs the span layout.
  if (!trace_out.empty() || !metrics_out.empty()) {
    return run_traced(trace_out, metrics_out);
  }

  std::printf("CRIMES control-plane ablation: closed loop vs static knobs\n");

  LegResult diurnal_ctrl, storm_ctrl;
  const bool diurnal_ok =
      run_scenario("diurnal load, controller vs static grid", false,
                   diurnal_ctrl);
  const bool storm_ok =
      run_scenario("transport-fault storm with replication", true,
                   storm_ctrl);

  print_header("self-checks");

  // Same seed, same config => bitwise-identical control behaviour.
  const LegResult twin = run_leg(leg_config(millis(100), true, false));
  const bool deterministic =
      twin.summary.epochs == diurnal_ctrl.summary.epochs &&
      twin.summary.total_pause == diurnal_ctrl.summary.total_pause &&
      same_decisions(twin.decisions, diurnal_ctrl.decisions);
  std::printf("same-seed determinism (epochs, pause, decision stream): %s\n",
              deterministic ? "PASS" : "FAIL");

  // Replaying the recorded inputs re-derives the live decision stream.
  // Mirror what Crimes::initialize does to the config: the diurnal leg has
  // no replicator and no scan modules, so those policies were disabled and
  // their knobs absent.
  CrimesConfig diurnal_cfg = leg_config(millis(100), true, false);
  control::ControlConfig cc = diurnal_cfg.control;
  cc.manage_window = false;
  cc.manage_scan = false;
  const std::vector<control::ControlDecision> replayed =
      control::ControlPlane::replay(cc, CostModel::defaults(),
                                    diurnal_cfg.slo.budget,
                                    diurnal_cfg.checkpoint.epoch_interval, 0,
                                    0, diurnal_ctrl.history);
  const bool replay_ok =
      diurnal_ctrl.history.size() == diurnal_ctrl.summary.epochs &&
      !diurnal_ctrl.decisions.empty() &&
      same_decisions(replayed, diurnal_ctrl.decisions);
  std::printf("replay over recorded inputs reproduces live decisions: %s\n",
              replay_ok ? "PASS" : "FAIL");

  // Pinned knobs isolate the loop's own cost: it still observes, smooths
  // and cycles every epoch, but clamps forbid any movement.
  CrimesConfig pinned_cfg = leg_config(millis(100), true, false);
  pinned_cfg.control.min_interval = millis(100);
  pinned_cfg.control.max_interval = millis(100);
  pinned_cfg.control.manage_scan = false;
  pinned_cfg.control.manage_window = false;
  pinned_cfg.control.manage_gc = false;
  const LegResult pinned = run_leg(pinned_cfg);
  const LegResult off = run_leg(leg_config(millis(100), false, false));
  const double added = 100.0 *
                       (pinned.summary.avg_pause_ms() -
                        off.summary.avg_pause_ms()) /
                       off.summary.avg_pause_ms();
  std::printf("enabled-but-pinned loop adds %.3f%% mean pause (<1%%): %s\n",
              added, added < 1.0 ? "PASS" : "FAIL");
  const bool overhead_ok = added < 1.0;

  // Disabled = not constructed: nothing charged, nothing cycled.
  const bool zero_cost = off.summary.total_costs.control.count() == 0 &&
                         off.summary.control_cycles == 0 &&
                         off.summary.control_adjustments == 0;
  std::printf("control off charges zero cost and runs zero cycles: %s\n",
              zero_cost ? "PASS" : "FAIL");

  const bool pass = diurnal_ok && storm_ok && deterministic && replay_ok &&
                    overhead_ok && zero_cost;
  std::printf("\noverall: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
