// Ablation: Remus-style checkpoint compression (XOR delta + RLE) on the
// socket transport, across write densities. Compression rescues the
// unoptimized/remote path when epochs re-dirty pages sparsely -- the
// common case for most PARSEC profiles -- and degrades gracefully to the
// plain socket cost for incompressible churn.
#include "checkpoint/checkpointer.h"
#include "common/rng.h"
#include "guestos/guest_kernel.h"

#include <cstdio>

int main() {
  using namespace crimes;

  std::printf("\n=== Ablation: checkpoint compression vs write density ===\n");
  std::printf("%-22s %12s %14s %12s\n", "writes/page/epoch", "plain(ms)",
              "compressed(ms)", "ratio");

  for (const int writes_per_page : {1, 4, 16, 64, 256, 512}) {
    double copy_ms[2] = {};
    double ratio = 0.0;
    for (const bool compress : {false, true}) {
      Hypervisor hypervisor(1u << 19);
      GuestConfig gc;
      gc.page_count = 8192;
      Vm& vm = hypervisor.create_domain("guest", gc.page_count);
      GuestKernel kernel(vm, gc);
      kernel.boot();

      SimClock clock;
      CheckpointConfig config = CheckpointConfig::no_opt(millis(100));
      config.compress = compress;
      Checkpointer cp(hypervisor, vm, clock, CostModel::defaults(), config);
      cp.initialize();

      Rng rng(writes_per_page);
      const GuestLayout& layout = kernel.layout();
      const Vaddr heap = layout.va_of(layout.heap_base);
      constexpr std::size_t kPages = 400;

      // Warm epoch: populate the pages so later deltas are realistic.
      for (std::size_t p = 0; p < kPages; ++p) {
        for (int w = 0; w < writes_per_page; ++w) {
          kernel.write_value<std::uint64_t>(
              heap + p * kPageSize + rng.next_below(512) * 8,
              rng.next_u64());
        }
      }
      (void)cp.run_checkpoint({});

      // Measured epoch.
      Nanos copy_total{0};
      for (int epoch = 0; epoch < 3; ++epoch) {
        for (std::size_t p = 0; p < kPages; ++p) {
          for (int w = 0; w < writes_per_page; ++w) {
            kernel.write_value<std::uint64_t>(
                heap + p * kPageSize + rng.next_below(512) * 8,
                rng.next_u64());
          }
        }
        copy_total += cp.run_checkpoint({}).costs.copy;
      }
      copy_ms[compress ? 1 : 0] = to_ms(copy_total) / 3.0;
      if (compress) {
        ratio = dynamic_cast<const CompressedSocketTransport&>(cp.transport())
                    .compression_ratio();
      }
    }
    std::printf("%-22d %12.2f %14.2f %11.1fx\n", writes_per_page,
                copy_ms[0], copy_ms[1], ratio);
    std::fflush(stdout);
  }
  std::printf("\nsparse re-dirtying compresses 10-100x; dense random churn "
              "approaches the plain socket cost\n");
  return 0;
}
