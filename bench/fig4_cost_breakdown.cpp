// Figure 4: absolute pause-state cost breakdown for the swaptions
// benchmark at a 200 ms epoch interval, per optimization level.
//
// Paper: total pause falls 29.86 ms (No-opt) -> 10.21 ms (Full), -67%;
// copy is ~71% of No-opt; bitscan drops 2.7 ms -> 0.14 ms with the
// chunked scan; memcpy-without-premap pays double map cost.
#include "bench_util.h"

#include <cstdio>
#include <cstring>
#include <string>

int main(int argc, char** argv) {
  using namespace crimes;
  using namespace crimes::bench;

  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out <file.trace.json>]\n",
                   argv[0]);
      return 2;
    }
  }

  ParsecProfile profile = ParsecProfile::by_name("swaptions");
  profile.duration_ms = 4000.0;

  print_header(
      "Figure 4: pause cost breakdown for swaptions (ms), 200 ms epoch");
  std::printf("%-8s %8s %8s %8s %8s %8s %8s %8s %8s\n", "scheme", "suspend",
              "vmi", "bitscan", "protect", "map", "copy", "resume", "TOTAL");

  // The speculative-CoW scheme (DESIGN.md section 12) joins the paper's
  // four: it trades the in-pause map+copy for a protect phase and an
  // asynchronous drain that overlaps the next epoch.
  auto rows = schemes(millis(200));
  rows.emplace_back("CoW", CheckpointConfig::cow(millis(200)));

  double no_opt_total = 0, full_total = 0;
  RunSummary cow_summary;
  for (const auto& [label, scheme] : rows) {
    const RunSummary summary = run_parsec_scheme(profile, scheme);
    const PhaseCosts avg = summary.avg_costs();
    const double total = to_ms(avg.pause_total());
    if (label == "No-opt") no_opt_total = total;
    if (label == "Full") full_total = total;
    if (label == "CoW") cow_summary = summary;
    std::printf("%-8s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                label.c_str(), to_ms(avg.suspend), to_ms(avg.vmi),
                to_ms(avg.bitscan), to_ms(avg.protect), to_ms(avg.map),
                to_ms(avg.copy), to_ms(avg.resume), total);
    std::fflush(stdout);
  }
  std::printf("\npause-time reduction Full vs No-opt: %.0f%% (paper: 67%%, "
              "29.86 -> 10.21 ms)\n",
              100.0 * (1.0 - full_total / no_opt_total));
  const double n =
      cow_summary.checkpoints == 0
          ? 1.0
          : static_cast<double>(cow_summary.checkpoints);
  std::printf("CoW off-pause drain: %.2f ms/epoch (%.2f ms first-touch, "
              "%.2f ms commit stall, %zu first touches)\n",
              to_ms(cow_summary.cow_drain_time) / n,
              to_ms(cow_summary.cow_first_touch_time) / n,
              to_ms(cow_summary.cow_commit_stall) / n,
              cow_summary.cow_first_touches);

  if (!trace_out.empty()) {
    print_header("traced Full-scheme run (telemetry on)");
    (void)run_parsec_scheme_traced(profile,
                                   CheckpointConfig::full(millis(200)),
                                   trace_out);
  }
  return 0;
}
