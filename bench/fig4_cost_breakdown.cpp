// Figure 4: absolute pause-state cost breakdown for the swaptions
// benchmark at a 200 ms epoch interval, per optimization level.
//
// Paper: total pause falls 29.86 ms (No-opt) -> 10.21 ms (Full), -67%;
// copy is ~71% of No-opt; bitscan drops 2.7 ms -> 0.14 ms with the
// chunked scan; memcpy-without-premap pays double map cost.
#include "bench_util.h"

#include <cstdio>
#include <cstring>
#include <string>

int main(int argc, char** argv) {
  using namespace crimes;
  using namespace crimes::bench;

  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out <file.trace.json>]\n",
                   argv[0]);
      return 2;
    }
  }

  ParsecProfile profile = ParsecProfile::by_name("swaptions");
  profile.duration_ms = 4000.0;

  print_header(
      "Figure 4: pause cost breakdown for swaptions (ms), 200 ms epoch");
  std::printf("%-8s %8s %8s %8s %8s %8s %8s %8s\n", "scheme", "suspend",
              "vmi", "bitscan", "map", "copy", "resume", "TOTAL");

  double no_opt_total = 0, full_total = 0;
  for (const auto& [label, scheme] : schemes(millis(200))) {
    const RunSummary summary = run_parsec_scheme(profile, scheme);
    const PhaseCosts avg = summary.avg_costs();
    const double total = to_ms(avg.pause_total());
    if (label == "No-opt") no_opt_total = total;
    if (label == "Full") full_total = total;
    std::printf("%-8s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                label.c_str(), to_ms(avg.suspend), to_ms(avg.vmi),
                to_ms(avg.bitscan), to_ms(avg.map), to_ms(avg.copy),
                to_ms(avg.resume), total);
    std::fflush(stdout);
  }
  std::printf("\npause-time reduction Full vs No-opt: %.0f%% (paper: 67%%, "
              "29.86 -> 10.21 ms)\n",
              100.0 * (1.0 - full_total / no_opt_total));

  if (!trace_out.empty()) {
    print_header("traced Full-scheme run (telemetry on)");
    (void)run_parsec_scheme_traced(profile,
                                   CheckpointConfig::full(millis(200)),
                                   trace_out);
  }
  return 0;
}
