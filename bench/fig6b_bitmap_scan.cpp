// Figure 6b: simulated bitmap-scan cost vs. VM size, bit-by-bit
// ("Not Optimized") vs. word-chunked ("Optimized").
//
// Unlike the system benches, these are REAL wall-clock measurements of the
// two scan algorithms in hypervisor/dirty_bitmap.cpp, run over randomly
// populated bitmaps sized for 1-16 GiB guests at a ~1% dirty ratio
// (mirroring the paper's "randomly generated bitmap representative of the
// size of a VM").
#include "common/rng.h"
#include "hypervisor/dirty_bitmap.h"

#include <chrono>
#include <cstdio>

int main() {
  using namespace crimes;

  std::printf("\n=== Figure 6b: bitmap scan cost vs VM size (real time) "
              "===\n");
  std::printf("%-10s %14s %16s %10s\n", "VM (GiB)", "Optimized (ms)",
              "Not Optimized (ms)", "speedup");

  constexpr int kReps = 5;
  volatile std::size_t sink = 0;  // defeat dead-code elimination

  for (const int gib : {1, 2, 4, 8, 12, 16}) {
    const std::size_t pages =
        static_cast<std::size_t>(gib) * (1u << 30) / kPageSize;
    DirtyBitmap bitmap(pages);
    Rng rng(static_cast<std::uint64_t>(gib) * 12345);
    const std::size_t dirty_target = pages / 100;  // ~1% dirty
    for (std::size_t i = 0; i < dirty_target; ++i) {
      bitmap.mark(Pfn{rng.next_below(pages)});
    }

    const auto time_ms = [&](auto scan) {
      double best = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        sink = sink + scan().size();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (ms < best) best = ms;
      }
      return best;
    };

    const double optimized = time_ms([&] { return bitmap.scan_chunked(); });
    const double naive = time_ms([&] { return bitmap.scan_naive(); });
    std::printf("%-10d %14.3f %16.3f %9.1fx\n", gib, optimized, naive,
                naive / optimized);
  }
  std::printf("\npaper: both grow with VM size; the bit-by-bit scan grows "
              "much faster (~60 ms at 16 GiB on their hardware)\n");
  return 0;
}
