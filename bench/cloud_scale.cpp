// Provider-scale ablation (beyond the paper's single-VM evaluation, but
// quantifying its section-2 pitch): per-tenant overhead and host memory
// cost as the number of CRIMES-protected tenants grows, for full
// optimizations vs. unoptimized Remus checkpointing.
//
// Grown into the host-overload acceptance scenario suite: after the
// scaling table it drives the admission/shedding/arbiter stack through
// flash crowds, noisy neighbours and correlated failovers, and FAILS
// (exit 1) if any robustness gate breaks:
//   (a) no admitted Critical/Standard tenant's host-observed p99 pause
//       exceeds its SLO budget by more than 10%, and best-effort tenants
//       shed first;
//   (b) the same seed yields the same schedule, and the arbiter's replay
//       reproduces the live decision stream exactly;
//   (c) the disabled path is zero-cost and byte-identical to the legacy
//       host.
// CI runs this as the release acceptance bar (ctest: CloudScaleScenarios).
#include "cloud/cloud_host.h"
#include "workload/parsec.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace crimes;

bool g_failed = false;

#define GATE(cond, what)                                     \
  do {                                                       \
    if (cond) {                                              \
      std::printf("  gate PASS: %s\n", what);                \
    } else {                                                 \
      std::printf("  gate FAIL: %s\n", what);                \
      g_failed = true;                                       \
    }                                                        \
  } while (0)

void scaling_table() {
  std::printf("\n=== Cloud scale: N protected tenants per host ===\n");
  std::printf("%-8s %10s %14s %14s %16s\n", "tenants", "scheme",
              "norm-runtime", "mem-overhead", "frames-in-use");

  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    for (const bool full_opt : {true, false}) {
      CloudHost host(1u << 21);
      std::vector<std::unique_ptr<ParsecWorkload>> workloads;

      for (std::size_t i = 0; i < n; ++i) {
        GuestConfig gc;
        gc.page_count = 8192;  // 32 MiB tenants
        CrimesConfig cc;
        cc.checkpoint = full_opt ? CheckpointConfig::full(millis(100))
                                 : CheckpointConfig::no_opt(millis(100));
        cc.record_execution = false;
        Tenant& tenant =
            host.admit({"tenant-" + std::to_string(i), gc, cc});

        ParsecProfile profile = ParsecProfile::by_name("swaptions");
        profile.working_set_pages = 2048;
        profile.touches_per_ms = 25.0;
        profile.duration_ms = 800.0;
        workloads.push_back(std::make_unique<ParsecWorkload>(
            tenant.kernel(), profile, i + 1));
        tenant.set_workload(workloads.back().get());
      }
      host.initialize_all();
      (void)host.run(millis(800));

      double norm_sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        norm_sum += host.tenant("tenant-" + std::to_string(i))
                        .totals()
                        .normalized_runtime();
      }
      const CloudMemoryReport mem = host.memory_report();
      double factor_sum = 0.0;
      for (const auto& row : mem.rows) factor_sum += row.overhead_factor();

      std::printf("%-8zu %10s %14.3f %13.2fx %16zu\n", n,
                  full_opt ? "Full" : "No-opt",
                  norm_sum / static_cast<double>(n),
                  factor_sum / static_cast<double>(n),
                  mem.machine_frames_in_use);
      std::fflush(stdout);
    }
  }
  std::printf("\nper-tenant overhead is independent of tenant count "
              "(checkpoint work is per-VM); memory cost is ~2x per "
              "protected tenant (the paper's stated trade)\n");
}

// ---------------------------------------------------------------------------
// Overload acceptance scenarios
// ---------------------------------------------------------------------------

struct ScenarioTenants {
  // Admission order: [0]=critical, [1]=standard, [2..3]=best-effort.
  std::vector<std::string> names = {"payments", "web", "batch-0", "batch-1"};
  std::vector<TenantPriority> priorities = {
      TenantPriority::Critical, TenantPriority::Standard,
      TenantPriority::BestEffort, TenantPriority::BestEffort};
};

// One overload run: four mixed-priority tenants under a host fault storm.
// Everything is derived from `seed`, so two calls with the same seed must
// produce identical schedules and decision streams.
struct ScenarioResult {
  CloudRunReport report;
  std::vector<HostDecision> decisions;
  std::vector<HostInputs> history;
  std::vector<RunSummary> totals;
  std::vector<double> host_p99_ms;
  std::vector<std::size_t> shed_levels;
  double pressure = 0.0;  // last round's composite pressure
  HostConfig config;
};

ScenarioResult run_overload_scenario(std::uint64_t seed) {
  ScenarioResult out;
  HostConfig hc;
  hc.enabled = true;
  // Tight copy budget: the storm's inflated working sets must push the
  // shared copy path over the line, or nothing interesting happens.
  hc.copy_overhead_limit = 0.002;
  hc.faults = fault::FaultPlan::overload_storm(0.4, /*from=*/2,
                                               /*until=*/48, seed);
  out.config = hc;

  CloudHost host(hc, 1u << 20);
  const ScenarioTenants plan;
  std::vector<Tenant*> tenants;
  std::vector<std::unique_ptr<ParsecWorkload>> workloads;
  for (std::size_t i = 0; i < plan.names.size(); ++i) {
    GuestConfig gc;
    gc.page_count = 2048;
    gc.task_slab_pages = 4;
    gc.canary_table_pages = 8;
    CrimesConfig cc;
    cc.checkpoint = CheckpointConfig::full(millis(50));
    cc.record_execution = false;
    cc.slo.budget.pause_ms = 6.0;  // share 0.12 of the 50 ms interval: 4 tenants fit
    TenantPolicy policy{plan.names[i], gc, cc, plan.priorities[i]};
    Tenant* t = host.admit(std::move(policy)).admitted;
    if (t == nullptr) {
      std::printf("  unexpected admission refusal for %s\n",
                  plan.names[i].c_str());
      g_failed = true;
      return out;
    }
    ParsecProfile profile = ParsecProfile::by_name("raytrace");
    profile.working_set_pages = 1024;
    profile.touches_per_ms = 5.0;
    profile.duration_ms = 800.0;
    workloads.push_back(
        std::make_unique<ParsecWorkload>(t->kernel(), profile, 100 + i));
    t->set_workload(workloads.back().get());
    tenants.push_back(t);
  }
  host.initialize_all();
  out.report = host.run(millis(800));

  out.pressure = host.arbiter()->pressure();
  out.decisions = host.arbiter()->decisions();
  out.history = host.arbiter()->history();
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    out.totals.push_back(tenants[i]->totals());
    out.host_p99_ms.push_back(tenants[i]->host_p99_pause_ms());
    out.shed_levels.push_back(host.arbiter()->shed_level(i));
  }
  return out;
}

bool summaries_identical(const RunSummary& a, const RunSummary& b) {
  return a.epochs == b.epochs && a.checkpoints == b.checkpoints &&
         a.work_time == b.work_time && a.total_pause == b.total_pause &&
         a.max_pause == b.max_pause &&
         a.total_dirty_pages == b.total_dirty_pages &&
         a.total_costs.copy == b.total_costs.copy &&
         a.total_costs.suspend == b.total_costs.suspend &&
         a.host_paused_epochs == b.host_paused_epochs &&
         a.pause_histogram.count == b.pause_histogram.count &&
         a.pause_histogram.sum == b.pause_histogram.sum &&
         a.pause_histogram.max == b.pause_histogram.max &&
         a.pause_histogram.buckets == b.pause_histogram.buckets;
}

void scenario_overload_storm() {
  std::printf("\n=== Scenario: flash crowd + noisy neighbour + correlated "
              "failover (overload_storm) ===\n");
  const ScenarioResult r = run_overload_scenario(/*seed=*/11);
  const ScenarioTenants plan;

  std::printf("  rounds=%zu decisions=%zu flash=%zu storm=%zu failover=%zu "
              "pressure=%.3f\n",
              r.report.host_rounds, r.report.host_decisions,
              r.report.flash_crowd_rounds, r.report.neighbor_storm_rounds,
              r.report.correlated_failover_rounds, r.pressure);
  for (std::size_t i = 0; i < plan.names.size(); ++i) {
    std::printf("  %-10s prio=%-11s shed-level=%zu host-p99=%.3f ms\n",
                plan.names[i].c_str(), to_string(plan.priorities[i]),
                r.shed_levels[i], r.host_p99_ms[i]);
  }

  GATE(r.report.host_rounds > 0 && r.report.host_decisions > 0,
       "storm produced host rounds and arbiter decisions");
  GATE(r.report.flash_crowd_rounds + r.report.neighbor_storm_rounds > 0,
       "host fault sites fired inside the storm window");

  // Gate (a) part 1: shedding lands on best-effort tenants first. Every
  // decision that touched the standard tenant must come after both
  // best-effort tenants were already degraded, and the critical tenant
  // is never actuated at all.
  bool best_effort_first = true;
  bool critical_untouched = true;
  std::size_t be_rungs_seen = 0;
  for (const HostDecision& d : r.decisions) {
    const bool is_ladder = d.action == HostAction::StretchInterval ||
                           d.action == HostAction::Downgrade ||
                           d.action == HostAction::PauseProtection;
    if (d.tenant == 0) critical_untouched = false;
    if (!is_ladder) continue;
    if (d.tenant >= 2) {
      ++be_rungs_seen;
    } else if (d.tenant == 1 && be_rungs_seen == 0) {
      best_effort_first = false;
    }
  }
  GATE(best_effort_first,
       "best-effort tenants shed before the standard tenant");
  GATE(critical_untouched, "critical tenant never actuated by the host");

  // Gate (a) part 2: admitted Critical/Standard tenants stay within 110%
  // of their pause SLO, host-observed (contended) percentiles included.
  const double ceiling = 6.0 * 1.10;
  GATE(r.host_p99_ms[0] <= ceiling && r.host_p99_ms[1] <= ceiling,
       "critical/standard host-observed p99 pause within 110% of SLO");

  // Gate (b): same seed, same everything; replay reproduces the stream.
  const ScenarioResult again = run_overload_scenario(/*seed=*/11);
  bool deterministic =
      again.decisions.size() == r.decisions.size() &&
      again.report.host_rounds == r.report.host_rounds &&
      again.report.flash_crowd_rounds == r.report.flash_crowd_rounds &&
      again.report.epochs_scheduled == r.report.epochs_scheduled;
  for (std::size_t i = 0; deterministic && i < r.decisions.size(); ++i) {
    deterministic = again.decisions[i] == r.decisions[i];
  }
  for (std::size_t i = 0; deterministic && i < r.totals.size(); ++i) {
    deterministic = summaries_identical(again.totals[i], r.totals[i]);
  }
  GATE(deterministic, "same-seed rerun is decision- and summary-identical");

  const std::vector<HostDecision> replayed =
      HostArbiter::replay(r.config, r.history);
  bool replay_equal = replayed.size() == r.decisions.size();
  for (std::size_t i = 0; replay_equal && i < replayed.size(); ++i) {
    replay_equal = replayed[i] == r.decisions[i];
  }
  GATE(replay_equal, "arbiter replay reproduces the live decision stream");
}

void scenario_disabled_path() {
  std::printf("\n=== Scenario: disabled host subsystem is zero-cost ===\n");
  // Legacy host vs. a HostConfig{enabled=false} host: same tenants, same
  // seeds. The run must be byte-identical -- no arbiter, no admission
  // log, no host rounds, identical per-tenant summaries.
  CloudHost legacy(1u << 20);
  CloudHost off(HostConfig{}, 1u << 20);
  const ScenarioTenants plan;
  std::vector<Tenant*> a_tenants, b_tenants;
  std::vector<std::unique_ptr<ParsecWorkload>> workloads;
  for (CloudHost* host : {&legacy, &off}) {
    for (std::size_t i = 0; i < plan.names.size(); ++i) {
      GuestConfig gc;
      gc.page_count = 2048;
      gc.task_slab_pages = 4;
      gc.canary_table_pages = 8;
      CrimesConfig cc;
      cc.checkpoint = CheckpointConfig::full(millis(50));
      cc.record_execution = false;
      Tenant* t =
          host->admit({plan.names[i], gc, cc, plan.priorities[i]}).admitted;
      ParsecProfile profile = ParsecProfile::by_name("raytrace");
      profile.working_set_pages = 256;
      profile.touches_per_ms = 5.0;
      profile.duration_ms = 400.0;
      workloads.push_back(
          std::make_unique<ParsecWorkload>(t->kernel(), profile, 200 + i));
      t->set_workload(workloads.back().get());
      (host == &legacy ? a_tenants : b_tenants).push_back(t);
    }
    host->initialize_all();
  }
  const CloudRunReport ra = legacy.run(millis(400));
  const CloudRunReport rb = off.run(millis(400));

  GATE(off.arbiter() == nullptr && off.admission_log().empty() &&
           rb.host_rounds == 0 && rb.host_decisions == 0,
       "disabled path builds no arbiter, logs nothing, runs no host rounds");
  bool identical = ra.epochs_scheduled == rb.epochs_scheduled;
  for (std::size_t i = 0; identical && i < a_tenants.size(); ++i) {
    identical =
        summaries_identical(a_tenants[i]->totals(), b_tenants[i]->totals());
  }
  GATE(identical, "disabled path byte-identical to the legacy host");
}

}  // namespace

int main() {
  scaling_table();
  scenario_overload_storm();
  scenario_disabled_path();
  if (g_failed) {
    std::printf("\ncloud_scale: ACCEPTANCE GATES FAILED\n");
    return 1;
  }
  std::printf("\ncloud_scale: all acceptance gates passed\n");
  return 0;
}
