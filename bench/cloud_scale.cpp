// Provider-scale ablation (beyond the paper's single-VM evaluation, but
// quantifying its section-2 pitch): per-tenant overhead and host memory
// cost as the number of CRIMES-protected tenants grows, for full
// optimizations vs. unoptimized Remus checkpointing.
#include "cloud/cloud_host.h"
#include "workload/parsec.h"

#include <cstdio>
#include <memory>
#include <vector>

int main() {
  using namespace crimes;

  std::printf("\n=== Cloud scale: N protected tenants per host ===\n");
  std::printf("%-8s %10s %14s %14s %16s\n", "tenants", "scheme",
              "norm-runtime", "mem-overhead", "frames-in-use");

  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    for (const bool full_opt : {true, false}) {
      CloudHost host(1u << 21);
      std::vector<std::unique_ptr<ParsecWorkload>> workloads;

      for (std::size_t i = 0; i < n; ++i) {
        GuestConfig gc;
        gc.page_count = 8192;  // 32 MiB tenants
        CrimesConfig cc;
        cc.checkpoint = full_opt ? CheckpointConfig::full(millis(100))
                                 : CheckpointConfig::no_opt(millis(100));
        cc.record_execution = false;
        Tenant& tenant =
            host.admit({"tenant-" + std::to_string(i), gc, cc});

        ParsecProfile profile = ParsecProfile::by_name("swaptions");
        profile.working_set_pages = 2048;
        profile.touches_per_ms = 25.0;
        profile.duration_ms = 800.0;
        workloads.push_back(std::make_unique<ParsecWorkload>(
            tenant.kernel(), profile, i + 1));
        tenant.set_workload(workloads.back().get());
      }
      host.initialize_all();
      (void)host.run(millis(800));

      double norm_sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        norm_sum += host.tenant("tenant-" + std::to_string(i))
                        .totals()
                        .normalized_runtime();
      }
      const CloudMemoryReport mem = host.memory_report();
      double factor_sum = 0.0;
      for (const auto& row : mem.rows) factor_sum += row.overhead_factor();

      std::printf("%-8zu %10s %14.3f %13.2fx %16zu\n", n,
                  full_opt ? "Full" : "No-opt",
                  norm_sum / static_cast<double>(n),
                  factor_sum / static_cast<double>(n),
                  mem.machine_frames_in_use);
      std::fflush(stdout);
    }
  }
  std::printf("\nper-tenant overhead is independent of tenant count "
              "(checkpoint work is per-VM); memory cost is ~2x per "
              "protected tenant (the paper's stated trade)\n");
  return 0;
}
