// Table 3: LibVMI analysis costs in microseconds -- one-time initialization
// and preprocessing vs. per-scan memory analysis, for process-list and
// module-list scans (averaged over 100 runs, like the paper).
//
// Paper: init ~66-67 ms, preprocessing ~54-55 ms, analysis 1.4-1.8 ms.
#include "bench_util.h"
#include "vmi/vmi_session.h"

#include <cstdio>

int main() {
  using namespace crimes;
  using namespace crimes::bench;

  Hypervisor hypervisor(1u << 19);
  GuestConfig gc;
  gc.page_count = 16384;
  gc.task_slab_pages = 8;
  Vm& vm = hypervisor.create_domain("ubuntu-vm", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();
  // A realistically busy Linux guest: ~48 processes, ~80 modules.
  for (int i = 0; i < 42; ++i) {
    (void)kernel.spawn_process("worker-" + std::to_string(i), 1000);
  }
  for (int i = 0; i < 76; ++i) {
    kernel.load_module("mod_" + std::to_string(i), 64 << 10);
  }

  constexpr int kRuns = 100;
  print_header("Table 3: LibVMI analysis costs (usec, avg of 100 runs)");
  std::printf("%-18s %14s %14s\n", "Time Cost (usec)", "process-list",
              "module-list");

  double init[2] = {}, preprocess[2] = {}, analysis[2] = {};
  for (int which = 0; which < 2; ++which) {
    for (int run = 0; run < kRuns; ++run) {
      VmiSession vmi(hypervisor, vm.id(), kernel.symbols(), kernel.flavor(),
                     CostModel::defaults());
      vmi.init();
      init[which] += to_us(vmi.take_cost());
      vmi.preprocess();
      preprocess[which] += to_us(vmi.take_cost());
      if (which == 0) {
        (void)vmi.process_list();
      } else {
        (void)vmi.module_list();
      }
      analysis[which] += to_us(vmi.take_cost());
    }
  }
  std::printf("%-18s %14.0f %14.0f\n", "Initialization", init[0] / kRuns,
              init[1] / kRuns);
  std::printf("%-18s %14.0f %14.0f\n", "Preprocessing",
              preprocess[0] / kRuns, preprocess[1] / kRuns);
  std::printf("%-18s %14.0f %14.0f\n", "Memory Analysis",
              analysis[0] / kRuns, analysis[1] / kRuns);
  std::printf(
      "\npaper: init 67096/66025, preprocessing 53678/54928, analysis "
      "1444/1777\n");
  std::printf(
      "note: only the Memory Analysis cost recurs at each CRIMES "
      "checkpoint.\n");
  return 0;
}
