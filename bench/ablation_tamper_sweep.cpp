// Adversarial ablation: the storage and replication substrate attacks its
// own tenant, and the sealed/attested layer (DESIGN.md section 15,
// EXPERIMENTS.md `ablation_tamper_sweep`) must catch every move.
//
// Four adversarial legs, each sweeping one SEVurity-style tamper site, plus
// a clean twin and an overhead leg:
//
//   store     sealed page records flipped/swapped/MAC-truncated at rest;
//             caught by the end-of-run seal audit / chain verification
//   journal   journal ciphertext rewritten with the framing checksum fixed
//             up; only the *keyed* fsck walk can reject it
//   repl      replicated pages corrupted in flight and stale roots
//             replayed; the standby's verify_extend refuses to extend trust
//   promote   a replication tamper followed by a primary kill: the standby
//             must refuse promotion from its unverified chain (the
//             attestation-gated failover -- no silent restore from a
//             corrupted evidence chain)
//
// Self-checks print PASS/FAIL lines and set the exit code; this binary runs
// under ctest (TamperSweepAblation) as an acceptance bar:
//
//   1. every adversarial leg detects at least one tamper, at the boundary
//      that owns the tampered bytes;
//   2. the clean twin reports zero tampers, zero refused promotions, and a
//      clean keyed fsck -- zero false positives;
//   3. the promote leg never promotes: the kill ends in a refusal, outputs
//      stay discarded, and a postmortem freezes the crime scene;
//   4. sealing + attestation add <10% mean pause vs the unsealed twin at
//      parsec dirty rates (sealing rides the store path, charged after
//      resume, so the bound holds by construction -- this check pins it);
//   5. same seed, same run: every counter of a repeated leg is identical.
// With --trace-out/--metrics-out, re-runs the clean sealed+replicated
// configuration with the telemetry layer on and exports the Chrome trace /
// metrics JSONL (this is how scripts/check_trace.py validates that `seal`
// spans nest inside `store_append` and `verify_chain` inside `replicate`).
#include "core/crimes.h"
#include "replication/store_journal.h"
#include "telemetry/export.h"
#include "workload/parsec.h"

#include <cstdio>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace crimes;

constexpr Nanos kInterval = millis(50);
constexpr std::size_t kEpochs = 20;
constexpr std::size_t kStormFrom = 2;
constexpr std::size_t kStormUntil = 14;
constexpr std::size_t kKillEpoch = 16;  // after the storm window
constexpr std::uint64_t kSeed = 7;

ParsecProfile profile() {
  ParsecProfile p = ParsecProfile::by_name("raytrace");
  p.working_set_pages = 512;
  p.touches_per_ms = 8.0;
  p.duration_ms = to_ms(kInterval) * static_cast<double>(kEpochs);
  return p;
}

CrimesConfig make_config(const fault::FaultPlan& plan, bool replicate,
                         bool seal = true) {
  CrimesConfig config;
  config.checkpoint = CheckpointConfig::full(kInterval);
  config.checkpoint.store.enabled = true;
  config.checkpoint.store.journal = true;
  config.checkpoint.store.crypto.seal = seal;
  config.checkpoint.store.crypto.attest = seal;
  config.mode = SafetyMode::Synchronous;
  config.record_execution = false;
  if (replicate) {
    config.replication.enabled = true;
    config.replication.heartbeat.interval = kInterval;
    config.replication.lease_term = millis(200);
  }
  config.faults = plan;
  return config;
}

struct LegResult {
  RunSummary summary;
  bool fsck_ok = false;
  bool fsck_keyed_reject = false;  // fsck failed with an attestation reason
};

LegResult run_leg(const CrimesConfig& config) {
  Hypervisor hypervisor(1u << 19);
  const ParsecProfile prof = profile();
  const GuestConfig gc = prof.recommended_guest();
  Vm& vm = hypervisor.create_domain(prof.name, gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  Crimes crimes(hypervisor, kernel, config);
  ParsecWorkload app(kernel, prof);
  crimes.set_workload(&app);
  crimes.initialize();

  LegResult leg;
  leg.summary = crimes.run(kInterval * static_cast<std::int64_t>(kEpochs));
  if (const replication::StoreJournal* journal =
          crimes.checkpointer().journal()) {
    const replication::StoreJournal::FsckReport fsck = journal->fsck();
    leg.fsck_ok = fsck.ok;
    leg.fsck_keyed_reject = !fsck.ok && fsck.reason.rfind("attestation", 0) == 0;
  }
  return leg;
}

fault::FaultPlan site_plan(double fault::FaultPlan::* site, double rate) {
  fault::FaultPlan plan;
  plan.seed = kSeed;
  plan.*site = rate;
  plan.from_epoch = kStormFrom;
  plan.until_epoch = kStormUntil;
  return plan;
}

void print_row(const char* leg, const LegResult& r) {
  std::printf("%8s %6llu %7llu %6llu %7zu %7zu %5s\n", leg,
              static_cast<unsigned long long>(r.summary.faults_injected),
              static_cast<unsigned long long>(r.summary.tampers_detected),
              static_cast<unsigned long long>(r.summary.roots_verified),
              r.summary.promotions_refused, r.summary.postmortems_dumped,
              r.fsck_ok ? "clean" : (r.fsck_keyed_reject ? "keyed" : "torn"));
}

bool check(const char* what, bool ok) {
  std::printf("self-check %s: %s\n", what, ok ? "PASS" : "FAIL");
  return ok;
}

// The clean sealed+replicated run again, telemetry on, for check_trace.py.
int run_traced(const std::string& trace_out, const std::string& metrics_out) {
  Hypervisor hypervisor(1u << 19);
  const ParsecProfile prof = profile();
  const GuestConfig gc = prof.recommended_guest();
  Vm& vm = hypervisor.create_domain(prof.name, gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config = make_config({}, /*replicate=*/true);
  config.telemetry = true;
  Crimes crimes(hypervisor, kernel, config);
  ParsecWorkload app(kernel, prof);
  crimes.set_workload(&app);
  crimes.initialize();
  crimes.telemetry()->set_export_paths(trace_out, metrics_out);
  (void)crimes.run(kInterval * static_cast<std::int64_t>(kEpochs));

  if (!crimes.telemetry()->flush_exports()) {
    std::fprintf(stderr, "failed to write telemetry exports\n");
    return 1;
  }
  if (!trace_out.empty()) {
    std::printf("traced sealed run written to %s\n", trace_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out, metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out <f.trace.json>] "
                   "[--metrics-out <f.jsonl>]\n",
                   argv[0]);
      return 2;
    }
  }
  std::printf("CRIMES tamper sweep: sealed substrate vs SEVurity-style "
              "adversary\n");
  std::printf("(%zu epochs of %.0f ms; tampers over epochs [%zu, %zu); "
              "seed %llu)\n\n",
              kEpochs, to_ms(kInterval), kStormFrom, kStormUntil,
              static_cast<unsigned long long>(kSeed));
  std::printf("%8s %6s %7s %6s %7s %7s %5s\n", "leg", "inject", "tamper",
              "roots", "refuse", "pm", "fsck");

  // Clean twin first: the zero-false-positive reference.
  const LegResult clean = run_leg(make_config({}, /*replicate=*/true));
  print_row("clean", clean);

  // Leg: store-at-rest adversary (block flips/swaps + MAC truncation).
  fault::FaultPlan store_plan =
      site_plan(&fault::FaultPlan::store_block_tamper, 0.5);
  store_plan.mac_truncation = 0.25;
  const LegResult store_leg =
      run_leg(make_config(store_plan, /*replicate=*/false));
  print_row("store", store_leg);

  // Leg: journal adversary (ciphertext rewrite, framing checksum fixed).
  const LegResult journal_leg = run_leg(make_config(
      site_plan(&fault::FaultPlan::journal_block_tamper, 0.5),
      /*replicate=*/false));
  print_row("journal", journal_leg);

  // Leg: wire adversary (in-flight corruption + stale-root replay).
  fault::FaultPlan wire_plan =
      site_plan(&fault::FaultPlan::replication_tamper, 0.5);
  wire_plan.stale_root_replay = 0.25;
  const LegResult wire_leg =
      run_leg(make_config(wire_plan, /*replicate=*/true));
  print_row("repl", wire_leg);

  // Leg: attestation-gated failover. Tamper the stream, then kill the
  // primary -- the standby must refuse to promote from a broken chain.
  fault::FaultPlan kill_plan =
      site_plan(&fault::FaultPlan::replication_tamper, 0.5);
  kill_plan.scheduled.push_back({.epoch = kKillEpoch,
                                 .kind = fault::FaultKind::PrimaryKill,
                                 .module = ""});
  const LegResult kill_leg =
      run_leg(make_config(kill_plan, /*replicate=*/true));
  print_row("promote", kill_leg);

  // Overhead leg: same workload, sealed vs plaintext store, no adversary.
  const LegResult sealed = run_leg(make_config({}, /*replicate=*/false));
  const LegResult plain =
      run_leg(make_config({}, /*replicate=*/false, /*seal=*/false));
  const double sealed_pause = sealed.summary.avg_pause_ms();
  const double plain_pause = plain.summary.avg_pause_ms();
  const double added = plain_pause == 0.0
                           ? 0.0
                           : (sealed_pause - plain_pause) / plain_pause;
  std::printf("\nsealed mean pause %.3f ms vs plaintext %.3f ms "
              "(%+.2f%% added)\n\n",
              sealed_pause, plain_pause, added * 100.0);

  bool ok = true;
  // 1. Every adversarial leg detects, at the boundary that owns the bytes.
  ok &= check("store tampers caught by seal audit/chain",
              store_leg.summary.faults_injected > 0 &&
                  store_leg.summary.tampers_detected > 0);
  ok &= check("journal tampers rejected by the keyed fsck walk",
              journal_leg.summary.faults_injected > 0 &&
                  journal_leg.summary.tampers_detected > 0 &&
                  journal_leg.fsck_keyed_reject);
  ok &= check("wire tampers refused by the standby's verify_extend",
              wire_leg.summary.faults_injected > 0 &&
                  wire_leg.summary.tampers_detected > 0);
  // 2. Zero false positives on the clean twin.
  ok &= check("clean twin: zero tampers, zero refusals, clean fsck",
              clean.summary.tampers_detected == 0 &&
                  clean.summary.promotions_refused == 0 &&
                  clean.summary.roots_verified > 0 && clean.fsck_ok);
  // 3. The standby never promotes from an unverified chain.
  ok &= check("tampered-chain kill ends in a refused promotion",
              kill_leg.summary.primary_killed &&
                  kill_leg.summary.promotions_refused > 0 &&
                  !kill_leg.summary.failed_over &&
                  kill_leg.summary.postmortems_dumped > 0);
  // 4. Sealing overhead bound: <10% added mean pause.
  ok &= check("sealed-path added mean pause < 10%",
              plain_pause > 0.0 && added < 0.10);
  // 5. Same seed, same counters.
  const LegResult replay = run_leg(make_config(wire_plan, true));
  ok &= check("same-seed determinism",
              replay.summary.faults_injected ==
                      wire_leg.summary.faults_injected &&
                  replay.summary.tampers_detected ==
                      wire_leg.summary.tampers_detected &&
                  replay.summary.roots_verified ==
                      wire_leg.summary.roots_verified &&
                  replay.summary.total_pause == wire_leg.summary.total_pause &&
                  replay.summary.postmortems_dumped ==
                      wire_leg.summary.postmortems_dumped);
  int rc = ok ? 0 : 1;
  if (rc == 0 && (!trace_out.empty() || !metrics_out.empty())) {
    rc = run_traced(trace_out, metrics_out);
  }
  return rc;
}
