// Ablation: where does Synchronous Safety's web latency come from?
// Decomposes the measured request latency into wire time, buffering wait
// (time from guest transmit to epoch-end release, computed from the
// delivered-packet log) and audit/checkpoint pause -- making the Figure 7
// mechanism explicit.
#include "bench_util.h"

#include <cstdio>

int main() {
  using namespace crimes;
  using namespace crimes::bench;

  print_header("Ablation: synchronous-safety latency decomposition");
  std::printf("%-10s %14s %10s %12s %12s\n", "interval", "latency(ms)",
              "wire(ms)", "buffer(ms)", "pause(ms)");

  const WebServerProfile profile = WebServerProfile::medium();
  for (const int interval : {20, 50, 100, 200}) {
    Hypervisor hypervisor(1u << 20);
    GuestConfig gc;
    gc.page_count = 262144;  // 1 GiB guest, as in run_web
    Vm& vm = hypervisor.create_domain("web", gc.page_count);
    GuestKernel kernel(vm, gc);
    kernel.boot();

    CrimesConfig config;
    config.checkpoint = CheckpointConfig::full(millis(interval));
    config.mode = SafetyMode::Synchronous;
    config.record_execution = false;
    Crimes crimes(hypervisor, kernel, config);
    WebServerWorkload server(kernel, crimes.nic(), profile);
    WrkClient client(server, crimes.network(), 48, 8);
    crimes.set_workload(&server);
    crimes.initialize();
    client.start(crimes.clock().now());
    const RunSummary summary = crimes.run(millis(3000));

    double buffer_wait_ms = 0.0;
    for (const auto& d : crimes.network().log()) {
      buffer_wait_ms += to_ms(d.released_at - d.packet.sent_at);
    }
    const double avg_buffer =
        crimes.network().log().empty()
            ? 0.0
            : buffer_wait_ms /
                  static_cast<double>(crimes.network().log().size());
    const double wire_ms = 2.0 * to_ms(crimes.network().wire_latency());
    std::printf("%-10d %14.2f %10.2f %12.2f %12.3f\n", interval,
                client.stats().mean_latency_ms(), wire_ms, avg_buffer,
                summary.avg_pause_ms());
    std::fflush(stdout);
  }
  std::printf("\nlatency ~= wire + buffer: buffering (not scanning or "
              "checkpointing) dominates. The closed loop sends each request "
              "right after the previous release, so the reply waits nearly "
              "a full epoch in the buffer.\n");
  return 0;
}
