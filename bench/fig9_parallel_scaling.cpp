// Figure 9 (post-paper): parallel checkpoint engine scaling -- thread-count
// sweep (1/2/4/8) over the three sharded phases of the suspended window:
//
//   copy     MemcpyTransport sharding a >= 16k-dirty-page epoch
//   bitscan  DirtyBitmap::scan_parallel over a 4 GiB guest's bitmap
//   audit    Detector::audit_parallel over independent scan modules
//
// For every phase and thread count the bench reports REAL wall-clock time
// (best of kReps, like fig6b) next to the MODELED pause-time charge
// (max per-shard cost + fork/join), and asserts the parallel result is
// identical to the serial one (backup image / PFN list / findings).
//
// Wall-clock speedup tracks physical core count: on a 1-core host every
// thread count measures pure overhead; on >= 4 cores the copy phase shows
// the >= 2x win the engine exists for. The modeled speedup column is
// hardware-independent.
#include "bench_util.h"

#include "common/rng.h"
#include "common/thread_pool.h"
#include "detect/hidden_process_scan.h"
#include "detect/syscall_integrity_scan.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace {

using namespace crimes;

constexpr int kReps = 5;

template <typename F>
double time_ms(F&& fn) {
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < best) best = ms;
  }
  return best;
}

void print_row(int threads, double wall_ms, double wall_base_ms,
               double model_ms, double model_base_ms) {
  std::printf("%-8d %12.3f %10.2fx %14.3f %11.2fx\n", threads, wall_ms,
              wall_base_ms / wall_ms, model_ms, model_base_ms / model_ms);
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FIG9 CHECK FAILED: %s\n", what);
    std::exit(1);
  }
}

// --- Phase 1: sharded dirty-page copy --------------------------------------

void bench_copy(const CostModel& costs) {
  bench::print_header(
      "Figure 9a: copy phase, 16k dirty pages (sharded memcpy)");

  constexpr std::size_t kGuestPages = 1u << 16;  // 256 MiB guest
  constexpr std::size_t kDirtyPages = 1u << 14;  // 16k-page epoch (64 MiB)
  Hypervisor hypervisor(1u << 19);  // room for primary + per-sweep backups

  Vm& primary = hypervisor.create_domain("primary", kGuestPages);
  Rng rng(42);
  std::vector<Pfn> dirty;
  dirty.reserve(kDirtyPages);
  for (std::size_t i = 0; i < kDirtyPages; ++i) {
    // Every 4th page: a spread-out working set, each page unique.
    const Pfn pfn{i * 4 + 1};
    dirty.push_back(pfn);
    Page& page = primary.page(pfn);
    for (std::size_t w = 0; w < kPageSize; w += 8) {
      const std::uint64_t v = rng.next_u64();
      std::memcpy(page.data.data() + w, &v, 8);
    }
  }

  // Serial reference image.
  Vm& serial_backup = hypervisor.create_domain("backup-serial", kGuestPages);
  MemcpyTransport serial(costs);
  ForeignMapping src = hypervisor.map_foreign(primary.id());
  {
    ForeignMapping dst = hypervisor.map_foreign(serial_backup.id());
    (void)serial.copy(src, dst, dirty);
  }
  const double wall_base = time_ms([&] {
    ForeignMapping dst = hypervisor.map_foreign(serial_backup.id());
    (void)serial.copy(src, dst, dirty);
  });
  const double model_base =
      to_ms(costs.copy_memcpy_per_page * dirty.size());

  std::printf("%-8s %12s %11s %14s %12s\n", "threads", "wall (ms)", "speedup",
              "modeled (ms)", "speedup");
  print_row(1, wall_base, wall_base, model_base, model_base);

  for (const int threads : {2, 4, 8}) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    MemcpyTransport transport(costs, &pool,
                              static_cast<std::size_t>(threads));
    Vm& backup = hypervisor.create_domain(
        "backup-t" + std::to_string(threads), kGuestPages);
    Nanos modeled{0};
    {
      ForeignMapping dst = hypervisor.map_foreign(backup.id());
      modeled = transport.copy(src, dst, dirty);  // also materializes frames
    }
    const double wall = time_ms([&] {
      ForeignMapping dst = hypervisor.map_foreign(backup.id());
      (void)transport.copy(src, dst, dirty);
    });
    print_row(threads, wall, wall_base, to_ms(modeled), model_base);

    for (const Pfn pfn : dirty) {
      require(std::as_const(backup).page(pfn) ==
                  std::as_const(serial_backup).page(pfn),
              "sharded copy produced a different backup image");
    }
    hypervisor.destroy_domain(backup.id());
  }
}

// --- Phase 2: parallel bitmap scan -----------------------------------------

void bench_bitscan(const CostModel& costs) {
  bench::print_header(
      "Figure 9b: bitmap scan, 4 GiB guest at ~1% dirty (sharded ctz)");

  const std::size_t pages = 4ull * (1u << 30) / kPageSize;
  DirtyBitmap bitmap(pages);
  Rng rng(7);
  for (std::size_t i = 0; i < pages / 100; ++i) {
    bitmap.mark(Pfn{rng.next_below(pages)});
  }

  const auto serial_dirty = bitmap.scan_chunked();
  volatile std::size_t sink = 0;
  const double wall_base =
      time_ms([&] { sink = sink + bitmap.scan_chunked().size(); });
  const double model_base = to_ms(costs.bitscan_chunked_cost(
      bitmap.word_count(), bitmap.dirty_count()));

  std::printf("%-8s %12s %11s %14s %12s\n", "threads", "wall (ms)", "speedup",
              "modeled (ms)", "speedup");
  print_row(1, wall_base, wall_base, model_base, model_base);

  for (const int threads : {2, 4, 8}) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    std::vector<std::size_t> shard_bits;
    const auto parallel_dirty = bitmap.scan_parallel(
        pool, static_cast<std::size_t>(threads), &shard_bits);
    require(parallel_dirty == serial_dirty,
            "parallel bitmap scan returned a different PFN list");
    const double wall = time_ms([&] {
      sink = sink +
             bitmap.scan_parallel(pool, static_cast<std::size_t>(threads))
                 .size();
    });
    const double model =
        to_ms(costs.bitscan_parallel_cost(bitmap.word_count(), shard_bits));
    print_row(threads, wall, wall_base, model, model_base);
  }
}

// --- Phase 3: concurrent detection scans -----------------------------------

void bench_audit(const CostModel& costs) {
  bench::print_header(
      "Figure 9c: audit phase, independent scan modules on the pool");

  Hypervisor hypervisor(1u << 20);
  GuestConfig gc;
  gc.page_count = 65536;  // 256 MiB guest
  gc.task_slab_pages = 32;
  gc.canary_table_pages = 64;
  Vm& vm = hypervisor.create_domain("audit-guest", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  VmiSession vmi(hypervisor, vm.id(), kernel.symbols(), kernel.flavor(),
                 costs);
  vmi.init();
  vmi.preprocess();
  (void)vmi.take_cost();

  Detector detector;
  {
    auto syscall = std::make_unique<SyscallIntegrityModule>();
    syscall->capture_baseline(vmi);
    detector.add_module(std::move(syscall));
    detector.add_module(std::make_unique<HiddenProcessModule>());
    detector.add_module(std::make_unique<CanaryScanModule>(true));
    (void)vmi.take_cost();
  }

  std::vector<Pfn> all_pages;
  all_pages.reserve(gc.page_count);
  for (std::size_t i = 0; i < gc.page_count; ++i) all_pages.push_back(Pfn{i});
  const auto make_ctx = [&] {
    return ScanContext{.vmi = vmi,
                       .dirty = all_pages,
                       .costs = costs,
                       .pending_packets = nullptr,
                       .plan = nullptr,
                       .now = Nanos{0}};
  };

  // Warm the translation cache so every sweep sees the same state.
  {
    auto ctx = make_ctx();
    (void)detector.audit(ctx);
  }
  auto serial_ctx = make_ctx();
  const ScanResult serial = detector.audit(serial_ctx);
  const double wall_base = time_ms([&] {
    auto ctx = make_ctx();
    (void)detector.audit(ctx);
  });
  const double model_base = to_ms(serial.cost);

  std::printf("%-8s %12s %11s %14s %12s\n", "threads", "wall (ms)", "speedup",
              "modeled (ms)", "speedup");
  print_row(1, wall_base, wall_base, model_base, model_base);

  for (const int threads : {2, 4, 8}) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    auto check_ctx = make_ctx();
    const ScanResult parallel = detector.audit_parallel(check_ctx, pool);
    require(parallel.findings.size() == serial.findings.size() &&
                parallel.clean() == serial.clean(),
            "parallel audit disagreed with the serial audit");
    const double wall = time_ms([&] {
      auto ctx = make_ctx();
      (void)detector.audit_parallel(ctx, pool);
    });
    print_row(threads, wall, wall_base, to_ms(parallel.cost), model_base);
  }
}

}  // namespace

int main() {
  const CostModel& costs = CostModel::defaults();
  std::printf("hardware threads: %zu (wall-clock speedup is capped by "
              "physical cores; modeled speedup is not)\n",
              ThreadPool::default_thread_count());
  bench_copy(costs);
  bench_bitscan(costs);
  bench_audit(costs);
  std::printf("\nall parallel paths verified identical to serial paths "
              "(backup image, PFN lists, audit verdicts)\n");
  return 0;
}
