// Ablation: the marginal contribution of each checkpointing optimization
// across dirty-page rates. DESIGN.md calls out that each optimization
// targets a different cost term (copy, map, bitscan); this sweep shows
// which one dominates at which dirty rate -- something the paper's fixed
// benchmarks only sample.
#include "bench_util.h"

#include <cstdio>

int main() {
  using namespace crimes;
  using namespace crimes::bench;

  print_header("Ablation: per-epoch pause (ms) vs dirty-page rate");
  std::printf("%-12s %10s %10s %10s %10s %18s\n", "touches/ms", "Full",
              "Pre-map", "Memcpy", "No-opt", "dominant term (No-opt)");

  for (const double rate : {5.0, 20.0, 80.0, 320.0, 1280.0}) {
    ParsecProfile profile;
    profile.name = "synthetic";
    profile.working_set_pages = 16384;
    profile.touches_per_ms = rate;
    profile.accesses_per_us = 100.0;
    profile.duration_ms = 1600.0;

    std::printf("%-12.0f", rate);
    PhaseCosts no_opt_avg{};
    for (const auto& [label, scheme] : schemes(millis(200))) {
      const RunSummary summary = run_parsec_scheme(profile, scheme);
      if (label == "No-opt") no_opt_avg = summary.avg_costs();
      std::printf(" %10.2f", summary.avg_pause_ms());
      std::fflush(stdout);
    }
    const char* dominant = "copy";
    if (no_opt_avg.bitscan > no_opt_avg.copy &&
        no_opt_avg.bitscan > no_opt_avg.map) {
      dominant = "bitscan";
    } else if (no_opt_avg.map > no_opt_avg.copy) {
      dominant = "map";
    }
    std::printf(" %18s\n", dominant);
  }
  std::printf("\nthe socket copy dominates No-opt at every dirty rate "
              "(Opt 1 is the big win); the bitscan and map terms only "
              "matter once memcpy removes the copy cost (Opts 2+3). Full's "
              "pause plateaus at high rates as the dirty set saturates at "
              "the working set.\n");
  return 0;
}
