// Replication ablation: sweep the failover-storm fault rate and measure
// what standby replication costs and what failover loses (DESIGN.md
// section 11, EXPERIMENTS.md `ablation_failover`).
//
// Every run streams committed generations to a warm standby; a
// FaultPlan::failover_storm at rate r drops heartbeats (rate r), tears
// journal writes (r/2) and partitions the replication link (r/4) over the
// first `kFaultEpochs` epochs, and a scheduled PrimaryKill fires at epoch
// `kKillEpoch` so every run ends in a promotion -- either the kill's
// failover or, if a partition fenced the primary first, a split-brain
// promotion. Reported per rate:
//
//   repl/drop   generations replicated vs dropped on a partitioned link
//   stall_ms    commit-time backpressure (the in-flight window was full)
//   lag         peak committed-but-unacked generations in flight
//   fail_ms     detection-to-promotion time for the run's failover
//   gen         the generation the standby promoted from
//   discard     output packets discarded instead of released (fenced or
//               never covered by a replicated generation)
//   tamper      seal/attestation verification failures (always 0 here:
//               this storm is accidental, not adversarial -- the
//               adversarial sweep is bench/ablation_tamper_sweep)
//
// Everything runs in virtual time: the table is identical on every
// machine. Self-checks print PASS/FAIL lines: same-seed determinism, the
// output-safety property (every run's released stream is a prefix of the
// fault-free run's -- nothing a failover could lose was ever released),
// promotion in every killed run, and a clean journal fsck everywhere.
//
// With --trace-out/--metrics-out, re-runs the rate-0.10 point with the
// telemetry layer on and exports the Chrome trace / metrics JSONL (this is
// how scripts/check_trace.py validates the replicate/journal/failover
// spans end to end).
#include "core/crimes.h"
#include "replication/store_journal.h"
#include "telemetry/export.h"

#include <cstdio>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace crimes;

constexpr Nanos kInterval = millis(50);
constexpr std::size_t kEpochs = 24;
constexpr std::size_t kFaultEpochs = 16;
constexpr std::size_t kKillEpoch = 20;  // after the storm window

// One packet per epoch with an epoch-numbered payload: the prefix
// self-check compares released streams packet by packet.
class EpochTalker : public Workload {
 public:
  EpochTalker(GuestKernel& kernel, VirtualNic& nic, std::size_t epochs)
      : kernel_(&kernel), nic_(&nic), remaining_(epochs) {
    buffer_ = kernel_->heap().malloc(kPageSize);
  }
  [[nodiscard]] std::string name() const override { return "epoch-talker"; }
  void run_epoch(Nanos start, Nanos /*duration*/) override {
    if (remaining_ == 0) return;
    --remaining_;
    ++epoch_;
    // Writes keyed to the epoch number, never the clock: failover handling
    // stretches virtual time without changing guest contents.
    for (std::size_t i = 0; i < 8; ++i) {
      kernel_->write_value<std::uint64_t>(
          buffer_ + (i * 64) % kPageSize,
          (static_cast<std::uint64_t>(epoch_) << 8) + i);
    }
    Packet packet;
    packet.kind = PacketKind::Data;
    packet.size_bytes = 256;
    packet.payload = "out-" + std::to_string(epoch_);
    nic_->send(std::move(packet), start);
  }
  [[nodiscard]] bool finished() const override { return remaining_ == 0; }

 private:
  GuestKernel* kernel_;
  VirtualNic* nic_;
  Vaddr buffer_{0};
  std::size_t remaining_;
  std::size_t epoch_ = 0;
};

std::uint64_t vm_fingerprint(const Vm& vm) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  for (std::size_t i = 0; i < vm.page_count(); ++i) {
    const Pfn pfn{i};
    if (!vm.is_backed(pfn)) {
      mix(0x9E);
      continue;
    }
    for (const std::byte b : vm.page(pfn).bytes()) {
      mix(std::to_integer<std::uint64_t>(b));
    }
  }
  return h;
}

struct SweepPoint {
  double rate = 0.0;
  RunSummary summary;
  std::size_t max_in_flight = 0;
  std::uint64_t standby_hash = 0;
  std::vector<std::string> released;
  bool fsck_ok = false;
};

CrimesConfig make_config(double rate, bool kill, std::uint64_t seed) {
  CrimesConfig config;
  config.checkpoint = CheckpointConfig::full(kInterval);
  config.checkpoint.store.enabled = true;
  config.checkpoint.store.journal = true;
  config.mode = SafetyMode::Synchronous;
  config.record_execution = false;
  config.replication.enabled = true;
  config.replication.heartbeat.interval = kInterval;
  config.replication.lease_term = millis(200);
  fault::FaultPlan plan;
  if (rate > 0.0) {
    plan = fault::FaultPlan::failover_storm(rate, 0, kFaultEpochs, seed);
  }
  if (kill) {
    plan.scheduled.push_back({.epoch = kKillEpoch,
                              .kind = fault::FaultKind::PrimaryKill,
                              .module = ""});
  }
  config.faults = plan;
  return config;
}

SweepPoint run_one(double rate, bool kill = true, std::uint64_t seed = 3) {
  Hypervisor hypervisor(1u << 19);
  GuestConfig gc;
  gc.page_count = 4096;
  Vm& vm = hypervisor.create_domain("guest", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  Crimes crimes(hypervisor, kernel, make_config(rate, kill, seed));
  EpochTalker app(kernel, crimes.nic(), kEpochs);
  crimes.set_workload(&app);
  crimes.initialize();

  SweepPoint point;
  point.rate = rate;
  point.summary = crimes.run(kInterval * static_cast<std::int64_t>(kEpochs));
  point.max_in_flight = crimes.replicator()->max_in_flight();
  point.standby_hash = vm_fingerprint(crimes.standby()->vm());
  for (const DeliveredPacket& d : crimes.network().log()) {
    point.released.push_back(d.packet.payload);
  }
  point.fsck_ok = crimes.checkpointer().journal()->fsck().ok;
  return point;
}

// The rate-0.10 point again, telemetry on, exported for check_trace.py.
int run_traced(const std::string& trace_out, const std::string& metrics_out) {
  Hypervisor hypervisor(1u << 19);
  GuestConfig gc;
  gc.page_count = 4096;
  Vm& vm = hypervisor.create_domain("guest", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config = make_config(0.1, /*kill=*/true, /*seed=*/3);
  config.telemetry = true;
  Crimes crimes(hypervisor, kernel, config);
  EpochTalker app(kernel, crimes.nic(), kEpochs);
  crimes.set_workload(&app);
  crimes.initialize();
  // Registered up front so the failover/freeze paths flush mid-run: even
  // if the process died right after the promotion, the files on disk
  // would parse.
  crimes.telemetry()->set_export_paths(trace_out, metrics_out);
  (void)crimes.run(kInterval * static_cast<std::int64_t>(kEpochs));

  if (!crimes.telemetry()->flush_exports()) {
    std::fprintf(stderr, "failed to write telemetry exports\n");
    return 1;
  }
  if (!trace_out.empty()) {
    std::printf("traced rate-0.10 run written to %s\n", trace_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out, metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out <f.trace.json>] "
                   "[--metrics-out <f.jsonl>]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("CRIMES replication ablation: failover-storm sweep\n");
  std::printf(
      "(%zu epochs of %.0f ms; storm over the first %zu epochs; primary "
      "killed at epoch %zu)\n\n",
      kEpochs, to_ms(kInterval), kFaultEpochs, kKillEpoch);
  std::printf("%6s %6s %5s %9s %4s %8s %4s %8s %7s %4s %4s %4s %6s\n",
              "rate", "repl", "drop", "stall_ms", "lag", "fail_ms", "gen",
              "discard", "fenced", "warn", "crit", "pm", "tamper");

  // The output-safety reference: no storm, no kill, every epoch's packet
  // eventually released.
  const SweepPoint reference = run_one(0.0, /*kill=*/false);

  std::vector<SweepPoint> points;
  for (const double rate : {0.0, 0.1, 0.2, 0.4, 0.8}) {
    points.push_back(run_one(rate));
    const SweepPoint& p = points.back();
    std::printf(
        "%6.2f %6zu %5zu %9.3f %4zu %8.3f %4llu %8zu %7zu %4zu %4zu %4zu "
        "%6llu\n",
        p.rate, p.summary.replicated_generations,
        p.summary.replication_dropped, to_ms(p.summary.replication_stall),
        p.max_in_flight, to_ms(p.summary.failover_time),
        static_cast<unsigned long long>(p.summary.promoted_generation),
        p.summary.outputs_discarded, p.summary.fenced_epochs,
        p.summary.slo_warn_epochs, p.summary.slo_critical_epochs,
        p.summary.postmortems_dumped,
        static_cast<unsigned long long>(p.summary.tampers_detected));
  }

  // Self-check 1: same seed, same run -- every observable must match,
  // including the failover instant and the promoted standby's image.
  const SweepPoint a = run_one(0.2);
  const SweepPoint b = run_one(0.2);
  const bool deterministic =
      a.summary.faults_injected == b.summary.faults_injected &&
      a.summary.replicated_generations == b.summary.replicated_generations &&
      a.summary.replication_dropped == b.summary.replication_dropped &&
      a.summary.replication_stall == b.summary.replication_stall &&
      a.summary.failover_time == b.summary.failover_time &&
      a.summary.promoted_generation == b.summary.promoted_generation &&
      a.summary.outputs_discarded == b.summary.outputs_discarded &&
      a.summary.total_pause == b.summary.total_pause &&
      a.released == b.released && a.standby_hash == b.standby_hash;
  std::printf("\nself-check determinism (seed 3, rate 0.20): %s\n",
              deterministic ? "PASS" : "FAIL");

  // Self-check 2: output safety. Whatever a run released before dying must
  // be a prefix of the fault-free stream: fencing and release-on-ack mean
  // a failover can discard held outputs but never leak or reorder any.
  bool prefix_safe = true;
  for (const SweepPoint& p : points) {
    if (p.released.size() > reference.released.size()) prefix_safe = false;
    for (std::size_t i = 0; i < p.released.size() && prefix_safe; ++i) {
      if (p.released[i] != reference.released[i]) prefix_safe = false;
    }
  }
  std::printf("self-check released streams prefix the fault-free run: %s\n",
              prefix_safe ? "PASS" : "FAIL");

  // Self-check 3: every killed run actually failed over to its standby.
  bool promoted = true;
  for (const SweepPoint& p : points) {
    if (!p.summary.failed_over || p.summary.promoted_generation == 0 ||
        p.summary.failover_time <= Nanos{0}) {
      promoted = false;
    }
  }
  std::printf("self-check every killed run promoted its standby: %s\n",
              promoted ? "PASS" : "FAIL");

  // Self-check 4: the store journal verifies clean in every run, torn
  // writes included (they are detected and repaired at append time).
  bool fsck_ok = reference.fsck_ok;
  for (const SweepPoint& p : points) fsck_ok = fsck_ok && p.fsck_ok;
  std::printf("self-check journal fsck clean across rates: %s\n",
              fsck_ok ? "PASS" : "FAIL");

  int rc = deterministic && prefix_safe && promoted && fsck_ok ? 0 : 1;
  if (rc == 0 && (!trace_out.empty() || !metrics_out.empty())) {
    rc = run_traced(trace_out, metrics_out);
  }
  return rc;
}
