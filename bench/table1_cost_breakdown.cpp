// Table 1: cost breakdown of time spent in the paused state for different
// web workload intensities, *unoptimized* Remus + VMI scan, 20 ms epochs.
//
// Paper row (Medium): suspend 0.98, vmi 0.34, bitscan 1.97, map 1.88,
// copy 14.63, resume 1.48 (ms).
#include "bench_util.h"

#include <cmath>
#include <cstdio>

int main() {
  using namespace crimes;
  using namespace crimes::bench;

  print_header(
      "Table 1: pause-state cost breakdown (ms), No-opt, 20 ms epoch");
  std::printf("%-10s %8s %8s %8s %8s %8s %8s %10s\n", "Workload", "suspend",
              "vmi", "bitscan", "map", "copy", "resume", "dirty/ep");

  const std::vector<std::pair<std::string, WebServerProfile>> workloads = {
      {"Light", WebServerProfile::light()},
      {"Medium", WebServerProfile::medium()},
      {"High", WebServerProfile::high()},
  };

  for (const auto& [name, profile] : workloads) {
    const WebRunResult r =
        run_web(profile, SafetyMode::Synchronous,
                CheckpointConfig::no_opt(millis(20)), millis(2000));
    const PhaseCosts avg = r.summary.avg_costs();
    std::printf("%-10s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %10.0f\n",
                name.c_str(), to_ms(avg.suspend), to_ms(avg.vmi),
                to_ms(avg.bitscan), to_ms(avg.map), to_ms(avg.copy),
                to_ms(avg.resume), r.summary.avg_dirty_pages());
  }
  std::printf(
      "\npaper (Medium): suspend 0.98, vmi 0.34, bitscan 1.97, map 1.88, "
      "copy 14.63, resume 1.48\n");
  return 0;
}
