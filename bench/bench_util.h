// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Each bench prints the rows/series of one table or figure from the paper's
// evaluation (section 5). Values are virtual-time measurements produced by
// the simulator; EXPERIMENTS.md records how they compare to the paper.
#pragma once

#include "asan/shadow_memory.h"
#include "core/crimes.h"
#include "detect/canary_scan.h"
#include "telemetry/export.h"
#include "workload/parsec.h"
#include "workload/web_server.h"
#include "workload/wrk_client.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace crimes::bench {

// The four checkpointing schemes of Figures 3/4/6a, in paper order.
inline std::vector<std::pair<std::string, CheckpointConfig>> schemes(
    Nanos interval) {
  return {
      {"Full", CheckpointConfig::full(interval)},
      {"Pre-map", CheckpointConfig::premap(interval)},
      {"Memcpy", CheckpointConfig::memcpy_only(interval)},
      {"No-opt", CheckpointConfig::no_opt(interval)},
  };
}

struct SchemeRun {
  RunSummary summary;
  double asan_normalized = 0.0;  // only set by run_asan_baseline
};

// Runs one PARSEC profile under one checkpointing scheme and returns the
// summary. A fresh hypervisor + guest is built per run (as the paper
// restarts the VM per experiment).
inline RunSummary run_parsec_scheme(const ParsecProfile& profile,
                                    const CheckpointConfig& scheme,
                                    SafetyMode mode = SafetyMode::Synchronous,
                                    bool with_canary_module = false) {
  Hypervisor hypervisor(1u << 21);  // 8 GiB of machine frames
  const GuestConfig gc = profile.recommended_guest();
  Vm& vm = hypervisor.create_domain(profile.name, gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config;
  config.checkpoint = scheme;
  config.mode = mode;
  config.record_execution = false;  // no attack in overhead experiments
  Crimes crimes(hypervisor, kernel, config);
  if (with_canary_module) {
    crimes.add_module(std::make_unique<CanaryScanModule>());
  }
  ParsecWorkload app(kernel, profile);
  crimes.set_workload(&app);
  crimes.initialize();
  return crimes.run(millis(profile.duration_ms * 2));
}

// Same as run_parsec_scheme but with the telemetry layer on: prints the
// per-phase count/mean/p50/p95/p99 table and, when paths are given, writes
// a Chrome trace_event JSON (load at chrome://tracing or ui.perfetto.dev)
// and a flat metrics JSONL.
inline RunSummary run_parsec_scheme_traced(const ParsecProfile& profile,
                                           const CheckpointConfig& scheme,
                                           const std::string& trace_out = {},
                                           const std::string& metrics_out = {},
                                           SafetyMode mode =
                                               SafetyMode::Synchronous) {
  Hypervisor hypervisor(1u << 21);
  const GuestConfig gc = profile.recommended_guest();
  Vm& vm = hypervisor.create_domain(profile.name, gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config;
  config.checkpoint = scheme;
  config.mode = mode;
  config.record_execution = false;
  config.telemetry = true;
  Crimes crimes(hypervisor, kernel, config);
  ParsecWorkload app(kernel, profile);
  crimes.set_workload(&app);
  crimes.initialize();
  // Register the destinations before running: any abnormal exit (governor
  // freeze, retries-exhausted failure, failover) flushes both exporters,
  // so a partial run still leaves parseable files behind.
  crimes.telemetry()->set_export_paths(trace_out, metrics_out);
  const RunSummary summary = crimes.run(millis(profile.duration_ms * 2));

  telemetry::Telemetry* tel = crimes.telemetry();
  std::printf("%s", telemetry::format_phase_table(tel->metrics).c_str());
  if (!tel->flush_exports()) {
    std::fprintf(stderr, "failed to write telemetry exports\n");
  }
  if (!trace_out.empty()) {
    std::printf("wrote %zu spans to %s\n", tel->trace.span_count(),
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return summary;
}

// The AddressSanitizer baseline of Figure 3: the workload runs inside the
// VM with inline checks on every instrumentable access and *no* CRIMES
// protection. Normalized runtime = 1 + per-access overhead.
inline double run_asan_baseline(const ParsecProfile& profile,
                                const CostModel& costs =
                                    CostModel::defaults()) {
  Hypervisor hypervisor(1u << 21);
  const GuestConfig gc = profile.recommended_guest();
  Vm& vm = hypervisor.create_domain(profile.name, gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  ParsecWorkload app(kernel, profile);
  SimClock clock;
  Nanos work{0};
  while (!app.finished()) {
    app.run_epoch(clock.now(), millis(200));
    clock.advance(millis(200));
    work += millis(200);
  }
  const Nanos overhead = costs.asan_per_access * app.total_accesses();
  return to_ms(work + overhead) / to_ms(work);
}

// --- Web-server experiment harness (Table 1, Figure 7) ---------------------

struct WebRunResult {
  double mean_latency_ms = 0.0;
  double throughput_rps = 0.0;
  RunSummary summary;
};

inline WebRunResult run_web(const WebServerProfile& profile, SafetyMode mode,
                            const CheckpointConfig& scheme,
                            Nanos run_work_time, std::size_t connections = 48,
                            std::size_t requests_per_conn = 8) {
  Hypervisor hypervisor(1u << 20);
  GuestConfig gc;
  // A 1 GiB guest, as in the paper's testbed -- the bit-by-bit bitmap scan
  // cost in Table 1 depends on total guest size, not the working set.
  gc.page_count = 262144;
  Vm& vm = hypervisor.create_domain("web", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config;
  config.checkpoint = scheme;
  config.mode = mode;
  config.record_execution = false;
  Crimes crimes(hypervisor, kernel, config);
  WebServerWorkload server(kernel, crimes.nic(), profile);
  WrkClient client(server, crimes.network(), connections, requests_per_conn);
  crimes.set_workload(&server);
  crimes.initialize();
  client.start(crimes.clock().now());

  const Nanos start = crimes.clock().now();
  WebRunResult result;
  result.summary = crimes.run(run_work_time);
  const Nanos elapsed = crimes.clock().now() - start;
  result.mean_latency_ms = client.stats().mean_latency_ms();
  result.throughput_rps = client.stats().throughput_rps(elapsed);
  return result;
}

// --- Output helpers ---------------------------------------------------------

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline double geo_mean(const std::vector<double>& values) {
  double log_sum = 0;
  for (const double v : values) log_sum += std::log(v);
  return values.empty() ? 0.0
                        : std::exp(log_sum /
                                   static_cast<double>(values.size()));
}

}  // namespace crimes::bench
