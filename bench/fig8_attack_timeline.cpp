// Figure 8 / case study 1 (section 5.5): the buffer-overflow attack
// detection-and-response timeline. A canary-protected program overflows a
// heap object mid-epoch; CRIMES detects at the epoch boundary, rolls back,
// replays to pinpoint the write, extracts forensics and persists
// checkpoints.
//
// Paper: overflow at t0 inside a 50 ms epoch; detected 24.4 ms later at
// epoch end; replay prepared ~29 ms after t0; memory dump ~5 s; writing
// checkpoints to disk 100+ s.
#include "core/crimes.h"
#include "detect/canary_scan.h"
#include "workload/overflow.h"

#include <cstdio>

int main() {
  using namespace crimes;

  Hypervisor hypervisor(1u << 19);
  GuestConfig gc;
  gc.page_count = 8192;
  Vm& vm = hypervisor.create_domain("victim", gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config;
  config.checkpoint = CheckpointConfig::full(millis(50));
  Crimes crimes(hypervisor, kernel, config);
  crimes.add_module(std::make_unique<CanaryScanModule>());

  OverflowScript script;
  script.attack_at = millis(225);  // epoch 5 covers [200,250): t0 is 25 ms in
  OverflowWorkload app(kernel, script);
  crimes.set_workload(&app);
  crimes.initialize();

  const RunSummary summary = crimes.run(millis(2000));
  if (!summary.attack_detected) {
    std::printf("ERROR: attack not detected\n");
    return 1;
  }
  const AttackReport& attack = *crimes.attack();
  const Nanos t0 = app.attack_time();

  std::printf("\n=== Figure 8: CRIMES attack detection timeline ===\n");
  const auto rel = [&](Nanos t) { return to_ms(t - t0); };
  std::printf("t0 + %8.1f ms  buffer overflow executes (epoch %zu)\n", 0.0,
              summary.epochs);
  std::printf("t0 + %8.1f ms  epoch ends; VM suspended; canary scan fails\n",
              rel(attack.timeline.detected_at));
  std::printf("t0 + %8.1f ms  rollback + replay complete; attack "
              "pinpointed at instruction %llu\n",
              rel(attack.timeline.replay_done_at),
              static_cast<unsigned long long>(
                  attack.pinpoint ? attack.pinpoint->instr_index : 0));
  std::printf("t0 + %8.1f ms  forensic report ready (%zu memory dumps)\n",
              rel(attack.timeline.analysis_done_at), attack.dumps.size());
  std::printf("t0 + %8.1f ms  full-system checkpoints persisted to disk\n",
              rel(attack.timeline.persisted_at));

  std::printf("\nper-epoch audit cost (avg): %.3f ms over %zu canaries\n",
              to_ms(summary.avg_costs().vmi),
              kernel.heap().table_count());
  if (attack.pinpoint) {
    std::printf("replay: %zu ops re-executed, %zu memory events, found=%s\n",
                attack.pinpoint->ops_replayed,
                attack.pinpoint->events_delivered,
                attack.pinpoint->found ? "yes" : "no");
  }
  std::printf("\npaper: detect at ~24.4 ms after t0 (50 ms epochs), replay "
              "ready ~29 ms, dump ~5 s, checkpoints to disk 100+ s\n");
  std::printf("\n--- forensic report ---\n%s\n",
              attack.forensic_text.c_str());
  return 0;
}
