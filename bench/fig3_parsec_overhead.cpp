// Figure 3: normalized runtime of the PARSEC suite with a 200 ms
// checkpoint interval, for Full / Pre-map / Memcpy / No-opt CRIMES plus the
// AddressSanitizer (AS) baseline, and the geometric mean.
//
// Paper headline: Full-opt CRIMES averages +9.8%; No-opt Remus and AS are
// 1.4-1.6x; fluidanimate is the outlier (No-opt ~4.7x).
#include "bench_util.h"

#include <cstdio>

int main() {
  using namespace crimes;
  using namespace crimes::bench;

  const Nanos interval = millis(200);
  print_header("Figure 3: normalized PARSEC runtime, 200 ms interval");
  std::printf("%-14s %8s %8s %8s %8s %8s\n", "benchmark", "Full", "Pre-map",
              "Memcpy", "No-opt", "AS");

  std::vector<std::vector<double>> columns(5);
  for (ParsecProfile profile : ParsecProfile::suite()) {
    profile.duration_ms = 3000.0;  // 15 epochs: enough to converge
    std::printf("%-14s ", profile.name.c_str());
    std::size_t col = 0;
    for (const auto& [label, scheme] : schemes(interval)) {
      const RunSummary summary = run_parsec_scheme(profile, scheme);
      const double norm = summary.normalized_runtime();
      columns[col++].push_back(norm);
      std::printf("%8.3f ", norm);
      std::fflush(stdout);
    }
    const double asan = run_asan_baseline(profile);
    columns[4].push_back(asan);
    std::printf("%8.3f\n", asan);
  }

  std::printf("%-14s ", "geo-mean");
  for (const auto& column : columns) {
    std::printf("%8.3f ", geo_mean(column));
  }
  std::printf("\n\npaper: geo-mean Full ~1.098; No-opt and AS 1.4-1.6; "
              "fluidanimate No-opt ~4.7\n");
  return 0;
}
