// Figure 6a: fluidanimate normalized runtime vs. epoch interval for each
// optimization level. fluidanimate dirties by far the most pages per epoch,
// so this is where the optimizations matter most (paper: Full is ~3.5x
// faster than No-opt).
#include "bench_util.h"

#include <cstdio>

int main() {
  using namespace crimes;
  using namespace crimes::bench;

  ParsecProfile profile = ParsecProfile::by_name("fluidanimate");
  profile.duration_ms = 1200.0;  // fluidanimate epochs are expensive to copy

  const std::vector<int> intervals = {60, 100, 140, 200};
  print_header("Figure 6a: fluidanimate normalized runtime vs interval");
  std::printf("%-10s %10s %10s %10s %10s\n", "interval", "Full", "Pre-map",
              "Memcpy", "No-opt");

  double full_200 = 0, no_opt_200 = 0;
  for (const int interval : intervals) {
    std::printf("%-10d", interval);
    for (const auto& [label, scheme] : schemes(millis(interval))) {
      const double norm =
          run_parsec_scheme(profile, scheme).normalized_runtime();
      if (interval == 200 && label == "Full") full_200 = norm;
      if (interval == 200 && label == "No-opt") no_opt_200 = norm;
      std::printf(" %10.3f", norm);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nFull runtime is %.1fx faster than No-opt at 200 ms "
              "(paper: ~3.5x; No-opt ~4.7x native)\n",
              no_opt_200 / full_200);
  return 0;
}
