// Observability ablation: what does always-on evidence capture cost, and
// is the evidence it captures trustworthy?
//
// Leg 1 (overhead): runs PARSEC profiles at their natural dirty rates
// twice -- observability fully OFF (no telemetry bundle, no flight
// recorder, no SLO monitor) and fully ON (time-series sampling every
// epoch, flight recorder ring, SLO evaluation) -- and compares pause
// time. The virtual CostModel charges every recorded event and sample
// (flight_record_event, telemetry_sample_base/per_metric, slo_eval), so
// the delta is the modelled cost of observing, measured the same way the
// paper measures checkpointing. Self-check: <1% added mean and p95 pause.
//
// Leg 2 (postmortem): a replicated run whose primary is killed mid-run.
// The failover trips the flight recorder, which freezes a self-contained
// postmortem JSON (ring contents + last-N epochs of every series + SLO
// history + config snapshot). Self-checks: the dump happened, and
// SloMonitor::replay over the recorded inputs reproduces the live
// verdicts exactly -- the postmortem is evidence, not an approximation.
// With --postmortem-out <path>, the JSON is written for
// scripts/check_postmortem.py to validate offline.
#include "bench_util.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/slo.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

using namespace crimes;
using namespace crimes::bench;

RunSummary run_observed(const ParsecProfile& profile, bool observability_on) {
  Hypervisor hypervisor(1u << 21);
  const GuestConfig gc = profile.recommended_guest();
  Vm& vm = hypervisor.create_domain(profile.name, gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config;
  config.checkpoint = CheckpointConfig::full(millis(100));
  config.record_execution = false;
  config.telemetry = observability_on;
  config.flight_recorder = observability_on;
  config.slo.enabled = observability_on;
  Crimes crimes(hypervisor, kernel, config);
  ParsecWorkload app(kernel, profile);
  crimes.set_workload(&app);
  crimes.initialize();
  return crimes.run(millis(profile.duration_ms * 2));
}

struct FailoverLeg {
  RunSummary summary;
  bool postmortem_dumped = false;
  bool replay_matches = false;
  std::string postmortem_json;
};

// A replicated run that ends in a promotion: the primary is killed after
// the workload has built up real series/SLO history, so the dump has
// something worth freezing.
FailoverLeg run_failover_leg() {
  Hypervisor hypervisor(1u << 20);
  ParsecProfile profile = ParsecProfile::by_name("raytrace");
  profile.duration_ms = 3000.0;
  const GuestConfig gc = profile.recommended_guest();
  Vm& vm = hypervisor.create_domain(profile.name, gc.page_count);
  GuestKernel kernel(vm, gc);
  kernel.boot();

  CrimesConfig config;
  config.checkpoint = CheckpointConfig::full(millis(100));
  config.checkpoint.store.enabled = true;
  config.checkpoint.store.journal = true;
  config.record_execution = false;
  config.telemetry = true;
  // A pause budget the profile actually violates: the run burns error
  // budget and the recorded verdicts include real Warn/Critical
  // transitions, so the replay check exercises the whole state machine.
  config.slo.budget.pause_ms = 2.0;
  config.replication.enabled = true;
  config.replication.heartbeat.interval = millis(100);
  config.faults.scheduled.push_back(
      {.epoch = 18, .kind = fault::FaultKind::PrimaryKill, .module = ""});

  Crimes crimes(hypervisor, kernel, config);
  ParsecWorkload app(kernel, profile);
  crimes.set_workload(&app);
  crimes.initialize();

  FailoverLeg leg;
  leg.summary = crimes.run(millis(3000));
  leg.postmortem_dumped = !crimes.postmortems().empty();
  if (leg.postmortem_dumped) {
    leg.postmortem_json = crimes.postmortems().front().json;
  }

  // Replay the recorded SLO inputs through a fresh state machine: the
  // verdict sequence must be identical to what the live monitor decided.
  const telemetry::SloMonitor* slo = crimes.slo_monitor();
  if (slo != nullptr) {
    const std::vector<telemetry::SloInput> history = slo->history();
    const std::vector<telemetry::SloState> replayed =
        telemetry::SloMonitor::replay(slo->config(), history);
    leg.replay_matches = replayed.size() == history.size();
    for (std::size_t i = 0; i < history.size() && leg.replay_matches; ++i) {
      if (replayed[i] != history[i].verdict) leg.replay_matches = false;
    }
    // An empty history would make the check vacuous.
    leg.replay_matches = leg.replay_matches && !history.empty();
  }
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string postmortem_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--postmortem-out") == 0 && i + 1 < argc) {
      postmortem_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--postmortem-out <f.json>]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("CRIMES observability ablation: flight recorder + time-series "
              "sampling + SLO evaluation, always-on vs fully off\n");
  print_header("added pause per epoch (Full, 100 ms epochs)");
  std::printf("%-14s %6s %10s %10s %10s %10s %8s\n", "profile", "epochs",
              "off_avg_ms", "on_avg_ms", "off_p95", "on_p95", "added%");

  bool under_budget = true;
  for (const char* name : {"raytrace", "swaptions", "freqmine"}) {
    ParsecProfile profile = ParsecProfile::by_name(name);
    profile.duration_ms = 2400.0;
    const RunSummary off = run_observed(profile, false);
    const RunSummary on = run_observed(profile, true);
    const double added =
        100.0 * (on.avg_pause_ms() - off.avg_pause_ms()) / off.avg_pause_ms();
    const double added_p95 =
        100.0 * (on.p95_pause_ms() - off.p95_pause_ms()) /
        (off.p95_pause_ms() > 0 ? off.p95_pause_ms() : 1.0);
    std::printf("%-14s %6zu %10.3f %10.3f %10.3f %10.3f %7.3f%%\n", name,
                on.epochs, off.avg_pause_ms(), on.avg_pause_ms(),
                off.p95_pause_ms(), on.p95_pause_ms(), added);
    if (off.epochs != on.epochs || added >= 1.0 || added_p95 >= 1.0) {
      under_budget = false;
    }
  }
  std::printf("\nself-check observability adds <1%% pause (mean and p95): "
              "%s\n",
              under_budget ? "PASS" : "FAIL");

  print_header("forced failover -> postmortem dump");
  const FailoverLeg leg = run_failover_leg();
  std::printf("failed_over=%d postmortems=%zu warn_epochs=%zu "
              "critical_epochs=%zu\n",
              leg.summary.failed_over ? 1 : 0, leg.summary.postmortems_dumped,
              leg.summary.slo_warn_epochs, leg.summary.slo_critical_epochs);
  std::printf("self-check failover froze a postmortem: %s\n",
              leg.postmortem_dumped && leg.summary.failed_over ? "PASS"
                                                               : "FAIL");
  std::printf("self-check SLO replay reproduces live verdicts: %s\n",
              leg.replay_matches ? "PASS" : "FAIL");

  if (!postmortem_out.empty() && leg.postmortem_dumped) {
    telemetry::FileSink sink(postmortem_out);
    if (!sink.ok()) {
      std::fprintf(stderr, "failed to open %s\n", postmortem_out.c_str());
      return 1;
    }
    sink.write(leg.postmortem_json);
    std::printf("postmortem written to %s\n", postmortem_out.c_str());
  }

  return under_budget && leg.postmortem_dumped && leg.summary.failed_over &&
                 leg.replay_matches
             ? 0
             : 1;
}
