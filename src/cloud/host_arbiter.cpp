#include "cloud/host_arbiter.h"

#include <algorithm>
#include <string>

namespace crimes {

const char* to_string(HostAction action) {
  switch (action) {
    case HostAction::StretchInterval: return "stretch-interval";
    case HostAction::RestoreInterval: return "restore-interval";
    case HostAction::Downgrade: return "downgrade";
    case HostAction::RestoreMode: return "restore-mode";
    case HostAction::PauseProtection: return "pause-protection";
    case HostAction::ResumeProtection: return "resume-protection";
    case HostAction::CapWindow: return "cap-window";
    case HostAction::UncapWindow: return "uncap-window";
    case HostAction::CapGcBudget: return "cap-gc-budget";
    case HostAction::UncapGcBudget: return "uncap-gc-budget";
  }
  return "?";
}

bool operator==(const HostDecision& a, const HostDecision& b) {
  return a.round == b.round && a.tenant == b.tenant &&
         a.action == b.action && a.from == b.from && a.to == b.to &&
         // Reasons are literals but compare by content so a replayed
         // stream from a second arbiter instance still matches.
         ((a.reason == b.reason) ||
          (a.reason && b.reason &&
           std::char_traits<char>::compare(
               a.reason, b.reason,
               std::char_traits<char>::length(a.reason) + 1) == 0));
}

namespace {

double pressure_of(double used, double limit) {
  return limit > 0.0 ? used / limit : 0.0;
}

double copy_pressure_of(const HostConfig& config, const HostInputs& in) {
  if (in.work_ms <= 0.0 || config.copy_overhead_limit <= 0.0) return 0.0;
  return (in.copy_ms / in.work_ms) / config.copy_overhead_limit;
}

}  // namespace

HostArbiter::HostArbiter(const HostConfig& config) : config_(config) {
  inputs_.reserve(config_.history_capacity);
}

double HostArbiter::contention_factor(const HostConfig& config,
                                      const HostInputs& in) {
  return std::max(1.0, copy_pressure_of(config, in));
}

std::size_t HostArbiter::observe(const HostInputs& in) {
  // Record the input first (replay fuel): the decision logic below must
  // see exactly what replay() will.
  if (config_.history_capacity > 0) {
    if (inputs_.size() < config_.history_capacity) {
      inputs_.push_back(in);
    } else {
      inputs_[input_next_] = in;
      input_wrapped_ = true;
    }
    input_next_ = (input_next_ + 1) % config_.history_capacity;
  }
  ++rounds_;
  if (shed_.size() < in.tenants.size()) shed_.resize(in.tenants.size());

  const double frame_pressure = pressure_of(in.frames_used, in.frame_limit);
  const double copy_pressure = copy_pressure_of(config_, in);
  const double transport_pressure =
      pressure_of(in.inflight, in.transport_slots);
  pressure_ =
      std::max({frame_pressure, copy_pressure, transport_pressure});

  std::size_t made = 0;
  if (pressure_ > config_.shed_enter) {
    calm_rounds_ = 0;
    escalate(in, made);
  } else if (pressure_ < config_.shed_exit) {
    ++calm_rounds_;
    if (calm_rounds_ >= config_.recover_after) {
      recover(in, made);
      calm_rounds_ = 0;
    }
  } else {
    // Hysteresis band: neither shed nor recover; the ladder holds.
    calm_rounds_ = 0;
  }
  if (config_.arbitrate) {
    arbitrate(in, transport_pressure, copy_pressure, made);
  }
  return made;
}

void HostArbiter::decide(std::uint64_t round, std::uint32_t tenant,
                         HostAction action, double from, double to,
                         const char* reason, std::size_t& made) {
  if (decisions_.size() >= config_.decision_capacity &&
      !decisions_.empty()) {
    decisions_.erase(decisions_.begin());
    ++decisions_dropped_;
  }
  decisions_.push_back(HostDecision{round, tenant, action, from, to, reason});
  ++made;
}

void HostArbiter::escalate(const HostInputs& in, std::size_t& made) {
  // Victim: lowest declared priority first (Critical is exempt), then the
  // lowest current rung (spread degradation before deepening it), then
  // the heaviest copy contributor (biggest relief), then lowest index.
  std::size_t victim = in.tenants.size();
  for (std::size_t i = 0; i < in.tenants.size(); ++i) {
    const HostTenantSample& t = in.tenants[i];
    if (!t.live || t.governor != 0) continue;  // governor precedence
    if (t.priority >= static_cast<std::uint8_t>(TenantPriority::Critical)) {
      continue;  // Critical tenants are never shed
    }
    if (shed_[i].level >= 3) continue;
    if (victim == in.tenants.size()) {
      victim = i;
      continue;
    }
    const HostTenantSample& best = in.tenants[victim];
    if (t.priority != best.priority) {
      if (t.priority < best.priority) victim = i;
    } else if (shed_[i].level != shed_[victim].level) {
      if (shed_[i].level < shed_[victim].level) victim = i;
    } else if (t.copy_ms > best.copy_ms) {
      victim = i;
    }
  }
  if (victim == in.tenants.size()) return;  // everyone sheddable is maxed

  TenantState& state = shed_[victim];
  const double from = static_cast<double>(state.level);
  ++state.level;
  const auto tenant = static_cast<std::uint32_t>(victim);
  switch (state.level) {
    case 1:
      decide(in.round, tenant, HostAction::StretchInterval, from, 1.0,
             "host-pressure-stretch-interval", made);
      break;
    case 2:
      decide(in.round, tenant, HostAction::Downgrade, from, 2.0,
             "host-pressure-downgrade", made);
      break;
    default:
      decide(in.round, tenant, HostAction::PauseProtection, from, 3.0,
             "host-pressure-pause-protection", made);
      break;
  }
}

void HostArbiter::recover(const HostInputs& in, std::size_t& made) {
  // Mirror image of escalate: the highest-priority shed tenant recovers
  // first, one rung per qualifying calm round; deepest rung first on
  // ties, then lowest index.
  std::size_t pick = in.tenants.size();
  for (std::size_t i = 0; i < in.tenants.size(); ++i) {
    if (i >= shed_.size() || shed_[i].level == 0) continue;
    const HostTenantSample& t = in.tenants[i];
    if (!t.live || t.governor != 0) continue;
    if (pick == in.tenants.size()) {
      pick = i;
      continue;
    }
    const HostTenantSample& best = in.tenants[pick];
    if (t.priority != best.priority) {
      if (t.priority > best.priority) pick = i;
    } else if (shed_[i].level > shed_[pick].level) {
      pick = i;
    }
  }
  if (pick == in.tenants.size()) return;

  TenantState& state = shed_[pick];
  const double from = static_cast<double>(state.level);
  --state.level;
  const auto tenant = static_cast<std::uint32_t>(pick);
  switch (state.level) {
    case 2:
      decide(in.round, tenant, HostAction::ResumeProtection, from, 2.0,
             "host-calm-resume-protection", made);
      break;
    case 1:
      decide(in.round, tenant, HostAction::RestoreMode, from, 1.0,
             "host-calm-restore-mode", made);
      break;
    default:
      decide(in.round, tenant, HostAction::RestoreInterval, from, 0.0,
             "host-calm-restore-interval", made);
      break;
  }
}

std::size_t HostArbiter::pick_donor(const HostInputs& in,
                                    bool need_replicated) const {
  std::size_t donor = in.tenants.size();
  for (std::size_t i = 0; i < in.tenants.size(); ++i) {
    const HostTenantSample& t = in.tenants[i];
    if (!t.live || t.governor != 0) continue;
    if (need_replicated ? !t.replicated : !t.has_store) continue;
    if (i < shed_.size() &&
        (need_replicated ? shed_[i].window_capped : shed_[i].gc_capped)) {
      continue;
    }
    if (donor == in.tenants.size() ||
        t.priority < in.tenants[donor].priority) {
      donor = i;
    }
  }
  return donor;
}

void HostArbiter::arbitrate(const HostInputs& in, double transport_pressure,
                            double copy_pressure, std::size_t& made) {
  // Replication-window trade: the shared transport is saturated, so the
  // lowest-priority replicated tenant donates window slots until calm.
  if (transport_pressure > config_.shed_enter) {
    const std::size_t donor = pick_donor(in, /*need_replicated=*/true);
    if (donor != in.tenants.size()) {
      shed_[donor].window_capped = true;
      decide(in.round, static_cast<std::uint32_t>(donor),
             HostAction::CapWindow, 0.0,
             static_cast<double>(config_.donor_window_cap),
             "transport-saturated-window-trade", made);
    }
  } else if (transport_pressure < config_.shed_exit) {
    for (std::size_t i = 0; i < shed_.size(); ++i) {
      if (!shed_[i].window_capped) continue;
      shed_[i].window_capped = false;
      decide(in.round, static_cast<std::uint32_t>(i),
             HostAction::UncapWindow,
             static_cast<double>(config_.donor_window_cap), 0.0,
             "transport-calm-restore-window", made);
    }
  }
  // GC-budget trade: the copy path is the bottleneck, and store GC rides
  // the same post-resume path; the lowest-priority store-backed tenant
  // donates GC budget until calm.
  if (copy_pressure > config_.shed_enter) {
    const std::size_t donor = pick_donor(in, /*need_replicated=*/false);
    if (donor != in.tenants.size()) {
      shed_[donor].gc_capped = true;
      decide(in.round, static_cast<std::uint32_t>(donor),
             HostAction::CapGcBudget, 0.0,
             static_cast<double>(config_.donor_gc_cap),
             "copy-pressure-gc-trade", made);
    }
  } else if (copy_pressure < config_.shed_exit) {
    for (std::size_t i = 0; i < shed_.size(); ++i) {
      if (!shed_[i].gc_capped) continue;
      shed_[i].gc_capped = false;
      decide(in.round, static_cast<std::uint32_t>(i),
             HostAction::UncapGcBudget,
             static_cast<double>(config_.donor_gc_cap), 0.0,
             "copy-calm-restore-gc", made);
    }
  }
}

std::vector<HostInputs> HostArbiter::history() const {
  if (!input_wrapped_) return inputs_;
  std::vector<HostInputs> out;
  out.reserve(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    out.push_back(inputs_[(input_next_ + i) % inputs_.size()]);
  }
  return out;
}

std::vector<HostDecision> HostArbiter::replay(
    const HostConfig& config, std::span<const HostInputs> inputs) {
  HostArbiter arbiter(config);
  for (const HostInputs& in : inputs) (void)arbiter.observe(in);
  return std::move(arbiter.decisions_);
}

}  // namespace crimes
