// Admission control for the multi-tenant host (ROADMAP item 1).
//
// Before this subsystem, CloudHost::admit silently over-committed: any
// number of tenants could be placed on one machine, and the first flash
// crowd discovered the host could not honour the pause SLOs it had
// implicitly sold. The AdmissionController makes the capacity model
// explicit -- machine frames including the paper's 2x backup cost
// (section 3.3), the aggregate pause budget derived from each tenant's
// SloConfig, and replication bandwidth -- and every admit() returns a
// structured accept/defer/reject decision that the operator dashboard can
// render (format_admission_table).
//
// Decisions are pure functions of the request and the committed state, so
// the admission log replays trivially: the same sequence of requests
// against the same HostConfig yields the same verdicts.
#pragma once

#include "cloud/host_config.h"

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace crimes {

// What the capacity model needs to know about a prospective tenant;
// CloudHost derives it from the TenantPolicy before any VM is built (a
// rejected tenant must cost nothing).
struct AdmissionRequest {
  std::string tenant;
  std::size_t guest_pages = 0;
  bool protected_mode = true;      // != SafetyMode::Disabled: 2x frames
  double pause_budget_ms = 0.0;    // SloBudget.pause_ms
  double interval_ms = 0.0;        // static epoch interval at admission
  std::size_t replication_window = 0;  // 0 when replication is off
  TenantPriority priority = TenantPriority::Standard;
};

struct AdmissionDecision {
  enum class Verdict : std::uint8_t {
    Accept,  // capacity committed; the tenant was placed
    Defer,   // fits an empty host but not current commitments: retry later
    Reject,  // can never fit this host (or admission is closed)
  };

  Verdict verdict = Verdict::Accept;
  std::string tenant;
  // Always a string literal (like ControlDecision::reason), so decisions
  // compare by content and the accept path never allocates for it.
  const char* reason = "admitted";
  // Capacity picture at decision time, for the dashboard and postmortems.
  std::size_t frames_required = 0;
  std::size_t frames_committed = 0;  // before this request
  std::size_t frame_limit = 0;       // capacity * (1 - headroom)
  double pause_share = 0.0;          // this tenant's pause_ms / interval_ms
  double overhead_committed = 0.0;   // aggregate share before this request
  std::size_t window_requested = 0;
  std::size_t windows_committed = 0;
};

[[nodiscard]] const char* to_string(AdmissionDecision::Verdict verdict);

// Renders the admission log as the operator-facing table (one row per
// decision, newest last) -- the third dashboard next to health_table()
// and control_table().
[[nodiscard]] std::string format_admission_table(
    std::span<const AdmissionDecision> log);

class AdmissionController {
 public:
  AdmissionController(const HostConfig& config, std::size_t machine_frames);

  // Evaluates `request` against the committed capacity; Accept also
  // commits the request's frames / pause share / window slots. Defer and
  // Reject commit nothing.
  [[nodiscard]] AdmissionDecision decide(const AdmissionRequest& request);

  // Returns a departing tenant's capacity to the pool (failover/freeze
  // does NOT release -- the frames are still resident until the operator
  // reaps the VM; only an explicit release models a real departure).
  void release(const AdmissionRequest& request);

  [[nodiscard]] std::size_t frames_committed() const {
    return frames_committed_;
  }
  [[nodiscard]] std::size_t frame_limit() const { return frame_limit_; }
  [[nodiscard]] double overhead_committed() const {
    return overhead_committed_;
  }
  [[nodiscard]] std::size_t windows_committed() const {
    return windows_committed_;
  }

  // Frames a tenant will pin: primary pages, doubled for protected mode
  // (the backup image mirrors every touched page at steady state).
  [[nodiscard]] static std::size_t frames_for(std::size_t guest_pages,
                                              bool protected_mode) {
    return protected_mode ? guest_pages * 2 : guest_pages;
  }

 private:
  HostConfig config_;
  std::size_t frame_limit_ = 0;
  std::size_t frames_committed_ = 0;
  double overhead_committed_ = 0.0;
  std::size_t windows_committed_ = 0;
};

}  // namespace crimes
