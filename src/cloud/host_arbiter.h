// Cross-tenant host arbiter: SLO-aware load shedding and resource trades
// above the per-tenant control planes (ROADMAP items 1 and 5's leftover).
//
// Each CloudHost scheduling round the host feeds the arbiter one
// HostInputs record -- aggregate frame, copy-overhead and transport
// pressure plus a per-tenant sample -- and the arbiter emits HostDecisions.
// Under pressure it walks a deterministic shedding ladder one rung per
// round on one tenant at a time, in declared priority order (BestEffort
// absorbs everything before any Standard tenant is touched; Critical is
// never shed), and recovers hysteretically one rung per calm round in the
// reverse order. Independently, the cross-tenant trades cap a donor
// tenant's replication window (transport saturation) or store GC budget
// (copy pressure) so a higher-priority neighbour keeps its contract.
//
// The invariants mirror ControlPlane's: decisions are a pure function of
// (config, recorded input stream) -- replay() re-derives the exact stream
// -- every transition is hysteretic, and the SafetyGovernor always wins
// (a tenant whose governor is non-Normal is never actuated).
#pragma once

#include "cloud/host_config.h"

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace crimes {

// Ladder rungs 1-3 plus the arbiter's trade actions. Restore* / Uncap*
// are the inverse moves the recovery path emits.
enum class HostAction : std::uint8_t {
  StretchInterval,   // rung 1: epoch interval * stretch_factor
  RestoreInterval,   // rung 1 undo
  Downgrade,         // rung 2: Synchronous -> BestEffort
  RestoreMode,       // rung 2 undo
  PauseProtection,   // rung 3: pipeline skipped, outputs held
  ResumeProtection,  // rung 3 undo
  CapWindow,         // trade: donor's replication window capped
  UncapWindow,
  CapGcBudget,       // trade: donor's store GC budget capped
  UncapGcBudget,
};

[[nodiscard]] const char* to_string(HostAction action);

// One tenant's slice of a round's sensor readings.
struct HostTenantSample {
  double pause_ms = 0.0;         // host-observed (contended) pause, this round
  double pause_budget_ms = 0.0;  // the tenant's SloBudget.pause_ms
  double copy_ms = 0.0;          // checkpoint copy charged this round
  std::uint8_t priority = 1;     // TenantPriority as int
  std::uint8_t governor = 0;     // GovernorState as int (non-0 = hands off)
  bool live = true;              // scheduled this round
  bool replicated = false;       // has a replication stream (window trades)
  bool has_store = false;        // has a checkpoint store (GC trades)
};

// One scheduling round's worth of host sensor readings. Pure data: the
// replay fuel, exactly like ControlInputs.
struct HostInputs {
  std::uint64_t round = 0;
  double frames_used = 0.0;
  double frame_limit = 0.0;       // capacity * (1 - headroom)
  double copy_ms = 0.0;           // aggregate checkpoint copy, this round
  double work_ms = 0.0;           // aggregate guest time executed, this round
  double inflight = 0.0;          // aggregate replication in-flight
  double transport_slots = 0.0;   // HostConfig.replication_slots
  std::vector<HostTenantSample> tenants;
};

struct HostDecision {
  std::uint64_t round = 0;
  std::uint32_t tenant = 0;  // index into the host's admission order
  HostAction action = HostAction::StretchInterval;
  double from = 0.0;  // shed level / cap before
  double to = 0.0;    // shed level / cap after
  // Always a string literal inside the arbiter (content-compared, like
  // ControlDecision::reason).
  const char* reason = "";
};

[[nodiscard]] bool operator==(const HostDecision& a, const HostDecision& b);

class HostArbiter {
 public:
  explicit HostArbiter(const HostConfig& config);

  HostArbiter(const HostArbiter&) = delete;
  HostArbiter& operator=(const HostArbiter&) = delete;

  // Feed one round of sensor readings; returns the number of decisions
  // appended this round (the trailing entries of decisions()).
  std::size_t observe(const HostInputs& in);

  // Current ladder position per tenant index (0 = unshed .. 3 = paused).
  [[nodiscard]] std::size_t shed_level(std::size_t tenant) const {
    return tenant < shed_.size() ? shed_[tenant].level : 0;
  }
  [[nodiscard]] bool window_capped(std::size_t tenant) const {
    return tenant < shed_.size() && shed_[tenant].window_capped;
  }
  [[nodiscard]] bool gc_capped(std::size_t tenant) const {
    return tenant < shed_.size() && shed_[tenant].gc_capped;
  }
  // The last round's composite pressure (max of the three signals).
  [[nodiscard]] double pressure() const { return pressure_; }
  [[nodiscard]] std::size_t rounds() const { return rounds_; }

  // Bounded decision log (oldest dropped past decision_capacity) and the
  // recorded input history, oldest first (replay fuel).
  [[nodiscard]] const std::vector<HostDecision>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] std::vector<HostInputs> history() const;

  // Host-observed pause contention: how much the shared copy path inflates
  // every tenant's pause this round. 1.0 when the aggregate copy overhead
  // is inside the configured limit.
  [[nodiscard]] static double contention_factor(const HostConfig& config,
                                                const HostInputs& in);

  // Re-derives the decision stream an arbiter with `config` would produce
  // over `inputs`. Mirrors ControlPlane::replay: the scenario suite's
  // replay-equality gate and the determinism tests are built on it.
  [[nodiscard]] static std::vector<HostDecision> replay(
      const HostConfig& config, std::span<const HostInputs> inputs);

 private:
  struct TenantState {
    std::size_t level = 0;  // ladder rung 0..3
    bool window_capped = false;
    bool gc_capped = false;
  };

  void decide(std::uint64_t round, std::uint32_t tenant, HostAction action,
              double from, double to, const char* reason, std::size_t& made);
  void escalate(const HostInputs& in, std::size_t& made);
  void recover(const HostInputs& in, std::size_t& made);
  void arbitrate(const HostInputs& in, double transport_pressure,
                 double copy_pressure, std::size_t& made);
  // The donor for a trade: lowest-priority live tenant with a Normal
  // governor satisfying the trade's requirement (replicated / has_store)
  // and not already capped; lowest index on ties. Returns the tenant
  // count when none qualifies.
  [[nodiscard]] std::size_t pick_donor(const HostInputs& in,
                                       bool need_replicated) const;

  HostConfig config_;
  std::vector<TenantState> shed_;
  std::size_t calm_rounds_ = 0;
  double pressure_ = 0.0;
  std::size_t rounds_ = 0;
  std::size_t decisions_dropped_ = 0;

  // Replay fuel: input ring, oldest overwritten (ControlPlane's pattern).
  std::vector<HostInputs> inputs_;
  std::size_t input_next_ = 0;
  bool input_wrapped_ = false;

  std::vector<HostDecision> decisions_;
};

}  // namespace crimes
