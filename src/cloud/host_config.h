// Host-level overload-robustness configuration (ROADMAP item 1).
//
// A CloudHost with an enabled HostConfig gains three things the paper's
// "security as a cloud service" pitch (section 2) presumes but never
// builds: admission control (a capacity model covering machine frames --
// including the 2x backup cost -- the aggregate pause budget sold to
// tenants, and replication bandwidth), an SLO-aware shedding ladder that
// degrades tenants in declared priority order under pressure (never
// uniformly), and a cross-tenant arbiter that trades one tenant's
// replication window / GC budget against another's under shared pressure.
//
// Disabled (the default) is the zero-cost path: no arbiter or host-level
// fault injector is built, the admission log stays empty, and scheduling
// is byte-identical to a host that predates this subsystem (the
// cloud_scale scenario suite holds the host to that).
#pragma once

#include "fault/fault_plan.h"

#include <cstddef>

namespace crimes {

// Declared per tenant at admission time (TenantPolicy::priority). The
// shedding ladder walks strictly upward through this order: BestEffort
// tenants absorb all degradation before any Standard tenant is touched,
// and Critical tenants are never shed at all -- their protection contract
// is only ever weakened by their own SafetyGovernor, not by neighbours.
enum class TenantPriority : std::uint8_t { BestEffort = 0, Standard = 1,
                                           Critical = 2 };

[[nodiscard]] const char* to_string(TenantPriority priority);

struct HostConfig {
  bool enabled = false;

  // --- Admission capacity model (AdmissionController) -------------------
  // Fraction of machine frames held back from admission: committed frames
  // (primary + backup for protected tenants) must fit in
  // capacity * (1 - frame_headroom), leaving slack for page tables,
  // store/journal images, and dirty-page variance.
  double frame_headroom = 0.05;
  // Ceiling on the sum of per-tenant pause shares
  // (SloBudget.pause_ms / epoch_interval_ms): the fraction of wall time
  // the host may legitimately spend paused across all tenants. A single
  // tenant whose share exceeds this is rejected outright; one that only
  // overflows the current aggregate is deferred.
  double max_aggregate_overhead = 0.60;
  // Replication bandwidth, in in-flight-window slots, that admission may
  // promise across tenants (sum of each tenant's ReplicationConfig.window).
  std::size_t replication_slots = 64;

  // --- Pressure model (HostArbiter inputs) ------------------------------
  // Checkpoint-copy overhead ratio (aggregate copy ms / aggregate guest
  // ms per round) the host can absorb before neighbours contend for the
  // shared copy path. The contention factor scaled into every tenant's
  // host-observed pause is copy_overhead / copy_overhead_limit (floored
  // at 1), so shedding that brings the ratio back under the limit also
  // restores neighbours' observed tails.
  double copy_overhead_limit = 0.25;

  // --- Shedding ladder --------------------------------------------------
  // Pressure (max of frame, copy-overhead, and transport pressure, each
  // normalized to its limit) above which the ladder escalates one rung on
  // one tenant per round, and below which it recovers. The gap between
  // the two is the hysteresis band: inside it the ladder holds.
  double shed_enter = 1.0;
  double shed_exit = 0.7;
  // Consecutive calm rounds (pressure < shed_exit) before one rung is
  // recovered; recovery is one rung per qualifying round, highest
  // priority first -- the mirror image of shedding.
  std::size_t recover_after = 2;
  // Rung 1 of the ladder: the victim's epoch interval is stretched by
  // this factor (fewer checkpoints per guest second; the saturating
  // dirty-page curve makes the copy overhead drop superlinearly).
  double stretch_factor = 2.0;

  // --- Cross-tenant arbiter trades --------------------------------------
  // Master switch for the window/GC trades (the ladder runs either way).
  bool arbitrate = true;
  // Replication window a donor tenant is capped to while the shared
  // transport is saturated (transport pressure > shed_enter).
  std::size_t donor_window_cap = 2;
  // Store-GC budget a donor is capped to while copy pressure is the
  // dominant signal (GC work rides the same post-resume path).
  std::size_t donor_gc_cap = 1;

  // --- Host-level adversary (FaultInjector sites per scheduling round) --
  // flash_crowd / neighbor_dirty_storm / correlated_failover rates; use
  // FaultPlan::overload_storm for the composed storm.
  fault::FaultPlan faults;
  // Workload intensity multiplier applied to every tenant for rounds in
  // which the flash-crowd site fires.
  double flash_crowd_factor = 3.0;
  // Intensity multiplier applied to BestEffort-priority tenants only for
  // rounds in which the neighbor-dirty-storm site fires.
  double neighbor_storm_factor = 4.0;

  // --- Replayable history bounds (mirror ControlConfig's) ---------------
  std::size_t history_capacity = 512;
  std::size_t decision_capacity = 256;
};

}  // namespace crimes
