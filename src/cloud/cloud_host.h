// Multi-tenant cloud host: CRIMES as the paper's "security as a cloud
// service" (section 2).
//
// One physical host runs many tenant VMs, each with its own CRIMES
// instance (safety mode, epoch interval and scan modules are per-tenant
// policy). The host schedules tenants round-robin, epoch by epoch, on the
// shared machine; an attacked tenant is frozen and quarantined without
// perturbing its neighbours. The host also does the memory accounting
// behind the paper's "CRIMES doubles the VM's memory cost" statement --
// every protected tenant carries a backup image of equal (touched) size.
#pragma once

#include "core/crimes.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace crimes {

struct TenantPolicy {
  std::string name;
  GuestConfig guest;
  CrimesConfig crimes;
};

class Tenant {
 public:
  Tenant(Hypervisor& hypervisor, TenantPolicy policy);

  [[nodiscard]] const std::string& name() const { return policy_.name; }
  [[nodiscard]] GuestKernel& kernel() { return *kernel_; }
  [[nodiscard]] Crimes& crimes() { return *crimes_; }
  [[nodiscard]] const RunSummary& totals() const { return totals_; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  void set_workload(Workload* workload) {
    workload_ = workload;
    crimes_->set_workload(workload);
  }
  [[nodiscard]] Workload* workload() { return workload_; }

  // Guest pages actually backed by machine frames (primary + backup).
  [[nodiscard]] std::size_t primary_pages_backed() const;
  [[nodiscard]] std::size_t backup_pages_backed() const;

 private:
  friend class CloudHost;

  TenantPolicy policy_;
  Vm* vm_;
  std::unique_ptr<GuestKernel> kernel_;
  std::unique_ptr<Crimes> crimes_;
  Workload* workload_ = nullptr;
  RunSummary totals_;
  bool frozen_ = false;
};

struct CloudMemoryReport {
  struct Row {
    std::string tenant;
    std::size_t primary_pages = 0;
    std::size_t backup_pages = 0;
    // ~2.0 for protected tenants (the paper's memory-doubling cost).
    [[nodiscard]] double overhead_factor() const {
      return primary_pages == 0
                 ? 1.0
                 : 1.0 + static_cast<double>(backup_pages) /
                             static_cast<double>(primary_pages);
    }
  };
  std::vector<Row> rows;
  std::size_t machine_frames_in_use = 0;
};

struct CloudRunReport {
  std::size_t epochs_scheduled = 0;
  std::size_t tenants_attacked = 0;
  std::vector<std::string> attacked_tenants;
  // Resilience layer: tenants whose SafetyGovernor froze them (checkpoint
  // path lost). Distinct from an attack freeze -- there is no AttackReport,
  // just a tenant that can no longer be protected. Its neighbours keep
  // running: fault isolation is per-tenant.
  std::size_t tenants_fault_frozen = 0;
  std::vector<std::string> fault_frozen_tenants;
  // Replication layer: tenants whose primary host died and whose standby
  // promoted. The tenant drops out of scheduling on this host (its
  // workload now runs on the standby machine); neighbours keep running.
  std::size_t tenants_failed_over = 0;
  std::vector<std::string> failed_over_tenants;
};

class CloudHost {
 public:
  explicit CloudHost(std::size_t machine_frames = 1u << 21);  // 8 GiB

  CloudHost(const CloudHost&) = delete;
  CloudHost& operator=(const CloudHost&) = delete;

  // Admits a tenant; its CRIMES instance is built but not yet initialized
  // (attach the workload and scan modules first).
  Tenant& admit(TenantPolicy policy);

  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  [[nodiscard]] Tenant& tenant(const std::string& name);

  // Initializes every tenant's CRIMES stack (VMI bring-up + initial
  // checkpoint sync).
  void initialize_all();

  // Runs all live tenants round-robin for `work_time` of guest time each.
  // A tenant whose audit fails is frozen (its Crimes::attack() report is
  // available) and drops out of scheduling; everyone else keeps running.
  CloudRunReport run(Nanos work_time);

  [[nodiscard]] CloudMemoryReport memory_report() const;

  // Per-tenant SLO health, one report per tenant whose monitor is on.
  // The provider's dashboard: which tenants are inside their protection
  // contract, which are burning error budget, which have gone Critical.
  [[nodiscard]] std::vector<telemetry::SloReport> slo_reports() const;
  [[nodiscard]] std::string health_table() const;

  // Per-tenant control-plane state: current knob positions, the SLO
  // targets each tenant's policies steer against, and loop statistics.
  // One report per tenant whose CrimesConfig::control is on.
  [[nodiscard]] std::vector<control::ControlReport> control_reports() const;
  [[nodiscard]] std::string control_table() const;

  [[nodiscard]] Hypervisor& hypervisor() { return hypervisor_; }

 private:
  Hypervisor hypervisor_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

}  // namespace crimes
