// Multi-tenant cloud host: CRIMES as the paper's "security as a cloud
// service" (section 2).
//
// One physical host runs many tenant VMs, each with its own CRIMES
// instance (safety mode, epoch interval and scan modules are per-tenant
// policy). The host schedules tenants round-robin, epoch by epoch, on the
// shared machine; an attacked tenant is frozen and quarantined without
// perturbing its neighbours. The host also does the memory accounting
// behind the paper's "CRIMES doubles the VM's memory cost" statement --
// every protected tenant carries a backup image of equal (touched) size.
//
// With HostConfig::enabled the host additionally runs the overload
// robustness subsystem: admission control (admit() returns a structured
// accept/defer/reject decision instead of silently over-committing), a
// per-round HostArbiter that sheds load in declared priority order under
// pressure, and host-level fault sites (flash crowds, noisy neighbours,
// correlated failovers). Disabled (the default) the host behaves exactly
// as before -- zero cost, byte-identical schedules.
#pragma once

#include "cloud/admission.h"
#include "cloud/host_arbiter.h"
#include "core/crimes.h"

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace crimes {

struct TenantPolicy {
  std::string name;
  GuestConfig guest;
  CrimesConfig crimes;
  // Shedding order under host pressure (HostArbiter): BestEffort absorbs
  // degradation before any Standard tenant, Critical is never shed.
  TenantPriority priority = TenantPriority::Standard;
};

// Structured not-found error for CloudHost::tenant(name): carries the
// looked-up name so callers can report it without string-parsing what().
class TenantNotFoundError : public std::out_of_range {
 public:
  explicit TenantNotFoundError(std::string name)
      : std::out_of_range("CloudHost::tenant: no such tenant " + name),
        name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

class Tenant {
 public:
  Tenant(Hypervisor& hypervisor, TenantPolicy policy);

  [[nodiscard]] const std::string& name() const { return policy_.name; }
  [[nodiscard]] GuestKernel& kernel() { return *kernel_; }
  [[nodiscard]] Crimes& crimes() { return *crimes_; }
  [[nodiscard]] const RunSummary& totals() const { return totals_; }
  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] TenantPriority priority() const { return policy_.priority; }

  void set_workload(Workload* workload) {
    workload_ = workload;
    crimes_->set_workload(workload);
  }
  [[nodiscard]] Workload* workload() { return workload_; }

  // Guest pages actually backed by machine frames (primary + backup).
  [[nodiscard]] std::size_t primary_pages_backed() const;
  [[nodiscard]] std::size_t backup_pages_backed() const;

  // Host-observed pause distribution: the tenant's own pause inflated by
  // the round's cross-tenant contention factor (shared copy path). The
  // tenant's RunSummary never sees this -- isolation tests compare
  // RunSummaries byte-for-byte against solo runs. Empty unless the host
  // overload subsystem is enabled.
  [[nodiscard]] telemetry::HistogramSnapshot host_pause() const {
    return host_pause_.snapshot();
  }
  [[nodiscard]] double host_p99_pause_ms() const {
    return static_cast<double>(host_pause_.snapshot().p99()) / 1e6;
  }

 private:
  friend class CloudHost;

  TenantPolicy policy_;
  Vm* vm_;
  std::unique_ptr<GuestKernel> kernel_;
  std::unique_ptr<Crimes> crimes_;
  Workload* workload_ = nullptr;
  RunSummary totals_;
  bool frozen_ = false;
  telemetry::Histogram host_pause_;  // host-observed (contended) pauses, ns
};

// What CloudHost::admit returns when the overload subsystem is on: the
// structured verdict plus the placed tenant (nullptr on Defer/Reject).
// The implicit Tenant& conversion keeps every existing call site --
// `Tenant& t = host.admit(policy)` -- compiling unchanged; it throws if
// the tenant was not admitted, so a rejection cannot be silently used.
struct AdmissionResult {
  AdmissionDecision decision;
  Tenant* admitted = nullptr;

  [[nodiscard]] bool accepted() const { return admitted != nullptr; }
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for Tenant&.
  operator Tenant&() const {
    if (admitted == nullptr) {
      throw std::runtime_error(std::string("CloudHost::admit: tenant '") +
                               decision.tenant + "' not admitted: " +
                               decision.reason);
    }
    return *admitted;
  }
};

struct CloudMemoryReport {
  struct Row {
    std::string tenant;
    std::size_t primary_pages = 0;
    std::size_t backup_pages = 0;
    // ~2.0 for protected tenants (the paper's memory-doubling cost).
    [[nodiscard]] double overhead_factor() const {
      return primary_pages == 0
                 ? 1.0
                 : 1.0 + static_cast<double>(backup_pages) /
                             static_cast<double>(primary_pages);
    }
  };
  std::vector<Row> rows;
  std::size_t machine_frames_in_use = 0;
};

struct CloudRunReport {
  std::size_t epochs_scheduled = 0;
  std::size_t tenants_attacked = 0;
  std::vector<std::string> attacked_tenants;
  // Resilience layer: tenants whose SafetyGovernor froze them (checkpoint
  // path lost). Distinct from an attack freeze -- there is no AttackReport,
  // just a tenant that can no longer be protected. Its neighbours keep
  // running: fault isolation is per-tenant.
  std::size_t tenants_fault_frozen = 0;
  std::vector<std::string> fault_frozen_tenants;
  // Replication layer: tenants whose primary host died and whose standby
  // promoted. The tenant drops out of scheduling on this host (its
  // workload now runs on the standby machine); neighbours keep running.
  std::size_t tenants_failed_over = 0;
  std::vector<std::string> failed_over_tenants;
  // Host overload subsystem (all zero when HostConfig::enabled is false).
  std::size_t host_rounds = 0;           // arbiter observations this run
  std::size_t host_decisions = 0;        // shed/recover/trade actions taken
  std::size_t flash_crowd_rounds = 0;    // host fault sites that fired
  std::size_t neighbor_storm_rounds = 0;
  std::size_t correlated_failover_rounds = 0;
};

class CloudHost {
 public:
  explicit CloudHost(std::size_t machine_frames = 1u << 21);  // 8 GiB
  // Overload-robustness host: admission control, the shedding arbiter and
  // the host fault sites all hang off `config` (no-ops unless enabled).
  explicit CloudHost(HostConfig config, std::size_t machine_frames = 1u << 21);

  CloudHost(const CloudHost&) = delete;
  CloudHost& operator=(const CloudHost&) = delete;

  // Admits a tenant; its CRIMES instance is built but not yet initialized
  // (attach the workload and scan modules first). When the overload
  // subsystem is on, the capacity model may Defer or Reject: the result's
  // decision says why, and `admitted` stays null (no VM is built).
  AdmissionResult admit(TenantPolicy policy);

  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  // Throws TenantNotFoundError when no tenant has that name.
  [[nodiscard]] Tenant& tenant(const std::string& name);
  // Non-throwing lookup: nullptr when absent.
  [[nodiscard]] Tenant* find_tenant(const std::string& name) noexcept;

  // Initializes every tenant's CRIMES stack (VMI bring-up + initial
  // checkpoint sync).
  void initialize_all();

  // Runs all live tenants round-robin for `work_time` of guest time each.
  // A tenant whose audit fails is frozen (its Crimes::attack() report is
  // available) and drops out of scheduling; everyone else keeps running.
  // With the overload subsystem on, each scheduling round also draws the
  // host fault sites, feeds the arbiter one HostInputs record, and applies
  // its decisions through the tenants' host hooks.
  CloudRunReport run(Nanos work_time);

  [[nodiscard]] CloudMemoryReport memory_report() const;

  // Per-tenant SLO health, one report per tenant whose monitor is on.
  // The provider's dashboard: which tenants are inside their protection
  // contract, which are burning error budget, which have gone Critical.
  [[nodiscard]] std::vector<telemetry::SloReport> slo_reports() const;
  [[nodiscard]] std::string health_table() const;

  // Per-tenant control-plane state: current knob positions, the SLO
  // targets each tenant's policies steer against, and loop statistics.
  // One report per tenant whose CrimesConfig::control is on.
  [[nodiscard]] std::vector<control::ControlReport> control_reports() const;
  [[nodiscard]] std::string control_table() const;

  // Admission dashboard: every decision taken so far (accepts and
  // refusals), newest last, and its operator-facing rendering -- the
  // fourth table next to health_table() and control_table(). Empty when
  // the overload subsystem is off (legacy admits are not logged).
  [[nodiscard]] const std::vector<AdmissionDecision>& admission_log() const {
    return admission_log_;
  }
  [[nodiscard]] std::string admission_table() const {
    return format_admission_table(admission_log_);
  }

  [[nodiscard]] const HostConfig& host_config() const { return host_config_; }
  // The cross-tenant arbiter, or nullptr when the subsystem is off.
  [[nodiscard]] const HostArbiter* arbiter() const { return arbiter_.get(); }

  [[nodiscard]] Hypervisor& hypervisor() { return hypervisor_; }

 private:
  void apply_host_decisions(std::size_t made);

  Hypervisor hypervisor_;
  std::vector<std::unique_ptr<Tenant>> tenants_;

  HostConfig host_config_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<HostArbiter> arbiter_;
  std::unique_ptr<fault::FaultInjector> host_injector_;
  std::vector<AdmissionDecision> admission_log_;
  std::uint64_t round_index_ = 0;  // persists across run() calls
};

}  // namespace crimes
