#include "cloud/cloud_host.h"

#include "common/log.h"

#include <algorithm>
#include <stdexcept>

namespace crimes {

namespace {

std::size_t backed_pages(const Vm& vm) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < vm.page_count(); ++i) {
    if (vm.is_backed(Pfn{i})) ++n;
  }
  return n;
}

void accumulate(RunSummary& into, const RunSummary& slice) {
  into.scheme = slice.scheme;
  into.work_time += slice.work_time;
  into.total_pause += slice.total_pause;
  into.max_pause = std::max(into.max_pause, slice.max_pause);
  // Histogram merge is exact: log2 buckets from disjoint slices sum to
  // the histogram of the union (tests/test_observability.cpp holds the
  // cloud host to this).
  into.pause_histogram.merge_from(slice.pause_histogram);
  into.epochs += slice.epochs;
  into.checkpoints += slice.checkpoints;
  into.attack_detected = into.attack_detected || slice.attack_detected;
  into.total_costs.suspend += slice.total_costs.suspend;
  into.total_costs.vmi += slice.total_costs.vmi;
  into.total_costs.bitscan += slice.total_costs.bitscan;
  into.total_costs.map += slice.total_costs.map;
  into.total_costs.copy += slice.total_costs.copy;
  into.total_costs.protect += slice.total_costs.protect;
  into.total_costs.resume += slice.total_costs.resume;
  into.total_costs.observe += slice.total_costs.observe;
  into.total_costs.control += slice.total_costs.control;
  into.total_costs.dirty_pages += slice.total_costs.dirty_pages;
  into.total_dirty_pages += slice.total_dirty_pages;
  into.checkpoint_failures += slice.checkpoint_failures;
  into.copy_retries += slice.copy_retries;
  into.faults_injected += slice.faults_injected;  // per-slice deltas
  into.governor_downgrades += slice.governor_downgrades;
  into.governor_upgrades += slice.governor_upgrades;
  into.degraded_epochs += slice.degraded_epochs;
  into.frozen_by_governor = into.frozen_by_governor ||
                            slice.frozen_by_governor;
  into.recovery_time += slice.recovery_time;
  into.store_time += slice.store_time;
  into.replication_stall += slice.replication_stall;
  into.replicated_generations += slice.replicated_generations;
  into.replication_dropped += slice.replication_dropped;
  into.primary_killed = into.primary_killed || slice.primary_killed;
  into.failed_over = into.failed_over || slice.failed_over;
  into.failover_time += slice.failover_time;
  if (slice.failed_over) {
    into.promoted_generation = slice.promoted_generation;
  }
  into.generations_rolled_back += slice.generations_rolled_back;
  into.outputs_discarded += slice.outputs_discarded;
  into.fenced_epochs += slice.fenced_epochs;
  into.slo_warn_epochs += slice.slo_warn_epochs;
  into.slo_critical_epochs += slice.slo_critical_epochs;
  into.postmortems_dumped += slice.postmortems_dumped;
  into.control_cycles += slice.control_cycles;
  into.control_adjustments += slice.control_adjustments;
  into.control_holds += slice.control_holds;
  into.control_full_sweeps += slice.control_full_sweeps;
  into.host_paused_epochs += slice.host_paused_epochs;
  // The quarantine list is cumulative within a Crimes instance; the latest
  // slice's view is the complete one.
  into.quarantined_modules = slice.quarantined_modules;
}

// What the capacity model needs to know about a policy, derived before
// any VM is built (a refused tenant must cost nothing).
AdmissionRequest request_for(const TenantPolicy& policy) {
  AdmissionRequest request;
  request.tenant = policy.name;
  request.guest_pages = policy.guest.page_count;
  request.protected_mode = policy.crimes.mode != SafetyMode::Disabled;
  request.pause_budget_ms = policy.crimes.slo.budget.pause_ms;
  request.interval_ms = to_ms(policy.crimes.checkpoint.epoch_interval);
  request.replication_window =
      policy.crimes.replication.enabled ? policy.crimes.replication.window : 0;
  request.priority = policy.priority;
  return request;
}

}  // namespace

Tenant::Tenant(Hypervisor& hypervisor, TenantPolicy policy)
    : policy_(std::move(policy)) {
  vm_ = &hypervisor.create_domain(policy_.name, policy_.guest.page_count);
  kernel_ = std::make_unique<GuestKernel>(*vm_, policy_.guest);
  kernel_->boot();
  crimes_ = std::make_unique<Crimes>(hypervisor, *kernel_, policy_.crimes);
}

std::size_t Tenant::primary_pages_backed() const {
  return backed_pages(kernel_->vm());
}

std::size_t Tenant::backup_pages_backed() const {
  if (policy_.crimes.mode == SafetyMode::Disabled ||
      !crimes_->checkpointer().initialized()) {
    return 0;
  }
  return backed_pages(crimes_->checkpointer().backup());
}

CloudHost::CloudHost(std::size_t machine_frames)
    : hypervisor_(machine_frames) {}

CloudHost::CloudHost(HostConfig config, std::size_t machine_frames)
    : hypervisor_(machine_frames), host_config_(config) {
  if (host_config_.enabled) {
    admission_ =
        std::make_unique<AdmissionController>(host_config_, machine_frames);
    arbiter_ = std::make_unique<HostArbiter>(host_config_);
    if (host_config_.faults.any()) {
      host_injector_ =
          std::make_unique<fault::FaultInjector>(host_config_.faults);
    }
  }
}

AdmissionResult CloudHost::admit(TenantPolicy policy) {
  AdmissionResult result;
  if (host_config_.enabled && admission_ != nullptr) {
    result.decision = admission_->decide(request_for(policy));
    admission_log_.push_back(result.decision);
    if (result.decision.verdict != AdmissionDecision::Verdict::Accept) {
      CRIMES_LOG(Warn, "cloud")
          << "tenant " << result.decision.tenant << " refused ("
          << to_string(result.decision.verdict) << "): "
          << result.decision.reason;
      return result;
    }
  } else {
    // Legacy open-door host: every admit succeeds, nothing is logged --
    // the disabled path stays byte-identical to the pre-admission host.
    result.decision.tenant = policy.name;
    result.decision.reason = "host-admission-disabled";
  }
  tenants_.push_back(std::make_unique<Tenant>(hypervisor_, std::move(policy)));
  result.admitted = tenants_.back().get();
  return result;
}

Tenant* CloudHost::find_tenant(const std::string& name) noexcept {
  for (auto& t : tenants_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

Tenant& CloudHost::tenant(const std::string& name) {
  if (Tenant* t = find_tenant(name)) return *t;
  throw TenantNotFoundError(name);
}

void CloudHost::initialize_all() {
  for (auto& t : tenants_) {
    t->crimes().initialize();
  }
}

void CloudHost::apply_host_decisions(std::size_t made) {
  if (made == 0 || arbiter_ == nullptr) return;
  const std::vector<HostDecision>& log = arbiter_->decisions();
  const std::size_t start = log.size() >= made ? log.size() - made : 0;
  for (std::size_t k = start; k < log.size(); ++k) {
    const HostDecision& d = log[k];
    if (d.tenant >= tenants_.size()) continue;
    Tenant& t = *tenants_[d.tenant];
    Crimes& c = t.crimes();
    switch (d.action) {
      case HostAction::StretchInterval:
        c.set_host_interval_scale(host_config_.stretch_factor);
        break;
      case HostAction::RestoreInterval:
        c.set_host_interval_scale(1.0);
        break;
      case HostAction::Downgrade:
        c.host_downgrade(true);
        break;
      case HostAction::RestoreMode:
        c.host_downgrade(false);
        break;
      case HostAction::PauseProtection:
        c.host_pause_protection(true);
        break;
      case HostAction::ResumeProtection:
        c.host_pause_protection(false);
        break;
      case HostAction::CapWindow:
        c.set_host_window_cap(host_config_.donor_window_cap);
        break;
      case HostAction::UncapWindow:
        c.set_host_window_cap(0);
        break;
      case HostAction::CapGcBudget:
        c.set_host_gc_cap(host_config_.donor_gc_cap);
        break;
      case HostAction::UncapGcBudget:
        c.set_host_gc_cap(0);
        break;
    }
    // Every host actuation lands in the affected tenant's flight recorder:
    // a postmortem must be able to say "the host shed you, here is why".
    if (telemetry::FlightRecorder* flight = c.flight_recorder()) {
      flight->record(c.clock().now(), d.round,
                     telemetry::FlightEventKind::Host, to_string(d.action),
                     d.reason, d.to);
    }
    CRIMES_LOG(Info, "cloud")
        << "host arbiter: " << to_string(d.action) << " tenant "
        << t.name() << " (" << d.reason << ")";
  }
}

CloudRunReport CloudHost::run(Nanos work_time) {
  CloudRunReport report;
  const bool host_on = host_config_.enabled;
  // Round-robin in epoch-sized slices: the provider timeshares checkpoint
  // and scan work across tenants, like Remus's per-domain checkpoint
  // threads do.
  bool any_progress = true;
  while (any_progress) {
    any_progress = false;

    // Host round prologue: draw this round's fault sites once (keyed by
    // the monotone round index, so the schedule is a pure function of the
    // plan's seed) and set each workload's intensity for the round.
    if (host_on) {
      bool flash = false;
      bool storm = false;
      bool correlated = false;
      if (host_injector_) {
        host_injector_->begin_epoch(static_cast<std::size_t>(round_index_));
        flash = host_injector_->flash_crowd_hits();
        storm = host_injector_->neighbor_storm_hits();
        correlated = host_injector_->correlated_failover_hits();
      }
      if (flash) ++report.flash_crowd_rounds;
      if (storm) ++report.neighbor_storm_rounds;
      if (correlated) ++report.correlated_failover_rounds;
      for (auto& t : tenants_) {
        if (t->frozen_) continue;
        if (correlated && t->policy_.crimes.replication.enabled) {
          t->crimes().host_kill_primary();
        }
        if (t->workload_ == nullptr) continue;
        double factor = 1.0;
        if (flash) factor *= host_config_.flash_crowd_factor;
        if (storm && t->policy_.priority == TenantPriority::BestEffort) {
          // The noisy neighbour: the lowest tier's working set blows up,
          // pressuring the shared copy path everyone pauses behind.
          factor *= host_config_.neighbor_storm_factor;
        }
        t->workload_->set_intensity(factor);
      }
    }

    HostInputs inputs;
    std::vector<Nanos> round_pause;
    if (host_on) {
      inputs.round = round_index_;
      inputs.transport_slots =
          static_cast<double>(host_config_.replication_slots);
      inputs.tenants.reserve(tenants_.size());
      round_pause.assign(tenants_.size(), Nanos{0});
    }

    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      Tenant* t = tenants_[i].get();
      if (host_on) {
        HostTenantSample sample;
        sample.pause_budget_ms = t->policy_.crimes.slo.budget.pause_ms;
        sample.priority = static_cast<std::uint8_t>(t->policy_.priority);
        sample.governor =
            static_cast<std::uint8_t>(t->crimes().governor_state());
        sample.live = false;  // flipped below if the tenant runs this round
        sample.replicated = t->policy_.crimes.replication.enabled;
        sample.has_store = t->policy_.crimes.mode != SafetyMode::Disabled &&
                           t->policy_.crimes.checkpoint.store.enabled;
        inputs.tenants.push_back(sample);
      }
      if (t->frozen_) continue;
      // Slice by the interval currently in force: a control plane (or the
      // adaptive controller) may have moved it away from the policy's
      // static epoch_interval.
      const Nanos interval = t->crimes().current_interval();
      if (t->totals_.work_time + interval > work_time) continue;
      if (t->workload_ != nullptr && t->workload_->finished()) continue;

      const RunSummary slice = t->crimes().run(interval);  // one epoch
      accumulate(t->totals_, slice);
      report.epochs_scheduled += slice.epochs;
      any_progress = any_progress || slice.epochs > 0;

      if (host_on) {
        HostTenantSample& sample = inputs.tenants[i];
        sample.live = true;
        sample.pause_ms = to_ms(slice.total_pause);
        sample.copy_ms = to_ms(slice.total_costs.copy);
        round_pause[i] = slice.total_pause;
        inputs.copy_ms += sample.copy_ms;
        inputs.work_ms += to_ms(slice.work_time);
        if (replication::Replicator* rep = t->crimes().replicator()) {
          inputs.inflight += static_cast<double>(rep->in_flight());
        }
      }

      if (slice.attack_detected) {
        t->frozen_ = true;
        ++report.tenants_attacked;
        report.attacked_tenants.push_back(t->name());
        CRIMES_LOG(Warn, "cloud")
            << "tenant " << t->name() << " frozen after attack";
      } else if (slice.primary_killed) {
        // The tenant's primary host died; its standby host promoted (or
        // there was none to promote). Either way this host schedules it
        // no further.
        t->frozen_ = true;
        ++report.tenants_failed_over;
        report.failed_over_tenants.push_back(t->name());
        CRIMES_LOG(Warn, "cloud")
            << "tenant " << t->name() << " primary killed"
            << (slice.failed_over ? "; standby promoted" : "");
      } else if (slice.frozen_by_governor) {
        // The tenant's checkpoint path is gone; its governor paused the
        // VM. Drop it from scheduling -- the fault domain is the tenant,
        // so its neighbours' epochs proceed untouched.
        t->frozen_ = true;
        ++report.tenants_fault_frozen;
        report.fault_frozen_tenants.push_back(t->name());
        CRIMES_LOG(Warn, "cloud")
            << "tenant " << t->name()
            << " frozen by its safety governor (checkpoint path lost)";
      }
    }

    // Host round epilogue: charge host-observed (contended) pauses, feed
    // the arbiter one input record, and apply whatever it decided. Only
    // productive rounds count -- the terminal empty sweep of the
    // round-robin loop is not a round.
    if (host_on && any_progress) {
      inputs.frames_used =
          static_cast<double>(hypervisor_.machine().allocated_frames());
      inputs.frame_limit =
          admission_ != nullptr ? static_cast<double>(admission_->frame_limit())
                                : inputs.frames_used;
      // Cross-tenant interference is host-side accounting only: the
      // tenant's own RunSummary stays exactly what a solo run produces
      // (the isolation tests compare them byte-for-byte).
      const double contention =
          HostArbiter::contention_factor(host_config_, inputs);
      for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (round_pause[i] <= Nanos{0}) continue;
        const double ns =
            static_cast<double>(round_pause[i].count()) * contention;
        tenants_[i]->host_pause_.record(static_cast<std::uint64_t>(ns));
      }
      const std::size_t made = arbiter_->observe(inputs);
      apply_host_decisions(made);
      report.host_decisions += made;
      ++report.host_rounds;
      ++round_index_;
    }
  }
  return report;
}

std::vector<telemetry::SloReport> CloudHost::slo_reports() const {
  std::vector<telemetry::SloReport> reports;
  for (const auto& t : tenants_) {
    const telemetry::SloMonitor* monitor = t->crimes_->slo_monitor();
    if (monitor == nullptr) continue;
    reports.push_back(monitor->report(t->name()));
  }
  return reports;
}

std::string CloudHost::health_table() const {
  return telemetry::format_health_table(slo_reports());
}

std::vector<control::ControlReport> CloudHost::control_reports() const {
  std::vector<control::ControlReport> reports;
  for (const auto& t : tenants_) {
    const control::ControlPlane* plane = t->crimes_->control_plane();
    if (plane == nullptr) continue;
    reports.push_back(plane->report(t->name()));
  }
  return reports;
}

std::string CloudHost::control_table() const {
  return control::format_control_table(control_reports());
}

CloudMemoryReport CloudHost::memory_report() const {
  CloudMemoryReport report;
  for (const auto& t : tenants_) {
    report.rows.push_back(CloudMemoryReport::Row{
        .tenant = t->name(),
        .primary_pages = t->primary_pages_backed(),
        .backup_pages = t->backup_pages_backed(),
    });
  }
  report.machine_frames_in_use = hypervisor_.machine().allocated_frames();
  return report;
}

}  // namespace crimes
