#include "cloud/cloud_host.h"

#include "common/log.h"

#include <algorithm>
#include <stdexcept>

namespace crimes {

namespace {

std::size_t backed_pages(const Vm& vm) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < vm.page_count(); ++i) {
    if (vm.is_backed(Pfn{i})) ++n;
  }
  return n;
}

void accumulate(RunSummary& into, const RunSummary& slice) {
  into.scheme = slice.scheme;
  into.work_time += slice.work_time;
  into.total_pause += slice.total_pause;
  into.max_pause = std::max(into.max_pause, slice.max_pause);
  // Histogram merge is exact: log2 buckets from disjoint slices sum to
  // the histogram of the union (tests/test_observability.cpp holds the
  // cloud host to this).
  into.pause_histogram.merge_from(slice.pause_histogram);
  into.epochs += slice.epochs;
  into.checkpoints += slice.checkpoints;
  into.attack_detected = into.attack_detected || slice.attack_detected;
  into.total_costs.suspend += slice.total_costs.suspend;
  into.total_costs.vmi += slice.total_costs.vmi;
  into.total_costs.bitscan += slice.total_costs.bitscan;
  into.total_costs.map += slice.total_costs.map;
  into.total_costs.copy += slice.total_costs.copy;
  into.total_costs.protect += slice.total_costs.protect;
  into.total_costs.resume += slice.total_costs.resume;
  into.total_costs.observe += slice.total_costs.observe;
  into.total_costs.control += slice.total_costs.control;
  into.total_costs.dirty_pages += slice.total_costs.dirty_pages;
  into.total_dirty_pages += slice.total_dirty_pages;
  into.checkpoint_failures += slice.checkpoint_failures;
  into.copy_retries += slice.copy_retries;
  into.faults_injected += slice.faults_injected;  // per-slice deltas
  into.governor_downgrades += slice.governor_downgrades;
  into.governor_upgrades += slice.governor_upgrades;
  into.degraded_epochs += slice.degraded_epochs;
  into.frozen_by_governor = into.frozen_by_governor ||
                            slice.frozen_by_governor;
  into.recovery_time += slice.recovery_time;
  into.store_time += slice.store_time;
  into.replication_stall += slice.replication_stall;
  into.replicated_generations += slice.replicated_generations;
  into.replication_dropped += slice.replication_dropped;
  into.primary_killed = into.primary_killed || slice.primary_killed;
  into.failed_over = into.failed_over || slice.failed_over;
  into.failover_time += slice.failover_time;
  if (slice.failed_over) {
    into.promoted_generation = slice.promoted_generation;
  }
  into.generations_rolled_back += slice.generations_rolled_back;
  into.outputs_discarded += slice.outputs_discarded;
  into.fenced_epochs += slice.fenced_epochs;
  into.slo_warn_epochs += slice.slo_warn_epochs;
  into.slo_critical_epochs += slice.slo_critical_epochs;
  into.postmortems_dumped += slice.postmortems_dumped;
  into.control_cycles += slice.control_cycles;
  into.control_adjustments += slice.control_adjustments;
  into.control_holds += slice.control_holds;
  into.control_full_sweeps += slice.control_full_sweeps;
  // The quarantine list is cumulative within a Crimes instance; the latest
  // slice's view is the complete one.
  into.quarantined_modules = slice.quarantined_modules;
}

}  // namespace

Tenant::Tenant(Hypervisor& hypervisor, TenantPolicy policy)
    : policy_(std::move(policy)) {
  vm_ = &hypervisor.create_domain(policy_.name, policy_.guest.page_count);
  kernel_ = std::make_unique<GuestKernel>(*vm_, policy_.guest);
  kernel_->boot();
  crimes_ = std::make_unique<Crimes>(hypervisor, *kernel_, policy_.crimes);
}

std::size_t Tenant::primary_pages_backed() const {
  return backed_pages(kernel_->vm());
}

std::size_t Tenant::backup_pages_backed() const {
  if (policy_.crimes.mode == SafetyMode::Disabled ||
      !crimes_->checkpointer().initialized()) {
    return 0;
  }
  return backed_pages(crimes_->checkpointer().backup());
}

CloudHost::CloudHost(std::size_t machine_frames)
    : hypervisor_(machine_frames) {}

Tenant& CloudHost::admit(TenantPolicy policy) {
  tenants_.push_back(std::make_unique<Tenant>(hypervisor_, std::move(policy)));
  return *tenants_.back();
}

Tenant& CloudHost::tenant(const std::string& name) {
  for (auto& t : tenants_) {
    if (t->name() == name) return *t;
  }
  throw std::out_of_range("CloudHost::tenant: no such tenant " + name);
}

void CloudHost::initialize_all() {
  for (auto& t : tenants_) {
    t->crimes().initialize();
  }
}

CloudRunReport CloudHost::run(Nanos work_time) {
  CloudRunReport report;
  // Round-robin in epoch-sized slices: the provider timeshares checkpoint
  // and scan work across tenants, like Remus's per-domain checkpoint
  // threads do.
  bool any_progress = true;
  while (any_progress) {
    any_progress = false;
    for (auto& t : tenants_) {
      if (t->frozen_) continue;
      // Slice by the interval currently in force: a control plane (or the
      // adaptive controller) may have moved it away from the policy's
      // static epoch_interval.
      const Nanos interval = t->crimes().current_interval();
      if (t->totals_.work_time + interval > work_time) continue;
      if (t->workload_ != nullptr && t->workload_->finished()) continue;

      const RunSummary slice = t->crimes().run(interval);  // one epoch
      accumulate(t->totals_, slice);
      report.epochs_scheduled += slice.epochs;
      any_progress = any_progress || slice.epochs > 0;

      if (slice.attack_detected) {
        t->frozen_ = true;
        ++report.tenants_attacked;
        report.attacked_tenants.push_back(t->name());
        CRIMES_LOG(Warn, "cloud")
            << "tenant " << t->name() << " frozen after attack";
      } else if (slice.primary_killed) {
        // The tenant's primary host died; its standby host promoted (or
        // there was none to promote). Either way this host schedules it
        // no further.
        t->frozen_ = true;
        ++report.tenants_failed_over;
        report.failed_over_tenants.push_back(t->name());
        CRIMES_LOG(Warn, "cloud")
            << "tenant " << t->name() << " primary killed"
            << (slice.failed_over ? "; standby promoted" : "");
      } else if (slice.frozen_by_governor) {
        // The tenant's checkpoint path is gone; its governor paused the
        // VM. Drop it from scheduling -- the fault domain is the tenant,
        // so its neighbours' epochs proceed untouched.
        t->frozen_ = true;
        ++report.tenants_fault_frozen;
        report.fault_frozen_tenants.push_back(t->name());
        CRIMES_LOG(Warn, "cloud")
            << "tenant " << t->name()
            << " frozen by its safety governor (checkpoint path lost)";
      }
    }
  }
  return report;
}

std::vector<telemetry::SloReport> CloudHost::slo_reports() const {
  std::vector<telemetry::SloReport> reports;
  for (const auto& t : tenants_) {
    const telemetry::SloMonitor* monitor = t->crimes_->slo_monitor();
    if (monitor == nullptr) continue;
    reports.push_back(monitor->report(t->name()));
  }
  return reports;
}

std::string CloudHost::health_table() const {
  return telemetry::format_health_table(slo_reports());
}

std::vector<control::ControlReport> CloudHost::control_reports() const {
  std::vector<control::ControlReport> reports;
  for (const auto& t : tenants_) {
    const control::ControlPlane* plane = t->crimes_->control_plane();
    if (plane == nullptr) continue;
    reports.push_back(plane->report(t->name()));
  }
  return reports;
}

std::string CloudHost::control_table() const {
  return control::format_control_table(control_reports());
}

CloudMemoryReport CloudHost::memory_report() const {
  CloudMemoryReport report;
  for (const auto& t : tenants_) {
    report.rows.push_back(CloudMemoryReport::Row{
        .tenant = t->name(),
        .primary_pages = t->primary_pages_backed(),
        .backup_pages = t->backup_pages_backed(),
    });
  }
  report.machine_frames_in_use = hypervisor_.machine().allocated_frames();
  return report;
}

}  // namespace crimes
