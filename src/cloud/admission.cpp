#include "cloud/admission.h"

#include <cstdio>

namespace crimes {

const char* to_string(TenantPriority priority) {
  switch (priority) {
    case TenantPriority::BestEffort: return "best-effort";
    case TenantPriority::Standard: return "standard";
    case TenantPriority::Critical: return "critical";
  }
  return "?";
}

const char* to_string(AdmissionDecision::Verdict verdict) {
  switch (verdict) {
    case AdmissionDecision::Verdict::Accept: return "accept";
    case AdmissionDecision::Verdict::Defer: return "defer";
    case AdmissionDecision::Verdict::Reject: return "reject";
  }
  return "?";
}

AdmissionController::AdmissionController(const HostConfig& config,
                                         std::size_t machine_frames)
    : config_(config) {
  double headroom = config_.frame_headroom;
  if (headroom < 0.0) headroom = 0.0;
  if (headroom > 1.0) headroom = 1.0;
  frame_limit_ = static_cast<std::size_t>(
      static_cast<double>(machine_frames) * (1.0 - headroom));
}

AdmissionDecision AdmissionController::decide(
    const AdmissionRequest& request) {
  AdmissionDecision decision;
  decision.tenant = request.tenant;
  decision.frames_required =
      frames_for(request.guest_pages, request.protected_mode);
  decision.frames_committed = frames_committed_;
  decision.frame_limit = frame_limit_;
  decision.pause_share =
      request.protected_mode && request.interval_ms > 0.0
          ? request.pause_budget_ms / request.interval_ms
          : 0.0;
  decision.overhead_committed = overhead_committed_;
  decision.window_requested = request.replication_window;
  decision.windows_committed = windows_committed_;

  using Verdict = AdmissionDecision::Verdict;
  // Reject: the request can never fit this machine, even empty.
  if (decision.frames_required > frame_limit_) {
    decision.verdict = Verdict::Reject;
    decision.reason = "frames-exceed-machine";
    return decision;
  }
  if (decision.pause_share > config_.max_aggregate_overhead) {
    decision.verdict = Verdict::Reject;
    decision.reason = "pause-share-exceeds-host-budget";
    return decision;
  }
  if (request.replication_window > config_.replication_slots) {
    decision.verdict = Verdict::Reject;
    decision.reason = "window-exceeds-replication-slots";
    return decision;
  }
  // Defer: fits an empty host, but not on top of current commitments.
  if (frames_committed_ + decision.frames_required > frame_limit_) {
    decision.verdict = Verdict::Defer;
    decision.reason = "frames-exhausted";
    return decision;
  }
  if (overhead_committed_ + decision.pause_share >
      config_.max_aggregate_overhead) {
    decision.verdict = Verdict::Defer;
    decision.reason = "aggregate-pause-budget-exhausted";
    return decision;
  }
  if (windows_committed_ + request.replication_window >
      config_.replication_slots) {
    decision.verdict = Verdict::Defer;
    decision.reason = "replication-slots-exhausted";
    return decision;
  }

  frames_committed_ += decision.frames_required;
  overhead_committed_ += decision.pause_share;
  windows_committed_ += request.replication_window;
  decision.verdict = Verdict::Accept;
  decision.reason = "admitted";
  return decision;
}

void AdmissionController::release(const AdmissionRequest& request) {
  const std::size_t frames =
      frames_for(request.guest_pages, request.protected_mode);
  frames_committed_ = frames_committed_ > frames
                          ? frames_committed_ - frames
                          : 0;
  const double share = request.protected_mode && request.interval_ms > 0.0
                           ? request.pause_budget_ms / request.interval_ms
                           : 0.0;
  overhead_committed_ = overhead_committed_ > share
                            ? overhead_committed_ - share
                            : 0.0;
  windows_committed_ = windows_committed_ > request.replication_window
                           ? windows_committed_ - request.replication_window
                           : 0;
}

std::string format_admission_table(std::span<const AdmissionDecision> log) {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof line, "%-16s %-7s %-34s %12s %12s %8s %7s\n",
                "tenant", "verdict", "reason", "frames-req", "frames-lim",
                "share", "window");
  out += line;
  for (const AdmissionDecision& d : log) {
    std::snprintf(line, sizeof line,
                  "%-16s %-7s %-34s %12zu %12zu %7.1f%% %7zu\n",
                  d.tenant.c_str(), to_string(d.verdict), d.reason,
                  d.frames_required, d.frame_limit, d.pause_share * 100.0,
                  d.window_requested);
    out += line;
  }
  return out;
}

}  // namespace crimes
