#include "forensics/store_timeline.h"

#include "common/sim_clock.h"

#include <sstream>

namespace crimes::forensics {

DivergencePoint first_divergence(const store::GenerationChain& chain,
                                 Pfn pfn) {
  DivergencePoint out;
  if (chain.empty()) return out;

  const auto probe = [&](std::size_t index) {
    ++out.generations_probed;
    return chain.digest_at(index, pfn);
  };

  out.baseline_digest = probe(0);
  const std::size_t newest = chain.size() - 1;
  if (newest == 0 || probe(newest) == out.baseline_digest) {
    return out;  // never diverged within the retained window
  }

  // Invariant: digest_at(lo) == baseline, digest_at(hi) != baseline.
  // Monotonicity (corruption persists) makes the boundary unique.
  std::size_t lo = 0;
  std::size_t hi = newest;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (probe(mid) == out.baseline_digest) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  out.found = true;
  out.chain_index = hi;
  out.epoch = chain.at(hi).epoch;
  out.diverged_digest = chain.digest_at(hi, pfn);
  return out;
}

std::string render_page_timeline(const store::GenerationChain& chain,
                                 Pfn pfn) {
  const DivergencePoint div = first_divergence(chain, pfn);
  std::ostringstream os;
  os << "page " << pfn.value() << " across " << chain.size()
     << " retained generations:\n";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const store::Generation& gen = chain.at(i);
    const std::uint64_t digest = chain.digest_at(i, pfn);
    os << "  gen " << gen.epoch << " @" << to_ms(gen.taken_at) << " ms"
       << "  digest " << std::hex << digest;
    if (gen.attest_root != 0) os << "  root " << gen.attest_root;
    os << std::dec << (gen.pinned ? "  [pinned]" : "");
    if (div.found && i == div.chain_index) os << "  <-- first divergence";
    os << '\n';
  }
  if (div.found) {
    os << "first divergence: generation " << div.epoch << " ("
       << div.generations_probed << " digest probes)\n";
  } else {
    os << "no divergence within the retained window\n";
  }
  return os.str();
}

std::string render_fsck(const replication::StoreJournal::FsckReport& report) {
  std::ostringstream os;
  os << "journal fsck: " << (report.ok ? "clean" : "FAILED") << ", "
     << report.records << " record(s), " << report.valid_bytes
     << " valid byte(s), " << report.torn_bytes << " torn byte(s)";
  if (report.attested) {
    os << ", " << report.roots_verified << " attestation root(s) verified";
  }
  os << '\n';
  if (!report.ok) {
    os << "  rejected record " << report.bad_record << " at byte offset "
       << report.bad_offset << '\n'
       << "  reason: " << (report.reason.empty() ? report.error
                                                 : report.reason)
       << '\n';
  }
  return os.str();
}

}  // namespace crimes::forensics
