#include "forensics/report.h"

#include <algorithm>
#include <sstream>

namespace crimes::forensics {

namespace {

std::string pad(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s + " ";
  return s + std::string(width - s.size() + 1, ' ');
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  for (std::size_t c = 0; c < header.size(); ++c) {
    out << pad(header[c], widths[c]);
  }
  out << "\n";
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      out << pad(row[c], widths[c]);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace

void ForensicReport::add_section(const std::string& heading,
                                 const std::string& body) {
  sections_.push_back("== " + heading + " ==\n" + body);
}

void ForensicReport::add_table(
    const std::string& heading, const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  add_section(heading, render_table(header, rows));
}

std::string ForensicReport::to_string() const {
  std::ostringstream out;
  out << "==== CRIMES Forensic Report: " << title_ << " ====\n\n";
  for (const auto& s : sections_) out << s << "\n";
  return out.str();
}

bool ForensicReport::contains(const std::string& needle) const {
  return to_string().find(needle) != std::string::npos;
}

std::string render_pslist(const std::vector<PsEntry>& entries) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& p : entries) {
    rows.push_back({p.name, std::to_string(p.pid.value()),
                    std::to_string(p.uid),
                    std::to_string(p.start_time_ns / 1'000'000) + " ms"});
  }
  return render_table({"Name", "PID", "UID", "Start"}, rows);
}

std::string render_psxview(const std::vector<PsxRow>& rows) {
  std::vector<std::vector<std::string>> cells;
  for (const auto& r : rows) {
    cells.push_back({r.proc.name, std::to_string(r.proc.pid.value()),
                     r.in_pslist ? "True" : "False",
                     r.in_psscan ? "True" : "False",
                     r.in_pid_hash ? "True" : "False",
                     r.suspicious() ? "<-- SUSPICIOUS" : ""});
  }
  return render_table({"Name", "PID", "pslist", "psscan", "pid_hash", ""},
                      cells);
}

std::string render_netscan(const std::vector<NetscanRow>& rows) {
  std::vector<std::vector<std::string>> cells;
  for (const auto& r : rows) {
    cells.push_back({r.proto == 6 ? "TCPv4" : "UDPv4", r.local, r.remote,
                     tcp_state_name(r.state),
                     std::to_string(r.pid.value())});
  }
  return render_table(
      {"Protocol", "Local Address", "Foreign Address", "State", "PID"},
      cells);
}

std::string render_handles(const std::vector<HandleRow>& rows) {
  std::vector<std::vector<std::string>> cells;
  for (const auto& r : rows) {
    cells.push_back({std::to_string(r.pid.value()), r.path});
  }
  return render_table({"PID", "Path"}, cells);
}

std::string render_diff(const DumpDiff& diff) {
  std::ostringstream out;
  out << diff.changed_pages.size() << " pages changed\n";
  if (!diff.new_processes.empty()) {
    out << "New processes:\n" << render_pslist(diff.new_processes);
  }
  if (!diff.exited_processes.empty()) {
    out << "Exited processes:\n" << render_pslist(diff.exited_processes);
  }
  if (!diff.new_sockets.empty()) {
    out << "New sockets:\n" << render_netscan(diff.new_sockets);
  }
  if (!diff.new_handles.empty()) {
    out << "New file handles:\n" << render_handles(diff.new_handles);
  }
  if (!diff.changed_syscall_slots.empty()) {
    out << "Changed syscall slots:";
    for (const auto s : diff.changed_syscall_slots) out << " " << s;
    out << "\n";
  }
  return out.str();
}

}  // namespace crimes::forensics
