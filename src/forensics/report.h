// Forensic report builder: assembles the plugin outputs into the
// administrator-facing text the paper shows in section 5.6 (malware name /
// pid / start time, open sockets, open file handles, psxview results, ...).
#pragma once

#include "forensics/plugins.h"

#include <string>
#include <vector>

namespace crimes::forensics {

class ForensicReport {
 public:
  explicit ForensicReport(std::string title) : title_(std::move(title)) {}

  void add_section(const std::string& heading, const std::string& body);
  void add_table(const std::string& heading,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool contains(const std::string& needle) const;

 private:
  std::string title_;
  std::vector<std::string> sections_;
};

// Table renderers for the standard plugins.
[[nodiscard]] std::string render_pslist(const std::vector<PsEntry>& entries);
[[nodiscard]] std::string render_psxview(const std::vector<PsxRow>& rows);
[[nodiscard]] std::string render_netscan(const std::vector<NetscanRow>& rows);
[[nodiscard]] std::string render_handles(const std::vector<HandleRow>& rows);
[[nodiscard]] std::string render_diff(const DumpDiff& diff);

}  // namespace crimes::forensics
