// Full-system memory dump: the input to the Volatility-style plugins.
//
// A dump is a frozen copy of a VM's pages plus its vCPU state, labelled and
// timestamped. CRIMES snapshots three of these around an attack: the last
// clean checkpoint, the end of the failed epoch, and (after replay) the
// precise attack instant (section 5.5).
#pragma once

#include "common/sim_clock.h"
#include "common/types.h"
#include "guestos/kernel_layout.h"
#include "hypervisor/vm.h"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace crimes {

class MemoryDump {
 public:
  // Captures `vm` in whatever state it is in (dom0 can dump suspended and
  // paused domains alike).
  static MemoryDump capture(const Vm& vm, const SymbolTable& symbols,
                            OsFlavor flavor, std::string label,
                            Nanos captured_at);

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] Nanos captured_at() const { return captured_at_; }
  [[nodiscard]] OsFlavor flavor() const { return flavor_; }
  [[nodiscard]] const SymbolTable& symbols() const { return symbols_; }
  [[nodiscard]] const VcpuState& vcpu() const { return vcpu_; }

  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }
  [[nodiscard]] const Page& page(Pfn pfn) const;

  // VA-space reads through the dumped page table (rooted at the dumped
  // CR3). Return nullopt on translation faults -- forensics tools must
  // survive corrupted page tables.
  [[nodiscard]] std::optional<Paddr> translate(Vaddr va) const;
  [[nodiscard]] bool read_bytes(Vaddr va, std::span<std::byte> out) const;
  [[nodiscard]] std::optional<std::uint64_t> read_u64(Vaddr va) const;
  [[nodiscard]] std::optional<std::uint32_t> read_u32(Vaddr va) const;
  [[nodiscard]] std::optional<std::string> read_str(Vaddr va,
                                                    std::size_t max_len) const;

  // Size on disk if persisted (used for cost accounting).
  [[nodiscard]] std::uint64_t byte_size() const {
    return pages_.size() * kPageSize;
  }

 private:
  MemoryDump() = default;

  std::string label_;
  Nanos captured_at_{0};
  OsFlavor flavor_ = OsFlavor::Linux;
  SymbolTable symbols_;
  VcpuState vcpu_;
  std::vector<Page> pages_;
};

}  // namespace crimes
