// Volatility-style forensics plugins over MemoryDump snapshots.
//
// Plugin semantics follow the tools the paper invokes (sections 4.2, 5.5,
// 5.6):
//   pslist   -- walk the kernel's task list (what the OS *claims* runs)
//   psscan   -- heuristic sweep of raw physical memory for task records
//               (finds processes a rootkit unlinked)
//   psxview  -- cross-view of pslist / psscan / pid-hash membership
//   modscan  -- module list walk plus raw sweep for module records
//   netscan  -- parse the socket table
//   handles  -- parse the open-file-handle table
//   procdump -- extract a process image for sandbox analysis
//   proc_maps/linux_dump_map -- address-space map and region dump
//   syscall_table -- raw table contents
// plus DumpDiff, which compares two dumps around an attack (section 3.3:
// "CRIMES can determine the differences between the two dumps and
// highlight them for an investigator").
#pragma once

#include "forensics/memory_dump.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace crimes::forensics {

struct PsEntry {
  Pid pid;
  std::uint32_t uid = 0;
  std::string name;
  std::uint32_t state = 0;
  std::uint64_t start_time_ns = 0;
  Vaddr task_va;
};

[[nodiscard]] std::vector<PsEntry> pslist(const MemoryDump& dump);
[[nodiscard]] std::vector<PsEntry> psscan(const MemoryDump& dump);

struct PsxRow {
  PsEntry proc;
  bool in_pslist = false;
  bool in_psscan = false;
  bool in_pid_hash = false;

  // A row that psscan/pid-hash sees but pslist does not is the paper's
  // "potentially malicious" signature.
  [[nodiscard]] bool suspicious() const { return !in_pslist; }
};

[[nodiscard]] std::vector<PsxRow> psxview(const MemoryDump& dump);

struct ModEntry {
  std::string name;
  std::uint64_t size = 0;
  Vaddr module_va;
  bool in_list = false;  // reachable from the modules list head
};

[[nodiscard]] std::vector<ModEntry> modscan(const MemoryDump& dump);

struct NetscanRow {
  Pid pid;
  std::uint32_t proto = 6;
  std::uint32_t state = 0;
  std::string local;   // "a.b.c.d:port"
  std::string remote;
  Vaddr entry_va;
};

[[nodiscard]] const char* tcp_state_name(std::uint32_t state);
[[nodiscard]] std::vector<NetscanRow> netscan(const MemoryDump& dump);

struct HandleRow {
  Pid pid;
  std::string path;
  Vaddr entry_va;
};

[[nodiscard]] std::vector<HandleRow> handles(const MemoryDump& dump);

struct ProcdumpResult {
  PsEntry proc;
  std::vector<std::byte> image;  // extracted task record + context bytes
};

// Returns nullopt when the pid is not found in either pslist or psscan.
[[nodiscard]] std::optional<ProcdumpResult> procdump(const MemoryDump& dump,
                                                     Pid pid);

struct VadRegion {
  Vaddr start;
  Vaddr end;
  std::string label;
};

// linux_proc_maps-style address-space map for one process.
[[nodiscard]] std::vector<VadRegion> proc_maps(const MemoryDump& dump,
                                               Pid pid);

// linux_dump_map: raw bytes of one mapped region (clamped to `max_bytes`).
[[nodiscard]] std::vector<std::byte> dump_map(const MemoryDump& dump,
                                              const VadRegion& region,
                                              std::size_t max_bytes);

[[nodiscard]] std::vector<std::uint64_t> syscall_table(const MemoryDump& dump);

// --- malfind: shellcode hunting ---------------------------------------------

struct MalfindHit {
  Vaddr va;            // start of the suspicious bytes
  std::size_t length = 0;
  std::string reason;  // e.g. "NOP sled (24 bytes) + syscall stub"
};

// Sweeps raw physical memory for shellcode signatures: long NOP sleds and
// `mov rax, imm; syscall` stubs. Like Volatility's malfind, it trades
// false positives for coverage; callers triage the hits.
[[nodiscard]] std::vector<MalfindHit> malfind(const MemoryDump& dump,
                                              std::size_t min_sled = 16);

// --- timeline: event ordering --------------------------------------------------

struct TimelineEvent {
  std::uint64_t at_ns = 0;
  std::string description;
};

// Orders process starts (from psscan, so hidden processes appear too)
// into a forensic timeline.
[[nodiscard]] std::vector<TimelineEvent> timeline(const MemoryDump& dump);

// --- Dump diffing -----------------------------------------------------------

struct DumpDiff {
  std::vector<Pfn> changed_pages;
  std::vector<PsEntry> new_processes;
  std::vector<PsEntry> exited_processes;
  std::vector<NetscanRow> new_sockets;
  std::vector<HandleRow> new_handles;
  std::vector<std::size_t> changed_syscall_slots;

  [[nodiscard]] static DumpDiff compute(const MemoryDump& before,
                                        const MemoryDump& after);
  [[nodiscard]] bool empty() const {
    return changed_pages.empty() && new_processes.empty() &&
           exited_processes.empty() && new_sockets.empty() &&
           new_handles.empty() && changed_syscall_slots.empty();
  }
};

}  // namespace crimes::forensics
