// Persisting attack artifacts to disk for offline investigators.
//
// Section 5.5: after an attack CRIMES writes the forensic report plus the
// full-system checkpoints "to disk ... which can take tens of seconds for
// large VMs". The ArtifactStore lays a case directory out as:
//
//   <root>/<case-id>/
//     MANIFEST.txt          one line per artifact: kind, file, bytes
//     report.txt            the rendered forensic report
//     <label>.dump          raw page images (page-sized records), one per
//                           MemoryDump, preceded by a small header
//
// Dumps round-trip: load_dump() restores a MemoryDump (minus symbols,
// which travel out of band exactly like a System.map would).
#pragma once

#include "forensics/memory_dump.h"

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace crimes::forensics {

// A dump read back from disk. Symbols are not serialized (they travel out
// of band, like a System.map), so this is the raw-image portion only.
struct MemoryDumpData {
  std::string label;
  Nanos captured_at{0};
  VcpuState vcpu;
  std::vector<Page> pages;
};

struct ArtifactInfo {
  std::string kind;  // "report" | "dump"
  std::filesystem::path file;
  std::uint64_t bytes = 0;
};

class ArtifactStore {
 public:
  // Artifacts land under root/case_id (created on demand).
  ArtifactStore(std::filesystem::path root, std::string case_id);

  [[nodiscard]] const std::filesystem::path& directory() const {
    return dir_;
  }

  // Writes the rendered forensic report; returns its path.
  std::filesystem::path save_report(const std::string& text);

  // Serializes a dump (header + raw pages). Returns its path.
  std::filesystem::path save_dump(const MemoryDump& dump);

  // Restores a serialized dump. `symbols` and `flavor` are supplied by the
  // caller, like a Volatility profile. Throws std::runtime_error on a
  // malformed file.
  [[nodiscard]] static MemoryDumpData load_dump(
      const std::filesystem::path& file);

  // Everything saved so far, in order; also flushed to MANIFEST.txt.
  [[nodiscard]] const std::vector<ArtifactInfo>& manifest() const {
    return manifest_;
  }

 private:
  void append_manifest(const ArtifactInfo& info);

  std::filesystem::path dir_;
  std::vector<ArtifactInfo> manifest_;
};

}  // namespace crimes::forensics
