#include "forensics/plugins.h"

#include "common/bytes.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

namespace crimes::forensics {

namespace {

constexpr std::size_t kMaxListWalk = 1 << 16;

std::optional<PsEntry> read_task(const MemoryDump& dump, Vaddr task_va) {
  const auto pid = dump.read_u32(task_va + TaskLayout::kPidOff);
  const auto uid = dump.read_u32(task_va + TaskLayout::kUidOff);
  const auto state = dump.read_u32(task_va + TaskLayout::kStateOff);
  const auto name = dump.read_str(task_va + TaskLayout::kCommOff,
                                  TaskLayout::kCommLen);
  const auto start = dump.read_u64(task_va + TaskLayout::kStartTimeOff);
  if (!pid || !uid || !state || !name || !start) return std::nullopt;
  return PsEntry{.pid = Pid{*pid}, .uid = *uid, .name = *name,
                 .state = *state, .start_time_ns = *start, .task_va = task_va};
}

Vaddr head_symbol(const MemoryDump& dump, const char* which) {
  const SymbolNames names = SymbolNames::for_flavor(dump.flavor());
  if (std::string(which) == "tasks") return dump.symbols().lookup(names.task_list_head);
  if (std::string(which) == "modules") {
    return dump.symbols().lookup(names.module_list_head);
  }
  throw std::logic_error("head_symbol: unknown head");
}

bool plausible_name(const std::string& name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isprint(c) != 0;
  });
}

}  // namespace

std::vector<PsEntry> pslist(const MemoryDump& dump) {
  std::vector<PsEntry> out;
  const Vaddr head = head_symbol(dump, "tasks");
  auto next = dump.read_u64(head + TaskLayout::kNextOff);
  std::size_t steps = 0;
  while (next && Vaddr{*next} != head) {
    if (++steps > kMaxListWalk) break;  // corrupted list: stop, keep partial
    const Vaddr cur{*next};
    if (auto task = read_task(dump, cur)) out.push_back(std::move(*task));
    next = dump.read_u64(cur + TaskLayout::kNextOff);
  }
  return out;
}

std::vector<PsEntry> psscan(const MemoryDump& dump) {
  // Heuristic raw sweep: look for the task magic at every 16-byte-aligned
  // offset of every physical page, then sanity-check the candidate record.
  std::vector<PsEntry> out;
  for (std::size_t p = 0; p < dump.page_count(); ++p) {
    const auto bytes = dump.page(Pfn{p}).bytes();
    for (std::size_t off = 0; off + TaskLayout::kSize <= kPageSize;
         off += 16) {
      if (load_le<std::uint32_t>(bytes, off + TaskLayout::kMagicOff) !=
          TaskLayout::kMagic) {
        continue;
      }
      const auto pid = load_le<std::uint32_t>(bytes, off + TaskLayout::kPidOff);
      const std::string name =
          load_cstr(bytes, off + TaskLayout::kCommOff, TaskLayout::kCommLen);
      if (pid > 4'000'000 || !plausible_name(name)) continue;
      out.push_back(PsEntry{
          .pid = Pid{pid},
          .uid = load_le<std::uint32_t>(bytes, off + TaskLayout::kUidOff),
          .name = name,
          .state = load_le<std::uint32_t>(bytes, off + TaskLayout::kStateOff),
          .start_time_ns =
              load_le<std::uint64_t>(bytes, off + TaskLayout::kStartTimeOff),
          .task_va = Vaddr{kVaBase + (p << kPageShift) + off},
      });
    }
  }
  return out;
}

std::vector<PsxRow> psxview(const MemoryDump& dump) {
  const auto listed = pslist(dump);
  const auto scanned = psscan(dump);

  std::unordered_set<std::uint64_t> in_list;
  for (const auto& p : listed) in_list.insert(p.task_va.value());

  std::unordered_set<std::uint64_t> in_hash;
  {
    const SymbolNames names = SymbolNames::for_flavor(dump.flavor());
    const Vaddr table = dump.symbols().lookup(names.pid_hash);
    for (std::size_t i = 0; i < kPidHashBuckets; ++i) {
      if (auto v = dump.read_u64(table + i * 8); v && *v != 0) {
        in_hash.insert(*v);
      }
    }
  }

  std::vector<PsxRow> rows;
  std::unordered_set<std::uint64_t> seen;
  for (const auto& p : scanned) {
    if (p.pid.value() == 0) continue;  // the idle/swapper sentinel
    seen.insert(p.task_va.value());
    rows.push_back(PsxRow{
        .proc = p,
        .in_pslist = in_list.contains(p.task_va.value()),
        .in_psscan = true,
        .in_pid_hash = in_hash.contains(p.task_va.value()),
    });
  }
  // Anything pslist saw that psscan somehow missed still gets a row.
  for (const auto& p : listed) {
    if (seen.contains(p.task_va.value())) continue;
    rows.push_back(PsxRow{
        .proc = p,
        .in_pslist = true,
        .in_psscan = false,
        .in_pid_hash = in_hash.contains(p.task_va.value()),
    });
  }
  std::sort(rows.begin(), rows.end(), [](const PsxRow& a, const PsxRow& b) {
    return a.proc.pid < b.proc.pid;
  });
  return rows;
}

std::vector<ModEntry> modscan(const MemoryDump& dump) {
  std::unordered_set<std::uint64_t> in_list;
  {
    const Vaddr head = head_symbol(dump, "modules");
    auto next = dump.read_u64(head + ModuleLayout::kNextOff);
    std::size_t steps = 0;
    while (next && Vaddr{*next} != head && ++steps <= kMaxListWalk) {
      in_list.insert(*next);
      next = dump.read_u64(Vaddr{*next} + ModuleLayout::kNextOff);
    }
  }

  std::vector<ModEntry> out;
  for (std::size_t p = 0; p < dump.page_count(); ++p) {
    const auto bytes = dump.page(Pfn{p}).bytes();
    for (std::size_t off = 0; off + ModuleLayout::kSize <= kPageSize;
         off += 16) {
      if (load_le<std::uint32_t>(bytes, off + ModuleLayout::kMagicOff) !=
          ModuleLayout::kMagic) {
        continue;
      }
      const std::string name =
          load_cstr(bytes, off + ModuleLayout::kNameOff,
                    ModuleLayout::kNameLen);
      if (!plausible_name(name) || name == "__module_head") continue;
      const Vaddr va{kVaBase + (p << kPageShift) + off};
      out.push_back(ModEntry{
          .name = name,
          .size = load_le<std::uint64_t>(bytes, off + ModuleLayout::kSizeOff),
          .module_va = va,
          .in_list = in_list.contains(va.value()),
      });
    }
  }
  return out;
}

const char* tcp_state_name(std::uint32_t state) {
  switch (state) {
    case 1: return "ESTABLISHED";
    case 2: return "SYN_SENT";
    case 3: return "SYN_RECV";
    case 4: return "FIN_WAIT1";
    case 5: return "FIN_WAIT2";
    case 6: return "TIME_WAIT";
    case 7: return "CLOSE";
    case 8: return "CLOSE_WAIT";
    case 9: return "LAST_ACK";
    case 10: return "LISTEN";
    default: return "UNKNOWN";
  }
}

namespace {
std::string endpoint(std::uint32_t ip, std::uint16_t port) {
  return std::to_string((ip >> 24) & 0xFF) + "." +
         std::to_string((ip >> 16) & 0xFF) + "." +
         std::to_string((ip >> 8) & 0xFF) + "." + std::to_string(ip & 0xFF) +
         ":" + std::to_string(port);
}
}  // namespace

std::vector<NetscanRow> netscan(const MemoryDump& dump) {
  std::vector<NetscanRow> out;
  const SymbolNames names = SymbolNames::for_flavor(dump.flavor());
  const Vaddr table = dump.symbols().lookup(names.socket_table);
  for (std::size_t i = 0;; ++i) {
    const Vaddr base = table + i * SocketLayout::kSize;
    const auto magic = dump.read_u32(base + SocketLayout::kMagicOff);
    if (!magic) break;  // ran off the mapped table region
    if (*magic != SocketLayout::kMagic) continue;
    out.push_back(NetscanRow{
        .pid = Pid{dump.read_u32(base + SocketLayout::kPidOff).value_or(0)},
        .proto = dump.read_u32(base + SocketLayout::kProtoOff).value_or(0),
        .state = dump.read_u32(base + SocketLayout::kStateOff).value_or(0),
        .local = endpoint(
            dump.read_u32(base + SocketLayout::kLocalIpOff).value_or(0),
            static_cast<std::uint16_t>(
                dump.read_u32(base + SocketLayout::kLocalPortOff)
                    .value_or(0))),
        .remote = endpoint(
            dump.read_u32(base + SocketLayout::kRemoteIpOff).value_or(0),
            static_cast<std::uint16_t>(
                dump.read_u32(base + SocketLayout::kRemotePortOff)
                    .value_or(0))),
        .entry_va = base,
    });
  }
  return out;
}

std::vector<HandleRow> handles(const MemoryDump& dump) {
  std::vector<HandleRow> out;
  const SymbolNames names = SymbolNames::for_flavor(dump.flavor());
  const Vaddr table = dump.symbols().lookup(names.file_table);
  for (std::size_t i = 0;; ++i) {
    const Vaddr base = table + i * FileHandleLayout::kSize;
    const auto magic = dump.read_u32(base + FileHandleLayout::kMagicOff);
    if (!magic) break;
    if (*magic != FileHandleLayout::kMagic) continue;
    out.push_back(HandleRow{
        .pid = Pid{dump.read_u32(base + FileHandleLayout::kPidOff)
                       .value_or(0)},
        .path = dump.read_str(base + FileHandleLayout::kPathOff,
                              FileHandleLayout::kPathLen)
                    .value_or(""),
        .entry_va = base,
    });
  }
  return out;
}

std::optional<ProcdumpResult> procdump(const MemoryDump& dump, Pid pid) {
  std::optional<PsEntry> target;
  for (const auto& p : pslist(dump)) {
    if (p.pid == pid) { target = p; break; }
  }
  if (!target) {
    for (const auto& p : psscan(dump)) {
      if (p.pid == pid) { target = p; break; }
    }
  }
  if (!target) return std::nullopt;

  ProcdumpResult result;
  result.proc = *target;
  // Extract the task record plus the surrounding slab page: enough context
  // for sandbox analysis of the simulated "executable".
  result.image.resize(kPageSize);
  const Vaddr page_start{target->task_va.value() & ~kPageOffsetMask};
  if (!dump.read_bytes(page_start, result.image)) result.image.clear();
  return result;
}

std::vector<VadRegion> proc_maps(const MemoryDump& dump, Pid pid) {
  std::vector<VadRegion> out;
  std::optional<PsEntry> target;
  for (const auto& p : pslist(dump)) {
    if (p.pid == pid) { target = p; break; }
  }
  if (!target) return out;

  const auto mm = dump.read_u64(target->task_va + TaskLayout::kMmOff);
  if (mm && *mm != 0) {
    // The guest is a single-address-space image; report its heap window.
    const SymbolNames names = SymbolNames::for_flavor(dump.flavor());
    const Vaddr heap{*mm};
    out.push_back(VadRegion{.start = heap,
                            .end = Vaddr{kVaBase + (dump.page_count()
                                                    << kPageShift)},
                            .label = "[heap]"});
    out.push_back(VadRegion{
        .start = dump.symbols().lookup(names.kernel_text),
        .end = dump.symbols().lookup(names.kernel_text) + 64 * kPageSize,
        .label = "[text]"});
  }
  return out;
}

std::vector<std::byte> dump_map(const MemoryDump& dump,
                                const VadRegion& region,
                                std::size_t max_bytes) {
  const std::uint64_t span_bytes = region.end.value() - region.start.value();
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(span_bytes, max_bytes));
  std::vector<std::byte> out(n);
  if (!dump.read_bytes(region.start, out)) out.clear();
  return out;
}

std::vector<std::uint64_t> syscall_table(const MemoryDump& dump) {
  const SymbolNames names = SymbolNames::for_flavor(dump.flavor());
  const Vaddr table = dump.symbols().lookup(names.syscall_table);
  std::vector<std::uint64_t> out(kSyscallCount);
  if (!dump.read_bytes(table,
                       std::span<std::byte>(
                           reinterpret_cast<std::byte*>(out.data()),
                           out.size() * sizeof(std::uint64_t)))) {
    out.clear();
  }
  return out;
}


std::vector<MalfindHit> malfind(const MemoryDump& dump,
                                std::size_t min_sled) {
  std::vector<MalfindHit> hits;
  for (std::size_t p = 0; p < dump.page_count(); ++p) {
    const auto bytes = dump.page(Pfn{p}).bytes();
    std::size_t i = 0;
    while (i < kPageSize) {
      // Count a run of 0x90 NOPs.
      std::size_t sled = 0;
      while (i + sled < kPageSize && bytes[i + sled] == std::byte{0x90}) {
        ++sled;
      }
      if (sled >= min_sled) {
        // Does a syscall stub follow? mov rax, imm32 (48 C7 C0 ..) then
        // syscall (0F 05).
        const std::size_t after = i + sled;
        bool stub = false;
        if (after + 9 <= kPageSize && bytes[after] == std::byte{0x48} &&
            bytes[after + 1] == std::byte{0xC7} &&
            bytes[after + 2] == std::byte{0xC0} &&
            bytes[after + 7] == std::byte{0x0F} &&
            bytes[after + 8] == std::byte{0x05}) {
          stub = true;
        }
        hits.push_back(MalfindHit{
            .va = Vaddr{kVaBase + (p << kPageShift) + i},
            .length = sled + (stub ? 9 : 0),
            .reason = "NOP sled (" + std::to_string(sled) + " bytes)" +
                      (stub ? " + syscall stub" : ""),
        });
        i = after + (stub ? 9 : 0);
        continue;
      }
      i += sled + 1;
    }
  }
  return hits;
}

std::vector<TimelineEvent> timeline(const MemoryDump& dump) {
  std::vector<TimelineEvent> events;
  std::unordered_set<std::uint64_t> listed;
  for (const auto& p : pslist(dump)) listed.insert(p.task_va.value());
  for (const auto& p : psscan(dump)) {
    if (p.pid.value() == 0) continue;
    const bool hidden = !listed.contains(p.task_va.value());
    events.push_back(TimelineEvent{
        .at_ns = p.start_time_ns,
        .description = "process '" + p.name + "' (pid " +
                       std::to_string(p.pid.value()) + ") started" +
                       (hidden ? " [HIDDEN from task list]" : ""),
    });
  }
  std::sort(events.begin(), events.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.at_ns < b.at_ns;
            });
  return events;
}

DumpDiff DumpDiff::compute(const MemoryDump& before, const MemoryDump& after) {
  DumpDiff diff;

  const std::size_t pages = std::min(before.page_count(), after.page_count());
  for (std::size_t i = 0; i < pages; ++i) {
    if (!(before.page(Pfn{i}) == after.page(Pfn{i}))) {
      diff.changed_pages.push_back(Pfn{i});
    }
  }

  const auto idx = [](const std::vector<PsEntry>& v) {
    std::unordered_map<std::uint32_t, PsEntry> m;
    for (const auto& p : v) m.emplace(p.pid.value(), p);
    return m;
  };
  const auto before_ps = idx(pslist(before));
  const auto after_ps = idx(pslist(after));
  for (const auto& [pid, p] : after_ps) {
    if (!before_ps.contains(pid)) diff.new_processes.push_back(p);
  }
  for (const auto& [pid, p] : before_ps) {
    if (!after_ps.contains(pid)) diff.exited_processes.push_back(p);
  }

  std::unordered_set<std::uint64_t> before_socks;
  for (const auto& s : netscan(before)) before_socks.insert(s.entry_va.value());
  for (const auto& s : netscan(after)) {
    if (!before_socks.contains(s.entry_va.value())) {
      diff.new_sockets.push_back(s);
    }
  }

  std::unordered_set<std::uint64_t> before_handles;
  for (const auto& h : handles(before)) {
    before_handles.insert(h.entry_va.value());
  }
  for (const auto& h : handles(after)) {
    if (!before_handles.contains(h.entry_va.value())) {
      diff.new_handles.push_back(h);
    }
  }

  const auto sys_before = syscall_table(before);
  const auto sys_after = syscall_table(after);
  for (std::size_t i = 0;
       i < std::min(sys_before.size(), sys_after.size()); ++i) {
    if (sys_before[i] != sys_after[i]) diff.changed_syscall_slots.push_back(i);
  }
  return diff;
}

}  // namespace crimes::forensics
