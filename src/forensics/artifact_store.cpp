#include "forensics/artifact_store.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace crimes::forensics {

namespace {

constexpr char kMagic[10] = {'C', 'R', 'I', 'M', 'E', 'S',
                             'D', 'M', 'P', '1'};

std::string sanitize(const std::string& label) {
  std::string out;
  for (const char c : label) {
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                   c == '-' || c == '_')
                      ? c
                      : '_');
  }
  return out.empty() ? "dump" : out;
}

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("ArtifactStore: truncated dump file");
}

}  // namespace

ArtifactStore::ArtifactStore(std::filesystem::path root, std::string case_id)
    : dir_(root / sanitize(case_id)) {
  std::filesystem::create_directories(dir_);
}

void ArtifactStore::append_manifest(const ArtifactInfo& info) {
  manifest_.push_back(info);
  std::ofstream manifest(dir_ / "MANIFEST.txt", std::ios::app);
  manifest << info.kind << " " << info.file.filename().string() << " "
           << info.bytes << "\n";
}

std::filesystem::path ArtifactStore::save_report(const std::string& text) {
  const std::filesystem::path path = dir_ / "report.txt";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("ArtifactStore: cannot write report");
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.close();
  append_manifest({"report", path, text.size()});
  return path;
}

std::filesystem::path ArtifactStore::save_dump(const MemoryDump& dump) {
  const std::filesystem::path path =
      dir_ / (sanitize(dump.label()) + ".dump");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("ArtifactStore: cannot write dump");

  out.write(kMagic, sizeof(kMagic));
  const auto label_len = static_cast<std::uint32_t>(dump.label().size());
  write_pod(out, label_len);
  out.write(dump.label().data(), label_len);
  write_pod(out, dump.captured_at().count());
  write_pod(out, dump.vcpu());
  write_pod(out, static_cast<std::uint64_t>(dump.page_count()));
  for (std::size_t i = 0; i < dump.page_count(); ++i) {
    out.write(reinterpret_cast<const char*>(dump.page(Pfn{i}).data.data()),
              kPageSize);
  }
  out.close();

  append_manifest({"dump", path, std::filesystem::file_size(path)});
  return path;
}

MemoryDumpData ArtifactStore::load_dump(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("ArtifactStore: cannot open dump file");

  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("ArtifactStore: not a CRIMES dump file");
  }

  MemoryDumpData data;
  std::uint32_t label_len = 0;
  read_pod(in, label_len);
  if (label_len > 4096) {
    throw std::runtime_error("ArtifactStore: implausible label length");
  }
  data.label.resize(label_len);
  in.read(data.label.data(), label_len);
  std::int64_t at = 0;
  read_pod(in, at);
  data.captured_at = Nanos{at};
  read_pod(in, data.vcpu);
  std::uint64_t page_count = 0;
  read_pod(in, page_count);
  if (page_count > (1u << 24)) {  // 64 GiB guard
    throw std::runtime_error("ArtifactStore: implausible page count");
  }
  data.pages.resize(page_count);
  for (auto& page : data.pages) {
    in.read(reinterpret_cast<char*>(page.data.data()), kPageSize);
    if (!in) throw std::runtime_error("ArtifactStore: truncated dump file");
  }
  return data;
}

}  // namespace crimes::forensics
