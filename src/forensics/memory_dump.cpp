#include "forensics/memory_dump.h"

#include "common/bytes.h"
#include "guestos/guest_page_table.h"

#include <cstring>
#include <stdexcept>

namespace crimes {

MemoryDump MemoryDump::capture(const Vm& vm, const SymbolTable& symbols,
                               OsFlavor flavor, std::string label,
                               Nanos captured_at) {
  MemoryDump dump;
  dump.label_ = std::move(label);
  dump.captured_at_ = captured_at;
  dump.flavor_ = flavor;
  dump.symbols_ = symbols;
  dump.vcpu_ = vm.vcpu();
  dump.pages_.resize(vm.page_count());
  for (std::size_t i = 0; i < vm.page_count(); ++i) {
    dump.pages_[i] = vm.page(Pfn{i});
  }
  return dump;
}

const Page& MemoryDump::page(Pfn pfn) const {
  if (pfn.value() >= pages_.size()) {
    throw std::out_of_range("MemoryDump::page: PFN out of range");
  }
  return pages_[pfn.value()];
}

std::optional<Paddr> MemoryDump::translate(Vaddr va) const {
  if (va.value() < kVaBase) return std::nullopt;
  const std::uint64_t vpn = (va.value() - kVaBase) >> kPageShift;
  if (vpn >= pages_.size()) return std::nullopt;

  const Pfn table_base{vcpu_.cr3 >> kPageShift};
  const std::uint64_t pte_byte_off = vpn * sizeof(std::uint64_t);
  const Pfn pte_page{table_base.value() + pte_byte_off / kPageSize};
  if (pte_page.value() >= pages_.size()) return std::nullopt;
  const std::uint64_t pte = load_le<std::uint64_t>(
      page(pte_page).bytes(), pte_byte_off % kPageSize);
  if ((pte & GuestPageTable::kPresent) == 0) return std::nullopt;
  const Pfn frame{pte >> kPageShift};
  if (frame.value() >= pages_.size()) return std::nullopt;
  return Paddr::from(frame, va.value() & kPageOffsetMask);
}

bool MemoryDump::read_bytes(Vaddr va, std::span<std::byte> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const Vaddr cur = va + done;
    const auto pa = translate(cur);
    if (!pa) return false;
    const std::size_t chunk =
        std::min(out.size() - done, kPageSize - pa->page_offset());
    std::memcpy(out.data() + done,
                page(pa->pfn()).data.data() + pa->page_offset(), chunk);
    done += chunk;
  }
  return true;
}

std::optional<std::uint64_t> MemoryDump::read_u64(Vaddr va) const {
  std::uint64_t v;
  if (!read_bytes(va, std::span<std::byte>(reinterpret_cast<std::byte*>(&v),
                                           sizeof(v)))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint32_t> MemoryDump::read_u32(Vaddr va) const {
  std::uint32_t v;
  if (!read_bytes(va, std::span<std::byte>(reinterpret_cast<std::byte*>(&v),
                                           sizeof(v)))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::string> MemoryDump::read_str(Vaddr va,
                                                std::size_t max_len) const {
  std::vector<std::byte> buf(max_len);
  if (!read_bytes(va, buf)) return std::nullopt;
  return load_cstr(buf, 0, max_len);
}

}  // namespace crimes
