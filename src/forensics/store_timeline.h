// Forensic timeline over the checkpoint store's generation chain.
//
// With only one backup, forensics can answer "what differs between now and
// the last clean checkpoint?". With a retained chain it can also answer
// *when*: the chain stores a digest per changed page per generation, so
// locating the first generation at which a corrupted page diverged from
// its clean baseline is a digest comparison -- no page decode -- and a
// bisection over the retained history (section 3.1's "history of
// checkpoints" extension, applied to investigation).
#pragma once

#include "replication/store_journal.h"
#include "store/generation_chain.h"

#include <cstdint>
#include <string>

namespace crimes::forensics {

struct DivergencePoint {
  bool found = false;
  // First retained generation whose content of the page differs from the
  // oldest retained generation's (the investigation baseline).
  std::uint64_t epoch = 0;
  std::size_t chain_index = 0;
  std::uint64_t baseline_digest = 0;
  std::uint64_t diverged_digest = 0;
  // digest_at probes spent -- O(log generations), pinned by test.
  std::size_t generations_probed = 0;
};

// Bisects the chain for the first generation where `pfn` no longer
// matches the oldest retained generation. Assumes the corruption persists
// once introduced (true for the canary/kernel-text corruptions CRIMES
// hunts: the attacker's write stays until rollback); a page that was
// corrupted and later restored to baseline bytes can evade bisection,
// which is exactly the blind spot the per-epoch online audit covers.
[[nodiscard]] DivergencePoint first_divergence(
    const store::GenerationChain& chain, Pfn pfn);

// Human-readable per-generation digest timeline for `pfn` (one line per
// retained generation, divergence marked; attestation roots shown when the
// chain carries them) for forensic reports.
[[nodiscard]] std::string render_page_timeline(
    const store::GenerationChain& chain, Pfn pfn);

// Renders a journal fsck verdict for a forensic report: which record the
// walk rejected, at what byte offset, and why -- the keyed reasons
// (DESIGN.md section 15) localize exactly which durable record the
// adversary touched, not just that "something" was torn.
[[nodiscard]] std::string render_fsck(
    const replication::StoreJournal::FsckReport& report);

}  // namespace crimes::forensics
