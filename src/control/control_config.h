// Configuration, input record, and decision record for the closed-loop
// control plane (ROADMAP item 5). Kept dependency-light (only the clock
// types) so CrimesConfig can embed a ControlConfig without pulling the
// controller implementation into every translation unit.
#pragma once

#include "common/sim_clock.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace crimes::control {

// The four actuators the controller owns. Everything it changes at
// runtime goes through one of these, so the decision log is a complete
// audit trail of why the system's configuration drifted from the static
// CrimesConfig it booted with.
enum class Knob : std::uint8_t {
  EpochInterval,      // checkpoint cadence (subsumes AdaptiveIntervalController)
  ScanSchedule,       // full conservative sweep cadence (ScanPlanner bypass)
  ReplicationWindow,  // replication in-flight window (backpressure bound)
  GcBudget,           // store GC generations retired per epoch
};

[[nodiscard]] const char* to_string(Knob knob);

inline constexpr std::size_t kKnobCount = 4;

struct ControlConfig {
  bool enabled = false;

  // Epochs between control cycles. Inputs are recorded every epoch; the
  // policies only run (and knobs only move) once per cycle.
  std::size_t cycle_every = 4;

  // Epochs of telemetry the windowed pause percentiles look back over
  // (passed to TimeSeriesEngine window queries).
  std::size_t window = 16;

  // Hysteresis shared by every policy: relative errors inside the
  // deadband are ignored; after a move a knob rests for settle_cycles
  // control cycles; no single move changes a knob by more than a factor
  // of max_step. EWMA smoothing applied to the pause signal before the
  // interval policy sees it (same role as AdaptiveIntervalConfig's).
  double deadband = 0.15;
  std::size_t settle_cycles = 2;
  double max_step = 1.3;
  double smoothing = 0.5;

  // Replayable input ring + decision log bounds.
  std::size_t history_capacity = 512;
  std::size_t decision_capacity = 256;

  // --- Epoch-interval policy (gradient toward pause/target_overhead,
  //     guarded by the pause-p95 and vulnerability-window budgets) ---
  bool manage_interval = true;
  Nanos min_interval = millis(20);
  Nanos max_interval = millis(400);
  double target_overhead = 0.05;

  // --- Scan-schedule policy: every Nth audit runs without a ScanPlan
  //     (a full conservative sweep). 0 = never; smaller = deeper
  //     coverage. The controller engages sweeps only with SLO headroom.
  bool manage_scan = true;
  std::size_t min_full_sweep_every = 8;
  std::size_t max_full_sweep_every = 64;

  // --- Replication in-flight window policy (AIMD) ---
  bool manage_window = true;
  std::size_t min_window = 1;
  std::size_t max_window = 16;

  // --- Store GC budget policy (AIMD against the reclaimable backlog) ---
  bool manage_gc = true;
  std::size_t min_gc_budget = 1;
  std::size_t max_gc_budget = 16;
};

// One epoch's worth of sensor readings, recorded before the cycle runs.
// Decisions are a pure function of the recorded stream (plus the config,
// cost model, and targets), which is what makes replay() exact.
struct ControlInputs {
  std::uint64_t epoch = 0;
  double interval_ms = 0.0;       // interval the epoch actually used
  double pause_ms = 0.0;          // this epoch's pause_total
  double pause_p95_ms = 0.0;      // windowed, from the TimeSeriesEngine
  double pause_p99_ms = 0.0;
  double audit_ms = 0.0;          // this epoch's VMI share
  double vulnerability_ms = 0.0;  // 0 under Synchronous output commit
  double replication_lag = 0.0;   // in-flight generations (replication.lag)
  double replication_stall_ms = 0.0;  // backpressure stall charged this epoch
  double dirty_pages = 0.0;
  double store_backlog = 0.0;  // generations GC could retire right now
  std::uint8_t governor = 0;   // 0 Normal / 1 Degraded / 2 Frozen
  std::uint8_t slo = 0;        // SloState as int (0 Healthy / 1 Warn / 2 Crit)
};

// One knob movement. `reason` always points at a string literal inside
// the controller, so decisions are trivially copyable and comparable and
// the hot path never allocates for them.
struct ControlDecision {
  std::uint64_t epoch = 0;
  Knob knob = Knob::EpochInterval;
  double from = 0.0;
  double to = 0.0;
  // Cost-model prediction of the knob's effect at the new value. Units
  // depend on the knob: per-epoch pause ms (EpochInterval), amortized
  // added audit ms per epoch (ScanSchedule), stall ms per epoch expected
  // to be saved or incurred (ReplicationWindow), worst-case GC ms per
  // epoch at the new budget (GcBudget).
  double predicted_ms = 0.0;
  const char* reason = "";
};

[[nodiscard]] inline bool operator==(const ControlDecision& a,
                                     const ControlDecision& b) {
  return a.epoch == b.epoch && a.knob == b.knob && a.from == b.from &&
         a.to == b.to && a.predicted_ms == b.predicted_ms &&
         // Reasons are literals but compare by content so replayed
         // streams from a second ControlPlane instance still match.
         ((a.reason == b.reason) ||
          (a.reason && b.reason &&
           std::char_traits<char>::compare(
               a.reason, b.reason,
               std::char_traits<char>::length(a.reason) + 1) == 0));
}

}  // namespace crimes::control
