#include "control/control_plane.h"

#include "telemetry/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace crimes::control {

namespace {

constexpr std::size_t idx(Knob knob) { return static_cast<std::size_t>(knob); }

// Two knob positions closer than this (relatively) are the same position;
// keeps a clamped proposal from emitting a no-op decision.
constexpr double kSamePosition = 1e-9;

bool same(double a, double b) {
  return std::abs(a - b) <= kSamePosition * std::max(std::abs(a), 1.0);
}

}  // namespace

const char* to_string(Knob knob) {
  switch (knob) {
    case Knob::EpochInterval: return "epoch_interval";
    case Knob::ScanSchedule: return "scan_schedule";
    case Knob::ReplicationWindow: return "replication_window";
    case Knob::GcBudget: return "gc_budget";
  }
  return "unknown";
}

ControlPlane::ControlPlane(ControlConfig config, const CostModel& costs,
                           telemetry::SloBudget targets,
                           Nanos initial_interval, std::size_t initial_window,
                           std::size_t initial_gc_budget)
    : config_(config),
      costs_(&costs),
      targets_(targets),
      interval_(initial_interval),
      window_(initial_window),
      gc_budget_(initial_gc_budget),
      has_window_(initial_window > 0),
      has_gc_(initial_gc_budget > 0) {
  if (config_.cycle_every == 0) config_.cycle_every = 1;
  if (config_.max_step < 1.0) config_.max_step = 1.0 / config_.max_step;
  interval_ = std::clamp(interval_, config_.min_interval,
                         config_.max_interval);
  if (has_window_) {
    window_ = std::clamp(window_, config_.min_window, config_.max_window);
  }
  if (has_gc_) {
    gc_budget_ =
        std::clamp(gc_budget_, config_.min_gc_budget, config_.max_gc_budget);
  }
  // Pre-size the rings so the per-epoch path never allocates after
  // construction (the disabled path allocates nothing at all -- Crimes
  // simply never builds a ControlPlane).
  inputs_.reserve(config_.history_capacity);
  decisions_.reserve(config_.decision_capacity);
}

void ControlPlane::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    metrics_ = {};
    return;
  }
  auto& m = telemetry_->metrics;
  metrics_.interval_ms = &m.gauge("control.interval_ms");
  metrics_.full_sweep = &m.gauge("control.full_sweep_every");
  metrics_.window = &m.gauge("control.window");
  metrics_.gc_budget = &m.gauge("control.gc_budget");
  metrics_.decisions = &m.counter("control.decisions");
  metrics_.holds = &m.counter("control.holds");
  metrics_.cycles = &m.counter("control.cycles");
  publish();
}

ControlPlane::CycleResult ControlPlane::observe(const ControlInputs& in) {
  CycleResult result;
  ++epochs_seen_;

  // Smooth the noisy per-epoch signals before any policy sees them.
  if (epochs_seen_ == 1) {
    smoothed_pause_ms_ = in.pause_ms;
    stall_ewma_ms_ = in.replication_stall_ms;
  } else {
    const double a = config_.smoothing;
    smoothed_pause_ms_ = a * in.pause_ms + (1.0 - a) * smoothed_pause_ms_;
    stall_ewma_ms_ =
        a * in.replication_stall_ms + (1.0 - a) * stall_ewma_ms_;
  }

  // Record the input (replay fuel) before deciding anything.
  if (config_.history_capacity > 0) {
    if (inputs_.size() < config_.history_capacity) {
      inputs_.push_back(in);
    } else {
      inputs_[input_next_] = in;
      input_next_ = (input_next_ + 1) % inputs_.size();
      input_wrapped_ = true;
    }
  }

  if (epochs_seen_ % config_.cycle_every == 0) {
    result.cycle_ran = true;
    run_cycle(in, result);
  }
  return result;
}

void ControlPlane::run_cycle(const ControlInputs& in, CycleResult& result) {
  ++cycles_;
  if (metrics_.cycles) metrics_.cycles->add();

  // Governor precedence: anything but Normal preempts the controller.
  // The governor is already steering (Degraded) or has frozen the VM;
  // moving knobs under it would fight the safety machinery.
  if (in.governor != 0) {
    ++holds_;
    result.held = true;
    if (metrics_.holds) metrics_.holds->add();
    publish();
    return;
  }

  // Knobs rest for settle_cycles evaluated cycles after a move; held
  // cycles do not age the rest counters.
  for (auto& rest : settle_) {
    if (rest > 0) --rest;
  }

  policy_interval(in, result);
  policy_scan(in, result);
  policy_window(in, result);
  policy_gc(in, result);
  publish();
}

void ControlPlane::decide(const ControlInputs& in, Knob knob, double from,
                          double to, double predicted_ms, const char* reason,
                          CycleResult& result) {
  if (decisions_.size() >= config_.decision_capacity &&
      !decisions_.empty()) {
    decisions_.erase(decisions_.begin());
    ++decisions_dropped_;
  }
  decisions_.push_back(
      ControlDecision{in.epoch, knob, from, to, predicted_ms, reason});
  ++adjustments_;
  ++result.decisions;
  settle_[idx(knob)] = config_.settle_cycles;
  if (metrics_.decisions) metrics_.decisions->add();
}

// First-order pause prediction at a new interval: dirty pages scale with
// the interval (rate * T -- ignoring working-set saturation), the
// suspend/resume bases and the audit share stay fixed, and everything
// else scales with the dirty count.
double ControlPlane::predicted_pause_ms(const ControlInputs& in,
                                        double new_interval_ms) const {
  const double dirty = std::max(in.dirty_pages, 1.0);
  const double rate = dirty / std::max(in.interval_ms, 1e-9);
  const double dirty_new = rate * new_interval_ms;
  const double fixed =
      to_ms(costs_->suspend_base + costs_->resume_base) + in.audit_ms;
  const double variable = std::max(0.0, in.pause_ms - fixed);
  return fixed + variable * (dirty_new / dirty);
}

void ControlPlane::policy_interval(const ControlInputs& in,
                                   CycleResult& result) {
  if (!config_.manage_interval) return;
  if (settle_[idx(Knob::EpochInterval)] > 0) return;

  const double cur = to_ms(interval_);
  const double lo = to_ms(config_.min_interval);
  const double hi = to_ms(config_.max_interval);
  double proposal = cur;
  const char* reason = nullptr;

  if (in.pause_p95_ms > targets_.pause_ms && targets_.pause_ms > 0) {
    // Tail over budget: multiplicative decrease (smaller epochs dirty
    // fewer pages, shrinking every dirty-proportional pause phase).
    proposal = cur / config_.max_step;
    reason = "pause-p95-over-budget";
  } else if (targets_.vulnerability_ms > 0 &&
             in.vulnerability_ms > targets_.vulnerability_ms) {
    // Best-effort exposure window too wide: the window is roughly
    // interval + pause, so the interval is the lever.
    proposal = cur / config_.max_step;
    reason = "vulnerability-over-budget";
  } else if (cur > 0) {
    // Gradient toward the overhead-ideal interval (the adaptive
    // controller's rule): pause/interval == target_overhead.
    const double ideal = smoothed_pause_ms_ / config_.target_overhead;
    const double err = (ideal - cur) / cur;
    if (std::abs(err) > config_.deadband) {
      const double step = std::clamp(ideal / cur, 1.0 / config_.max_step,
                                     config_.max_step);
      proposal = cur * step;
      reason = err > 0 ? "overhead-under-target" : "overhead-over-target";
    }
  }

  if (!reason) return;
  proposal = std::clamp(proposal, lo, hi);
  if (same(proposal, cur)) return;  // clamped into a no-op

  decide(in, Knob::EpochInterval, cur, proposal,
         predicted_pause_ms(in, proposal), reason, result);
  interval_ = Nanos(static_cast<std::int64_t>(std::llround(proposal * 1e6)));
}

void ControlPlane::policy_scan(const ControlInputs& in, CycleResult& result) {
  if (!config_.manage_scan) return;
  if (settle_[idx(Knob::ScanSchedule)] > 0) return;

  const std::size_t cur = full_every_;
  std::size_t proposal = cur;
  const char* reason = nullptr;

  const bool pressure =
      (targets_.audit_ms > 0 && in.audit_ms > targets_.audit_ms) ||
      (targets_.pause_ms > 0 && in.pause_p95_ms > targets_.pause_ms);
  if (pressure && cur != 0) {
    // Audit or pause pressure: halve sweep frequency; past the cadence
    // ceiling, stop bypassing the planner entirely.
    proposal = cur * 2 > config_.max_full_sweep_every ? 0 : cur * 2;
    reason = "audit-pressure-back-off";
  } else if (!pressure && in.slo == 0 &&
             in.pause_p95_ms < 0.5 * targets_.pause_ms) {
    // Healthy with tail headroom: spend some of it on coverage. Engage
    // sweeps at the sparsest cadence, then deepen toward the floor.
    if (cur == 0) {
      proposal = config_.max_full_sweep_every;
      reason = "headroom-engage-sweeps";
    } else if (cur > config_.min_full_sweep_every) {
      proposal = std::max(config_.min_full_sweep_every, cur / 2);
      reason = "headroom-deepen-coverage";
    }
  }

  if (!reason || proposal == cur) return;
  // A full sweep re-audits the whole working set: charge roughly one
  // extra audit per sweep, amortized over the cadence.
  const double predicted =
      proposal == 0 ? 0.0 : in.audit_ms / static_cast<double>(proposal);
  decide(in, Knob::ScanSchedule, static_cast<double>(cur),
         static_cast<double>(proposal), predicted, reason, result);
  full_every_ = proposal;
}

void ControlPlane::policy_window(const ControlInputs& in,
                                 CycleResult& result) {
  if (!config_.manage_window || !has_window_) return;
  if (settle_[idx(Knob::ReplicationWindow)] > 0) return;

  const std::size_t cur = window_;
  std::size_t proposal = cur;
  const char* reason = nullptr;
  double predicted = 0.0;

  if (in.replication_lag > targets_.replication_lag &&
      targets_.replication_lag > 0) {
    // Standby falling behind: multiplicative decrease (classic AIMD MD)
    // trades producer stall for a tighter failover data-loss bound.
    proposal = std::max(config_.min_window, cur / 2);
    reason = "replication-lag-over-budget";
    // The stall we expect to keep paying per epoch at the tighter bound.
    predicted = stall_ewma_ms_ + to_ms(costs_->replication_frame);
  } else if (stall_ewma_ms_ > 0.01 &&
             in.replication_lag <= 0.5 * targets_.replication_lag) {
    // Producer stalling on backpressure with lag headroom: additive
    // increase claws the stall back one slot at a time.
    proposal = std::min(config_.max_window, cur + 1);
    reason = "backpressure-stall-widen";
    predicted = stall_ewma_ms_;  // stall per epoch expected to be saved
  }

  if (!reason || proposal == cur) return;
  decide(in, Knob::ReplicationWindow, static_cast<double>(cur),
         static_cast<double>(proposal), predicted, reason, result);
  window_ = proposal;
}

void ControlPlane::policy_gc(const ControlInputs& in, CycleResult& result) {
  if (!config_.manage_gc || !has_gc_) return;
  if (settle_[idx(Knob::GcBudget)] > 0) return;

  const std::size_t cur = gc_budget_;
  std::size_t proposal = cur;
  const char* reason = nullptr;

  if (in.store_backlog > static_cast<double>(cur)) {
    // Reclaimable generations outpacing the budget: double it before
    // the backlog's manifest-merge debt compounds.
    proposal = std::min(config_.max_gc_budget, cur * 2);
    reason = "gc-backlog-growing";
  } else if (in.store_backlog == 0.0 && cur > config_.min_gc_budget) {
    // Nothing reclaimable: decay the budget back toward the floor so an
    // idle store is not charged for GC headroom it does not use.
    proposal = std::max(config_.min_gc_budget, cur / 2);
    reason = "gc-idle-decay";
  }

  if (!reason || proposal == cur) return;
  // Worst-case GC charge per epoch at the new budget, assuming each
  // retired generation merges about one epoch's worth of dirty entries.
  const double predicted = to_ms(costs_->store_gc_per_page) *
                           std::max(in.dirty_pages, 1.0) *
                           static_cast<double>(proposal);
  decide(in, Knob::GcBudget, static_cast<double>(cur),
         static_cast<double>(proposal), predicted, reason, result);
  gc_budget_ = proposal;
}

void ControlPlane::publish() {
  if (!telemetry_) return;
  if (metrics_.interval_ms) metrics_.interval_ms->set(to_ms(interval_));
  if (metrics_.full_sweep) {
    metrics_.full_sweep->set(static_cast<double>(full_every_));
  }
  if (metrics_.window) metrics_.window->set(static_cast<double>(window_));
  if (metrics_.gc_budget) {
    metrics_.gc_budget->set(static_cast<double>(gc_budget_));
  }
}

std::vector<ControlInputs> ControlPlane::history() const {
  if (!input_wrapped_) return inputs_;
  std::vector<ControlInputs> out;
  out.reserve(inputs_.size());
  out.insert(out.end(), inputs_.begin() + static_cast<long>(input_next_),
             inputs_.end());
  out.insert(out.end(), inputs_.begin(),
             inputs_.begin() + static_cast<long>(input_next_));
  return out;
}

ControlReport ControlPlane::report(std::string tenant) const {
  ControlReport r;
  r.tenant = std::move(tenant);
  r.enabled = config_.enabled;
  r.targets = targets_;
  r.interval_ms = to_ms(interval_);
  r.full_sweep_every = full_every_;
  r.replication_window = window_;
  r.gc_budget = gc_budget_;
  r.cycles = cycles_;
  r.adjustments = adjustments_;
  r.holds = holds_;
  return r;
}

std::vector<ControlDecision> ControlPlane::replay(
    const ControlConfig& config, const CostModel& costs,
    telemetry::SloBudget targets, Nanos initial_interval,
    std::size_t initial_window, std::size_t initial_gc_budget,
    std::span<const ControlInputs> inputs) {
  ControlPlane plane(config, costs, targets, initial_interval,
                     initial_window, initial_gc_budget);
  for (const ControlInputs& in : inputs) (void)plane.observe(in);
  return std::move(plane.decisions_);
}

std::string format_control_table(std::span<const ControlReport> reports) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-16s %9s %6s %6s %4s  %7s %7s %6s %6s  %9s\n", "tenant",
                "intvl-ms", "sweep", "window", "gc", "cycles", "moves",
                "holds", "pause", "vuln-ms");
  out += line;
  out += std::string(92, '-') + "\n";
  for (const ControlReport& r : reports) {
    std::snprintf(line, sizeof(line),
                  "%-16s %9.1f %6zu %6zu %4zu  %7zu %7zu %6zu %6.1f  %9.1f\n",
                  r.tenant.empty() ? "-" : r.tenant.c_str(), r.interval_ms,
                  r.full_sweep_every, r.replication_window, r.gc_budget,
                  r.cycles, r.adjustments, r.holds, r.targets.pause_ms,
                  r.targets.vulnerability_ms);
    out += line;
  }
  return out;
}

}  // namespace crimes::control
