// Closed-loop control plane (ROADMAP item 5, DESIGN.md section 14).
//
// One ControlPlane per Crimes instance closes the loop from live
// telemetry (windowed pause percentiles, replication.lag, the
// vulnerability window, store gauges) back into the four actuators that
// used to be tuned by hand: epoch length, the scan schedule, the
// replication in-flight window, and the store GC budget.
//
// Invariants the tests pin down:
//  * Decisions are a pure function of (config, cost model, targets,
//    initial knob values, recorded input stream) -- replay() re-derives
//    the exact decision stream from the input history.
//  * Every policy is hysteretic: a relative-error deadband, a
//    settle-cycles rest after each move, and a max_step multiplicative
//    bound per move, with hard per-knob clamps at both ends.
//  * The SafetyGovernor always wins: while it reports anything but
//    Normal, the controller holds (no knob moves, holds() counts up).
#pragma once

#include "common/cost_model.h"
#include "control/control_config.h"
#include "telemetry/slo.h"

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace crimes::telemetry {
struct Telemetry;
class Gauge;
class Counter;
}  // namespace crimes::telemetry

namespace crimes::control {

// Trace lane for control_decide spans -- must stay distinct from the
// pipeline (0), the CoW drain (1), parallel-audit module lanes, and the
// flight recorder's postmortem lane (15). check_trace.py enforces this.
inline constexpr std::uint32_t kControlPlaneLane = 14;

// Per-tenant snapshot for CloudHost::control_table(): current knob
// positions, the SLO targets the policies steer against, and loop stats.
struct ControlReport {
  std::string tenant;
  bool enabled = false;
  telemetry::SloBudget targets;
  double interval_ms = 0.0;
  std::size_t full_sweep_every = 0;  // 0 = planner never bypassed
  std::size_t replication_window = 0;
  std::size_t gc_budget = 0;
  std::size_t cycles = 0;
  std::size_t adjustments = 0;
  std::size_t holds = 0;
};

[[nodiscard]] std::string format_control_table(
    std::span<const ControlReport> reports);

class ControlPlane {
 public:
  // `targets` are the tenant's SLO budgets (the same ones the SloMonitor
  // burns against); the initial knob values come from the static config
  // the instance booted with. A zero initial window / gc budget marks
  // that actuator as absent (its policy is disabled regardless of the
  // manage_* flag).
  ControlPlane(ControlConfig config, const CostModel& costs,
               telemetry::SloBudget targets, Nanos initial_interval,
               std::size_t initial_window, std::size_t initial_gc_budget);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  struct CycleResult {
    bool cycle_ran = false;      // a control cycle fired this epoch
    bool held = false;           // ...but the governor preempted it
    std::size_t decisions = 0;   // knob moves appended this epoch
  };

  // Feed one epoch of sensor readings. Records the input (replay fuel),
  // and every cycle_every epochs runs the policies. New decisions are
  // the trailing `decisions` entries of decisions().
  CycleResult observe(const ControlInputs& in);

  // Current actuator positions.
  [[nodiscard]] Nanos interval() const { return interval_; }
  [[nodiscard]] std::size_t full_sweep_every() const { return full_every_; }
  [[nodiscard]] std::size_t replication_window() const { return window_; }
  [[nodiscard]] std::size_t gc_budget() const { return gc_budget_; }

  [[nodiscard]] std::size_t cycles() const { return cycles_; }
  [[nodiscard]] std::size_t adjustments() const { return adjustments_; }
  [[nodiscard]] std::size_t holds() const { return holds_; }

  // Bounded decision log (oldest dropped once decision_capacity is
  // exceeded) and total decisions ever made (for log-drop accounting).
  [[nodiscard]] const std::vector<ControlDecision>& decisions() const {
    return decisions_;
  }

  // Input history, oldest first (at most history_capacity entries).
  [[nodiscard]] std::vector<ControlInputs> history() const;

  [[nodiscard]] ControlReport report(std::string tenant) const;

  // Publishes control.* gauges/counters after each cycle. Safe to leave
  // null (no telemetry -> no publication, no allocation).
  void set_telemetry(telemetry::Telemetry* telemetry);

  // Re-derives the decision stream a ControlPlane with these parameters
  // would have produced over `inputs`. Mirrors SloMonitor::replay: used
  // by the bench's replay-equality self-check and the determinism tests.
  [[nodiscard]] static std::vector<ControlDecision> replay(
      const ControlConfig& config, const CostModel& costs,
      telemetry::SloBudget targets, Nanos initial_interval,
      std::size_t initial_window, std::size_t initial_gc_budget,
      std::span<const ControlInputs> inputs);

 private:
  void run_cycle(const ControlInputs& in, CycleResult& result);
  void decide(const ControlInputs& in, Knob knob, double from, double to,
              double predicted_ms, const char* reason, CycleResult& result);
  void policy_interval(const ControlInputs& in, CycleResult& result);
  void policy_scan(const ControlInputs& in, CycleResult& result);
  void policy_window(const ControlInputs& in, CycleResult& result);
  void policy_gc(const ControlInputs& in, CycleResult& result);
  void publish();
  [[nodiscard]] double predicted_pause_ms(const ControlInputs& in,
                                          double new_interval_ms) const;

  ControlConfig config_;
  const CostModel* costs_;
  telemetry::SloBudget targets_;

  // Actuator positions.
  Nanos interval_;
  std::size_t full_every_ = 0;
  std::size_t window_ = 0;
  std::size_t gc_budget_ = 0;
  bool has_window_ = false;
  bool has_gc_ = false;

  // Hysteresis state.
  double smoothed_pause_ms_ = 0.0;
  double stall_ewma_ms_ = 0.0;
  std::size_t settle_[kKnobCount] = {0, 0, 0, 0};

  // Loop accounting.
  std::uint64_t epochs_seen_ = 0;
  std::size_t cycles_ = 0;
  std::size_t holds_ = 0;
  std::size_t adjustments_ = 0;
  std::size_t decisions_dropped_ = 0;

  // Replay fuel: input ring, oldest overwritten.
  std::vector<ControlInputs> inputs_;
  std::size_t input_next_ = 0;
  bool input_wrapped_ = false;

  std::vector<ControlDecision> decisions_;

  // Resolved metric handles (null when telemetry is off).
  telemetry::Telemetry* telemetry_ = nullptr;
  struct Metrics {
    telemetry::Gauge* interval_ms = nullptr;
    telemetry::Gauge* full_sweep = nullptr;
    telemetry::Gauge* window = nullptr;
    telemetry::Gauge* gc_budget = nullptr;
    telemetry::Counter* decisions = nullptr;
    telemetry::Counter* holds = nullptr;
    telemetry::Counter* cycles = nullptr;
  } metrics_;
};

}  // namespace crimes::control
