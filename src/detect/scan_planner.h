// Scan planning: step 1 of the paper's Figure 1 -- "the Detector module
// finds the 'places' to scan".
//
// The Checkpointer hands the Detector a flat dirty-page list; the planner
// classifies those pages against the guest's region map (kernel text,
// pointer tables, task slab, canary table, heap, ...) so each scan module
// can decide in O(1) whether this epoch could even contain the evidence it
// looks for. A CPU-bound epoch that never touched the canary table or the
// heap lets the canary module skip reading the table at all.
#pragma once

#include "common/types.h"
#include "guestos/kernel_layout.h"

#include <cstddef>
#include <span>
#include <vector>

namespace crimes {

struct ScanPlan {
  // Dirty pages bucketed by region; each page appears in exactly one.
  std::vector<Pfn> kernel_text;
  std::vector<Pfn> kernel_tables;  // syscall table + pid hash
  std::vector<Pfn> task_slab;
  std::vector<Pfn> module_slab;
  std::vector<Pfn> socket_file_tables;
  std::vector<Pfn> canary_table;
  std::vector<Pfn> heap;
  std::vector<Pfn> other;  // page table, guard, unclassified

  [[nodiscard]] std::size_t total() const {
    return kernel_text.size() + kernel_tables.size() + task_slab.size() +
           module_slab.size() + socket_file_tables.size() +
           canary_table.size() + heap.size() + other.size();
  }

  // Could this epoch have produced heap-overflow evidence? (Canaries live
  // in the heap; their index lives in the canary table.)
  [[nodiscard]] bool heap_evidence_possible() const {
    return !heap.empty() || !canary_table.empty();
  }

  [[nodiscard]] static ScanPlan classify(const GuestLayout& layout,
                                         std::span<const Pfn> dirty);
};

}  // namespace crimes
