// Unaided hidden-process detection: the online (cheap) version of the
// Volatility psxview cross-view. A rootkit that unlinks its task from the
// process list usually forgets the pid hash; tasks reachable from the hash
// but absent from the list walk are reported. The deep slab sweep
// (psscan) stays in the offline forensics module where its cost belongs.
#pragma once

#include "detect/detector.h"

namespace crimes {

class HiddenProcessModule final : public ScanModule {
 public:
  [[nodiscard]] std::string name() const override { return "hidden-process"; }
  [[nodiscard]] ScanResult scan(ScanContext& ctx) override;
};

}  // namespace crimes
