// Output-focused scanning (section 3.2: "a security module could focus on
// the outputs of the VM, e.g., scanning outgoing network packets for
// suspicious content"). Only meaningful under Synchronous Safety, where the
// epoch's packets are still held in the output buffer at audit time --
// a match stops them from ever leaving the host.
#pragma once

#include "detect/detector.h"

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace crimes {

class NetworkContentModule final : public ScanModule {
 public:
  NetworkContentModule(std::vector<std::string> payload_patterns,
                       std::vector<std::uint32_t> blocked_ips);

  [[nodiscard]] std::string name() const override { return "net-content"; }
  [[nodiscard]] ScanResult scan(ScanContext& ctx) override;

  [[nodiscard]] std::uint64_t packets_scanned() const { return scanned_; }

 private:
  std::vector<std::string> patterns_;
  std::unordered_set<std::uint32_t> blocked_ips_;
  std::uint64_t scanned_ = 0;
};

}  // namespace crimes
