#include "detect/network_content_scan.h"

#include "guestos/guest_kernel.h"  // format_ipv4

namespace crimes {

NetworkContentModule::NetworkContentModule(
    std::vector<std::string> payload_patterns,
    std::vector<std::uint32_t> blocked_ips)
    : patterns_(std::move(payload_patterns)) {
  for (const auto ip : blocked_ips) blocked_ips_.insert(ip);
}

ScanResult NetworkContentModule::scan(ScanContext& ctx) {
  ScanResult result;
  if (ctx.pending_packets == nullptr) {
    // Best-Effort mode: outputs already left; nothing to inspect.
    return result;
  }
  Nanos cost{0};
  for (const Packet& p : *ctx.pending_packets) {
    ++scanned_;
    cost += Nanos{static_cast<std::int64_t>(p.payload.size())};  // ~1 ns/B
    if (blocked_ips_.contains(p.dst_ip)) {
      result.findings.push_back(Finding{
          .module = name(),
          .severity = Severity::Critical,
          .description = "outgoing packet to blocked host " +
                         format_ipv4(p.dst_ip) + ":" +
                         std::to_string(p.dst_port),
          .location = Vaddr{0},
          .pid = std::nullopt,
          .object = std::nullopt,
      });
      continue;
    }
    for (const auto& pat : patterns_) {
      if (p.payload.find(pat) != std::string::npos) {
        result.findings.push_back(Finding{
            .module = name(),
            .severity = Severity::Critical,
            .description = "outgoing packet payload matches pattern '" +
                           pat + "' (dst " + format_ipv4(p.dst_ip) + ")",
            .location = Vaddr{0},
            .pid = std::nullopt,
            .object = std::nullopt,
        });
        break;
      }
    }
  }
  result.cost = cost;
  return result;
}

}  // namespace crimes
