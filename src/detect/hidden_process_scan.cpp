#include "detect/hidden_process_scan.h"

#include <unordered_set>

namespace crimes {

ScanResult HiddenProcessModule::scan(ScanContext& ctx) {
  ScanResult result;

  std::unordered_set<std::uint64_t> listed;
  for (const auto& p : ctx.vmi.process_list()) {
    listed.insert(p.task_va.value());
  }

  for (const Vaddr task : ctx.vmi.read_pid_hash()) {
    if (listed.contains(task.value())) continue;
    const VmiProcess hidden = ctx.vmi.read_task_at(task);
    result.findings.push_back(Finding{
        .module = name(),
        .severity = Severity::Critical,
        .description = "process '" + hidden.name + "' (pid " +
                       std::to_string(hidden.pid.value()) +
                       ") present in pid hash but unlinked from the task "
                       "list (rootkit hiding?)",
        .location = task,
        .pid = hidden.pid,
        .object = std::nullopt,
    });
  }
  result.cost = ctx.vmi.take_cost();
  return result;
}

}  // namespace crimes
