#include "detect/canary_scan.h"

#include <unordered_set>

namespace crimes {

ScanResult CanaryScanModule::scan(ScanContext& ctx) {
  ScanResult result;
  // Plan-directed fast path (Figure 1 step 1): canaries live in the heap
  // and their index in the canary table; an epoch that dirtied neither
  // cannot hold overflow evidence, so skip even reading the table.
  if (!scan_all_ && ctx.plan != nullptr &&
      !ctx.plan->heap_evidence_possible()) {
    ++scans_skipped_by_plan_;
    result.cost = ctx.vmi.take_cost();
    return result;
  }
  const VmiCanaryTable table = ctx.vmi.read_canary_table();

  std::unordered_set<std::uint64_t> dirty;
  dirty.reserve(ctx.dirty.size());
  for (const Pfn pfn : ctx.dirty) dirty.insert(pfn.value());

  std::size_t validated = 0;
  for (const auto& entry : table.entries) {
    if (!scan_all_) {
      const auto pfn = ctx.vmi.pfn_of(entry.canary_addr);
      if (!pfn || !dirty.contains(pfn->value())) {
        ++skipped_;
        continue;
      }
    }
    ++validated;
    ++checked_;
    const std::uint64_t actual = ctx.vmi.read_u64_fast(entry.canary_addr);
    const std::uint64_t expected = table.key ^ entry.canary_addr.value();
    if (actual != expected) {
      result.findings.push_back(Finding{
          .module = name(),
          .severity = Severity::Critical,
          .description =
              "heap canary corrupted: object of " +
              std::to_string(entry.obj_size) + " bytes overflowed",
          .location = entry.canary_addr,
          .pid = std::nullopt,
          .object = entry.obj_addr,
      });
    }
  }
  result.cost = ctx.vmi.take_cost() + ctx.costs.canary_check_each * validated;
  return result;
}

}  // namespace crimes
