// Unaided IDT integrity check: compare the guest's interrupt descriptor
// table against a trusted baseline. Catches interrupt-hook rootkits
// (keyboard-vector keyloggers, timer hooks) the syscall-table check cannot
// see. Skips the read when the IDT page was not dirtied this epoch.
#pragma once

#include "detect/detector.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace crimes {

class IdtIntegrityModule final : public ScanModule {
 public:
  [[nodiscard]] std::string name() const override { return "idt-integrity"; }

  void capture_baseline(VmiSession& vmi);
  [[nodiscard]] bool has_baseline() const { return !baseline_.empty(); }

  [[nodiscard]] ScanResult scan(ScanContext& ctx) override;

  [[nodiscard]] std::uint64_t scans_skipped_clean() const {
    return skipped_clean_;
  }

 private:
  std::vector<std::uint64_t> baseline_;  // handler VA per vector
  std::optional<Pfn> idt_pfn_;
  std::uint64_t skipped_clean_ = 0;
};

}  // namespace crimes
