// Guest-aided buffer-overflow detection (sections 4.2 and 5.5).
//
// The guest's malloc wrapper maintains an in-memory table of heap canaries;
// this module reads the table through VMI, keeps only the canaries living
// on pages the epoch dirtied (the Checkpointer's dirty list), and validates
// each against the expected value derived from the per-boot key. The paper
// measures ~90,000 canary validations per millisecond for this scan.
#pragma once

#include "detect/detector.h"

#include <cstdint>

namespace crimes {

class CanaryScanModule final : public ScanModule {
 public:
  // `scan_all` disables the dirty-page filter (used by tests and by the
  // initial full audit).
  explicit CanaryScanModule(bool scan_all = false) : scan_all_(scan_all) {}

  [[nodiscard]] std::string name() const override { return "canary-scan"; }
  [[nodiscard]] ScanResult scan(ScanContext& ctx) override;

  [[nodiscard]] std::uint64_t canaries_checked() const { return checked_; }
  [[nodiscard]] std::uint64_t canaries_skipped() const { return skipped_; }
  [[nodiscard]] std::uint64_t scans_skipped_by_plan() const {
    return scans_skipped_by_plan_;
  }

 private:
  bool scan_all_;
  std::uint64_t checked_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t scans_skipped_by_plan_ = 0;
};

}  // namespace crimes
