#include "detect/idt_integrity_scan.h"

#include "common/bytes.h"
#include "guestos/kernel_layout.h"

#include <algorithm>
#include <stdexcept>

namespace crimes {

void IdtIntegrityModule::capture_baseline(VmiSession& vmi) {
  baseline_.clear();
  for (const auto& gate : vmi.read_idt()) {
    baseline_.push_back(gate.handler.value());
  }
  idt_pfn_ = vmi.pfn_of(
      vmi.symbols().lookup(SymbolNames::for_flavor(vmi.flavor()).idt));
  (void)vmi.take_cost();  // startup cost, not scan cost
}

ScanResult IdtIntegrityModule::scan(ScanContext& ctx) {
  if (baseline_.empty()) {
    throw std::logic_error("IdtIntegrityModule: capture_baseline() missing");
  }
  ScanResult result;

  const bool touched =
      idt_pfn_.has_value() &&
      std::find(ctx.dirty.begin(), ctx.dirty.end(), *idt_pfn_) !=
          ctx.dirty.end();
  if (!touched) {
    ++skipped_clean_;
    result.cost = ctx.vmi.take_cost();
    return result;
  }

  const auto gates = ctx.vmi.read_idt();
  const Vaddr table = ctx.vmi.symbols().lookup(
      SymbolNames::for_flavor(ctx.vmi.flavor()).idt);
  for (std::size_t v = 0; v < gates.size(); ++v) {
    if (gates[v].handler.value() != baseline_[v]) {
      result.findings.push_back(Finding{
          .module = name(),
          .severity = Severity::Critical,
          .description = "IDT vector " + std::to_string(v) +
                         " hooked (handler moved to " +
                         to_hex(gates[v].handler.value()) + ")",
          .location = table + v * IdtGateLayout::kSize,
          .pid = std::nullopt,
          .object = std::nullopt,
      });
    }
  }
  result.cost = ctx.vmi.take_cost();
  return result;
}

}  // namespace crimes
