#include "detect/syscall_integrity_scan.h"

#include "common/bytes.h"
#include "guestos/kernel_layout.h"

#include <algorithm>
#include <stdexcept>

namespace crimes {

void SyscallIntegrityModule::capture_baseline(VmiSession& vmi) {
  baseline_ = vmi.read_syscall_table();
  table_pfns_.clear();
  const Vaddr table = vmi.symbols().lookup(
      SymbolNames::for_flavor(vmi.flavor()).syscall_table);
  const std::size_t bytes = kSyscallCount * sizeof(std::uint64_t);
  for (std::size_t off = 0; off < bytes; off += kPageSize) {
    if (auto pfn = vmi.pfn_of(table + off)) table_pfns_.push_back(*pfn);
  }
  (void)vmi.take_cost();  // baseline capture is startup cost, not scan cost
}

ScanResult SyscallIntegrityModule::scan(ScanContext& ctx) {
  if (baseline_.empty()) {
    throw std::logic_error(
        "SyscallIntegrityModule: capture_baseline() not called");
  }
  ScanResult result;

  // Dirty-page filter: if no page backing the table was written this
  // epoch, the table cannot have changed.
  const bool table_touched = std::any_of(
      table_pfns_.begin(), table_pfns_.end(), [&ctx](Pfn tp) {
        return std::find(ctx.dirty.begin(), ctx.dirty.end(), tp) !=
               ctx.dirty.end();
      });
  if (!table_touched) {
    ++skipped_clean_;
    result.cost = ctx.vmi.take_cost();
    return result;
  }

  const auto current = ctx.vmi.read_syscall_table();
  const Vaddr table = ctx.vmi.symbols().lookup(
      SymbolNames::for_flavor(ctx.vmi.flavor()).syscall_table);
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (current[i] != baseline_[i]) {
      result.findings.push_back(Finding{
          .module = name(),
          .severity = Severity::Critical,
          .description = "syscall table entry " + std::to_string(i) +
                         " hijacked (expected " +
                         to_hex(baseline_[i]) + ", found " +
                         to_hex(current[i]) + ")",
          .location = table + i * sizeof(std::uint64_t),
          .pid = std::nullopt,
          .object = std::nullopt,
      });
    }
  }
  result.cost = ctx.vmi.take_cost();
  return result;
}

}  // namespace crimes
