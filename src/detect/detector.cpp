#include "detect/detector.h"

#include "common/thread_pool.h"
#include "telemetry/telemetry.h"

#include <chrono>
#include <future>

namespace crimes {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Info: return "INFO";
    case Severity::Warning: return "WARNING";
    case Severity::Critical: return "CRITICAL";
  }
  return "?";
}

void Detector::add_module(std::unique_ptr<ScanModule> module) {
  modules_.push_back(std::move(module));
}

std::vector<std::string> Detector::module_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& m : modules_) names.push_back(m->name());
  return names;
}

ScanResult Detector::audit(ScanContext& ctx) {
  ++audits_run_;
  ScanResult total;
  for (const auto& module : modules_) {
    using WallClock = std::chrono::steady_clock;
    const auto wall_begin =
        telemetry_ != nullptr ? WallClock::now() : WallClock::time_point{};
    ScanResult r = module->scan(ctx);
    if (telemetry_ != nullptr) {
      // Serial audits run modules back to back inside the audit phase.
      telemetry_->trace.add_span(
          "scan:" + module->name(), ctx.trace_start + total.cost, r.cost, 0,
          std::chrono::duration_cast<Nanos>(WallClock::now() - wall_begin));
      telemetry_->metrics.counter("audit.findings").add(r.findings.size());
    }
    total.cost += r.cost;
    for (auto& f : r.findings) total.findings.push_back(std::move(f));
  }
  return total;
}

ScanResult Detector::audit_parallel(ScanContext& ctx, ThreadPool& pool) {
  if (modules_.size() < 2) return audit(ctx);  // nothing to fork
  ++audits_run_;

  ScanResult total;
  // Charges already sitting on the caller's session belong to the caller,
  // not to any one fork.
  total.cost = ctx.vmi.take_cost();

  std::vector<VmiSession> sessions;
  sessions.reserve(modules_.size());
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    sessions.push_back(ctx.vmi.fork());
  }

  std::vector<ScanResult> results(modules_.size());
  std::vector<Nanos> walls(modules_.size(), Nanos{0});
  std::vector<std::future<void>> pending;
  pending.reserve(modules_.size());
  const bool traced = telemetry_ != nullptr;
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    pending.push_back(
        pool.submit([this, i, traced, &ctx, &sessions, &results, &walls] {
          using WallClock = std::chrono::steady_clock;
          const auto wall_begin =
              traced ? WallClock::now() : WallClock::time_point{};
          ScanContext local{
              .vmi = sessions[i],
              .dirty = ctx.dirty,
              .costs = ctx.costs,
              .pending_packets = ctx.pending_packets,
              .plan = ctx.plan,
              .now = ctx.now,
              .trace_start = ctx.trace_start,
          };
          results[i] = modules_[i]->scan(local);
          if (traced) {
            walls[i] = std::chrono::duration_cast<Nanos>(WallClock::now() -
                                                         wall_begin);
          }
        }));
  }
  // Join everything before surfacing an exception: the lambdas reference
  // this frame's vectors.
  for (auto& future : pending) future.wait();
  for (auto& future : pending) future.get();

  std::vector<Nanos> module_costs;
  module_costs.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ScanResult& r = results[i];
    if (traced) {
      // Concurrent modules all start when the audit does; one lane each,
      // so the viewer shows them side by side.
      telemetry_->trace.add_span("scan:" + modules_[i]->name(),
                                 ctx.trace_start, r.cost,
                                 static_cast<std::uint32_t>(1 + i), walls[i]);
      telemetry_->metrics.counter("audit.findings").add(r.findings.size());
    }
    module_costs.push_back(r.cost);
    for (auto& f : r.findings) total.findings.push_back(std::move(f));
  }
  total.cost += ctx.costs.parallel_cost(module_costs);
  for (const VmiSession& session : sessions) ctx.vmi.absorb(session);
  return total;
}

}  // namespace crimes
