#include "detect/detector.h"

#include "common/log.h"
#include "common/thread_pool.h"
#include "fault/fault_injector.h"
#include "telemetry/telemetry.h"

#include <chrono>
#include <future>

namespace crimes {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Info: return "INFO";
    case Severity::Warning: return "WARNING";
    case Severity::Critical: return "CRITICAL";
  }
  return "?";
}

void Detector::add_module(std::unique_ptr<ScanModule> module) {
  modules_.push_back(std::move(module));
  quarantined_.push_back(false);
}

Detector::ModuleFate Detector::draw_fate(const std::string& name) {
  ModuleFate fate;
  if (faults_ == nullptr) return fate;
  // Crash beats hang: a dead module cannot also be slow.
  fate.crash = faults_->scan_crashes(name);
  if (!fate.crash && faults_->scan_times_out(name)) {
    fate.hang = faults_->plan().scan_hang;
  }
  return fate;
}

void Detector::quarantine(std::size_t index, const std::string& reason,
                          ScanResult& out) {
  const std::string name = modules_[index]->name();
  quarantined_[index] = true;
  quarantined_names_.push_back(name);
  // The event itself surfaces as a (non-fatal) finding: the audit verdict
  // stays clean, but the lost coverage is visible to whoever reads the
  // epoch's findings.
  out.findings.push_back(Finding{
      .module = "detector",
      .severity = Severity::Warning,
      .description = "scan module '" + name + "' quarantined: " + reason,
      .location = Vaddr{0},
      .pid = std::nullopt,
      .object = std::nullopt,
  });
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("audit.quarantines").add();
  }
  CRIMES_LOG(Warn, "detector")
      << "module '" << name << "' quarantined: " << reason << " ("
      << active_module_count() << " of " << modules_.size()
      << " modules still active)";
}

std::vector<std::string> Detector::module_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& m : modules_) names.push_back(m->name());
  return names;
}

ScanResult Detector::audit(ScanContext& ctx) {
  ++audits_run_;
  ScanResult total;
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (quarantined_[i]) {
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("audit.skipped_quarantined").add();
      }
      continue;
    }
    ScanModule& module = *modules_[i];
    const ModuleFate fate = draw_fate(module.name());
    using WallClock = std::chrono::steady_clock;
    const auto wall_begin =
        telemetry_ != nullptr ? WallClock::now() : WallClock::time_point{};
    ScanResult r;
    bool crashed = fate.crash;
    std::string crash_reason = "injected scan fault";
    if (!crashed) {
      try {
        r = module.scan(ctx);
      } catch (const std::exception& e) {
        crashed = true;
        crash_reason = e.what();
        r = ScanResult{};
      }
    }
    r.cost += fate.hang;
    const bool timed_out = !crashed && policy_.module_deadline.count() > 0 &&
                           r.cost > policy_.module_deadline;
    // A hung module is cut off at the deadline; its (possibly partial)
    // findings are discarded along with a crashed module's.
    const Nanos charged = timed_out ? policy_.module_deadline : r.cost;
    if (telemetry_ != nullptr) {
      // Serial audits run modules back to back inside the audit phase.
      telemetry_->trace.add_span(
          "scan:" + module.name(), ctx.trace_start + total.cost, charged, 0,
          std::chrono::duration_cast<Nanos>(WallClock::now() - wall_begin));
    }
    total.cost += charged;
    if (crashed) {
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("audit.scan_crashes").add();
      }
      quarantine(i, "crashed (" + crash_reason + ")", total);
    } else if (timed_out) {
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("audit.scan_timeouts").add();
      }
      quarantine(i,
                 "audit deadline exceeded (" + std::to_string(to_ms(r.cost)) +
                     " ms > " + std::to_string(to_ms(policy_.module_deadline)) +
                     " ms)",
                 total);
    } else {
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("audit.findings").add(r.findings.size());
      }
      for (auto& f : r.findings) total.findings.push_back(std::move(f));
    }
  }
  return total;
}

ScanResult Detector::audit_parallel(ScanContext& ctx, ThreadPool& pool) {
  std::vector<std::size_t> active;
  active.reserve(modules_.size());
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (quarantined_[i]) {
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("audit.skipped_quarantined").add();
      }
      continue;
    }
    active.push_back(i);
  }
  if (active.size() < 2) return audit(ctx);  // nothing to fork
  ++audits_run_;

  ScanResult total;
  // Charges already sitting on the caller's session belong to the caller,
  // not to any one fork.
  total.cost = ctx.vmi.take_cost();

  // Fault decisions are drawn here, on the audit-driving thread, before
  // any fan-out: injection must not depend on worker interleaving (and the
  // injector's counters stay single-threaded).
  std::vector<ModuleFate> fates;
  fates.reserve(active.size());
  for (const std::size_t i : active) {
    fates.push_back(draw_fate(modules_[i]->name()));
  }

  std::vector<VmiSession> sessions;
  sessions.reserve(active.size());
  for (std::size_t k = 0; k < active.size(); ++k) {
    sessions.push_back(ctx.vmi.fork());
  }

  std::vector<ScanResult> results(active.size());
  std::vector<Nanos> walls(active.size(), Nanos{0});
  std::vector<std::uint8_t> crashed(active.size(), 0);
  std::vector<std::string> crash_reasons(active.size());
  std::vector<std::future<void>> pending;
  pending.reserve(active.size());
  const bool traced = telemetry_ != nullptr;
  for (std::size_t k = 0; k < active.size(); ++k) {
    if (fates[k].crash) {
      // A module fated to crash dies at scan start; it never reaches the
      // pool.
      crashed[k] = 1;
      crash_reasons[k] = "injected scan fault";
      continue;
    }
    pending.push_back(pool.submit([this, k, i = active[k], traced, &ctx,
                                   &sessions, &results, &walls, &crashed,
                                   &crash_reasons] {
      using WallClock = std::chrono::steady_clock;
      const auto wall_begin =
          traced ? WallClock::now() : WallClock::time_point{};
      ScanContext local{
          .vmi = sessions[k],
          .dirty = ctx.dirty,
          .costs = ctx.costs,
          .pending_packets = ctx.pending_packets,
          .plan = ctx.plan,
          .now = ctx.now,
          .trace_start = ctx.trace_start,
      };
      try {
        results[k] = modules_[i]->scan(local);
      } catch (const std::exception& e) {
        // Quarantine happens after the join, on the calling thread.
        crashed[k] = 1;
        crash_reasons[k] = e.what();
        results[k] = ScanResult{};
      }
      if (traced) {
        walls[k] =
            std::chrono::duration_cast<Nanos>(WallClock::now() - wall_begin);
      }
    }));
  }
  // Join everything before surfacing an exception: the lambdas reference
  // this frame's vectors.
  for (auto& future : pending) future.wait();
  for (auto& future : pending) future.get();

  std::vector<Nanos> module_costs;
  module_costs.reserve(active.size());
  for (std::size_t k = 0; k < active.size(); ++k) {
    ScanResult& r = results[k];
    r.cost += fates[k].hang;
    const bool timed_out = !crashed[k] &&
                           policy_.module_deadline.count() > 0 &&
                           r.cost > policy_.module_deadline;
    const Nanos charged = timed_out ? policy_.module_deadline : r.cost;
    if (traced) {
      // Concurrent modules all start when the audit does; one lane each,
      // so the viewer shows them side by side.
      telemetry_->trace.add_span("scan:" + modules_[active[k]]->name(),
                                 ctx.trace_start, charged,
                                 static_cast<std::uint32_t>(1 + k), walls[k]);
    }
    module_costs.push_back(charged);
    if (crashed[k] != 0) {
      if (traced) telemetry_->metrics.counter("audit.scan_crashes").add();
      quarantine(active[k], "crashed (" + crash_reasons[k] + ")", total);
    } else if (timed_out) {
      if (traced) telemetry_->metrics.counter("audit.scan_timeouts").add();
      quarantine(active[k],
                 "audit deadline exceeded (" + std::to_string(to_ms(r.cost)) +
                     " ms > " +
                     std::to_string(to_ms(policy_.module_deadline)) + " ms)",
                 total);
    } else {
      if (traced) {
        telemetry_->metrics.counter("audit.findings").add(r.findings.size());
      }
      for (auto& f : r.findings) total.findings.push_back(std::move(f));
    }
  }
  total.cost += ctx.costs.parallel_cost(module_costs);
  for (const VmiSession& session : sessions) ctx.vmi.absorb(session);
  return total;
}

}  // namespace crimes
