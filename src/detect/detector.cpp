#include "detect/detector.h"

namespace crimes {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Info: return "INFO";
    case Severity::Warning: return "WARNING";
    case Severity::Critical: return "CRITICAL";
  }
  return "?";
}

void Detector::add_module(std::unique_ptr<ScanModule> module) {
  modules_.push_back(std::move(module));
}

std::vector<std::string> Detector::module_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& m : modules_) names.push_back(m->name());
  return names;
}

ScanResult Detector::audit(ScanContext& ctx) {
  ++audits_run_;
  ScanResult total;
  for (const auto& module : modules_) {
    ScanResult r = module->scan(ctx);
    total.cost += r.cost;
    for (auto& f : r.findings) total.findings.push_back(std::move(f));
  }
  return total;
}

}  // namespace crimes
