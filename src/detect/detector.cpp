#include "detect/detector.h"

#include "common/thread_pool.h"

#include <future>

namespace crimes {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Info: return "INFO";
    case Severity::Warning: return "WARNING";
    case Severity::Critical: return "CRITICAL";
  }
  return "?";
}

void Detector::add_module(std::unique_ptr<ScanModule> module) {
  modules_.push_back(std::move(module));
}

std::vector<std::string> Detector::module_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& m : modules_) names.push_back(m->name());
  return names;
}

ScanResult Detector::audit(ScanContext& ctx) {
  ++audits_run_;
  ScanResult total;
  for (const auto& module : modules_) {
    ScanResult r = module->scan(ctx);
    total.cost += r.cost;
    for (auto& f : r.findings) total.findings.push_back(std::move(f));
  }
  return total;
}

ScanResult Detector::audit_parallel(ScanContext& ctx, ThreadPool& pool) {
  if (modules_.size() < 2) return audit(ctx);  // nothing to fork
  ++audits_run_;

  ScanResult total;
  // Charges already sitting on the caller's session belong to the caller,
  // not to any one fork.
  total.cost = ctx.vmi.take_cost();

  std::vector<VmiSession> sessions;
  sessions.reserve(modules_.size());
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    sessions.push_back(ctx.vmi.fork());
  }

  std::vector<ScanResult> results(modules_.size());
  std::vector<std::future<void>> pending;
  pending.reserve(modules_.size());
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    pending.push_back(pool.submit([this, i, &ctx, &sessions, &results] {
      ScanContext local{
          .vmi = sessions[i],
          .dirty = ctx.dirty,
          .costs = ctx.costs,
          .pending_packets = ctx.pending_packets,
          .plan = ctx.plan,
          .now = ctx.now,
      };
      results[i] = modules_[i]->scan(local);
    }));
  }
  // Join everything before surfacing an exception: the lambdas reference
  // this frame's vectors.
  for (auto& future : pending) future.wait();
  for (auto& future : pending) future.get();

  std::vector<Nanos> module_costs;
  module_costs.reserve(results.size());
  for (ScanResult& r : results) {
    module_costs.push_back(r.cost);
    for (auto& f : r.findings) total.findings.push_back(std::move(f));
  }
  total.cost += ctx.costs.parallel_cost(module_costs);
  for (const VmiSession& session : sessions) ctx.vmi.absorb(session);
  return total;
}

}  // namespace crimes
