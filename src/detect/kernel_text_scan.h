// Unaided kernel-text integrity check: hash every page of the kernel text
// region at a trusted baseline, then re-hash only the text pages the epoch
// dirtied (kernel code never legitimately changes at runtime in this
// guest, mirroring a pagetable-protected production kernel). Catches
// inline-hook rootkits that patch handler code rather than pointer tables.
#pragma once

#include "common/hash.h"  // fnv1a -- shared with tests
#include "detect/detector.h"

#include <cstdint>
#include <vector>

namespace crimes {

class KernelTextIntegrityModule final : public ScanModule {
 public:
  [[nodiscard]] std::string name() const override { return "kernel-text"; }

  // Hashes the text region while the guest is still trusted.
  void capture_baseline(VmiSession& vmi);
  [[nodiscard]] bool has_baseline() const { return !baseline_.empty(); }

  [[nodiscard]] ScanResult scan(ScanContext& ctx) override;

  [[nodiscard]] std::uint64_t pages_rehashed() const { return rehashed_; }

 private:
  std::vector<std::uint64_t> baseline_;  // one hash per text page
  std::vector<Pfn> text_pfns_;
  Vaddr text_base_{0};
  std::uint64_t rehashed_ = 0;
};

}  // namespace crimes
