#include "detect/kernel_text_scan.h"

#include "common/bytes.h"
#include "guestos/kernel_layout.h"

#include <stdexcept>
#include <unordered_map>

namespace crimes {

namespace {

// The text region spans 64 pages (GuestLayout::kernel_text_pages); walk it
// page by page through VMI.
std::uint64_t hash_text_page(VmiSession& vmi, Vaddr page_va) {
  std::vector<std::byte> buf(kPageSize);
  vmi.read_bytes(page_va, buf);
  return fnv1a(buf);
}

}  // namespace

void KernelTextIntegrityModule::capture_baseline(VmiSession& vmi) {
  const Vaddr text = vmi.symbols().lookup(
      SymbolNames::for_flavor(vmi.flavor()).kernel_text);
  text_base_ = text;
  baseline_.clear();
  text_pfns_.clear();
  for (std::size_t page = 0;; ++page) {
    const Vaddr va = text + page * kPageSize;
    const auto pfn = vmi.pfn_of(va);
    if (!pfn) break;
    // Heuristic region end: the text symbol's region is contiguous; stop
    // at 64 pages (the image's text size).
    if (page >= 64) break;
    baseline_.push_back(hash_text_page(vmi, va));
    text_pfns_.push_back(*pfn);
  }
  (void)vmi.take_cost();  // startup cost, not scan cost
}

ScanResult KernelTextIntegrityModule::scan(ScanContext& ctx) {
  if (baseline_.empty()) {
    throw std::logic_error(
        "KernelTextIntegrityModule: capture_baseline() not called");
  }
  ScanResult result;

  std::unordered_map<std::uint64_t, std::size_t> text_index;
  text_index.reserve(text_pfns_.size());
  for (std::size_t i = 0; i < text_pfns_.size(); ++i) {
    text_index.emplace(text_pfns_[i].value(), i);
  }

  for (const Pfn dirty : ctx.dirty) {
    const auto it = text_index.find(dirty.value());
    if (it == text_index.end()) continue;
    const std::size_t page = it->second;
    ++rehashed_;
    const Vaddr va = text_base_ + page * kPageSize;
    if (hash_text_page(ctx.vmi, va) != baseline_[page]) {
      result.findings.push_back(Finding{
          .module = name(),
          .severity = Severity::Critical,
          .description = "kernel text page " + std::to_string(page) +
                         " modified (inline hook?) at VA " +
                         to_hex(va.value()),
          .location = va,
          .pid = std::nullopt,
          .object = std::nullopt,
      });
    }
  }
  result.cost = ctx.vmi.take_cost();
  return result;
}

}  // namespace crimes
