// Unaided syscall-table integrity check (section 3.2): compare the guest's
// system call table against a known-good baseline captured at startup to
// detect hijacking. Skips the read entirely when none of the epoch's dirty
// pages overlap the table.
#pragma once

#include "detect/detector.h"

#include <cstdint>
#include <vector>

namespace crimes {

class SyscallIntegrityModule final : public ScanModule {
 public:
  [[nodiscard]] std::string name() const override {
    return "syscall-integrity";
  }

  // Captures the known-good table. Must run before the first scan, while
  // the guest is still trusted (e.g. right after boot attestation).
  void capture_baseline(VmiSession& vmi);
  [[nodiscard]] bool has_baseline() const { return !baseline_.empty(); }

  [[nodiscard]] ScanResult scan(ScanContext& ctx) override;

  [[nodiscard]] std::uint64_t scans_skipped_clean() const {
    return skipped_clean_;
  }

 private:
  std::vector<std::uint64_t> baseline_;
  std::vector<Pfn> table_pfns_;  // pages backing the table
  std::uint64_t skipped_clean_ = 0;
};

}  // namespace crimes
