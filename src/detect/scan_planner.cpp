#include "detect/scan_planner.h"

namespace crimes {

namespace {

bool in_region(Pfn pfn, Pfn base, std::size_t pages) {
  return pfn.value() >= base.value() && pfn.value() < base.value() + pages;
}

}  // namespace

ScanPlan ScanPlan::classify(const GuestLayout& layout,
                            std::span<const Pfn> dirty) {
  ScanPlan plan;
  for (const Pfn pfn : dirty) {
    if (in_region(pfn, layout.kernel_text, layout.kernel_text_pages)) {
      plan.kernel_text.push_back(pfn);
    } else if (in_region(pfn, layout.syscall_table, 1) ||
               in_region(pfn, layout.pid_hash, 1) ||
               in_region(pfn, layout.idt, 1)) {
      plan.kernel_tables.push_back(pfn);
    } else if (in_region(pfn, layout.task_slab, layout.task_slab_pages)) {
      plan.task_slab.push_back(pfn);
    } else if (in_region(pfn, layout.module_slab,
                         layout.module_slab_pages)) {
      plan.module_slab.push_back(pfn);
    } else if (in_region(pfn, layout.socket_table,
                         layout.socket_table_pages) ||
               in_region(pfn, layout.file_table, layout.file_table_pages)) {
      plan.socket_file_tables.push_back(pfn);
    } else if (in_region(pfn, layout.canary_table,
                         layout.canary_table_pages)) {
      plan.canary_table.push_back(pfn);
    } else if (in_region(pfn, layout.heap_base, layout.heap_pages)) {
      plan.heap.push_back(pfn);
    } else {
      plan.other.push_back(pfn);
    }
  }
  return plan;
}

}  // namespace crimes
