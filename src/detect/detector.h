// The Detector: CRIMES's modular per-epoch security audit framework
// (Figure 1, steps 1-2). Scan modules are registered by the tenant or the
// cloud provider depending on the protection the VM needs; the Checkpointer
// invokes the Detector while the VM is suspended at each epoch boundary.
#pragma once

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "common/types.h"
#include "detect/scan_planner.h"
#include "net/packet.h"
#include "vmi/vmi_session.h"

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace crimes {

class ThreadPool;

namespace telemetry {
struct Telemetry;
}  // namespace telemetry

namespace fault {
class FaultInjector;
}  // namespace fault

enum class Severity { Info, Warning, Critical };

[[nodiscard]] const char* to_string(Severity severity);

// One piece of evidence a scan module found.
struct Finding {
  std::string module;       // which ScanModule reported it
  Severity severity = Severity::Warning;
  std::string description;
  Vaddr location{0};        // guest VA of the evidence, if applicable
  std::optional<Pid> pid;   // offending process, if known
  std::optional<Vaddr> object;  // e.g. overflowed heap object
};

struct ScanResult {
  std::vector<Finding> findings;
  Nanos cost{0};

  [[nodiscard]] bool clean() const {
    for (const auto& f : findings) {
      if (f.severity == Severity::Critical) return false;
    }
    return true;
  }
};

// Everything a module may look at during an audit. The VM is suspended;
// `dirty` is the epoch's dirty page list from the Checkpointer (section
// 3.2: scans focus on pages that might contain fresh evidence).
struct ScanContext {
  VmiSession& vmi;
  std::span<const Pfn> dirty;
  const CostModel& costs;
  // Outputs held by the buffer this epoch (Synchronous mode only).
  const std::vector<Packet>* pending_packets = nullptr;
  // Region-classified view of `dirty` (Figure 1 step 1); nullptr when the
  // caller has no layout knowledge (modules must then scan conservatively).
  const ScanPlan* plan = nullptr;
  Nanos now{0};
  // Virtual time at which the audit phase starts inside the pause window
  // (telemetry only: scan:<module> spans are offset from it; `now` remains
  // the epoch-boundary timestamp modules key their logic off).
  Nanos trace_start{0};
};

class ScanModule {
 public:
  virtual ~ScanModule() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual ScanResult scan(ScanContext& ctx) = 0;
};

// Resilience layer (DESIGN.md section 9): per-module audit discipline. A
// module whose scan exceeds the deadline, or that throws, is quarantined:
// its findings for that epoch are discarded (partial evidence from a dying
// scanner is untrustworthy), a Warning finding reports the event, and the
// module is skipped on subsequent audits -- one wedged scanner must not
// stall every epoch of the pipeline.
struct AuditPolicy {
  // Virtual-time budget per module per audit; 0 disables the deadline.
  // A hung module is charged exactly the deadline (the audit gives up on
  // it at that point), not its full hang time.
  Nanos module_deadline{0};
};

class Detector {
 public:
  void add_module(std::unique_ptr<ScanModule> module);
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }
  [[nodiscard]] std::vector<std::string> module_names() const;

  // Runs every registered module and aggregates findings and costs. An
  // empty Detector reports clean at zero cost (the Checkpointer then
  // charges its baseline no-op scan cost).
  [[nodiscard]] ScanResult audit(ScanContext& ctx);

  // Parallel engine: runs the modules concurrently on the pool. Modules
  // are independent reads of a quiesced VM, so each worker gets a fork of
  // the caller's VmiSession (sessions are not thread-safe) and its own
  // ScanContext. Findings are joined in module-registration order --
  // byte-identical to audit() -- and the virtual-time charge is
  // max(per-module cost) + fork/join overhead instead of the sum.
  [[nodiscard]] ScanResult audit_parallel(ScanContext& ctx, ThreadPool& pool);

  [[nodiscard]] std::uint64_t audits_run() const { return audits_run_; }

  // Attaches the telemetry layer: per-module scan:<name> spans (serial
  // audits offset them sequentially inside the audit phase; parallel
  // audits place them on per-module lanes) and a findings counter.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  void set_audit_policy(AuditPolicy policy) { policy_ = policy; }
  [[nodiscard]] const AuditPolicy& audit_policy() const { return policy_; }
  // Attaches (nullptr detaches) the fault injector for scan-module
  // timeout/crash faults. Decisions are drawn on the audit-driving thread
  // even for parallel audits.
  void set_fault_injector(fault::FaultInjector* faults) { faults_ = faults; }

  // Names of modules knocked out so far, in quarantine order. Quarantined
  // modules are skipped by audits but stay registered (module_count()
  // still includes them).
  [[nodiscard]] const std::vector<std::string>& quarantined_modules() const {
    return quarantined_names_;
  }
  [[nodiscard]] std::size_t active_module_count() const {
    return modules_.size() - quarantined_names_.size();
  }

 private:
  // Pre-drawn fate of one module's scan this audit (decided before any
  // fan-out so parallel and serial audits agree bit for bit).
  struct ModuleFate {
    bool crash = false;
    Nanos hang{0};
  };
  [[nodiscard]] ModuleFate draw_fate(const std::string& name);
  void quarantine(std::size_t index, const std::string& reason,
                  ScanResult& out);

  std::vector<std::unique_ptr<ScanModule>> modules_;
  std::vector<bool> quarantined_;  // parallel to modules_
  std::vector<std::string> quarantined_names_;
  AuditPolicy policy_;
  std::uint64_t audits_run_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  fault::FaultInjector* faults_ = nullptr;
};

}  // namespace crimes
