// Zero-dependency metrics primitives for the epoch telemetry layer.
//
// The whole value proposition of CRIMES is a time budget: suspend ->
// dirty-scan -> copy -> audit -> resume must fit in the low milliseconds
// every epoch. A coarse post-hoc average cannot show *which phase of which
// epoch* blew that budget, so the hot path records into these cells:
//
//   Counter    monotonic event count (epochs, packets, audit failures)
//   Gauge      last-written value (current adaptive interval)
//   Histogram  fixed log2-bucket distribution with p50/p95/p99/max
//
// Everything is lock-free on the record path (relaxed atomics), so the
// parallel engine's copy/audit workers can record without contention; the
// registry itself takes a mutex only on first-lookup, and instrumented
// components cache the returned pointers at wiring time.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace crimes::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

inline constexpr std::size_t kHistogramBuckets = 64;

// Plain (non-atomic) copy of a Histogram's state; safe to embed in value
// types like RunSummary and to read without synchronization.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Upper bound of the log2 bucket containing the q-quantile sample,
  // clamped to the exact observed max. Quantiles are therefore accurate to
  // a factor of 2 -- enough to separate a 1 ms tail from a 10 ms tail,
  // which is the question the epoch budget asks.
  [[nodiscard]] std::uint64_t percentile(double q) const;
  [[nodiscard]] std::uint64_t p50() const { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p95() const { return percentile(0.95); }
  [[nodiscard]] std::uint64_t p99() const { return percentile(0.99); }

  // Bucket-wise accumulation. Because bucket boundaries are fixed, merging
  // per-tenant histograms yields exactly the histogram one shared recorder
  // would have produced -- the property CloudHost totals rely on (a test
  // asserts merge == recomputed union).
  void merge_from(const HistogramSnapshot& other);
  // Bucket-wise difference against an *earlier* snapshot of the same
  // histogram: the distribution of just the samples recorded in between.
  // The true max of that window is unrecoverable (max is cumulative), so
  // the delta's max is the upper bound of its highest occupied bucket --
  // windowed percentiles stay accurate to the same factor of 2 as the
  // cumulative ones. This is what the time-series engine's sliding-window
  // p50/p95/p99 are built from.
  [[nodiscard]] HistogramSnapshot delta_since(
      const HistogramSnapshot& earlier) const;
};

// Fixed-bucket log2 histogram. Bucket 0 holds the value 0; bucket i >= 1
// holds [2^(i-1), 2^i). Values are unit-free; phase histograms record
// nanoseconds. All mutation is relaxed-atomic: record() may be called from
// any pool worker concurrently with snapshot().
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const { return snapshot().mean(); }
  [[nodiscard]] std::uint64_t percentile(double q) const {
    return snapshot().percentile(q);
  }
  [[nodiscard]] std::uint64_t p50() const { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p95() const { return percentile(0.95); }
  [[nodiscard]] std::uint64_t p99() const { return percentile(0.99); }

  // Exposed for the bucket-math tests.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper_bound(
      std::size_t bucket) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// Named metric store. Lookup is mutex-protected and returns a stable
// reference (node-based map + unique_ptr), so components resolve their
// metrics once at wiring time and record lock-free afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  // Point-in-time copy of every metric, name-sorted, for the exporters.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace crimes::telemetry
