// Per-tenant SLO health monitoring.
//
// A tenant's protection contract is quantitative: pauses under a tail
// budget, the standby within a lag bound, outputs never exposed longer
// than a vulnerability window, audits fast enough to fit the epoch. The
// monitor turns those budgets into a Healthy -> Warn -> Critical state
// machine using multi-window burn rates (the SRE alerting recipe): each
// epoch contributes a violation bit per dimension, and the burn rate over
// a window is
//
//   burn = (violating epochs / window epochs) / error_budget
//
// so burn == 1 means "spending the error budget exactly as fast as
// allowed". Warn fires when the fast window burns hot; Critical when the
// slow window confirms it is sustained, not a blip. Recovery is
// hysteretic: a state steps down only after `clear_after` consecutive
// fast-window-clean epochs, so a flapping tenant cannot oscillate per
// epoch.
//
// Everything is preallocated at construction: observe() touches fixed
// rings and does no allocation, so the monitor can stay on for every
// epoch of every tenant (it is independent of the telemetry knob, like
// RunSummary's pause histogram). The recent-input ring doubles as the
// postmortem's replayable evidence: replay() re-runs the state machine
// over recorded inputs and must reproduce the live verdicts exactly.
#pragma once

#include "common/sim_clock.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace crimes::telemetry {

enum class SloState : std::uint8_t { Healthy, Warn, Critical };

[[nodiscard]] const char* to_string(SloState state);

// The budget dimensions, indexable for the per-dimension burn stats.
enum class SloDimension : std::uint8_t {
  Pause,          // per-epoch pause vs the p99 pause budget
  ReplicationLag, // committed-but-unacked generations
  Vulnerability,  // time audited outputs sat released-but-uncovered
  AuditLatency,   // audit share of the pause
};
inline constexpr std::size_t kSloDimensions = 4;

[[nodiscard]] const char* to_string(SloDimension dim);

// Declarative budgets. A violation is one epoch over the line; the burn
// windows turn violation *frequency* into health, so a single slow epoch
// never pages anyone.
struct SloBudget {
  double pause_ms = 8.0;             // per-epoch pause ceiling
  double replication_lag = 8.0;      // generations in flight
  double vulnerability_ms = 1.0;     // released-before-covered exposure
  double audit_ms = 2.0;             // audit latency ceiling
};

struct SloConfig {
  bool enabled = true;
  SloBudget budget;
  double error_budget = 0.05;    // tolerated violation fraction per window
  std::size_t fast_window = 8;   // epochs; catches active burn
  std::size_t slow_window = 64;  // epochs; confirms it is sustained
  double warn_burn = 1.0;        // fast burn >= this -> Warn
  double critical_burn = 2.0;    // fast AND slow burn >= this -> Critical
  std::size_t clear_after = 4;   // clean epochs before stepping down
  std::size_t history_capacity = 512;  // replayable input ring
};

// One epoch's inputs, as recorded (and replayed). `verdict` is the state
// *after* evaluating this epoch.
struct SloInput {
  std::uint64_t epoch = 0;
  double pause_ms = 0.0;
  double replication_lag = 0.0;
  double vulnerability_ms = 0.0;
  double audit_ms = 0.0;
  SloState verdict = SloState::Healthy;

  [[nodiscard]] double value(SloDimension dim) const;
};

struct SloDimensionReport {
  SloDimension dim{};
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  std::size_t violations = 0;  // lifetime epochs over budget
};

struct SloReport {
  std::string tenant;
  SloState state = SloState::Healthy;
  std::size_t epochs = 0;
  std::size_t warn_epochs = 0;
  std::size_t critical_epochs = 0;
  std::array<SloDimensionReport, kSloDimensions> dimensions{};
};

class SloMonitor {
 public:
  explicit SloMonitor(SloConfig config);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  // Evaluates one epoch. Allocation-free; returns the state after this
  // epoch (the caller watches for transitions). The input's `verdict`
  // field is ignored on the way in and recorded on the way out.
  SloState observe(const SloInput& input);

  [[nodiscard]] SloState state() const { return state_; }
  [[nodiscard]] std::size_t epochs() const { return epochs_; }
  [[nodiscard]] std::size_t warn_epochs() const { return warn_epochs_; }
  [[nodiscard]] std::size_t critical_epochs() const {
    return critical_epochs_;
  }
  [[nodiscard]] double burn_fast(SloDimension dim) const;
  [[nodiscard]] double burn_slow(SloDimension dim) const;
  [[nodiscard]] const SloConfig& config() const { return config_; }

  [[nodiscard]] SloReport report(std::string tenant = {}) const;

  // The recorded inputs, oldest first (at most history_capacity; the
  // postmortem's replayable evidence). Allocates; dump/inspect path only.
  [[nodiscard]] std::vector<SloInput> history() const;

  // Re-runs the state machine over recorded inputs (their verdict fields
  // are ignored). A postmortem is trustworthy iff this reproduces the
  // recorded verdicts -- the bench and check_postmortem.py both assert it.
  [[nodiscard]] static std::vector<SloState> replay(
      const SloConfig& config, std::span<const SloInput> inputs);

 private:
  SloConfig config_;

  // Violation bit rings, one per dimension, sized slow_window.
  struct DimState {
    std::vector<std::uint8_t> ring;  // 0/1 per epoch, capacity slow_window
    std::size_t violations_in_fast = 0;
    std::size_t violations_in_slow = 0;
    std::size_t violations_total = 0;
  };
  std::array<DimState, kSloDimensions> dims_;

  std::vector<SloInput> history_;  // ring, capacity history_capacity
  std::size_t epochs_ = 0;
  SloState state_ = SloState::Healthy;
  std::size_t clean_streak_ = 0;
  std::size_t warn_epochs_ = 0;
  std::size_t critical_epochs_ = 0;
};

// Text dashboard over per-tenant reports: one row per tenant with state,
// epoch counts and the hottest dimension's burn rates.
[[nodiscard]] std::string format_health_table(
    std::span<const SloReport> reports);

}  // namespace crimes::telemetry
