#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace crimes::telemetry {

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return std::min(width, kHistogramBuckets - 1);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= kHistogramBuckets - 1) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return (std::uint64_t{1} << bucket) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

std::uint64_t HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return std::min(Histogram::bucket_upper_bound(i), max);
    }
  }
  return max;
}

void HistogramSnapshot::merge_from(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

HistogramSnapshot HistogramSnapshot::delta_since(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] =
        buckets[i] >= earlier.buckets[i] ? buckets[i] - earlier.buckets[i] : 0;
    if (out.buckets[i] != 0) out.max = Histogram::bucket_upper_bound(i);
  }
  out.count = count >= earlier.count ? count - earlier.count : 0;
  out.sum = sum >= earlier.sum ? sum - earlier.sum : 0;
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  const std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

}  // namespace crimes::telemetry
