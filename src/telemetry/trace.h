// Phase-span tracing in virtual (SimClock) time plus wall time.
//
// Two recording modes, because the simulator charges time two ways:
//
//  - Scoped spans (begin_span/end_span, or the CRIMES_TRACE_SPAN RAII
//    macro) sample the SimClock and a steady wall clock at entry and exit.
//    Use these wherever the clock advances *inside* the span (the epoch
//    loop, rollback, replay, forensics).
//
//  - Explicit spans (add_span) take a precomputed virtual interval. The
//    checkpoint pipeline computes each phase's cost first and advances the
//    SimClock once with the whole pause, so the per-phase sub-intervals
//    (suspend/dirty_scan/audit/map/copy/resume) are only known as costs;
//    the caller places them on the timeline itself. Parallel phases place
//    concurrent spans on distinct lanes (`tid`), which Chrome's trace
//    viewer renders side by side.
//
// Scoped spans maintain a single nesting stack and are meant for the
// orchestrating thread; pool workers report through add_span (any thread,
// mutex-protected) or through lock-free metrics.
#pragma once

#include "common/sim_clock.h"

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace crimes::telemetry {

struct TraceSpan {
  std::string name;
  Nanos virt_start{0};
  Nanos virt_end{0};
  Nanos wall_start{0};  // relative to TraceRecorder construction
  Nanos wall_end{0};
  std::uint32_t tid = 0;    // logical lane; 0 = the main pipeline
  std::uint32_t depth = 0;  // nesting depth at begin (scoped spans only)

  [[nodiscard]] Nanos virt_duration() const { return virt_end - virt_start; }
  [[nodiscard]] Nanos wall_duration() const { return wall_end - wall_start; }
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const SimClock& clock);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Scoped spans: returns a token to pass to end_span. Nesting depth is
  // tracked by an internal stack (strictly LIFO via the RAII macro).
  [[nodiscard]] std::size_t begin_span(std::string_view name);
  void end_span(std::size_t token);

  // Explicit span with a precomputed virtual interval. `wall_duration` is
  // the measured real time of the phase (0 when the phase does no real
  // work in the simulator, e.g. suspend/resume).
  void add_span(std::string_view name, Nanos virt_start, Nanos virt_duration,
                std::uint32_t tid = 0, Nanos wall_duration = Nanos{0},
                std::uint32_t depth = 0);

  [[nodiscard]] std::vector<TraceSpan> spans() const;
  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::size_t open_spans() const;
  // Wall time elapsed since the recorder was created.
  [[nodiscard]] Nanos wall_now() const;
  void clear();

 private:
  const SimClock* clock_;
  std::chrono::steady_clock::time_point wall_epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
  std::vector<std::size_t> open_;  // indices of in-flight scoped spans
};

// RAII scoped span; a null recorder makes the whole object a no-op, so
// instrumented code does not branch at every site.
class TraceScope {
 public:
  TraceScope(TraceRecorder* recorder, std::string_view name)
      : recorder_(recorder) {
    if (recorder_ != nullptr) token_ = recorder_->begin_span(name);
  }
  ~TraceScope() {
    if (recorder_ != nullptr) recorder_->end_span(token_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* recorder_;
  std::size_t token_ = 0;
};

}  // namespace crimes::telemetry

#define CRIMES_TRACE_CONCAT_INNER(a, b) a##b
#define CRIMES_TRACE_CONCAT(a, b) CRIMES_TRACE_CONCAT_INNER(a, b)
// Opens a span named `name` on `recorder` (a TraceRecorder*, may be null)
// for the rest of the enclosing scope.
#define CRIMES_TRACE_SPAN(recorder, name)                 \
  ::crimes::telemetry::TraceScope CRIMES_TRACE_CONCAT(    \
      crimes_trace_scope_, __LINE__) {                    \
    (recorder), (name)                                    \
  }
