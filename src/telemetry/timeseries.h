// Windowed telemetry history: the time-series engine behind the flight
// recorder and the SLO monitor.
//
// MetricsRegistry cells are point-in-time -- a gauge read after a freeze
// says nothing about the minutes before it. The engine closes that gap:
// once per epoch it snapshots every registered counter/gauge/histogram
// into per-metric ring buffers and maintains the windowed views the
// control plane asks for (per-second rate, EWMA, sliding-window
// p50/p95/p99). Memory stays bounded no matter how long the run is:
//
//   tier 0   raw (time, value) samples, fixed-capacity ring
//   tier 1+  every `fold_every` finer points fold into one min/max/sum/
//            count aggregate, themselves ring-buffered
//
// so thousands of epochs of history cost a few KiB per metric. Histogram
// metrics keep a ring of cumulative snapshots instead; a sliding window is
// the bucket-wise delta of its endpoints (HistogramSnapshot::delta_since),
// which makes windowed percentiles exactly the log2-bucket percentiles a
// fresh histogram over the window's samples would report.
//
// The engine only exists when the telemetry knob is on; the disabled path
// keeps PR 2's zero-allocation guarantee by never constructing one.
#pragma once

#include "common/sim_clock.h"
#include "telemetry/metrics.h"

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace crimes::telemetry {

struct TimeSeriesConfig {
  std::size_t raw_capacity = 256;  // tier-0 samples kept per series
  std::size_t fold_every = 8;      // finer points per downsampled aggregate
  std::size_t tier_capacity = 128; // capacity of each downsampled tier
  std::size_t tiers = 2;           // downsampled tiers on top of raw
  double ewma_alpha = 0.2;         // weight of the newest sample
};

struct SamplePoint {
  Nanos at{0};
  double value = 0.0;
};

// One downsampled point: `count` consecutive finer-tier points folded into
// their envelope. Rates and tails survive downsampling as bounds.
struct AggPoint {
  Nanos start{0};
  Nanos end{0};
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::size_t count = 0;
};

// Scalar series (counter or gauge). Counters additionally maintain the
// per-sample increment stream the rate/EWMA views are computed from.
class ScalarSeries {
 public:
  enum class Kind { Counter, Gauge };

  ScalarSeries(Kind kind, const TimeSeriesConfig& config);

  void observe(Nanos at, double value);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] std::size_t samples_seen() const { return seen_; }
  // Newest-last copy of the raw ring (at most raw_capacity points).
  [[nodiscard]] std::vector<SamplePoint> raw() const;
  [[nodiscard]] std::vector<AggPoint> tier(std::size_t t) const;
  [[nodiscard]] std::size_t tier_count() const { return tiers_.size(); }

  // Last raw sample (0 if none yet).
  [[nodiscard]] double last() const;
  // EWMA of the sampled value (gauges) or of the per-sample increment
  // (counters).
  [[nodiscard]] double ewma() const { return ewma_; }
  // Counter rate over the last `window` raw samples, per virtual second:
  // (v_now - v_then) / (t_now - t_then). Gauges report the mean slope the
  // same way. 0 until two samples exist.
  [[nodiscard]] double rate_per_sec(std::size_t window) const;

 private:
  void fold_into_tier(std::size_t t, Nanos start, Nanos end, double mn,
                      double mx, double sum, std::size_t n);

  Kind kind_;
  TimeSeriesConfig config_;
  std::vector<SamplePoint> raw_;   // ring, capacity raw_capacity
  std::size_t seen_ = 0;           // total observes; ring head = seen_ % cap

  struct Tier {
    std::vector<AggPoint> ring;    // capacity tier_capacity
    std::size_t seen = 0;
    // Accumulator for the aggregate currently being built.
    AggPoint pending{};
  };
  std::vector<Tier> tiers_;

  double ewma_ = 0.0;
  bool ewma_seeded_ = false;
  double last_value_ = 0.0;
  bool has_last_ = false;
};

// Histogram series: ring of cumulative snapshots. Windowed views are
// bucket deltas between ring entries.
class HistogramSeries {
 public:
  explicit HistogramSeries(const TimeSeriesConfig& config);

  void observe(Nanos at, const HistogramSnapshot& snap);

  [[nodiscard]] std::size_t samples_seen() const { return seen_; }
  // Distribution of samples recorded during the last `window` epochs
  // (clamped to the history actually retained).
  [[nodiscard]] HistogramSnapshot window_delta(std::size_t window) const;
  [[nodiscard]] std::uint64_t window_p50(std::size_t window) const {
    return window_delta(window).p50();
  }
  [[nodiscard]] std::uint64_t window_p95(std::size_t window) const {
    return window_delta(window).p95();
  }
  [[nodiscard]] std::uint64_t window_p99(std::size_t window) const {
    return window_delta(window).p99();
  }
  [[nodiscard]] const HistogramSnapshot& latest() const;

 private:
  std::size_t capacity_;
  std::vector<SamplePoint> times_;        // parallel ring of sample times
  std::vector<HistogramSnapshot> ring_;   // ring, capacity raw_capacity
  std::size_t seen_ = 0;
};

class TimeSeriesEngine {
 public:
  TimeSeriesEngine(const MetricsRegistry& registry, TimeSeriesConfig config);

  TimeSeriesEngine(const TimeSeriesEngine&) = delete;
  TimeSeriesEngine& operator=(const TimeSeriesEngine&) = delete;

  // Samples every registered metric once. Called at each epoch boundary;
  // new metrics are adopted (and a series allocated) the first time they
  // appear in the registry.
  void sample(Nanos now);

  [[nodiscard]] std::size_t samples_taken() const { return samples_; }
  [[nodiscard]] std::size_t series_count() const {
    return scalars_.size() + histograms_.size();
  }
  // Metric count at the last sample() -- what the per-epoch sampling cost
  // scales with.
  [[nodiscard]] std::size_t last_sample_metrics() const {
    return last_sample_metrics_;
  }

  [[nodiscard]] const ScalarSeries* find(std::string_view name) const;
  [[nodiscard]] const HistogramSeries* find_histogram(
      std::string_view name) const;
  [[nodiscard]] const TimeSeriesConfig& config() const { return config_; }

  // The postmortem exporter walks every series.
  [[nodiscard]] const std::map<std::string, ScalarSeries, std::less<>>&
  scalars() const {
    return scalars_;
  }
  [[nodiscard]] const std::map<std::string, HistogramSeries, std::less<>>&
  histograms() const {
    return histograms_;
  }

 private:
  const MetricsRegistry* registry_;
  TimeSeriesConfig config_;
  std::map<std::string, ScalarSeries, std::less<>> scalars_;
  std::map<std::string, HistogramSeries, std::less<>> histograms_;
  std::size_t samples_ = 0;
  std::size_t last_sample_metrics_ = 0;
};

}  // namespace crimes::telemetry
