#include "telemetry/telemetry.h"

#include "telemetry/export.h"

namespace crimes::telemetry {

bool Telemetry::flush_exports() {
  bool ok = true;
  if (!trace_path_.empty()) {
    ok = write_chrome_trace(trace, trace_path_) && ok;
  }
  if (!metrics_path_.empty()) {
    ok = write_metrics_jsonl(metrics, metrics_path_) && ok;
  }
  return ok;
}

}  // namespace crimes::telemetry
