// The bundle instrumented components share: one metrics registry + one
// trace recorder per Crimes instance, both keyed to that instance's
// SimClock, plus (optionally) the time-series engine sampling the registry
// once per epoch. Components hold a `telemetry::Telemetry*` that is
// nullptr when the CrimesConfig::telemetry knob is off -- every recording
// site guards on it, so the disabled path does no allocation and no
// locking per epoch (a test asserts this).
#pragma once

#include "common/sim_clock.h"
#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

#include <memory>
#include <string>

namespace crimes::telemetry {

struct Telemetry {
  explicit Telemetry(const SimClock& clock) : trace(clock) {}

  MetricsRegistry metrics;
  TraceRecorder trace;
  // Windowed history; created by enable_series() (Crimes does so at
  // initialize() time) and sampled at each epoch boundary.
  std::unique_ptr<TimeSeriesEngine> series;

  void enable_series(TimeSeriesConfig config = {}) {
    if (!series) {
      series = std::make_unique<TimeSeriesEngine>(metrics, config);
    }
  }

  // Abnormal-exit flushing: a bench registers its --trace-out/--metrics-out
  // destinations up front, and any abnormal path (governor freeze,
  // retries-exhausted checkpoint failure, failover, postmortem dump) calls
  // flush_exports() so a partial run still leaves complete, parseable
  // files behind instead of nothing. Each flush rewrites the files whole
  // (both exporters emit self-contained documents); calling it again at
  // normal exit simply refreshes them.
  void set_export_paths(std::string trace_path, std::string metrics_path) {
    trace_path_ = std::move(trace_path);
    metrics_path_ = std::move(metrics_path);
  }
  // Returns false if any registered destination could not be written.
  bool flush_exports();
  [[nodiscard]] const std::string& trace_path() const { return trace_path_; }
  [[nodiscard]] const std::string& metrics_path() const {
    return metrics_path_;
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace crimes::telemetry
