// The bundle instrumented components share: one metrics registry + one
// trace recorder per Crimes instance, both keyed to that instance's
// SimClock. Components hold a `telemetry::Telemetry*` that is nullptr when
// the CrimesConfig::telemetry knob is off -- every recording site guards on
// it, so the disabled path does no allocation and no locking per epoch
// (a test asserts this).
#pragma once

#include "common/sim_clock.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace crimes::telemetry {

struct Telemetry {
  explicit Telemetry(const SimClock& clock) : trace(clock) {}

  MetricsRegistry metrics;
  TraceRecorder trace;
};

}  // namespace crimes::telemetry
