#include "telemetry/timeseries.h"

#include <algorithm>

namespace crimes::telemetry {

ScalarSeries::ScalarSeries(Kind kind, const TimeSeriesConfig& config)
    : kind_(kind), config_(config) {
  raw_.reserve(config_.raw_capacity);
  tiers_.resize(config_.tiers);
  for (auto& tier : tiers_) tier.ring.reserve(config_.tier_capacity);
}

void ScalarSeries::observe(Nanos at, double value) {
  // The EWMA/rate stream: gauges smooth the level, counters the increment
  // (a counter's level only ever says "how long has this run been going").
  const double x =
      kind_ == Kind::Counter ? (has_last_ ? value - last_value_ : 0.0) : value;
  if (ewma_seeded_) {
    ewma_ += config_.ewma_alpha * (x - ewma_);
  } else {
    ewma_ = x;
    ewma_seeded_ = true;
  }
  last_value_ = value;
  has_last_ = true;

  const SamplePoint point{at, value};
  if (raw_.size() < config_.raw_capacity) {
    raw_.push_back(point);
  } else {
    raw_[seen_ % config_.raw_capacity] = point;
  }
  ++seen_;

  // Cascade into the downsampled tiers: each tier folds `fold_every` of
  // the tier below into one envelope point.
  if (!tiers_.empty()) {
    fold_into_tier(0, at, at, value, value, value, 1);
  }
}

void ScalarSeries::fold_into_tier(std::size_t t, Nanos start, Nanos end,
                                  double mn, double mx, double sum,
                                  std::size_t n) {
  if (t >= tiers_.size()) return;
  Tier& tier = tiers_[t];
  AggPoint& p = tier.pending;
  if (p.count == 0) {
    p.start = start;
    p.min = mn;
    p.max = mx;
  }
  p.end = end;
  p.min = std::min(p.min, mn);
  p.max = std::max(p.max, mx);
  p.sum += sum;
  p.count += n;
  // A tier point completes after fold_every inputs from the tier below.
  ++tier.seen;
  if (tier.seen % config_.fold_every != 0) return;
  const AggPoint done = p;
  p = AggPoint{};
  const std::size_t slot = tier.seen / config_.fold_every - 1;
  if (tier.ring.size() < config_.tier_capacity) {
    tier.ring.push_back(done);
  } else {
    tier.ring[slot % config_.tier_capacity] = done;
  }
  fold_into_tier(t + 1, done.start, done.end, done.min, done.max, done.sum,
                 done.count);
}

std::vector<SamplePoint> ScalarSeries::raw() const {
  std::vector<SamplePoint> out;
  const std::size_t n = std::min(seen_, config_.raw_capacity);
  out.reserve(n);
  const std::size_t start = seen_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(raw_[(start + i) % config_.raw_capacity]);
  }
  return out;
}

std::vector<AggPoint> ScalarSeries::tier(std::size_t t) const {
  std::vector<AggPoint> out;
  if (t >= tiers_.size()) return out;
  const Tier& tier = tiers_[t];
  const std::size_t points = tier.seen / config_.fold_every;
  const std::size_t n = std::min(points, config_.tier_capacity);
  out.reserve(n);
  const std::size_t start = points - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(tier.ring[(start + i) % config_.tier_capacity]);
  }
  return out;
}

double ScalarSeries::last() const {
  if (seen_ == 0) return 0.0;
  return raw_[(seen_ - 1) % config_.raw_capacity].value;
}

double ScalarSeries::rate_per_sec(std::size_t window) const {
  const std::size_t n = std::min({seen_, config_.raw_capacity, window + 1});
  if (n < 2) return 0.0;
  const SamplePoint& newest = raw_[(seen_ - 1) % config_.raw_capacity];
  const SamplePoint& oldest = raw_[(seen_ - n) % config_.raw_capacity];
  const double dt_sec = to_ms(newest.at - oldest.at) / 1e3;
  if (dt_sec <= 0.0) return 0.0;
  return (newest.value - oldest.value) / dt_sec;
}

HistogramSeries::HistogramSeries(const TimeSeriesConfig& config)
    : capacity_(config.raw_capacity) {
  times_.reserve(capacity_);
  ring_.reserve(capacity_);
}

void HistogramSeries::observe(Nanos at, const HistogramSnapshot& snap) {
  if (ring_.size() < capacity_) {
    times_.push_back(SamplePoint{at, static_cast<double>(snap.count)});
    ring_.push_back(snap);
  } else {
    times_[seen_ % capacity_] = SamplePoint{at, static_cast<double>(snap.count)};
    ring_[seen_ % capacity_] = snap;
  }
  ++seen_;
}

HistogramSnapshot HistogramSeries::window_delta(std::size_t window) const {
  if (seen_ == 0) return {};
  const std::size_t n = std::min(seen_, capacity_);
  const HistogramSnapshot& newest = ring_[(seen_ - 1) % capacity_];
  // The window start is the snapshot `window` samples back; if the ring no
  // longer holds one that old (or the run is younger than the window), the
  // oldest retained snapshot bounds it. A window reaching before the first
  // sample means "everything so far": delta against an empty snapshot.
  if (window >= seen_) return newest.delta_since(HistogramSnapshot{});
  const std::size_t back = std::min(window, n - 1);
  const HistogramSnapshot& earlier = ring_[(seen_ - 1 - back) % capacity_];
  return newest.delta_since(earlier);
}

const HistogramSnapshot& HistogramSeries::latest() const {
  static const HistogramSnapshot kEmpty{};
  if (seen_ == 0) return kEmpty;
  return ring_[(seen_ - 1) % capacity_];
}

TimeSeriesEngine::TimeSeriesEngine(const MetricsRegistry& registry,
                                   TimeSeriesConfig config)
    : registry_(&registry), config_(config) {}

void TimeSeriesEngine::sample(Nanos now) {
  const MetricsRegistry::Snapshot snap = registry_->snapshot();
  last_sample_metrics_ =
      snap.counters.size() + snap.gauges.size() + snap.histograms.size();
  for (const auto& [name, value] : snap.counters) {
    auto it = scalars_.find(name);
    if (it == scalars_.end()) {
      it = scalars_
               .emplace(name,
                        ScalarSeries(ScalarSeries::Kind::Counter, config_))
               .first;
    }
    it->second.observe(now, static_cast<double>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    auto it = scalars_.find(name);
    if (it == scalars_.end()) {
      it = scalars_
               .emplace(name, ScalarSeries(ScalarSeries::Kind::Gauge, config_))
               .first;
    }
    it->second.observe(now, value);
  }
  for (const auto& [name, hist] : snap.histograms) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, HistogramSeries(config_)).first;
    }
    it->second.observe(now, hist);
  }
  ++samples_;
}

const ScalarSeries* TimeSeriesEngine::find(std::string_view name) const {
  const auto it = scalars_.find(name);
  return it == scalars_.end() ? nullptr : &it->second;
}

const HistogramSeries* TimeSeriesEngine::find_histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

}  // namespace crimes::telemetry
