#include "telemetry/trace.h"

#include <algorithm>

namespace crimes::telemetry {

TraceRecorder::TraceRecorder(const SimClock& clock)
    : clock_(&clock), wall_epoch_(std::chrono::steady_clock::now()) {}

Nanos TraceRecorder::wall_now() const {
  return std::chrono::duration_cast<Nanos>(std::chrono::steady_clock::now() -
                                           wall_epoch_);
}

std::size_t TraceRecorder::begin_span(std::string_view name) {
  const Nanos wall = wall_now();
  const Nanos virt = clock_->now();
  const std::lock_guard lock(mutex_);
  const std::size_t index = spans_.size();
  spans_.push_back(TraceSpan{
      .name = std::string(name),
      .virt_start = virt,
      .virt_end = virt,
      .wall_start = wall,
      .wall_end = wall,
      .tid = 0,
      .depth = static_cast<std::uint32_t>(open_.size()),
  });
  open_.push_back(index);
  return index;
}

void TraceRecorder::end_span(std::size_t token) {
  const Nanos wall = wall_now();
  const Nanos virt = clock_->now();
  const std::lock_guard lock(mutex_);
  if (token >= spans_.size()) return;
  spans_[token].virt_end = virt;
  spans_[token].wall_end = wall;
  const auto it = std::find(open_.begin(), open_.end(), token);
  if (it != open_.end()) open_.erase(it);
}

void TraceRecorder::add_span(std::string_view name, Nanos virt_start,
                             Nanos virt_duration, std::uint32_t tid,
                             Nanos wall_duration, std::uint32_t depth) {
  const Nanos wall = wall_now();
  const std::lock_guard lock(mutex_);
  spans_.push_back(TraceSpan{
      .name = std::string(name),
      .virt_start = virt_start,
      .virt_end = virt_start + virt_duration,
      .wall_start = wall - wall_duration,
      .wall_end = wall,
      .tid = tid,
      .depth = depth,
  });
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  const std::lock_guard lock(mutex_);
  return spans_;
}

std::size_t TraceRecorder::span_count() const {
  const std::lock_guard lock(mutex_);
  return spans_.size();
}

std::size_t TraceRecorder::open_spans() const {
  const std::lock_guard lock(mutex_);
  return open_.size();
}

void TraceRecorder::clear() {
  const std::lock_guard lock(mutex_);
  spans_.clear();
  open_.clear();
}

}  // namespace crimes::telemetry
