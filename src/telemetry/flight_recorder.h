// Always-on flight recorder: the system's own black box.
//
// The CRIMES thesis -- keep evidence so you can react after the fact --
// applied to the system itself. A bounded ring of fixed-size slots holds
// the most recent notable events (phase outcomes, fault-injector
// decisions, governor transitions, failover steps, SLO verdicts, log
// lines); recording is wait-free in the common case (one atomic ticket
// fetch_add; a per-slot guard arbitrates the rare wrap collision) and
// never allocates, so it can stay on for every epoch of every tenant.
//
// When something goes wrong -- a checkpoint exhausts its retries, the
// SafetyGovernor freezes the tenant, a failover promotes the standby, or
// StoreJournal::fsck finds torn state -- write_postmortem() freezes the
// evidence into one self-contained JSON document: the ring's contents,
// the last-N epochs of every time series, the SLO monitor's replayable
// input history, and a config snapshot. scripts/check_postmortem.py
// validates the schema; SloMonitor::replay() proves the verdicts inside
// are reproducible from the recorded inputs.
#pragma once

#include "common/sim_clock.h"
#include "telemetry/export.h"
#include "telemetry/slo.h"
#include "telemetry/timeseries.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace crimes::telemetry {

// Trace lane the postmortem-dump trigger spans land on: far above the
// pipeline (0), the CoW drain (1) and the parallel-audit module lanes, so
// the dump marker never interleaves with pipeline nesting rules.
inline constexpr std::uint32_t kFlightRecorderLane = 15;

enum class FlightEventKind : std::uint8_t {
  Phase,       // epoch/checkpoint milestones (commit, failure, retry)
  Fault,       // injector decision that fired
  Governor,    // downgrade / upgrade / freeze
  Failover,    // kill, promotion, fencing
  Slo,         // health-state transition
  Log,         // notable log line
  Postmortem,  // a dump was triggered (the trigger itself is evidence)
  Control,     // control-plane knob decision (what=knob, detail=reason)
  Tamper,      // attestation/seal verification failure (what=boundary)
  Host,        // host arbiter action on this tenant (what=action,
               // detail=reason) -- shedding ladder moves and trades
};

[[nodiscard]] const char* to_string(FlightEventKind kind);

struct FlightEvent {
  Nanos at{0};
  std::uint64_t epoch = 0;
  FlightEventKind kind = FlightEventKind::Phase;
  double value = 0.0;
  char what[48] = {};    // site / transition / span name
  char detail[80] = {};  // free-form context
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Wait-free slot claim + bounded-copy write; no allocation. Oversized
  // strings are truncated into the fixed slot fields.
  void record(Nanos at, std::uint64_t epoch, FlightEventKind kind,
              std::string_view what, std::string_view detail = {},
              double value = 0.0) noexcept;

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  // Events recorded over the recorder's lifetime (>= capacity() means the
  // ring wrapped and old evidence was overwritten -- by design).
  [[nodiscard]] std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > ring_.size() ? n - ring_.size() : 0;
  }

  // Oldest-first copy of the ring. Allocates; dump/inspect path only.
  // Callers dump between epochs (trigger sites are all on the
  // orchestrating thread), so slots are quiescent by then.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

 private:
  struct Slot {
    std::atomic_flag busy = ATOMIC_FLAG_INIT;
    FlightEvent event;
  };
  // mutable: snapshot() is logically const but takes the per-slot guards.
  mutable std::vector<Slot> ring_;
  std::atomic<std::uint64_t> head_{0};
};

// Everything a postmortem freezes. `series` and `slo` are nullable --
// a telemetry-off tenant still dumps its ring and config.
struct PostmortemContext {
  std::string reason;   // "checkpoint-retries-exhausted", "governor-freeze",
                        // "failover", "journal-fsck"
  std::string tenant;
  Nanos at{0};
  std::uint64_t epoch = 0;
  std::string config_summary;  // rendered CrimesConfig snapshot
  const FlightRecorder* flight = nullptr;
  const TimeSeriesEngine* series = nullptr;
  const SloMonitor* slo = nullptr;
  std::size_t series_last_n = 64;  // raw samples per series to include
};

// Writes the self-contained postmortem JSON ("crimes-postmortem-v1").
void export_postmortem(const PostmortemContext& ctx, TelemetrySink& sink);
[[nodiscard]] std::string render_postmortem(const PostmortemContext& ctx);
bool write_postmortem(const PostmortemContext& ctx, const std::string& path);

}  // namespace crimes::telemetry
