// Exporters for the telemetry layer.
//
//  - Chrome trace_event JSON: load the file in chrome://tracing or
//    https://ui.perfetto.dev to see the epoch pipeline on a timeline
//    (virtual time on the ruler; measured wall time in each slice's args).
//  - Metrics JSONL: one JSON object per line per metric -- trivially
//    greppable / jq-able, append-friendly.
//  - format_phase_table: the human-readable per-phase count/mean/p50/
//    p95/p99/max table benches print after a figure run.
//
// All writing funnels through the small TelemetrySink interface so tests
// can export into a string and parse it back.
#pragma once

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

#include <cstdio>
#include <string>
#include <string_view>

namespace crimes::telemetry {

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void write(std::string_view chunk) = 0;
};

class StringSink final : public TelemetrySink {
 public:
  void write(std::string_view chunk) override { data_.append(chunk); }
  [[nodiscard]] const std::string& str() const { return data_; }

 private:
  std::string data_;
};

class FileSink final : public TelemetrySink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  void write(std::string_view chunk) override;

 private:
  std::FILE* file_ = nullptr;
};

// Emits {"displayTimeUnit":"ms","traceEvents":[...]} with one complete
// ("ph":"X") event per span -- ts/dur in virtual microseconds -- plus
// thread-name metadata for each lane.
void export_chrome_trace(const TraceRecorder& recorder, TelemetrySink& sink);
// Convenience wrapper; returns false if the file could not be opened.
bool write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path);

void export_metrics_jsonl(const MetricsRegistry& metrics, TelemetrySink& sink);
bool write_metrics_jsonl(const MetricsRegistry& metrics,
                         const std::string& path);

// Per-phase table over every histogram named "phase.*" (values are
// nanoseconds; printed in ms).
[[nodiscard]] std::string format_phase_table(const MetricsRegistry& metrics);

// Minimal JSON string escaping, shared by every exporter (including the
// flight recorder's postmortem writer).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace crimes::telemetry
