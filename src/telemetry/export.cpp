#include "telemetry/export.h"

#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <set>

namespace crimes::telemetry {

// Minimal JSON string escaping: the names we emit are identifiers, but the
// exporters must never produce malformed JSON whatever they are fed.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void appendf(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

double to_trace_us(Nanos d) {
  return static_cast<double>(d.count()) / 1e3;
}

}  // namespace

FileSink::FileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write(std::string_view chunk) {
  if (file_ != nullptr) {
    std::fwrite(chunk.data(), 1, chunk.size(), file_);
  }
}

void export_chrome_trace(const TraceRecorder& recorder, TelemetrySink& sink) {
  const std::vector<TraceSpan> spans = recorder.spans();
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Lane-name metadata so the viewer labels rows meaningfully.
  std::set<std::uint32_t> tids;
  for (const auto& span : spans) tids.insert(span.tid);
  comma();
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"crimes (virtual time)\"}}";
  for (const std::uint32_t tid : tids) {
    comma();
    appendf(out,
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
            "\"args\":{\"name\":\"%s\"}}",
            tid,
            tid == 0 ? "pipeline"
            : tid == kFlightRecorderLane
                ? "flight-recorder"
                : ("lane-" + std::to_string(tid)).c_str());
  }

  for (const auto& span : spans) {
    comma();
    appendf(out,
            "{\"name\":\"%s\",\"cat\":\"crimes\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u,"
            "\"args\":{\"wall_us\":%.3f,\"depth\":%u}}",
            json_escape(span.name).c_str(), to_trace_us(span.virt_start),
            to_trace_us(span.virt_duration()), span.tid,
            to_trace_us(span.wall_duration()), span.depth);
  }
  out += "\n]}\n";
  sink.write(out);
}

bool write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path) {
  FileSink sink(path);
  if (!sink.ok()) return false;
  export_chrome_trace(recorder, sink);
  return true;
}

void export_metrics_jsonl(const MetricsRegistry& metrics,
                          TelemetrySink& sink) {
  const MetricsRegistry::Snapshot snap = metrics.snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    appendf(out,
            "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%" PRIu64 "}\n",
            json_escape(name).c_str(), value);
  }
  for (const auto& [name, value] : snap.gauges) {
    appendf(out, "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.6f}\n",
            json_escape(name).c_str(), value);
  }
  for (const auto& [name, h] : snap.histograms) {
    appendf(out,
            "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%" PRIu64
            ",\"sum\":%" PRIu64 ",\"max\":%" PRIu64
            ",\"mean\":%.3f,\"p50\":%" PRIu64 ",\"p95\":%" PRIu64
            ",\"p99\":%" PRIu64 "}\n",
            json_escape(name).c_str(), h.count, h.sum, h.max, h.mean(),
            h.p50(), h.p95(), h.p99());
  }
  sink.write(out);
}

bool write_metrics_jsonl(const MetricsRegistry& metrics,
                         const std::string& path) {
  FileSink sink(path);
  if (!sink.ok()) return false;
  export_metrics_jsonl(metrics, sink);
  return true;
}

std::string format_phase_table(const MetricsRegistry& metrics) {
  const MetricsRegistry::Snapshot snap = metrics.snapshot();
  std::string out;
  appendf(out, "%-22s %8s %9s %9s %9s %9s %9s\n", "phase (ms)", "count",
          "mean", "p50", "p95", "p99", "max");
  const auto ms = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1e6;
  };
  for (const auto& [name, h] : snap.histograms) {
    constexpr std::string_view kPrefix = "phase.";
    if (name.rfind(kPrefix, 0) != 0) continue;
    appendf(out, "%-22s %8" PRIu64 " %9.3f %9.3f %9.3f %9.3f %9.3f\n",
            name.c_str() + kPrefix.size(), h.count, h.mean() / 1e6,
            ms(h.p50()), ms(h.p95()), ms(h.p99()), ms(h.max));
  }
  return out;
}

}  // namespace crimes::telemetry
