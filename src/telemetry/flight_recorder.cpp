#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>

namespace crimes::telemetry {

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::Phase: return "phase";
    case FlightEventKind::Fault: return "fault";
    case FlightEventKind::Governor: return "governor";
    case FlightEventKind::Failover: return "failover";
    case FlightEventKind::Slo: return "slo";
    case FlightEventKind::Log: return "log";
    case FlightEventKind::Postmortem: return "postmortem";
    case FlightEventKind::Control: return "control";
    case FlightEventKind::Tamper: return "tamper";
    case FlightEventKind::Host: return "host";
  }
  return "?";
}

namespace {

void copy_field(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void appendf(std::string& out, const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {}

void FlightRecorder::record(Nanos at, std::uint64_t epoch,
                            FlightEventKind kind, std::string_view what,
                            std::string_view detail, double value) noexcept {
  const std::uint64_t ticket =
      head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[ticket % ring_.size()];
  // Tickets are unique, so two writers only meet here when one laps the
  // other by a full ring -- the guard makes that case lose cleanly instead
  // of tearing the slot.
  while (slot.busy.test_and_set(std::memory_order_acquire)) {
  }
  slot.event.at = at;
  slot.event.epoch = epoch;
  slot.event.kind = kind;
  slot.event.value = value;
  copy_field(slot.event.what, sizeof slot.event.what, what);
  copy_field(slot.event.detail, sizeof slot.event.detail, detail);
  slot.busy.clear(std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n =
      std::min<std::uint64_t>(head, ring_.size());
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t ticket = head - n; ticket < head; ++ticket) {
    // The guard pairs with record(): a slot is copied only between writes.
    Slot& slot = ring_[ticket % ring_.size()];
    while (slot.busy.test_and_set(std::memory_order_acquire)) {
    }
    out.push_back(slot.event);
    slot.busy.clear(std::memory_order_release);
  }
  return out;
}

std::string render_postmortem(const PostmortemContext& ctx) {
  std::string out;
  out += "{\n";
  appendf(out, "\"schema\":\"crimes-postmortem-v1\",\n");
  appendf(out, "\"reason\":\"%s\",\n", json_escape(ctx.reason).c_str());
  appendf(out, "\"tenant\":\"%s\",\n", json_escape(ctx.tenant).c_str());
  appendf(out, "\"at_ms\":%.6f,\n", to_ms(ctx.at));
  appendf(out, "\"epoch\":%" PRIu64 ",\n", ctx.epoch);
  appendf(out, "\"config\":\"%s\",\n",
          json_escape(ctx.config_summary).c_str());

  // --- Flight ring ------------------------------------------------------
  out += "\"flight\":";
  if (ctx.flight == nullptr) {
    out += "null";
  } else {
    const std::vector<FlightEvent> events = ctx.flight->snapshot();
    appendf(out,
            "{\"capacity\":%zu,\"recorded\":%" PRIu64 ",\"dropped\":%" PRIu64
            ",\"events\":[\n",
            ctx.flight->capacity(), ctx.flight->recorded(),
            ctx.flight->dropped());
    bool first = true;
    for (const FlightEvent& e : events) {
      if (!first) out += ",\n";
      first = false;
      appendf(out,
              "{\"at_ms\":%.6f,\"epoch\":%" PRIu64
              ",\"kind\":\"%s\",\"what\":\"%s\",\"detail\":\"%s\","
              "\"value\":%.6f}",
              to_ms(e.at), e.epoch, to_string(e.kind),
              json_escape(e.what).c_str(), json_escape(e.detail).c_str(),
              e.value);
    }
    out += "\n]}";
  }
  out += ",\n";

  // --- Time series (last-N raw samples per metric) ----------------------
  out += "\"series\":";
  if (ctx.series == nullptr) {
    out += "null";
  } else {
    appendf(out, "{\"samples_taken\":%zu,\"scalars\":{\n",
            ctx.series->samples_taken());
    bool first = true;
    for (const auto& [name, series] : ctx.series->scalars()) {
      if (!first) out += ",\n";
      first = false;
      std::vector<SamplePoint> raw = series.raw();
      if (raw.size() > ctx.series_last_n) {
        raw.erase(raw.begin(),
                  raw.end() - static_cast<std::ptrdiff_t>(ctx.series_last_n));
      }
      appendf(out, "\"%s\":{\"kind\":\"%s\",\"ewma\":%.6f,\"rate\":%.6f,"
              "\"samples\":[",
              json_escape(name).c_str(),
              series.kind() == ScalarSeries::Kind::Counter ? "counter"
                                                           : "gauge",
              series.ewma(), series.rate_per_sec(ctx.series_last_n));
      for (std::size_t i = 0; i < raw.size(); ++i) {
        appendf(out, "%s[%.6f,%.6f]", i == 0 ? "" : ",", to_ms(raw[i].at),
                raw[i].value);
      }
      out += "]}";
    }
    out += "\n},\"histograms\":{\n";
    first = true;
    const std::size_t window = ctx.series_last_n;
    for (const auto& [name, series] : ctx.series->histograms()) {
      if (!first) out += ",\n";
      first = false;
      const HistogramSnapshot& latest = series.latest();
      appendf(out,
              "\"%s\":{\"count\":%" PRIu64 ",\"p50\":%" PRIu64
              ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64
              ",\"window_p99\":%" PRIu64 "}",
              json_escape(name).c_str(), latest.count, latest.p50(),
              latest.p95(), latest.p99(), series.window_p99(window));
    }
    out += "\n}}";
  }
  out += ",\n";

  // --- SLO monitor: verdicts plus the replayable inputs -----------------
  out += "\"slo\":";
  if (ctx.slo == nullptr) {
    out += "null";
  } else {
    const SloConfig& cfg = ctx.slo->config();
    appendf(out,
            "{\"state\":\"%s\",\"epochs\":%zu,\"warn_epochs\":%zu,"
            "\"critical_epochs\":%zu,\n",
            to_string(ctx.slo->state()), ctx.slo->epochs(),
            ctx.slo->warn_epochs(), ctx.slo->critical_epochs());
    appendf(out,
            "\"config\":{\"error_budget\":%.6f,\"fast_window\":%zu,"
            "\"slow_window\":%zu,\"warn_burn\":%.6f,\"critical_burn\":%.6f,"
            "\"clear_after\":%zu,\"budget\":{\"pause_ms\":%.6f,"
            "\"replication_lag\":%.6f,\"vulnerability_ms\":%.6f,"
            "\"audit_ms\":%.6f}},\n",
            cfg.error_budget, cfg.fast_window, cfg.slow_window, cfg.warn_burn,
            cfg.critical_burn, cfg.clear_after, cfg.budget.pause_ms,
            cfg.budget.replication_lag, cfg.budget.vulnerability_ms,
            cfg.budget.audit_ms);
    out += "\"inputs\":[\n";
    const std::vector<SloInput> inputs = ctx.slo->history();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const SloInput& in = inputs[i];
      appendf(out,
              "%s{\"epoch\":%" PRIu64 ",\"pause_ms\":%.6f,"
              "\"replication_lag\":%.6f,\"vulnerability_ms\":%.6f,"
              "\"audit_ms\":%.6f,\"verdict\":\"%s\"}",
              i == 0 ? "" : ",\n", in.epoch, in.pause_ms, in.replication_lag,
              in.vulnerability_ms, in.audit_ms, to_string(in.verdict));
    }
    out += "\n]}";
  }
  out += "\n}\n";
  return out;
}

void export_postmortem(const PostmortemContext& ctx, TelemetrySink& sink) {
  sink.write(render_postmortem(ctx));
}

bool write_postmortem(const PostmortemContext& ctx, const std::string& path) {
  FileSink sink(path);
  if (!sink.ok()) return false;
  export_postmortem(ctx, sink);
  return true;
}

}  // namespace crimes::telemetry
