#include "telemetry/slo.h"

#include <algorithm>
#include <cstdio>

namespace crimes::telemetry {

const char* to_string(SloState state) {
  switch (state) {
    case SloState::Healthy: return "Healthy";
    case SloState::Warn: return "Warn";
    case SloState::Critical: return "Critical";
  }
  return "?";
}

const char* to_string(SloDimension dim) {
  switch (dim) {
    case SloDimension::Pause: return "pause";
    case SloDimension::ReplicationLag: return "repl-lag";
    case SloDimension::Vulnerability: return "vuln-window";
    case SloDimension::AuditLatency: return "audit";
  }
  return "?";
}

double SloInput::value(SloDimension dim) const {
  switch (dim) {
    case SloDimension::Pause: return pause_ms;
    case SloDimension::ReplicationLag: return replication_lag;
    case SloDimension::Vulnerability: return vulnerability_ms;
    case SloDimension::AuditLatency: return audit_ms;
  }
  return 0.0;
}

namespace {

double budget_of(const SloBudget& budget, SloDimension dim) {
  switch (dim) {
    case SloDimension::Pause: return budget.pause_ms;
    case SloDimension::ReplicationLag: return budget.replication_lag;
    case SloDimension::Vulnerability: return budget.vulnerability_ms;
    case SloDimension::AuditLatency: return budget.audit_ms;
  }
  return 0.0;
}

}  // namespace

SloMonitor::SloMonitor(SloConfig config) : config_(config) {
  config_.fast_window = std::max<std::size_t>(1, config_.fast_window);
  config_.slow_window =
      std::max(config_.fast_window, config_.slow_window);
  config_.history_capacity = std::max<std::size_t>(1, config_.history_capacity);
  if (config_.error_budget <= 0.0) config_.error_budget = 0.05;
  for (auto& dim : dims_) {
    // assign() keeps observe() allocation-free: the ring never regrows.
    dim.ring.assign(config_.slow_window, 0);
  }
  history_.resize(config_.history_capacity);
}

SloState SloMonitor::observe(const SloInput& input) {
  bool any_warn = false;
  bool any_crit = false;
  for (std::size_t d = 0; d < kSloDimensions; ++d) {
    const auto dim = static_cast<SloDimension>(d);
    DimState& ds = dims_[d];
    const std::uint8_t violated =
        input.value(dim) > budget_of(config_.budget, dim) ? 1 : 0;

    // Evict the bits that fall out of each window before pushing the new
    // one; fast_window <= slow_window, so both victims are still ringed.
    const std::size_t slot = epochs_ % config_.slow_window;
    if (epochs_ >= config_.slow_window) {
      ds.violations_in_slow -= ds.ring[slot];
    }
    if (epochs_ >= config_.fast_window) {
      ds.violations_in_fast -=
          ds.ring[(epochs_ - config_.fast_window) % config_.slow_window];
    }
    ds.ring[slot] = violated;
    ds.violations_in_slow += violated;
    ds.violations_in_fast += violated;
    ds.violations_total += violated;

    // Burn over the *full* window even while it is still filling: unseen
    // epochs count as clean, so a young tenant cannot page on its first
    // slow epoch.
    const double fast = burn_fast(dim);
    const double slow = burn_slow(dim);
    if (fast >= config_.critical_burn && slow >= config_.critical_burn) {
      any_crit = true;
    } else if (fast >= config_.warn_burn) {
      any_warn = true;
    }
  }

  if (any_crit) {
    state_ = SloState::Critical;
    clean_streak_ = 0;
  } else if (any_warn) {
    // Warn-level burn escalates Healthy and blocks Critical's step-down,
    // but never demotes Critical by itself -- that takes a clean streak.
    if (state_ == SloState::Healthy) state_ = SloState::Warn;
    clean_streak_ = 0;
  } else {
    ++clean_streak_;
    if (state_ != SloState::Healthy && clean_streak_ >= config_.clear_after) {
      state_ = state_ == SloState::Critical ? SloState::Warn
                                            : SloState::Healthy;
      clean_streak_ = 0;
    }
  }

  if (state_ == SloState::Warn) ++warn_epochs_;
  if (state_ == SloState::Critical) ++critical_epochs_;

  SloInput recorded = input;
  recorded.verdict = state_;
  history_[epochs_ % config_.history_capacity] = recorded;
  ++epochs_;
  return state_;
}

double SloMonitor::burn_fast(SloDimension dim) const {
  const DimState& ds = dims_[static_cast<std::size_t>(dim)];
  return static_cast<double>(ds.violations_in_fast) /
         static_cast<double>(config_.fast_window) / config_.error_budget;
}

double SloMonitor::burn_slow(SloDimension dim) const {
  const DimState& ds = dims_[static_cast<std::size_t>(dim)];
  return static_cast<double>(ds.violations_in_slow) /
         static_cast<double>(config_.slow_window) / config_.error_budget;
}

SloReport SloMonitor::report(std::string tenant) const {
  SloReport out;
  out.tenant = std::move(tenant);
  out.state = state_;
  out.epochs = epochs_;
  out.warn_epochs = warn_epochs_;
  out.critical_epochs = critical_epochs_;
  for (std::size_t d = 0; d < kSloDimensions; ++d) {
    const auto dim = static_cast<SloDimension>(d);
    out.dimensions[d] = SloDimensionReport{
        .dim = dim,
        .burn_fast = burn_fast(dim),
        .burn_slow = burn_slow(dim),
        .violations = dims_[d].violations_total,
    };
  }
  return out;
}

std::vector<SloInput> SloMonitor::history() const {
  std::vector<SloInput> out;
  const std::size_t n = std::min(epochs_, config_.history_capacity);
  out.reserve(n);
  const std::size_t start = epochs_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(history_[(start + i) % config_.history_capacity]);
  }
  return out;
}

std::vector<SloState> SloMonitor::replay(const SloConfig& config,
                                         std::span<const SloInput> inputs) {
  SloMonitor monitor(config);
  std::vector<SloState> out;
  out.reserve(inputs.size());
  for (const SloInput& input : inputs) {
    out.push_back(monitor.observe(input));
  }
  return out;
}

std::string format_health_table(std::span<const SloReport> reports) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-16s %-9s %8s %7s %7s  %-12s %7s %7s\n",
                "tenant", "state", "epochs", "warn", "crit", "hot-dim",
                "burn-f", "burn-s");
  out += line;
  out += std::string(80, '-') + "\n";
  for (const SloReport& r : reports) {
    // The hottest dimension: highest fast burn (ties break toward the
    // earlier dimension, i.e. pause first).
    const SloDimensionReport* hot = &r.dimensions[0];
    for (const auto& d : r.dimensions) {
      if (d.burn_fast > hot->burn_fast) hot = &d;
    }
    std::snprintf(line, sizeof(line),
                  "%-16s %-9s %8zu %7zu %7zu  %-12s %7.2f %7.2f\n",
                  r.tenant.empty() ? "-" : r.tenant.c_str(),
                  to_string(r.state), r.epochs, r.warn_epochs,
                  r.critical_epochs, to_string(hot->dim), hot->burn_fast,
                  hot->burn_slow);
    out += line;
  }
  return out;
}

}  // namespace crimes::telemetry
