#include "replay/replay_engine.h"

#include "common/log.h"

#include <vector>

namespace crimes {

namespace {

struct PhysRange {
  Pfn pfn{0};
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

bool overlaps(const PhysRange& a, const MemEvent& ev) {
  if (a.pfn != ev.pfn) return false;
  const std::uint64_t a_end = a.offset + a.length;
  const std::uint64_t e_end = ev.offset + ev.length;
  return a.offset < e_end && ev.offset < a_end;
}

}  // namespace

PinpointResult ReplayEngine::pinpoint_canary_corruption(
    std::span<const WriteOp> ops, Vaddr canary_va, std::uint64_t expected,
    std::optional<std::uint64_t> from_generation) {
  // Copy the log: replay re-enters the guest, and the caller's span may
  // alias the live recorder buffer.
  const std::vector<WriteOp> log(ops.begin(), ops.end());

  PinpointResult result;
  result.canary_va = canary_va;
  result.expected_value = expected;

  if (from_generation) {
    checkpointer_->rollback_to(*from_generation);
  } else {
    checkpointer_->rollback();
  }
  Vm& vm = kernel_->vm();
  vm.unpause();

  // Resolve the canary's physical location(s); an 8-byte canary can
  // straddle a page boundary.
  std::vector<PhysRange> targets;
  {
    std::size_t done = 0;
    while (done < kCanaryBytes) {
      const Vaddr cur = canary_va + done;
      const auto pa = kernel_->page_table().translate(cur);
      if (!pa) throw GuestFault(cur);
      const std::uint64_t chunk =
          std::min<std::uint64_t>(kCanaryBytes - done,
                                  kPageSize - pa->page_offset());
      targets.push_back(PhysRange{pa->pfn(), pa->page_offset(), chunk});
      done += chunk;
    }
  }

  // Arm the expensive mem_access machinery -- only ever during replay.
  MemoryEventMonitor& monitor = vm.monitor();
  monitor.clear_watches();
  for (const auto& t : targets) monitor.watch_page(t.pfn);
  monitor.enable();

  for (std::size_t i = 0; i < log.size(); ++i) {
    const WriteOp& op = log[i];
    // Align the vCPU's instruction counter with the recording so trapped
    // events carry the original instruction index.
    vm.vcpu().instr_retired = op.instr_index - 1;
    kernel_->write_virt(op.va, op.data);
    ++result.ops_replayed;

    bool hit_canary_page = false;
    while (auto ev = monitor.poll()) {
      ++result.events_delivered;
      for (const auto& t : targets) {
        if (overlaps(t, *ev)) hit_canary_page = true;
      }
    }
    if (!hit_canary_page) continue;

    // A write landed on the canary bytes; is the canary now wrong? (The
    // allocator's own canary-placing store also lands here but leaves the
    // correct value -- section 5.5's verification step.)
    const auto value = kernel_->read_value<std::uint64_t>(canary_va);
    if (value != expected) {
      result.found = true;
      result.instr_index = op.instr_index;
      result.op_index = i;
      result.write_va = op.va;
      result.write_len = op.data.size();
      result.corrupt_value = value;
      break;
    }
  }

  monitor.disable();
  monitor.clear_watches();
  vm.pause();  // frozen at the attack instant (or epoch end if not found)

  result.replay_cost =
      Nanos{static_cast<std::int64_t>(
          static_cast<double>((costs_->replay_per_op * result.ops_replayed)
                                  .count()) *
          costs_->replay_slowdown)} +
      costs_->mem_event_deliver * result.events_delivered;
  clock_->advance(result.replay_cost);

  if (result.found) {
    CRIMES_LOG(Info, "replay") << "pinpointed corrupting write: instr "
                               << result.instr_index << ", op "
                               << result.op_index;
  } else {
    CRIMES_LOG(Warn, "replay") << "replayed " << result.ops_replayed
                               << " ops without reproducing the corruption";
  }
  return result;
}

}  // namespace crimes
