// Execution recorder: logs every guest virtual-memory write during the
// current epoch so the ReplayEngine can re-execute the epoch after a
// rollback.
//
// The paper notes CRIMES "does not guarantee deterministic replay"
// (section 6); like the prototype, we replay the *memory write log*, which
// is exactly enough to re-trigger and pinpoint evidence-producing writes
// such as a canary corruption.
#pragma once

#include "common/types.h"

#include <cstdint>
#include <span>
#include <vector>

namespace crimes {

struct WriteOp {
  std::uint64_t instr_index = 0;
  Vaddr va;
  std::vector<std::byte> data;
};

class ExecutionRecorder {
 public:
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Called at each epoch boundary: the previous epoch was committed, so its
  // log can never be needed again.
  void begin_epoch() { ops_.clear(); }

  void record(Vaddr va, std::span<const std::byte> data,
              std::uint64_t instr_index);

  [[nodiscard]] const std::vector<WriteOp>& ops() const { return ops_; }
  [[nodiscard]] std::size_t op_count() const { return ops_.size(); }
  [[nodiscard]] std::uint64_t bytes_logged() const { return bytes_logged_; }

 private:
  bool enabled_ = false;
  std::vector<WriteOp> ops_;
  std::uint64_t bytes_logged_ = 0;
};

}  // namespace crimes
