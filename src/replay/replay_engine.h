// Rollback-and-replay forensics (sections 3.3 and 4.2).
//
// After the Detector reports a corrupted canary, the ReplayEngine:
//   1. rolls the VM back to the last clean checkpoint,
//   2. arms the memory-event monitor on the page(s) holding the canary
//      (the expensive Xen mem_access machinery that is *only* enabled
//      during replay),
//   3. re-executes the epoch's recorded writes, and
//   4. stops at the first write that leaves the canary with a wrong value
//      -- the precise attacking instruction.
// The VM is left Paused at that instant so forensics can snapshot it.
#pragma once

#include "checkpoint/checkpointer.h"
#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "guestos/guest_kernel.h"
#include "replay/recorder.h"

#include <cstdint>
#include <optional>
#include <span>

namespace crimes {

struct PinpointResult {
  bool found = false;
  std::uint64_t instr_index = 0;  // the attacking instruction
  std::size_t op_index = 0;       // index into the replayed write log
  Vaddr write_va;                 // start VA of the offending write
  std::size_t write_len = 0;
  Vaddr canary_va;
  std::uint64_t corrupt_value = 0;
  std::uint64_t expected_value = 0;
  std::size_t ops_replayed = 0;
  std::size_t events_delivered = 0;
  Nanos replay_cost{0};
};

class ReplayEngine {
 public:
  ReplayEngine(GuestKernel& kernel, Checkpointer& checkpointer,
               SimClock& clock, const CostModel& costs)
      : kernel_(&kernel),
        checkpointer_(&checkpointer),
        clock_(&clock),
        costs_(&costs) {}

  // Rolls back and replays `ops`, watching `canary_va` whose intact value
  // must be `expected`. Leaves the VM Paused (at the attack instant when
  // found, at epoch end otherwise). Charges replay costs to the clock.
  //
  // By default the replay starts from the last clean checkpoint (the
  // paper's pipeline). With the checkpoint store enabled,
  // `from_generation` may name *any retained generation* instead --
  // incubating attacks replay from a checkpoint that predates the
  // infection, not merely the last epoch boundary.
  PinpointResult pinpoint_canary_corruption(
      std::span<const WriteOp> ops, Vaddr canary_va, std::uint64_t expected,
      std::optional<std::uint64_t> from_generation = std::nullopt);

 private:
  GuestKernel* kernel_;
  Checkpointer* checkpointer_;
  SimClock* clock_;
  const CostModel* costs_;
};

}  // namespace crimes
