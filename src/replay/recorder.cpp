#include "replay/recorder.h"

namespace crimes {

void ExecutionRecorder::record(Vaddr va, std::span<const std::byte> data,
                               std::uint64_t instr_index) {
  if (!enabled_) return;
  ops_.push_back(WriteOp{
      .instr_index = instr_index,
      .va = va,
      .data = std::vector<std::byte>(data.begin(), data.end()),
  });
  bytes_logged_ += data.size();
}

}  // namespace crimes
