// Knobs for the sealing/attestation subsystem (DESIGN.md section 15).
//
// Dependency-light on purpose, mirroring store/store_config.h and
// replication_config.h: StoreConfig embeds a CryptoConfig by value, so
// every layer that owns a store (Checkpointer, Crimes, CloudHost) can
// switch sealing on without new plumbing. The machinery itself
// (PageSealer, AttestationChain) is only exercised when a flag is set;
// with both flags off the store's bytes, costs, and behavior are
// identical to the pre-crypto build.
#pragma once

#include <cstdint>

namespace crimes::crypto {

struct CryptoConfig {
  // Encrypt every PageStore payload at intern time with the per-tenant
  // tweakable keystream and store a per-record MAC next to it. A moved
  // or bit-flipped ciphertext block is *detected* at materialize time
  // (and by verify_seals() sweeps), never decrypted into garbage.
  bool seal = false;

  // Hash-chain every committed generation (pages digest, vCPU digest,
  // audit verdict, previous root) into a per-epoch attestation root,
  // carried in StoreJournal records and on the replication stream, and
  // verified at every trust boundary: journal fsck/recovery, standby
  // promotion, rollback, and forensic timeline walks.
  bool attest = false;

  // Per-tenant master key the keystream, MACs, and chain roots are
  // derived from. The simulator derives everything deterministically
  // from this value, so two runs with the same key and seed are
  // bit-identical (the determinism self-checks rely on it).
  std::uint64_t tenant_key = 0x5EA1ED'C0DE'1EAFULL;

  // Verify the MAC on every materialize/rewind (detection at the read
  // boundary). Off leaves detection to explicit verify_seals() sweeps
  // and the journal/replication boundaries only.
  bool verify_materialize = true;

  [[nodiscard]] bool enabled() const { return seal || attest; }
};

}  // namespace crimes::crypto
