#include "crypto/page_sealer.h"

#include "common/hash.h"

#include <cstring>

namespace crimes::crypto {
namespace {

// Domain-separation salts: the keystream, the MAC, and (in
// attestation_chain.cpp) the leaf/root derivations must never collide
// even under identical inputs.
constexpr std::uint64_t kStreamSalt = 0x5EA1'57E4'3A4DULL;
constexpr std::uint64_t kMacSalt = 0x3AC'0F'7A6ULL;

}  // namespace

std::uint64_t PageSealer::keystream_word(std::uint64_t tweak,
                                         std::uint64_t index) const {
  // Two finalizer rounds: the first folds key and tweak into a
  // per-record block key, the second spreads the word counter. A block
  // moved to a different record deciphers under the wrong block key.
  const std::uint64_t block = mix64(key_ ^ kStreamSalt ^ mix64(tweak));
  return mix64(block ^ (index * 0x9E3779B97F4A7C15ULL));
}

void PageSealer::cipher(std::span<std::byte> payload,
                        std::uint64_t tweak) const {
  std::size_t off = 0;
  std::uint64_t index = 0;
  // Word-at-a-time XOR; the keystream cost is what the CostModel's
  // crypto_seal_per_page constant prices (fused into the encode loop).
  while (off + 8 <= payload.size()) {
    std::uint64_t word;
    std::memcpy(&word, payload.data() + off, 8);
    word ^= keystream_word(tweak, index++);
    std::memcpy(payload.data() + off, &word, 8);
    off += 8;
  }
  if (off < payload.size()) {
    const std::uint64_t ks = keystream_word(tweak, index);
    for (std::size_t i = 0; off + i < payload.size(); ++i) {
      payload[off + i] ^= static_cast<std::byte>(ks >> (8 * i));
    }
  }
}

std::uint64_t PageSealer::mac(std::span<const std::byte> sealed,
                              std::uint64_t tweak) const {
  // Encrypt-then-MAC: a keyed FNV-1a fold over the ciphertext, seeded
  // from (key, tweak) and finalized with the length, so flips, moves
  // (wrong tweak), and truncations (wrong length) all miss the tag.
  const std::uint64_t seed = mix64(key_ ^ kMacSalt ^ mix64(tweak));
  const std::uint64_t body = fnv1a(sealed, seed);
  return mix64(body ^ mix64(static_cast<std::uint64_t>(sealed.size())));
}

std::uint64_t PageSealer::seal(std::vector<std::byte>& payload,
                               std::uint64_t tweak) const {
  cipher(payload, tweak);
  return mac(payload, tweak);
}

bool PageSealer::unseal(std::vector<std::byte>& payload, std::uint64_t tweak,
                        std::uint64_t expected_mac) const {
  if (mac(payload, tweak) != expected_mac) return false;
  cipher(payload, tweak);
  return true;
}

}  // namespace crimes::crypto
