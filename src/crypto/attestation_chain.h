// Per-epoch attestation roots over the generation chain
// (DESIGN.md section 15).
//
// Every committed generation is condensed into a leaf --
//   H(epoch, pages digest, vCPU digest, audit verdict)
// -- and hash-chained onto the previous root:
//   root_i = H(key, root_{i-1}, leaf_i),   root_{-1} = genesis(key).
//
// The root is keyed by the tenant key, so the substrate (store device,
// journal, replication link) cannot forge a consistent chain for
// tampered content: rewriting a page forces a different pages digest,
// which forces a different leaf, which forks every root after it.
// Verifiers that hold any trusted root can extend trust one generation
// at a time (Buhren et al.: attestation is verified *before* trust is
// extended -- here, before a standby promotes, before a journal replay
// is believed, before a rollback target is materialized).
//
// The pages digest folds (pfn, page digest) pairs in commit order; the
// primary, the journal fsck/replay, and the standby all fold the same
// sequence, so the three recomputations agree iff the bytes agree.
#pragma once

#include "common/hash.h"
#include "crypto/page_sealer.h"

#include <cstdint>
#include <cstring>

namespace crimes::crypto {

// Seed for the (pfn, digest) fold; shared by every recomputation site.
inline constexpr std::uint64_t kPagesFoldSeed = kFnv1aOffsetBasis;

// Digest of a trivially-copyable value (the vCPU register file) via the
// repo's FNV-1a, without the caller staging bytes itself.
template <typename T>
[[nodiscard]] std::uint64_t pod_digest(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::byte bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  return fnv1a(std::span<const std::byte>(bytes, sizeof(T)));
}

// Everything one committed generation contributes to the chain.
struct AttestationLeaf {
  std::uint64_t epoch = 0;
  std::uint64_t pages_digest = kPagesFoldSeed;
  std::uint64_t vcpu_digest = 0;
  bool audit_passed = true;

  // Order-sensitive fold: the primary, the journal walk, and the standby
  // apply pages in the same commit order, so they fold identically.
  void fold_page(std::uint64_t pfn, std::uint64_t digest) {
    pages_digest = mix64(pages_digest ^ mix64(pfn ^ mix64(digest)));
  }
};

// A verifying accumulator: holds the last trusted root and extends it
// one generation at a time. The primary's producer side only needs the
// static derivations (the chain state lives in the GenerationChain
// itself); the consumer sides (standby, fsck, recovery, forensics) walk
// with an instance of this class.
class AttestationChain {
 public:
  AttestationChain() = default;
  explicit AttestationChain(std::uint64_t tenant_key)
      : key_(tenant_key), root_(genesis_root(tenant_key)) {}

  // Re-anchor at a known-trusted point (e.g. the root the standby
  // observed when its image was initialized).
  void reset(std::uint64_t root, std::uint64_t length) {
    root_ = root;
    length_ = length;
  }

  // Producer: fold a committed leaf and return the new root.
  std::uint64_t extend(const AttestationLeaf& leaf) {
    root_ = chain_root(key_, root_, leaf_hash(key_, leaf));
    ++length_;
    return root_;
  }

  // Verifier: check that `claimed_root` is exactly the current root
  // extended by `leaf`. On success the claimed root becomes trusted;
  // on failure the accumulator is unchanged (trust is never extended
  // past an unverified link).
  [[nodiscard]] bool verify_extend(const AttestationLeaf& leaf,
                                   std::uint64_t claimed_root) {
    if (chain_root(key_, root_, leaf_hash(key_, leaf)) != claimed_root) {
      return false;
    }
    root_ = claimed_root;
    ++length_;
    return true;
  }

  [[nodiscard]] std::uint64_t root() const { return root_; }
  [[nodiscard]] std::uint64_t length() const { return length_; }
  [[nodiscard]] std::uint64_t tenant_key() const { return key_; }

  [[nodiscard]] static std::uint64_t genesis_root(std::uint64_t key) {
    return mix64(key ^ 0x47'45'4E'45'53'49'53ULL);  // "GENESIS"
  }

  [[nodiscard]] static std::uint64_t leaf_hash(std::uint64_t key,
                                               const AttestationLeaf& leaf) {
    std::uint64_t h = mix64(key ^ 0x4C'45'41'46ULL);  // "LEAF"
    h = mix64(h ^ leaf.epoch);
    h = mix64(h ^ leaf.pages_digest);
    h = mix64(h ^ leaf.vcpu_digest);
    return mix64(h ^ (leaf.audit_passed ? 0x9A55ULL : 0xFA17ULL));
  }

  [[nodiscard]] static std::uint64_t chain_root(std::uint64_t key,
                                                std::uint64_t prev_root,
                                                std::uint64_t leaf_hash) {
    std::uint64_t h = mix64(key ^ 0x52'4F'4F'54ULL);  // "ROOT"
    h = mix64(h ^ prev_root);
    return mix64(h ^ leaf_hash);
  }

 private:
  std::uint64_t key_ = 0;
  std::uint64_t root_ = 0;
  std::uint64_t length_ = 0;
};

}  // namespace crimes::crypto
