// Per-tenant page sealing: tweakable XOR keystream + keyed MAC
// (DESIGN.md section 15).
//
// Threat model (SEVurity, PAPERS.md): the storage substrate -- the
// content-addressed PageStore, the durable journal device, the
// replication stream -- is an adversary that can move or flip ciphertext
// blocks. Integrity-free encryption does not help: a swapped block
// decrypts into attacker-chosen garbage silently. The sealer therefore
// pairs a tweakable keystream (a moved block decrypts under the *wrong*
// tweak) with an encrypt-then-MAC tag over the sealed bytes and the
// tweak, so every move, flip, or truncation is *detected* at the first
// boundary that reads the record.
//
// Zero-dependency and deterministic like the rest of the repo: the
// keystream is the SplitMix64 finalizer over (tenant key, tweak, word
// index), the MAC is a keyed FNV-1a fold with the length bound in. This
// is a simulator-grade construction -- the point is the *architecture*
// (where sealing, MACs, and verification sit) -- not a production AEAD.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace crimes::crypto {

// Thrown when a trust boundary detects sealed/attested state that fails
// verification -- a MAC mismatch, a broken chain link. Distinct from
// std::logic_error ("a store bug") on purpose: tampering is an *expected*
// adversarial event the response machinery catches, reports as evidence,
// and survives.
struct TamperError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// SplitMix64 finalizer: the same full-avalanche mix the fault injector
// uses for its decision streams.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

class PageSealer {
 public:
  explicit PageSealer(std::uint64_t tenant_key) : key_(tenant_key) {}

  // Keystream word i for a record sealed under `tweak`. Public so the
  // reference-vector tests can pin the exact stream.
  [[nodiscard]] std::uint64_t keystream_word(std::uint64_t tweak,
                                             std::uint64_t index) const;

  // XOR the payload with the tweakable keystream, in place. Involutive:
  // ciphering twice under the same tweak restores the plaintext.
  void cipher(std::span<std::byte> payload, std::uint64_t tweak) const;

  // Keyed MAC over the *sealed* bytes, the tweak, and the length
  // (encrypt-then-MAC; binding the length defeats truncation).
  [[nodiscard]] std::uint64_t mac(std::span<const std::byte> sealed,
                                  std::uint64_t tweak) const;

  // cipher + mac. Returns the tag to store alongside the ciphertext.
  [[nodiscard]] std::uint64_t seal(std::vector<std::byte>& payload,
                                   std::uint64_t tweak) const;

  // Verify the tag, then decipher in place. On a tag mismatch the
  // payload is left sealed (never decrypted into garbage) and false is
  // returned.
  [[nodiscard]] bool unseal(std::vector<std::byte>& payload,
                            std::uint64_t tweak,
                            std::uint64_t expected_mac) const;

  [[nodiscard]] std::uint64_t tenant_key() const { return key_; }

 private:
  std::uint64_t key_;
};

}  // namespace crimes::crypto
