// Guest kernel memory layout: struct offsets, region map and symbol table.
//
// The guest kernel's objects (task list, syscall table, module list, pid
// hash, socket/file tables, heap canary table) live as raw little-endian
// bytes inside guest pages. Both the guest OS (writer) and the VMI library
// (reader) compile against the offsets defined here -- the moral equivalent
// of a Linux System.map plus the struct layouts a VMI profile provides.
//
// The guest uses a single flat address space mapped by a linear page table
// (see guest_page_table.h): VA = kVaBase + guest-physical offset, but every
// translation really walks the in-memory table. This "unikernel-style"
// simplification (documented in DESIGN.md) does not weaken the VMI story:
// evidence still has to be found by parsing raw guest bytes at symbol
// addresses.
#pragma once

#include "common/types.h"

#include <cstdint>
#include <map>
#include <string>

namespace crimes {

// Base of the guest virtual window. Chosen to look like a kernel direct map.
inline constexpr std::uint64_t kVaBase = 0xFFFF880000000000ULL;

// Guest OS flavor. Affects symbol naming and forensics plugin labels only;
// the layouts are shared (the paper's Windows case study relies on the same
// cross-view process analysis).
enum class OsFlavor { Linux, Windows };

[[nodiscard]] const char* to_string(OsFlavor flavor);

// --- struct task_struct (paper: kernel task list / process descriptors) ---
struct TaskLayout {
  static constexpr std::uint32_t kMagic = 0x5441534B;  // "TASK"
  static constexpr std::size_t kMagicOff = 0x00;       // u32
  static constexpr std::size_t kPidOff = 0x04;         // u32
  static constexpr std::size_t kUidOff = 0x08;         // u32
  static constexpr std::size_t kStateOff = 0x0C;       // u32
  static constexpr std::size_t kCommOff = 0x10;        // char[16]
  static constexpr std::size_t kNextOff = 0x20;        // u64 VA
  static constexpr std::size_t kPrevOff = 0x28;        // u64 VA
  static constexpr std::size_t kMmOff = 0x30;          // u64 VA (0 = kthread)
  static constexpr std::size_t kStartTimeOff = 0x38;   // u64 ns
  static constexpr std::size_t kFilesOff = 0x40;       // u64 VA
  static constexpr std::size_t kSocketsOff = 0x48;     // u64 VA
  static constexpr std::size_t kSize = 0x60;
  static constexpr std::size_t kCommLen = 16;
};

// --- struct module -------------------------------------------------------
struct ModuleLayout {
  static constexpr std::uint32_t kMagic = 0x4D4F4455;  // "MODU"
  static constexpr std::size_t kMagicOff = 0x00;       // u32
  static constexpr std::size_t kNameOff = 0x08;        // char[24]
  static constexpr std::size_t kNextOff = 0x20;        // u64 VA
  static constexpr std::size_t kPrevOff = 0x28;        // u64 VA
  static constexpr std::size_t kSizeOff = 0x30;        // u64 bytes
  static constexpr std::size_t kInitOff = 0x38;        // u64 VA
  static constexpr std::size_t kSize = 0x40;
  static constexpr std::size_t kNameLen = 24;
};

// --- socket table entry (global, netscan's data source) ------------------
struct SocketLayout {
  static constexpr std::uint32_t kMagic = 0x534F434B;  // "SOCK"
  static constexpr std::size_t kMagicOff = 0x00;       // u32
  static constexpr std::size_t kPidOff = 0x04;         // u32
  static constexpr std::size_t kProtoOff = 0x08;       // u32 (6 TCP, 17 UDP)
  static constexpr std::size_t kStateOff = 0x0C;       // u32 (TCP state enum)
  static constexpr std::size_t kLocalIpOff = 0x10;     // u32
  static constexpr std::size_t kLocalPortOff = 0x14;   // u16
  static constexpr std::size_t kRemoteIpOff = 0x18;    // u32
  static constexpr std::size_t kRemotePortOff = 0x1C;  // u16
  static constexpr std::size_t kSize = 0x20;
};

// --- file handle table entry (handles plugin's data source) --------------
struct FileHandleLayout {
  static constexpr std::uint32_t kMagic = 0x46494C45;  // "FILE"
  static constexpr std::size_t kMagicOff = 0x00;       // u32
  static constexpr std::size_t kPidOff = 0x04;         // u32
  static constexpr std::size_t kPathOff = 0x08;        // char[88]
  static constexpr std::size_t kSize = 0x60;
  static constexpr std::size_t kPathLen = 88;
};

// --- guest-aided canary table (section 4.2, malloc wrapper) --------------
// Header: u64 count, u64 capacity, u64 key. Entries follow immediately.
struct CanaryTableLayout {
  static constexpr std::size_t kCountOff = 0x00;     // u64
  static constexpr std::size_t kCapacityOff = 0x08;  // u64
  static constexpr std::size_t kKeyOff = 0x10;       // u64 per-boot secret
  static constexpr std::size_t kHeaderSize = 0x18;
  // Entry: u64 canary VA, u64 object VA, u64 object size.
  static constexpr std::size_t kEntryAddrOff = 0x00;
  static constexpr std::size_t kEntryObjOff = 0x08;
  static constexpr std::size_t kEntrySizeOff = 0x10;
  static constexpr std::size_t kEntrySize = 0x18;
};

inline constexpr std::size_t kCanaryBytes = 8;
inline constexpr std::size_t kSyscallCount = 256;
inline constexpr std::size_t kPidHashBuckets = 512;  // u64 VA slots (one page)
inline constexpr std::size_t kIdtVectors = 256;

// --- interrupt descriptor table gate (real x86-64 encoding) --------------
// 16 bytes per gate: offset_low u16 | selector u16 | ist u8 | type_attr u8
//                    | offset_mid u16 | offset_high u32 | reserved u32
struct IdtGateLayout {
  static constexpr std::size_t kOffsetLowOff = 0x0;   // u16
  static constexpr std::size_t kSelectorOff = 0x2;    // u16
  static constexpr std::size_t kIstOff = 0x4;         // u8
  static constexpr std::size_t kTypeAttrOff = 0x5;    // u8
  static constexpr std::size_t kOffsetMidOff = 0x6;   // u16
  static constexpr std::size_t kOffsetHighOff = 0x8;  // u32
  static constexpr std::size_t kSize = 16;

  static constexpr std::uint16_t kKernelCs = 0x10;
  static constexpr std::uint8_t kInterruptGatePresent = 0x8E;
};

// Sizing knobs for the guest image.
struct GuestConfig {
  OsFlavor flavor = OsFlavor::Linux;
  std::size_t page_count = 8192;        // 32 MiB guest by default
  std::size_t task_slab_pages = 16;     // ~680 task slots
  std::size_t module_slab_pages = 4;
  std::size_t socket_table_pages = 4;
  std::size_t file_table_pages = 4;
  std::size_t canary_table_pages = 32;  // ~5400 canary slots
  std::uint64_t boot_seed = 0x5EED;     // canary key + layout randomness
};

// Region map, derived from GuestConfig. All values are guest-physical page
// numbers; regions are contiguous.
struct GuestLayout {
  std::size_t page_count = 0;
  Pfn null_guard{0};        // pfn 0, never mapped
  Pfn page_table_base{0};   // linear PT
  std::size_t page_table_pages = 0;
  Pfn syscall_table{0};     // one page: 256 * u64
  Pfn pid_hash{0};          // one page: 512 * u64
  Pfn idt{0};               // one page: 256 gates * 16 bytes
  Pfn task_slab{0};
  std::size_t task_slab_pages = 0;
  Pfn module_slab{0};
  std::size_t module_slab_pages = 0;
  Pfn socket_table{0};
  std::size_t socket_table_pages = 0;
  Pfn file_table{0};
  std::size_t file_table_pages = 0;
  Pfn canary_table{0};
  std::size_t canary_table_pages = 0;
  Pfn kernel_text{0};       // dummy text region (syscall handlers point here)
  std::size_t kernel_text_pages = 0;
  Pfn heap_base{0};         // user heap: everything that remains
  std::size_t heap_pages = 0;

  [[nodiscard]] static GuestLayout compute(const GuestConfig& config);

  // VA of the first byte of a region (identity direct map).
  [[nodiscard]] Vaddr va_of(Pfn pfn) const {
    return Vaddr{kVaBase + (pfn.value() << kPageShift)};
  }

  [[nodiscard]] std::size_t task_slots() const {
    return task_slab_pages * (kPageSize / TaskLayout::kSize);
  }
  [[nodiscard]] std::size_t module_slots() const {
    return module_slab_pages * (kPageSize / ModuleLayout::kSize);
  }
  [[nodiscard]] std::size_t socket_slots() const {
    return socket_table_pages * (kPageSize / SocketLayout::kSize);
  }
  [[nodiscard]] std::size_t file_slots() const {
    return file_table_pages * (kPageSize / FileHandleLayout::kSize);
  }
  [[nodiscard]] std::size_t canary_slots() const {
    return (canary_table_pages * kPageSize - CanaryTableLayout::kHeaderSize) /
           CanaryTableLayout::kEntrySize;
  }
};

// System.map equivalent: symbol name -> guest VA. Built at guest boot and
// handed to the VMI library out of band (exactly how LibVMI consumes a
// System.map / Rekall profile).
class SymbolTable {
 public:
  void add(const std::string& name, Vaddr va) { symbols_[name] = va; }

  [[nodiscard]] Vaddr lookup(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const {
    return symbols_.contains(name);
  }
  [[nodiscard]] std::size_t size() const { return symbols_.size(); }
  [[nodiscard]] const std::map<std::string, Vaddr>& all() const {
    return symbols_;
  }

 private:
  std::map<std::string, Vaddr> symbols_;
};

// Flavor-specific symbol names (e.g. Linux "init_task" vs Windows
// "PsActiveProcessHead").
struct SymbolNames {
  std::string task_list_head;
  std::string syscall_table;
  std::string module_list_head;
  std::string pid_hash;
  std::string idt;
  std::string socket_table;
  std::string file_table;
  std::string canary_table;
  std::string kernel_text;

  [[nodiscard]] static SymbolNames for_flavor(OsFlavor flavor);
};

}  // namespace crimes
