// The miniature guest operating system.
//
// Boots a kernel image into guest memory: linear page table, syscall table,
// pid hash, task/module slabs, socket and file tables, the canary-placing
// heap allocator, and a set of initial processes and modules. All
// authoritative state lives as raw bytes in guest pages (the C++-side
// bookkeeping here is only slot management and ground truth for tests);
// the VMI library reads those bytes back out, and attacks mutate them.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "guestos/guest_page_table.h"
#include "guestos/heap_allocator.h"
#include "guestos/kernel_layout.h"
#include "hypervisor/vm.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace crimes {

// Guest-side page fault surfaced as an exception to the workload driver.
class GuestFault : public std::runtime_error {
 public:
  explicit GuestFault(Vaddr va)
      : std::runtime_error("guest page fault"), va_(va) {}
  [[nodiscard]] Vaddr vaddr() const { return va_; }

 private:
  Vaddr va_;
};

enum class TaskState : std::uint32_t { Running = 0, Sleeping = 1, Zombie = 2 };

struct ProcessInfo {
  Pid pid;
  std::uint32_t uid = 0;
  std::string name;
  TaskState state = TaskState::Running;
  std::uint64_t start_time_ns = 0;
  Vaddr task_va;
  bool hidden = false;  // ground-truth flag; not stored in guest memory
};

struct ModuleInfo {
  std::string name;
  std::uint64_t size = 0;
  Vaddr module_va;
};

struct SocketInfo {
  Pid pid;
  std::uint32_t proto = 6;  // TCP
  std::uint32_t state = 1;  // ESTABLISHED
  std::uint32_t local_ip = 0;
  std::uint16_t local_port = 0;
  std::uint32_t remote_ip = 0;
  std::uint16_t remote_port = 0;
  Vaddr entry_va;
};

struct FileInfo {
  Pid pid;
  std::string path;
  Vaddr entry_va;
};

[[nodiscard]] std::string format_ipv4(std::uint32_t ip);
[[nodiscard]] std::uint32_t make_ipv4(int a, int b, int c, int d);

class GuestKernel {
 public:
  GuestKernel(Vm& vm, GuestConfig config);

  // Builds the page table and all kernel structures, spawns the initial
  // process set, loads base modules. Must be called exactly once.
  void boot();

  [[nodiscard]] Vm& vm() { return *vm_; }
  [[nodiscard]] const Vm& vm() const { return *vm_; }
  [[nodiscard]] const GuestConfig& config() const { return config_; }
  [[nodiscard]] const GuestLayout& layout() const { return layout_; }
  [[nodiscard]] const SymbolTable& symbols() const { return symbols_; }
  [[nodiscard]] OsFlavor flavor() const { return config_.flavor; }
  [[nodiscard]] GuestPageTable& page_table() { return page_table_; }
  [[nodiscard]] HeapAllocator& heap() { return *heap_; }

  // --- Virtual-memory access (each call retires one guest instruction) ---
  // Observer for the execution recorder: called for every virtual write
  // with (va, data, instruction index). See replay/recorder.h.
  using WriteObserver =
      std::function<void(Vaddr, std::span<const std::byte>, std::uint64_t)>;
  void set_write_observer(WriteObserver observer) {
    write_observer_ = std::move(observer);
  }

  void write_virt(Vaddr va, std::span<const std::byte> data);
  void read_virt(Vaddr va, std::span<std::byte> out) const;

  template <typename T>
  void write_value(Vaddr va, const T& value) {
    write_virt(va, std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(&value), sizeof(T)));
  }
  template <typename T>
  [[nodiscard]] T read_value(Vaddr va) const {
    T value;
    read_virt(va, std::span<std::byte>(reinterpret_cast<std::byte*>(&value),
                                       sizeof(T)));
    return value;
  }

  // --- Process management ------------------------------------------------
  Pid spawn_process(const std::string& name, std::uint32_t uid);
  void exit_process(Pid pid);
  [[nodiscard]] std::vector<ProcessInfo> process_list_ground_truth() const;
  [[nodiscard]] std::optional<ProcessInfo> find_process(Pid pid) const;
  [[nodiscard]] std::optional<Pid> find_process_by_name(
      const std::string& name) const;
  [[nodiscard]] Vaddr task_va(Pid pid) const;

  // --- Kernel modules ------------------------------------------------------
  void load_module(const std::string& name, std::uint64_t size);
  void unload_module(const std::string& name);
  [[nodiscard]] std::vector<ModuleInfo> module_list_ground_truth() const;

  // --- Sockets / files (forensics data sources) ---------------------------
  Vaddr open_socket(const SocketInfo& info);
  void close_socket(Vaddr entry_va);
  Vaddr open_file(Pid pid, const std::string& path);
  void close_file(Vaddr entry_va);
  [[nodiscard]] std::vector<SocketInfo> socket_ground_truth() const;
  [[nodiscard]] std::vector<FileInfo> file_ground_truth() const;

  // --- Syscall table -------------------------------------------------------
  [[nodiscard]] Vaddr pristine_syscall_handler(std::size_t index) const;
  [[nodiscard]] Vaddr syscall_entry(std::size_t index) const;

  // Dispatches a system call through the in-memory table, the way the
  // guest's syscall entry stub would: reads the (possibly hijacked)
  // handler pointer and "executes" it. A hijacked handler models a
  // data-stealing hook: it writes `arg` into the attacker's buffer (the
  // rogue handler address) before returning -- behaviourally observable
  // evidence, not just a changed pointer.
  struct SyscallOutcome {
    Vaddr handler;
    bool hijacked = false;
    std::uint64_t retval = 0;
  };
  SyscallOutcome invoke_syscall(std::size_t nr, std::uint64_t arg = 0);

  // --- Interrupt descriptor table ----------------------------------------
  // Gates use the real x86-64 16-byte encoding (see IdtGateLayout); the
  // handler VA is split across offset_low/mid/high exactly as hardware
  // expects, so VMI must genuinely reassemble it.
  [[nodiscard]] Vaddr pristine_interrupt_handler(std::size_t vector) const;
  void write_idt_gate(std::size_t vector, Vaddr handler);
  [[nodiscard]] Vaddr read_idt_gate(std::size_t vector) const;

  // --- Attacks (evidence producers; see threat model in the paper) --------
  // Unlinks a task from the list (and optionally the pid hash) while its
  // slab record stays resident: a rootkit-style hidden process.
  void attack_hide_process(Pid pid, bool scrub_pid_hash = false);
  // Overwrites a syscall-table slot: classic syscall hijacking.
  void attack_hijack_syscall(std::size_t index, Vaddr rogue_handler);
  // Repoints an IDT gate at attacker code (interrupt-hook rootkit, e.g. a
  // keystroke logger on the keyboard vector).
  void attack_hook_interrupt(std::size_t vector, Vaddr rogue_handler);
  // Writes `overrun` bytes past the end of a heap object: buffer overflow.
  // Returns the guest instruction index of the overflowing write.
  std::uint64_t attack_heap_overflow(Vaddr obj, std::size_t object_size,
                                     std::size_t overrun);
  // Patches bytes inside the kernel text region (inline-hook rootkit).
  void attack_patch_kernel_text(std::size_t offset,
                                std::span<const std::byte> patch);
  // Plants shellcode-looking bytes (NOP sled + syscall stub) at a heap VA:
  // the evidence the malfind forensics plugin hunts for.
  void attack_plant_shellcode(Vaddr va);

  // Advance guest time (workloads call this as they burn virtual CPU).
  void tick(std::uint64_t ns) { guest_time_ns_ += ns; }
  [[nodiscard]] std::uint64_t guest_time_ns() const { return guest_time_ns_; }

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  struct TaskSlot {
    bool used = false;
    ProcessInfo info;
  };
  struct ModuleSlot {
    bool used = false;
    ModuleInfo info;
  };

  [[nodiscard]] Vaddr task_slot_va(std::size_t slot) const;
  [[nodiscard]] Vaddr module_slot_va(std::size_t slot) const;
  [[nodiscard]] Vaddr socket_slot_va(std::size_t slot) const;
  [[nodiscard]] Vaddr file_slot_va(std::size_t slot) const;

  void write_task_record(std::size_t slot, const ProcessInfo& info,
                         Vaddr next, Vaddr prev);
  void link_task_tail(std::size_t slot);
  void unlink_task(std::size_t slot);
  void pid_hash_insert(Pid pid, Vaddr task);
  void pid_hash_remove(Pid pid);
  void write_module_record(std::size_t slot, const ModuleInfo& info,
                           Vaddr next, Vaddr prev);
  void build_symbols();
  void install_syscall_table();
  void install_idt();
  void spawn_initial_processes();

  Vm* vm_;
  GuestConfig config_;
  GuestLayout layout_;
  GuestPageTable page_table_;
  SymbolTable symbols_;
  SymbolNames names_;
  Rng rng_;
  std::unique_ptr<HeapAllocator> heap_;
  bool booted_ = false;

  std::vector<TaskSlot> tasks_;
  std::vector<ModuleSlot> modules_;
  std::unordered_map<Pid, std::size_t> slot_of_pid_;
  std::uint32_t next_pid_ = 1;
  std::uint64_t guest_time_ns_ = 0;

  std::vector<std::optional<SocketInfo>> sockets_;
  std::vector<std::optional<FileInfo>> files_;
  WriteObserver write_observer_;
};

}  // namespace crimes
