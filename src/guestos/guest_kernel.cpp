#include "guestos/guest_kernel.h"

#include "common/bytes.h"

#include <algorithm>
#include <cstring>

namespace crimes {

std::string format_ipv4(std::uint32_t ip) {
  return std::to_string((ip >> 24) & 0xFF) + "." +
         std::to_string((ip >> 16) & 0xFF) + "." +
         std::to_string((ip >> 8) & 0xFF) + "." + std::to_string(ip & 0xFF);
}

std::uint32_t make_ipv4(int a, int b, int c, int d) {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d);
}

GuestKernel::GuestKernel(Vm& vm, GuestConfig config)
    : vm_(&vm),
      config_(config),
      layout_(GuestLayout::compute(config)),
      page_table_(vm, layout_.page_table_base, config.page_count),
      names_(SymbolNames::for_flavor(config.flavor)),
      rng_(config.boot_seed) {
  if (vm.page_count() < config.page_count) {
    throw std::invalid_argument(
        "GuestKernel: VM smaller than configured guest image");
  }
  tasks_.resize(layout_.task_slots());
  modules_.resize(layout_.module_slots());
  sockets_.resize(layout_.socket_slots());
  files_.resize(layout_.file_slots());
}

void GuestKernel::boot() {
  if (booted_) throw std::logic_error("GuestKernel::boot: already booted");
  page_table_.install_identity_map();
  vm_->vcpu().cr3 = layout_.page_table_base.value() << kPageShift;

  install_syscall_table();
  install_idt();
  build_symbols();

  heap_ = std::make_unique<HeapAllocator>(*this, layout_, rng_.next_u64());
  heap_->initialize();

  // Task sentinel: slot 0 is the swapper/System idle task, circular on
  // itself. It anchors the list and is excluded from listings.
  tasks_[0].used = true;
  tasks_[0].info = ProcessInfo{
      .pid = Pid{0},
      .uid = 0,
      .name = config_.flavor == OsFlavor::Windows ? "Idle" : "swapper",
      .state = TaskState::Running,
      .start_time_ns = 0,
      .task_va = task_slot_va(0),
      .hidden = false,
  };
  write_task_record(0, tasks_[0].info, task_slot_va(0), task_slot_va(0));
  slot_of_pid_[Pid{0}] = 0;

  // Module sentinel in slot 0.
  modules_[0].used = true;
  modules_[0].info =
      ModuleInfo{.name = "__module_head", .size = 0,
                 .module_va = module_slot_va(0)};
  write_module_record(0, modules_[0].info, module_slot_va(0),
                      module_slot_va(0));

  booted_ = true;
  spawn_initial_processes();
}

void GuestKernel::build_symbols() {
  symbols_.add(names_.task_list_head, task_slot_va(0));
  symbols_.add(names_.syscall_table, layout_.va_of(layout_.syscall_table));
  symbols_.add(names_.module_list_head, module_slot_va(0));
  symbols_.add(names_.pid_hash, layout_.va_of(layout_.pid_hash));
  symbols_.add(names_.idt, layout_.va_of(layout_.idt));
  symbols_.add(names_.socket_table, layout_.va_of(layout_.socket_table));
  symbols_.add(names_.file_table, layout_.va_of(layout_.file_table));
  symbols_.add(names_.canary_table, layout_.va_of(layout_.canary_table));
  symbols_.add(names_.kernel_text, layout_.va_of(layout_.kernel_text));
  symbols_.add("__guest_page_table",
               layout_.va_of(layout_.page_table_base));
  symbols_.add("__guest_heap_base", layout_.va_of(layout_.heap_base));
}

void GuestKernel::install_syscall_table() {
  const Vaddr table = layout_.va_of(layout_.syscall_table);
  for (std::size_t i = 0; i < kSyscallCount; ++i) {
    write_value<std::uint64_t>(table + i * 8,
                               pristine_syscall_handler(i).value());
  }
}

Vaddr GuestKernel::pristine_syscall_handler(std::size_t index) const {
  // Handlers are spaced through the dummy kernel text region.
  return layout_.va_of(layout_.kernel_text) + index * 64;
}

Vaddr GuestKernel::pristine_interrupt_handler(std::size_t vector) const {
  // Interrupt stubs live in the second half of the text region.
  return layout_.va_of(layout_.kernel_text) + 32 * kPageSize + vector * 32;
}

void GuestKernel::install_idt() {
  for (std::size_t v = 0; v < kIdtVectors; ++v) {
    write_idt_gate(v, pristine_interrupt_handler(v));
  }
}

void GuestKernel::write_idt_gate(std::size_t vector, Vaddr handler) {
  if (vector >= kIdtVectors) {
    throw std::out_of_range("GuestKernel::write_idt_gate: bad vector");
  }
  const Vaddr gate =
      layout_.va_of(layout_.idt) + vector * IdtGateLayout::kSize;
  const std::uint64_t off = handler.value();
  write_value<std::uint16_t>(gate + IdtGateLayout::kOffsetLowOff,
                             static_cast<std::uint16_t>(off));
  write_value<std::uint16_t>(gate + IdtGateLayout::kSelectorOff,
                             IdtGateLayout::kKernelCs);
  write_value<std::uint8_t>(gate + IdtGateLayout::kIstOff, 0);
  write_value<std::uint8_t>(gate + IdtGateLayout::kTypeAttrOff,
                            IdtGateLayout::kInterruptGatePresent);
  write_value<std::uint16_t>(gate + IdtGateLayout::kOffsetMidOff,
                             static_cast<std::uint16_t>(off >> 16));
  write_value<std::uint32_t>(gate + IdtGateLayout::kOffsetHighOff,
                             static_cast<std::uint32_t>(off >> 32));
}

Vaddr GuestKernel::read_idt_gate(std::size_t vector) const {
  if (vector >= kIdtVectors) {
    throw std::out_of_range("GuestKernel::read_idt_gate: bad vector");
  }
  const Vaddr gate =
      layout_.va_of(layout_.idt) + vector * IdtGateLayout::kSize;
  const auto low =
      read_value<std::uint16_t>(gate + IdtGateLayout::kOffsetLowOff);
  const auto mid =
      read_value<std::uint16_t>(gate + IdtGateLayout::kOffsetMidOff);
  const auto high =
      read_value<std::uint32_t>(gate + IdtGateLayout::kOffsetHighOff);
  return Vaddr{static_cast<std::uint64_t>(low) |
               (static_cast<std::uint64_t>(mid) << 16) |
               (static_cast<std::uint64_t>(high) << 32)};
}

Vaddr GuestKernel::syscall_entry(std::size_t index) const {
  if (index >= kSyscallCount) {
    throw std::out_of_range("GuestKernel::syscall_entry: index out of range");
  }
  const Vaddr table = layout_.va_of(layout_.syscall_table);
  return Vaddr{read_value<std::uint64_t>(table + index * 8)};
}

void GuestKernel::spawn_initial_processes() {
  if (config_.flavor == OsFlavor::Windows) {
    spawn_process("System", 0);
    spawn_process("smss.exe", 0);
    spawn_process("csrss.exe", 0);
    spawn_process("winlogon.exe", 0);
    spawn_process("services.exe", 0);
    spawn_process("svchost.exe", 0);
    spawn_process("svchost.exe", 0);
    spawn_process("explorer.exe", 1000);
    load_module("ntoskrnl.exe", 8 << 20);
    load_module("hal.dll", 1 << 20);
    load_module("tcpip.sys", 2 << 20);
    load_module("ndis.sys", 1 << 20);
  } else {
    spawn_process("systemd", 0);
    spawn_process("kthreadd", 0);
    spawn_process("sshd", 0);
    spawn_process("cron", 0);
    spawn_process("bash", 1000);
    spawn_process("nginx", 33);
    load_module("ext4", 4 << 20);
    load_module("tcp_cubic", 64 << 10);
    load_module("xen_netfront", 128 << 10);
    load_module("crimes_guest", 32 << 10);  // the canary malloc helper
  }
}

// --- Virtual memory -------------------------------------------------------

void GuestKernel::write_virt(Vaddr va, std::span<const std::byte> data) {
  vm_->retire_instructions(1);
  if (write_observer_) {
    write_observer_(va, data, vm_->vcpu().instr_retired);
  }
  std::size_t done = 0;
  while (done < data.size()) {
    const Vaddr cur = va + done;
    const auto pa = page_table_.translate(cur);
    if (!pa) throw GuestFault(cur);
    const std::size_t chunk =
        std::min(data.size() - done, kPageSize - pa->page_offset());
    vm_->write_phys(*pa, data.subspan(done, chunk), cur);
    done += chunk;
  }
}

void GuestKernel::read_virt(Vaddr va, std::span<std::byte> out) const {
  vm_->retire_instructions(1);
  std::size_t done = 0;
  while (done < out.size()) {
    const Vaddr cur = va + done;
    const auto pa = page_table_.translate(cur);
    if (!pa) throw GuestFault(cur);
    const std::size_t chunk =
        std::min(out.size() - done, kPageSize - pa->page_offset());
    vm_->read_phys(*pa, out.subspan(done, chunk));
    done += chunk;
  }
}

// --- Task management ------------------------------------------------------

Vaddr GuestKernel::task_slot_va(std::size_t slot) const {
  const std::size_t per_page = kPageSize / TaskLayout::kSize;
  const std::size_t page = slot / per_page;
  const std::size_t off = (slot % per_page) * TaskLayout::kSize;
  return layout_.va_of(Pfn{layout_.task_slab.value() + page}) + off;
}

Vaddr GuestKernel::module_slot_va(std::size_t slot) const {
  const std::size_t per_page = kPageSize / ModuleLayout::kSize;
  const std::size_t page = slot / per_page;
  const std::size_t off = (slot % per_page) * ModuleLayout::kSize;
  return layout_.va_of(Pfn{layout_.module_slab.value() + page}) + off;
}

Vaddr GuestKernel::socket_slot_va(std::size_t slot) const {
  const std::size_t per_page = kPageSize / SocketLayout::kSize;
  const std::size_t page = slot / per_page;
  const std::size_t off = (slot % per_page) * SocketLayout::kSize;
  return layout_.va_of(Pfn{layout_.socket_table.value() + page}) + off;
}

Vaddr GuestKernel::file_slot_va(std::size_t slot) const {
  const std::size_t per_page = kPageSize / FileHandleLayout::kSize;
  const std::size_t page = slot / per_page;
  const std::size_t off = (slot % per_page) * FileHandleLayout::kSize;
  return layout_.va_of(Pfn{layout_.file_table.value() + page}) + off;
}

void GuestKernel::write_task_record(std::size_t slot, const ProcessInfo& info,
                                    Vaddr next, Vaddr prev) {
  const Vaddr base = task_slot_va(slot);
  write_value<std::uint32_t>(base + TaskLayout::kMagicOff, TaskLayout::kMagic);
  write_value<std::uint32_t>(base + TaskLayout::kPidOff, info.pid.value());
  write_value<std::uint32_t>(base + TaskLayout::kUidOff, info.uid);
  write_value<std::uint32_t>(base + TaskLayout::kStateOff,
                             static_cast<std::uint32_t>(info.state));
  char comm[TaskLayout::kCommLen] = {};
  std::strncpy(comm, info.name.c_str(), TaskLayout::kCommLen - 1);
  write_virt(base + TaskLayout::kCommOff,
             std::span<const std::byte>(
                 reinterpret_cast<const std::byte*>(comm), sizeof(comm)));
  write_value<std::uint64_t>(base + TaskLayout::kNextOff, next.value());
  write_value<std::uint64_t>(base + TaskLayout::kPrevOff, prev.value());
  write_value<std::uint64_t>(base + TaskLayout::kMmOff,
                             info.uid == 0 && info.pid.value() <= 2
                                 ? 0
                                 : layout_.va_of(layout_.heap_base).value());
  write_value<std::uint64_t>(base + TaskLayout::kStartTimeOff,
                             info.start_time_ns);
  write_value<std::uint64_t>(base + TaskLayout::kFilesOff,
                             layout_.va_of(layout_.file_table).value());
  write_value<std::uint64_t>(base + TaskLayout::kSocketsOff,
                             layout_.va_of(layout_.socket_table).value());
}

void GuestKernel::link_task_tail(std::size_t slot) {
  const Vaddr head = task_slot_va(0);
  const Vaddr node = task_slot_va(slot);
  const Vaddr old_tail{read_value<std::uint64_t>(head + TaskLayout::kPrevOff)};
  write_value<std::uint64_t>(node + TaskLayout::kNextOff, head.value());
  write_value<std::uint64_t>(node + TaskLayout::kPrevOff, old_tail.value());
  write_value<std::uint64_t>(old_tail + TaskLayout::kNextOff, node.value());
  write_value<std::uint64_t>(head + TaskLayout::kPrevOff, node.value());
}

void GuestKernel::unlink_task(std::size_t slot) {
  const Vaddr node = task_slot_va(slot);
  const Vaddr next{read_value<std::uint64_t>(node + TaskLayout::kNextOff)};
  const Vaddr prev{read_value<std::uint64_t>(node + TaskLayout::kPrevOff)};
  write_value<std::uint64_t>(prev + TaskLayout::kNextOff, next.value());
  write_value<std::uint64_t>(next + TaskLayout::kPrevOff, prev.value());
}

void GuestKernel::pid_hash_insert(Pid pid, Vaddr task) {
  const Vaddr table = layout_.va_of(layout_.pid_hash);
  for (std::size_t probe = 0; probe < kPidHashBuckets; ++probe) {
    const std::size_t bucket =
        (pid.value() + probe) % kPidHashBuckets;
    const auto current = read_value<std::uint64_t>(table + bucket * 8);
    if (current == 0) {
      write_value<std::uint64_t>(table + bucket * 8, task.value());
      return;
    }
  }
  throw std::runtime_error("GuestKernel: pid hash full");
}

void GuestKernel::pid_hash_remove(Pid pid) {
  const Vaddr table = layout_.va_of(layout_.pid_hash);
  const Vaddr task = task_va(pid);
  for (std::size_t probe = 0; probe < kPidHashBuckets; ++probe) {
    const std::size_t bucket = (pid.value() + probe) % kPidHashBuckets;
    const auto current = read_value<std::uint64_t>(table + bucket * 8);
    if (current == task.value()) {
      write_value<std::uint64_t>(table + bucket * 8, std::uint64_t{0});
      return;
    }
  }
}

Pid GuestKernel::spawn_process(const std::string& name, std::uint32_t uid) {
  if (!booted_) throw std::logic_error("GuestKernel: not booted");
  auto it = std::find_if(tasks_.begin() + 1, tasks_.end(),
                         [](const TaskSlot& s) { return !s.used; });
  if (it == tasks_.end()) throw std::runtime_error("GuestKernel: task slab full");
  const std::size_t slot = static_cast<std::size_t>(it - tasks_.begin());

  const Pid pid{next_pid_++};
  it->used = true;
  it->info = ProcessInfo{
      .pid = pid,
      .uid = uid,
      .name = name,
      .state = TaskState::Running,
      .start_time_ns = guest_time_ns_,
      .task_va = task_slot_va(slot),
      .hidden = false,
  };
  // Write the record first with self links, then splice it in, mirroring
  // how a kernel publishes a fully formed task.
  write_task_record(slot, it->info, it->info.task_va, it->info.task_va);
  link_task_tail(slot);
  pid_hash_insert(pid, it->info.task_va);
  slot_of_pid_[pid] = slot;
  return pid;
}

void GuestKernel::exit_process(Pid pid) {
  auto it = slot_of_pid_.find(pid);
  if (it == slot_of_pid_.end() || it->second == 0) {
    throw std::out_of_range("GuestKernel::exit_process: no such pid");
  }
  const std::size_t slot = it->second;
  if (!tasks_[slot].info.hidden) unlink_task(slot);
  pid_hash_remove(pid);
  // Scrub the magic so the slab slot no longer looks like a task (a real
  // kernel poisons freed slab objects).
  write_value<std::uint32_t>(task_slot_va(slot) + TaskLayout::kMagicOff, 0u);
  tasks_[slot].used = false;
  slot_of_pid_.erase(it);
}

std::vector<ProcessInfo> GuestKernel::process_list_ground_truth() const {
  std::vector<ProcessInfo> out;
  for (std::size_t i = 1; i < tasks_.size(); ++i) {
    if (tasks_[i].used) out.push_back(tasks_[i].info);
  }
  return out;
}

std::optional<ProcessInfo> GuestKernel::find_process(Pid pid) const {
  auto it = slot_of_pid_.find(pid);
  if (it == slot_of_pid_.end()) return std::nullopt;
  return tasks_[it->second].info;
}

std::optional<Pid> GuestKernel::find_process_by_name(
    const std::string& name) const {
  for (std::size_t i = 1; i < tasks_.size(); ++i) {
    if (tasks_[i].used && tasks_[i].info.name == name) {
      return tasks_[i].info.pid;
    }
  }
  return std::nullopt;
}

Vaddr GuestKernel::task_va(Pid pid) const {
  auto it = slot_of_pid_.find(pid);
  if (it == slot_of_pid_.end()) {
    throw std::out_of_range("GuestKernel::task_va: no such pid");
  }
  return task_slot_va(it->second);
}

// --- Modules ---------------------------------------------------------------

void GuestKernel::write_module_record(std::size_t slot, const ModuleInfo& info,
                                      Vaddr next, Vaddr prev) {
  const Vaddr base = module_slot_va(slot);
  write_value<std::uint32_t>(base + ModuleLayout::kMagicOff,
                             ModuleLayout::kMagic);
  char name[ModuleLayout::kNameLen] = {};
  std::strncpy(name, info.name.c_str(), ModuleLayout::kNameLen - 1);
  write_virt(base + ModuleLayout::kNameOff,
             std::span<const std::byte>(
                 reinterpret_cast<const std::byte*>(name), sizeof(name)));
  write_value<std::uint64_t>(base + ModuleLayout::kNextOff, next.value());
  write_value<std::uint64_t>(base + ModuleLayout::kPrevOff, prev.value());
  write_value<std::uint64_t>(base + ModuleLayout::kSizeOff, info.size);
  write_value<std::uint64_t>(base + ModuleLayout::kInitOff,
                             layout_.va_of(layout_.kernel_text).value());
}

void GuestKernel::load_module(const std::string& name, std::uint64_t size) {
  auto it = std::find_if(modules_.begin() + 1, modules_.end(),
                         [](const ModuleSlot& s) { return !s.used; });
  if (it == modules_.end()) {
    throw std::runtime_error("GuestKernel: module slab full");
  }
  const std::size_t slot = static_cast<std::size_t>(it - modules_.begin());
  it->used = true;
  it->info = ModuleInfo{.name = name, .size = size,
                        .module_va = module_slot_va(slot)};

  const Vaddr head = module_slot_va(0);
  const Vaddr node = module_slot_va(slot);
  const Vaddr old_tail{
      read_value<std::uint64_t>(head + ModuleLayout::kPrevOff)};
  write_module_record(slot, it->info, head, old_tail);
  write_value<std::uint64_t>(old_tail + ModuleLayout::kNextOff, node.value());
  write_value<std::uint64_t>(head + ModuleLayout::kPrevOff, node.value());
}

void GuestKernel::unload_module(const std::string& name) {
  for (std::size_t i = 1; i < modules_.size(); ++i) {
    if (!modules_[i].used || modules_[i].info.name != name) continue;
    const Vaddr node = module_slot_va(i);
    const Vaddr next{read_value<std::uint64_t>(node + ModuleLayout::kNextOff)};
    const Vaddr prev{read_value<std::uint64_t>(node + ModuleLayout::kPrevOff)};
    write_value<std::uint64_t>(prev + ModuleLayout::kNextOff, next.value());
    write_value<std::uint64_t>(next + ModuleLayout::kPrevOff, prev.value());
    write_value<std::uint32_t>(node + ModuleLayout::kMagicOff, 0u);
    modules_[i].used = false;
    return;
  }
  throw std::out_of_range("GuestKernel::unload_module: no such module");
}

std::vector<ModuleInfo> GuestKernel::module_list_ground_truth() const {
  std::vector<ModuleInfo> out;
  for (std::size_t i = 1; i < modules_.size(); ++i) {
    if (modules_[i].used) out.push_back(modules_[i].info);
  }
  return out;
}

// --- Sockets / files --------------------------------------------------------

Vaddr GuestKernel::open_socket(const SocketInfo& info) {
  for (std::size_t i = 0; i < sockets_.size(); ++i) {
    if (sockets_[i].has_value()) continue;
    const Vaddr base = socket_slot_va(i);
    write_value<std::uint32_t>(base + SocketLayout::kMagicOff,
                               SocketLayout::kMagic);
    write_value<std::uint32_t>(base + SocketLayout::kPidOff,
                               info.pid.value());
    write_value<std::uint32_t>(base + SocketLayout::kProtoOff, info.proto);
    write_value<std::uint32_t>(base + SocketLayout::kStateOff, info.state);
    write_value<std::uint32_t>(base + SocketLayout::kLocalIpOff,
                               info.local_ip);
    write_value<std::uint16_t>(base + SocketLayout::kLocalPortOff,
                               info.local_port);
    write_value<std::uint32_t>(base + SocketLayout::kRemoteIpOff,
                               info.remote_ip);
    write_value<std::uint16_t>(base + SocketLayout::kRemotePortOff,
                               info.remote_port);
    sockets_[i] = info;
    sockets_[i]->entry_va = base;
    return base;
  }
  throw std::runtime_error("GuestKernel: socket table full");
}

void GuestKernel::close_socket(Vaddr entry_va) {
  for (auto& slot : sockets_) {
    if (slot.has_value() && slot->entry_va == entry_va) {
      write_value<std::uint32_t>(entry_va + SocketLayout::kMagicOff, 0u);
      slot.reset();
      return;
    }
  }
  throw std::out_of_range("GuestKernel::close_socket: no such entry");
}

Vaddr GuestKernel::open_file(Pid pid, const std::string& path) {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].has_value()) continue;
    const Vaddr base = file_slot_va(i);
    write_value<std::uint32_t>(base + FileHandleLayout::kMagicOff,
                               FileHandleLayout::kMagic);
    write_value<std::uint32_t>(base + FileHandleLayout::kPidOff, pid.value());
    char buf[FileHandleLayout::kPathLen] = {};
    std::strncpy(buf, path.c_str(), FileHandleLayout::kPathLen - 1);
    write_virt(base + FileHandleLayout::kPathOff,
               std::span<const std::byte>(
                   reinterpret_cast<const std::byte*>(buf), sizeof(buf)));
    files_[i] = FileInfo{.pid = pid, .path = path, .entry_va = base};
    return base;
  }
  throw std::runtime_error("GuestKernel: file table full");
}

void GuestKernel::close_file(Vaddr entry_va) {
  for (auto& slot : files_) {
    if (slot.has_value() && slot->entry_va == entry_va) {
      write_value<std::uint32_t>(entry_va + FileHandleLayout::kMagicOff, 0u);
      slot.reset();
      return;
    }
  }
  throw std::out_of_range("GuestKernel::close_file: no such entry");
}

std::vector<SocketInfo> GuestKernel::socket_ground_truth() const {
  std::vector<SocketInfo> out;
  for (const auto& slot : sockets_) {
    if (slot.has_value()) out.push_back(*slot);
  }
  return out;
}

std::vector<FileInfo> GuestKernel::file_ground_truth() const {
  std::vector<FileInfo> out;
  for (const auto& slot : files_) {
    if (slot.has_value()) out.push_back(*slot);
  }
  return out;
}

// --- Attacks ----------------------------------------------------------------

void GuestKernel::attack_hide_process(Pid pid, bool scrub_pid_hash) {
  auto it = slot_of_pid_.find(pid);
  if (it == slot_of_pid_.end() || it->second == 0) {
    throw std::out_of_range("GuestKernel::attack_hide_process: no such pid");
  }
  unlink_task(it->second);
  if (scrub_pid_hash) pid_hash_remove(pid);
  tasks_[it->second].info.hidden = true;
}

void GuestKernel::attack_hijack_syscall(std::size_t index,
                                        Vaddr rogue_handler) {
  if (index >= kSyscallCount) {
    throw std::out_of_range("GuestKernel::attack_hijack_syscall: bad index");
  }
  const Vaddr table = layout_.va_of(layout_.syscall_table);
  write_value<std::uint64_t>(table + index * 8, rogue_handler.value());
}

void GuestKernel::attack_hook_interrupt(std::size_t vector,
                                        Vaddr rogue_handler) {
  write_idt_gate(vector, rogue_handler);
}

GuestKernel::SyscallOutcome GuestKernel::invoke_syscall(std::size_t nr,
                                                        std::uint64_t arg) {
  const Vaddr handler = syscall_entry(nr);
  SyscallOutcome outcome;
  outcome.handler = handler;
  outcome.hijacked = handler != pristine_syscall_handler(nr);
  if (outcome.hijacked) {
    // The hook siphons the argument into the attacker's buffer before
    // (we assume) tail-calling the real handler.
    write_value<std::uint64_t>(handler, arg);
    outcome.retval = 0;
  } else {
    outcome.retval = nr;  // benign handlers echo their number in this model
  }
  tick(500);
  return outcome;
}

void GuestKernel::attack_patch_kernel_text(std::size_t offset,
                                           std::span<const std::byte> patch) {
  const std::size_t text_bytes = layout_.kernel_text_pages * kPageSize;
  if (offset + patch.size() > text_bytes) {
    throw std::out_of_range(
        "GuestKernel::attack_patch_kernel_text: patch outside text");
  }
  write_virt(layout_.va_of(layout_.kernel_text) + offset, patch);
}

void GuestKernel::attack_plant_shellcode(Vaddr va) {
  // 24-byte NOP sled into a syscall stub: mov rax, imm32; syscall.
  std::vector<std::byte> code(24, std::byte{0x90});
  for (const unsigned char b :
       {0x48u, 0xC7u, 0xC0u, 0x3Bu, 0x00u, 0x00u, 0x00u, 0x0Fu, 0x05u}) {
    code.push_back(static_cast<std::byte>(b));
  }
  write_virt(va, code);
}

std::uint64_t GuestKernel::attack_heap_overflow(Vaddr obj,
                                                std::size_t object_size,
                                                std::size_t overrun) {
  // Fill the object legitimately first (memcpy-with-wrong-length pattern)...
  std::vector<std::byte> fill(object_size, std::byte{0x41});
  write_virt(obj, fill);
  // ...then the overflowing tail; this is the instruction replay must find.
  std::vector<std::byte> tail(overrun, std::byte{0x42});
  write_virt(obj + object_size, tail);
  return vm_->vcpu().instr_retired;
}

}  // namespace crimes
