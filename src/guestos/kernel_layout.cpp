#include "guestos/kernel_layout.h"

#include <stdexcept>

namespace crimes {

const char* to_string(OsFlavor flavor) {
  switch (flavor) {
    case OsFlavor::Linux: return "Linux";
    case OsFlavor::Windows: return "Windows";
  }
  return "?";
}

GuestLayout GuestLayout::compute(const GuestConfig& config) {
  GuestLayout layout;
  layout.page_count = config.page_count;

  std::size_t next = 0;
  const auto take = [&next](std::size_t pages) {
    const Pfn base{next};
    next += pages;
    return base;
  };

  layout.null_guard = take(1);
  layout.page_table_pages =
      (config.page_count * sizeof(std::uint64_t) + kPageSize - 1) / kPageSize;
  layout.page_table_base = take(layout.page_table_pages);
  layout.syscall_table = take(1);
  layout.pid_hash = take(1);
  layout.idt = take(1);
  layout.task_slab = take(config.task_slab_pages);
  layout.task_slab_pages = config.task_slab_pages;
  layout.module_slab = take(config.module_slab_pages);
  layout.module_slab_pages = config.module_slab_pages;
  layout.socket_table = take(config.socket_table_pages);
  layout.socket_table_pages = config.socket_table_pages;
  layout.file_table = take(config.file_table_pages);
  layout.file_table_pages = config.file_table_pages;
  layout.canary_table = take(config.canary_table_pages);
  layout.canary_table_pages = config.canary_table_pages;
  layout.kernel_text_pages = 64;  // 256 KiB of "kernel text"
  layout.kernel_text = take(layout.kernel_text_pages);

  if (next >= config.page_count) {
    throw std::invalid_argument(
        "GuestLayout: guest too small for configured kernel regions");
  }
  layout.heap_base = Pfn{next};
  layout.heap_pages = config.page_count - next;
  return layout;
}

Vaddr SymbolTable::lookup(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) {
    throw std::out_of_range("SymbolTable: unknown symbol " + name);
  }
  return it->second;
}

SymbolNames SymbolNames::for_flavor(OsFlavor flavor) {
  if (flavor == OsFlavor::Windows) {
    return SymbolNames{
        .task_list_head = "PsActiveProcessHead",
        .syscall_table = "KeServiceDescriptorTable",
        .module_list_head = "PsLoadedModuleList",
        .pid_hash = "PspCidTable",
        .idt = "KiIdt",
        .socket_table = "TcpPortPool",
        .file_table = "ObpHandleTable",
        .canary_table = "__crimes_canary_table",
        .kernel_text = "ntoskrnl_text",
    };
  }
  return SymbolNames{
      .task_list_head = "init_task",
      .syscall_table = "sys_call_table",
      .module_list_head = "modules",
      .pid_hash = "pid_hash",
      .idt = "idt_table",
      .socket_table = "tcp_hashinfo",
      .file_table = "files_table",
      .canary_table = "__crimes_canary_table",
      .kernel_text = "_stext",
  };
}

}  // namespace crimes
