// Linear guest page table stored inside guest memory.
//
// Entry i maps VA (kVaBase + i*4096) and is a u64 at byte offset i*8 from
// the page-table base: (pfn << 12) | flags. Translation genuinely reads the
// entry from guest memory -- the VMI library walks the same bytes, so a
// corrupted page table breaks introspection the way it would in a real VM.
#pragma once

#include "common/types.h"
#include "guestos/kernel_layout.h"
#include "hypervisor/vm.h"

#include <cstdint>
#include <optional>

namespace crimes {

class GuestPageTable {
 public:
  static constexpr std::uint64_t kPresent = 0x1;
  static constexpr std::uint64_t kWritable = 0x2;

  GuestPageTable(Vm& vm, Pfn table_base, std::size_t page_count)
      : vm_(&vm), table_base_(table_base), page_count_(page_count) {}

  // Installs the identity direct map: VA page i -> PFN i, except the null
  // guard page which stays unmapped. Called once at guest boot.
  void install_identity_map();

  // Maps/unmaps a single VA page (used by tests to exercise faults).
  void set_entry(std::uint64_t vpn, Pfn pfn, std::uint64_t flags);
  [[nodiscard]] std::uint64_t entry(std::uint64_t vpn) const;

  // Translates a guest VA to a guest-physical address, or nullopt on fault
  // (unmapped page / VA outside the window).
  [[nodiscard]] std::optional<Paddr> translate(Vaddr va) const;

  [[nodiscard]] Pfn table_base() const { return table_base_; }
  [[nodiscard]] std::size_t page_count() const { return page_count_; }

 private:
  [[nodiscard]] Paddr entry_paddr(std::uint64_t vpn) const {
    return Paddr{(table_base_.value() << kPageShift) +
                 vpn * sizeof(std::uint64_t)};
  }

  Vm* vm_;
  Pfn table_base_;
  std::size_t page_count_;
};

// Stateless translation helper for readers that only have frame access (the
// VMI library maps the guest through ForeignMapping and cannot use
// Vm::read_phys lifecycle checks; it reads the same table bytes directly).
[[nodiscard]] std::optional<Paddr> translate_through_frames(
    const Vm& vm, Pfn table_base, std::size_t page_count, Vaddr va);

}  // namespace crimes
