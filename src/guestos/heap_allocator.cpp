#include "guestos/heap_allocator.h"

#include "guestos/guest_kernel.h"

#include <new>

namespace crimes {

namespace {
constexpr std::size_t kAlign = 16;

constexpr std::size_t align_up(std::size_t n) {
  return (n + kAlign - 1) & ~(kAlign - 1);
}
}  // namespace

HeapAllocator::HeapAllocator(GuestKernel& kernel, const GuestLayout& layout,
                             std::uint64_t canary_key)
    : kernel_(kernel),
      layout_(layout),
      key_(canary_key),
      heap_cursor_(layout.va_of(layout.heap_base)),
      heap_end_(layout.va_of(layout.heap_base) +
                layout.heap_pages * kPageSize) {}

void HeapAllocator::initialize() {
  const Vaddr table = layout_.va_of(layout_.canary_table);
  kernel_.write_value<std::uint64_t>(table + CanaryTableLayout::kCountOff, 0);
  kernel_.write_value<std::uint64_t>(table + CanaryTableLayout::kCapacityOff,
                                     layout_.canary_slots());
  kernel_.write_value<std::uint64_t>(table + CanaryTableLayout::kKeyOff, key_);
}

Vaddr HeapAllocator::table_entry_va(std::size_t index) const {
  return layout_.va_of(layout_.canary_table) +
         CanaryTableLayout::kHeaderSize +
         index * CanaryTableLayout::kEntrySize;
}

void HeapAllocator::write_table_entry(std::size_t index, const Entry& entry) {
  const Vaddr base = table_entry_va(index);
  kernel_.write_value<std::uint64_t>(base + CanaryTableLayout::kEntryAddrOff,
                                     entry.canary_addr.value());
  kernel_.write_value<std::uint64_t>(base + CanaryTableLayout::kEntryObjOff,
                                     entry.obj_addr.value());
  kernel_.write_value<std::uint64_t>(base + CanaryTableLayout::kEntrySizeOff,
                                     entry.size);
}

void HeapAllocator::write_count(std::uint64_t count) {
  kernel_.write_value<std::uint64_t>(
      layout_.va_of(layout_.canary_table) + CanaryTableLayout::kCountOff,
      count);
}

Vaddr HeapAllocator::malloc(std::size_t size) {
  if (size == 0) size = 1;
  const std::size_t needed = align_up(size + kCanaryBytes);

  if (entries_.size() >= layout_.canary_slots()) {
    ++stats_.failed_allocs;
    throw std::bad_alloc{};
  }

  // Best-effort first-fit over freed blocks, else bump the cursor.
  Vaddr obj{0};
  for (std::size_t i = 0; i < free_blocks_.size(); ++i) {
    if (free_blocks_[i].second >= needed) {
      obj = free_blocks_[i].first;
      free_blocks_[i] = free_blocks_.back();
      free_blocks_.pop_back();
      break;
    }
  }
  if (obj.is_null()) {
    if (heap_cursor_.value() + needed > heap_end_.value()) {
      ++stats_.failed_allocs;
      throw std::bad_alloc{};
    }
    obj = heap_cursor_;
    heap_cursor_ += needed;
  }

  const Vaddr canary_addr = obj + size;
  kernel_.write_value<std::uint64_t>(canary_addr,
                                     expected_canary(canary_addr));

  const Entry entry{.canary_addr = canary_addr, .obj_addr = obj,
                    .size = size};
  write_table_entry(entries_.size(), entry);
  index_of_obj_[obj.value()] = entries_.size();
  entries_.push_back(entry);
  write_count(entries_.size());

  ++stats_.total_allocs;
  ++stats_.live_objects;
  stats_.live_bytes += size;
  return obj;
}

bool HeapAllocator::free(Vaddr obj) {
  auto it = index_of_obj_.find(obj.value());
  if (it == index_of_obj_.end()) {
    throw std::out_of_range("HeapAllocator::free: not an allocated object");
  }
  const std::size_t index = it->second;
  const Entry entry = entries_[index];

  const auto actual = kernel_.read_value<std::uint64_t>(entry.canary_addr);
  const bool intact = actual == expected_canary(entry.canary_addr);

  // Remove by swapping the last entry into the hole (both in guest memory
  // and in the mirror), then shrink the count.
  const std::size_t last = entries_.size() - 1;
  if (index != last) {
    entries_[index] = entries_[last];
    index_of_obj_[entries_[index].obj_addr.value()] = index;
    write_table_entry(index, entries_[index]);
  }
  entries_.pop_back();
  index_of_obj_.erase(it);
  write_count(entries_.size());

  free_blocks_.emplace_back(entry.obj_addr,
                            align_up(entry.size + kCanaryBytes));
  ++stats_.total_frees;
  --stats_.live_objects;
  stats_.live_bytes -= entry.size;
  return intact;
}

std::unordered_map<std::uint64_t, Vaddr> HeapAllocator::live_objects() const {
  std::unordered_map<std::uint64_t, Vaddr> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.emplace(e.obj_addr.value(), e.canary_addr);
  return out;
}

}  // namespace crimes
