// Guest-side canary-placing heap allocator (the paper's "simple malloc
// wrapper inside the VM", section 4.2).
//
// Every allocation is followed by an 8-byte canary whose value is derived
// from a per-boot secret key: canary = key ^ canary_address. The key and a
// lookup table of live canaries live in guest memory at a known symbol so
// the hypervisor-side CanaryScanModule can (a) find canary addresses that
// landed on dirtied pages and (b) recompute the expected values without any
// hypercall into the guest.
#pragma once

#include "common/types.h"
#include "guestos/kernel_layout.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace crimes {

class GuestKernel;

struct HeapStats {
  std::size_t live_objects = 0;
  std::size_t total_allocs = 0;
  std::size_t total_frees = 0;
  std::size_t failed_allocs = 0;
  std::uint64_t live_bytes = 0;
};

class HeapAllocator {
 public:
  HeapAllocator(GuestKernel& kernel, const GuestLayout& layout,
                std::uint64_t canary_key);

  // Writes the canary-table header into guest memory. Call once at boot.
  void initialize();

  // Allocates `size` bytes; places and registers the trailing canary.
  // Returns the object VA. Throws std::bad_alloc when the heap or the
  // canary table is exhausted.
  [[nodiscard]] Vaddr malloc(std::size_t size);

  // Validates the canary (returning false on corruption, like a hardened
  // allocator's abort path would) and releases the object.
  bool free(Vaddr obj);

  [[nodiscard]] std::uint64_t canary_key() const { return key_; }
  [[nodiscard]] std::uint64_t expected_canary(Vaddr canary_addr) const {
    return key_ ^ canary_addr.value();
  }

  [[nodiscard]] const HeapStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t table_count() const { return entries_.size(); }

  // Ground truth for tests: live (object VA -> canary VA).
  [[nodiscard]] std::unordered_map<std::uint64_t, Vaddr> live_objects() const;

 private:
  struct Entry {
    Vaddr canary_addr;
    Vaddr obj_addr;
    std::uint64_t size;
  };

  void write_table_entry(std::size_t index, const Entry& entry);
  void write_count(std::uint64_t count);
  [[nodiscard]] Vaddr table_entry_va(std::size_t index) const;

  GuestKernel& kernel_;
  GuestLayout layout_;
  std::uint64_t key_;
  Vaddr heap_cursor_;
  Vaddr heap_end_;
  std::vector<Entry> entries_;  // mirrors the in-guest table, index-aligned
  std::unordered_map<std::uint64_t, std::size_t> index_of_obj_;
  std::vector<std::pair<Vaddr, std::size_t>> free_blocks_;  // addr, usable size
  HeapStats stats_;
};

}  // namespace crimes
