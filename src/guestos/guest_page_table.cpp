#include "guestos/guest_page_table.h"

#include "common/bytes.h"

#include <stdexcept>

namespace crimes {

void GuestPageTable::install_identity_map() {
  for (std::uint64_t vpn = 0; vpn < page_count_; ++vpn) {
    const std::uint64_t flags = (vpn == 0) ? 0 : (kPresent | kWritable);
    set_entry(vpn, Pfn{vpn}, flags);
  }
}

void GuestPageTable::set_entry(std::uint64_t vpn, Pfn pfn,
                               std::uint64_t flags) {
  if (vpn >= page_count_) {
    throw std::out_of_range("GuestPageTable::set_entry: VPN out of range");
  }
  const std::uint64_t value = (pfn.value() << kPageShift) | flags;
  vm_->write_phys_value(entry_paddr(vpn), value);
}

std::uint64_t GuestPageTable::entry(std::uint64_t vpn) const {
  if (vpn >= page_count_) {
    throw std::out_of_range("GuestPageTable::entry: VPN out of range");
  }
  return vm_->read_phys_value<std::uint64_t>(entry_paddr(vpn));
}

std::optional<Paddr> GuestPageTable::translate(Vaddr va) const {
  return translate_through_frames(*vm_, table_base_, page_count_, va);
}

std::optional<Paddr> translate_through_frames(const Vm& vm, Pfn table_base,
                                              std::size_t page_count,
                                              Vaddr va) {
  if (va.value() < kVaBase) return std::nullopt;
  const std::uint64_t vpn = (va.value() - kVaBase) >> kPageShift;
  if (vpn >= page_count) return std::nullopt;

  // Read the PTE straight from the frame (works on suspended domains).
  const std::uint64_t pte_byte_off = vpn * sizeof(std::uint64_t);
  const Pfn pte_page{table_base.value() + pte_byte_off / kPageSize};
  const std::size_t pte_off = pte_byte_off % kPageSize;
  const std::uint64_t pte =
      load_le<std::uint64_t>(vm.page(pte_page).bytes(), pte_off);

  if ((pte & GuestPageTable::kPresent) == 0) return std::nullopt;
  const Pfn frame{pte >> kPageShift};
  if (frame.value() >= vm.page_count()) return std::nullopt;
  return Paddr::from(frame, va.value() & kPageOffsetMask);
}

}  // namespace crimes
