// Virtual machine introspection (the simulator's LibVMI).
//
// A session against a domain goes through the same three phases the paper
// measures in Table 3:
//   init()        -- detect the kernel, load the System.map symbols (~66 ms)
//   preprocess()  -- build address-translation caches (~54 ms)
//   per-scan reads -- walk structures through the guest page table (~1-2 ms)
//
// Reads genuinely parse guest bytes: every structure walk translates guest
// VAs through the in-memory page table rooted at the vCPU's CR3 and loads
// fields at the offsets in kernel_layout.h. Virtual-time costs accrue into
// an internal counter that callers drain with take_cost().
#pragma once

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "common/types.h"
#include "guestos/kernel_layout.h"
#include "hypervisor/hypervisor.h"

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace crimes {

class VmiError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct VmiProcess {
  Pid pid;
  std::uint32_t uid = 0;
  std::string name;
  std::uint32_t state = 0;
  std::uint64_t start_time_ns = 0;
  Vaddr task_va;
  Vaddr mm;
  Vaddr files;
  Vaddr sockets;
};

struct VmiModule {
  std::string name;
  std::uint64_t size = 0;
  Vaddr module_va;
};

struct VmiCanaryEntry {
  Vaddr canary_addr;
  Vaddr obj_addr;
  std::uint64_t obj_size = 0;
};

struct VmiCanaryTable {
  std::uint64_t key = 0;
  std::uint64_t capacity = 0;
  std::vector<VmiCanaryEntry> entries;
};

class VmiSession {
 public:
  VmiSession(Hypervisor& hypervisor, DomainId domain, SymbolTable symbols,
             OsFlavor flavor, const CostModel& costs);

  // Phase 1: kernel detection + symbol load. Must precede any read.
  void init();
  // Phase 2: translation caches. Optional but makes per-scan reads cheap;
  // CRIMES always runs it once at startup (section 5.3).
  void preprocess();

  // Parallel audits: a session's translation cache and cost ledger are
  // mutable per read, so concurrent scan modules each need their own
  // handle (real LibVMI sessions are not thread-safe either). fork()
  // clones this session -- warm TLB included, no re-init/preprocess
  // charge, zeroed cost and telemetry ledgers -- for one worker; after the
  // join, absorb() folds the fork's newly learned translations, residual
  // cost, and telemetry back into the parent so later serial epochs see
  // the same cache state they would have after a serial audit.
  [[nodiscard]] VmiSession fork() const;
  void absorb(const VmiSession& child);

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] bool preprocessed() const { return preprocessed_; }
  [[nodiscard]] OsFlavor flavor() const { return flavor_; }
  [[nodiscard]] const SymbolTable& symbols() const { return symbols_; }

  // --- Primitive reads (throw VmiError on translation faults) ----------
  [[nodiscard]] std::uint64_t read_u64(Vaddr va);
  // Fast-path read through an already-mapped page (no per-call access-layer
  // overhead); used by high-volume scans such as canary validation.
  [[nodiscard]] std::uint64_t read_u64_fast(Vaddr va);
  [[nodiscard]] std::uint32_t read_u32(Vaddr va);
  [[nodiscard]] std::string read_str(Vaddr va, std::size_t max_len);
  void read_bytes(Vaddr va, std::span<std::byte> out);
  [[nodiscard]] std::optional<Pfn> pfn_of(Vaddr va);

  // --- Structure walks ---------------------------------------------------
  [[nodiscard]] std::vector<VmiProcess> process_list();
  [[nodiscard]] std::vector<VmiModule> module_list();
  [[nodiscard]] std::vector<std::uint64_t> read_syscall_table();
  // Decodes all 256 IDT gates (offset reassembled from its three fields).
  struct VmiIdtGate {
    Vaddr handler;
    std::uint16_t selector = 0;
    std::uint8_t type_attr = 0;
  };
  [[nodiscard]] std::vector<VmiIdtGate> read_idt();
  // Nonzero task pointers from the pid hash (cross-view detection input).
  [[nodiscard]] std::vector<Vaddr> read_pid_hash();
  [[nodiscard]] VmiCanaryTable read_canary_table();
  [[nodiscard]] VmiProcess read_task_at(Vaddr task_va);

  // Virtual-time cost accrued since the last call; resets the counter.
  [[nodiscard]] Nanos take_cost();
  [[nodiscard]] Nanos accrued_cost() const { return accrued_; }

  // Telemetry: number of cold vs. cached translations.
  [[nodiscard]] std::uint64_t cold_translations() const { return cold_; }
  [[nodiscard]] std::uint64_t cached_translations() const { return cached_; }

 private:
  void require_init() const;
  [[nodiscard]] Paddr translate(Vaddr va);

  Hypervisor* hypervisor_;
  DomainId domain_;
  SymbolTable symbols_;
  OsFlavor flavor_;
  const CostModel* costs_;

  bool initialized_ = false;
  bool preprocessed_ = false;
  Pfn table_base_{0};
  std::size_t guest_pages_ = 0;
  std::unordered_map<std::uint64_t, Pfn> tlb_;  // vpn -> pfn
  Nanos accrued_{0};
  std::uint64_t cold_ = 0;
  std::uint64_t cached_ = 0;
};

}  // namespace crimes
