#include "vmi/vmi_session.h"

#include "common/bytes.h"
#include "guestos/guest_page_table.h"

#include <algorithm>

namespace crimes {

namespace {
// Guard against corrupted linked lists: a real VMI tool bounds its walks.
constexpr std::size_t kMaxListWalk = 1 << 16;
}  // namespace

VmiSession::VmiSession(Hypervisor& hypervisor, DomainId domain,
                       SymbolTable symbols, OsFlavor flavor,
                       const CostModel& costs)
    : hypervisor_(&hypervisor),
      domain_(domain),
      symbols_(std::move(symbols)),
      flavor_(flavor),
      costs_(&costs) {}

void VmiSession::init() {
  if (initialized_) return;
  const Vm& vm = hypervisor_->domain(domain_);
  // Kernel detection: find the page-table root from the vCPU, sanity-check
  // the symbol table against the guest size.
  table_base_ = Pfn{vm.vcpu().cr3 >> kPageShift};
  guest_pages_ = vm.page_count();
  if (table_base_.value() >= guest_pages_) {
    throw VmiError("VmiSession::init: implausible CR3");
  }
  initialized_ = true;
  accrued_ += costs_->vmi_init;
}

void VmiSession::preprocess() {
  require_init();
  if (preprocessed_) return;
  preprocessed_ = true;
  accrued_ += costs_->vmi_preprocess;
}

VmiSession VmiSession::fork() const {
  VmiSession child(*this);
  child.accrued_ = Nanos{0};
  child.cold_ = 0;
  child.cached_ = 0;
  return child;
}

void VmiSession::absorb(const VmiSession& child) {
  for (const auto& [vpn, pfn] : child.tlb_) tlb_.emplace(vpn, pfn);
  accrued_ += child.accrued_;  // anything the worker's module did not drain
  cold_ += child.cold_;
  cached_ += child.cached_;
}

void VmiSession::require_init() const {
  if (!initialized_) throw VmiError("VmiSession: init() not called");
}

Paddr VmiSession::translate(Vaddr va) {
  require_init();
  const std::uint64_t vpn = (va.value() - kVaBase) >> kPageShift;
  if (preprocessed_) {
    if (auto it = tlb_.find(vpn); it != tlb_.end()) {
      ++cached_;
      return Paddr::from(it->second, va.value() & kPageOffsetMask);
    }
  }
  const Vm& vm = hypervisor_->domain(domain_);
  const auto pa = translate_through_frames(vm, table_base_, guest_pages_, va);
  if (!pa) {
    throw VmiError("VmiSession: translation fault at VA 0x" + [va] {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%llx",
                    static_cast<unsigned long long>(va.value()));
      return std::string(buf);
    }());
  }
  ++cold_;
  accrued_ += costs_->vmi_translate;
  if (preprocessed_) tlb_.emplace(vpn, pa->pfn());
  return *pa;
}

std::uint64_t VmiSession::read_u64(Vaddr va) {
  std::uint64_t v;
  read_bytes(va, std::span<std::byte>(reinterpret_cast<std::byte*>(&v),
                                      sizeof(v)));
  return v;
}

std::uint64_t VmiSession::read_u64_fast(Vaddr va) {
  require_init();
  const Vm& vm = hypervisor_->domain(domain_);
  const Paddr pa = translate(va);
  accrued_ += costs_->vmi_read_fast;
  if (pa.page_offset() + 8 <= kPageSize) {
    return load_le<std::uint64_t>(vm.page(pa.pfn()).bytes(),
                                  pa.page_offset());
  }
  // Straddles a page: fall back to the general path.
  std::uint64_t v;
  read_bytes(va, std::span<std::byte>(reinterpret_cast<std::byte*>(&v),
                                      sizeof(v)));
  return v;
}

std::uint32_t VmiSession::read_u32(Vaddr va) {
  std::uint32_t v;
  read_bytes(va, std::span<std::byte>(reinterpret_cast<std::byte*>(&v),
                                      sizeof(v)));
  return v;
}

std::string VmiSession::read_str(Vaddr va, std::size_t max_len) {
  std::vector<std::byte> buf(max_len);
  read_bytes(va, buf);
  return load_cstr(buf, 0, max_len);
}

void VmiSession::read_bytes(Vaddr va, std::span<std::byte> out) {
  require_init();
  const Vm& vm = hypervisor_->domain(domain_);
  std::size_t done = 0;
  while (done < out.size()) {
    const Vaddr cur = va + done;
    const Paddr pa = translate(cur);
    const std::size_t chunk =
        std::min(out.size() - done, kPageSize - pa.page_offset());
    const Page& pg = vm.page(pa.pfn());
    std::memcpy(out.data() + done, pg.data.data() + pa.page_offset(), chunk);
    done += chunk;
    accrued_ += costs_->vmi_read_base;
  }
}

std::optional<Pfn> VmiSession::pfn_of(Vaddr va) {
  try {
    return translate(va).pfn();
  } catch (const VmiError&) {
    return std::nullopt;
  }
}

VmiProcess VmiSession::read_task_at(Vaddr task_va) {
  VmiProcess p;
  p.task_va = task_va;
  p.pid = Pid{read_u32(task_va + TaskLayout::kPidOff)};
  p.uid = read_u32(task_va + TaskLayout::kUidOff);
  p.state = read_u32(task_va + TaskLayout::kStateOff);
  p.name = read_str(task_va + TaskLayout::kCommOff, TaskLayout::kCommLen);
  p.start_time_ns = read_u64(task_va + TaskLayout::kStartTimeOff);
  p.mm = Vaddr{read_u64(task_va + TaskLayout::kMmOff)};
  p.files = Vaddr{read_u64(task_va + TaskLayout::kFilesOff)};
  p.sockets = Vaddr{read_u64(task_va + TaskLayout::kSocketsOff)};
  return p;
}

std::vector<VmiProcess> VmiSession::process_list() {
  require_init();
  const Vaddr head = symbols_.lookup(
      SymbolNames::for_flavor(flavor_).task_list_head);
  std::vector<VmiProcess> out;
  Vaddr cur{read_u64(head + TaskLayout::kNextOff)};
  std::size_t steps = 0;
  while (cur != head) {
    if (++steps > kMaxListWalk) {
      throw VmiError("VmiSession::process_list: task list does not terminate "
                     "(corrupted?)");
    }
    out.push_back(read_task_at(cur));
    cur = Vaddr{read_u64(cur + TaskLayout::kNextOff)};
  }
  return out;
}

std::vector<VmiModule> VmiSession::module_list() {
  require_init();
  const Vaddr head = symbols_.lookup(
      SymbolNames::for_flavor(flavor_).module_list_head);
  std::vector<VmiModule> out;
  Vaddr cur{read_u64(head + ModuleLayout::kNextOff)};
  std::size_t steps = 0;
  while (cur != head) {
    if (++steps > kMaxListWalk) {
      throw VmiError("VmiSession::module_list: module list does not "
                     "terminate (corrupted?)");
    }
    // A real module walk also validates the record and reads the layout
    // fields (magic, init address, back-pointer) -- keep the read pattern
    // faithful so the Table 3 cost is representative.
    if (read_u32(cur + ModuleLayout::kMagicOff) != ModuleLayout::kMagic) {
      throw VmiError("VmiSession::module_list: corrupt module record");
    }
    VmiModule m;
    m.module_va = cur;
    m.name = read_str(cur + ModuleLayout::kNameOff, ModuleLayout::kNameLen);
    m.size = read_u64(cur + ModuleLayout::kSizeOff);
    (void)read_u64(cur + ModuleLayout::kInitOff);
    (void)read_u64(cur + ModuleLayout::kPrevOff);
    out.push_back(std::move(m));
    cur = Vaddr{read_u64(cur + ModuleLayout::kNextOff)};
  }
  return out;
}

std::vector<std::uint64_t> VmiSession::read_syscall_table() {
  require_init();
  const Vaddr table = symbols_.lookup(
      SymbolNames::for_flavor(flavor_).syscall_table);
  std::vector<std::uint64_t> out(kSyscallCount);
  read_bytes(table, std::span<std::byte>(
                        reinterpret_cast<std::byte*>(out.data()),
                        out.size() * sizeof(std::uint64_t)));
  return out;
}

std::vector<VmiSession::VmiIdtGate> VmiSession::read_idt() {
  require_init();
  const Vaddr table = symbols_.lookup(
      SymbolNames::for_flavor(flavor_).idt);
  std::vector<std::byte> raw(kIdtVectors * IdtGateLayout::kSize);
  read_bytes(table, raw);
  std::vector<VmiIdtGate> gates;
  gates.reserve(kIdtVectors);
  for (std::size_t v = 0; v < kIdtVectors; ++v) {
    const std::size_t base = v * IdtGateLayout::kSize;
    const auto low =
        load_le<std::uint16_t>(raw, base + IdtGateLayout::kOffsetLowOff);
    const auto mid =
        load_le<std::uint16_t>(raw, base + IdtGateLayout::kOffsetMidOff);
    const auto high =
        load_le<std::uint32_t>(raw, base + IdtGateLayout::kOffsetHighOff);
    gates.push_back(VmiIdtGate{
        .handler = Vaddr{static_cast<std::uint64_t>(low) |
                         (static_cast<std::uint64_t>(mid) << 16) |
                         (static_cast<std::uint64_t>(high) << 32)},
        .selector =
            load_le<std::uint16_t>(raw, base + IdtGateLayout::kSelectorOff),
        .type_attr =
            load_le<std::uint8_t>(raw, base + IdtGateLayout::kTypeAttrOff),
    });
  }
  return gates;
}

std::vector<Vaddr> VmiSession::read_pid_hash() {
  require_init();
  const Vaddr table =
      symbols_.lookup(SymbolNames::for_flavor(flavor_).pid_hash);
  std::vector<std::uint64_t> raw(kPidHashBuckets);
  read_bytes(table, std::span<std::byte>(
                        reinterpret_cast<std::byte*>(raw.data()),
                        raw.size() * sizeof(std::uint64_t)));
  std::vector<Vaddr> out;
  for (const std::uint64_t v : raw) {
    if (v != 0) out.push_back(Vaddr{v});
  }
  return out;
}

VmiCanaryTable VmiSession::read_canary_table() {
  require_init();
  const Vaddr table =
      symbols_.lookup(SymbolNames::for_flavor(flavor_).canary_table);
  VmiCanaryTable result;
  const std::uint64_t count =
      read_u64(table + CanaryTableLayout::kCountOff);
  result.capacity = read_u64(table + CanaryTableLayout::kCapacityOff);
  result.key = read_u64(table + CanaryTableLayout::kKeyOff);
  if (count > result.capacity) {
    throw VmiError("VmiSession::read_canary_table: count exceeds capacity "
                   "(table corrupted?)");
  }
  // Bulk-read the entry array.
  std::vector<std::byte> raw(count * CanaryTableLayout::kEntrySize);
  read_bytes(table + CanaryTableLayout::kHeaderSize, raw);
  result.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t base = i * CanaryTableLayout::kEntrySize;
    result.entries.push_back(VmiCanaryEntry{
        .canary_addr = Vaddr{load_le<std::uint64_t>(
            raw, base + CanaryTableLayout::kEntryAddrOff)},
        .obj_addr = Vaddr{load_le<std::uint64_t>(
            raw, base + CanaryTableLayout::kEntryObjOff)},
        .obj_size = load_le<std::uint64_t>(
            raw, base + CanaryTableLayout::kEntrySizeOff),
    });
  }
  return result;
}

Nanos VmiSession::take_cost() {
  const Nanos cost = accrued_;
  accrued_ = Nanos::zero();
  return cost;
}

}  // namespace crimes
