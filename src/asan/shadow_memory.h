// AddressSanitizer-style baseline: shadow memory plus an instrumenting
// runtime.
//
// This is the comparison point the paper's Figure 3 labels "AS": inline
// checks on every memory access inside the guest, no hypervisor support.
// ShadowMemory implements the classic 1-shadow-byte-per-8-app-bytes scheme
// with red zones poisoned around heap objects; AsanRuntime wraps the guest
// heap and checks every instrumented access. Virtual time is charged per
// access (CostModel::asan_per_access), which is where the 1.4-2x slowdowns
// come from.
#pragma once

#include "common/cost_model.h"
#include "common/types.h"
#include "guestos/guest_kernel.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace crimes {

class ShadowMemory {
 public:
  static constexpr std::size_t kGranule = 8;  // app bytes per shadow byte

  // Covers guest VAs [base, base + bytes).
  ShadowMemory(Vaddr base, std::size_t bytes);

  void poison(Vaddr va, std::size_t len);
  void unpoison(Vaddr va, std::size_t len);
  [[nodiscard]] bool is_poisoned(Vaddr va, std::size_t len) const;

  [[nodiscard]] Vaddr base() const { return base_; }
  [[nodiscard]] std::size_t covered_bytes() const {
    return shadow_.size() * kGranule;
  }

 private:
  [[nodiscard]] bool in_range(Vaddr va, std::size_t len) const;

  Vaddr base_;
  std::vector<std::uint8_t> shadow_;  // 0 = addressable, 1 = poisoned
};

struct AsanViolation {
  Vaddr va;
  std::size_t length = 0;
  std::uint64_t instr_index = 0;
};

class AsanRuntime {
 public:
  AsanRuntime(GuestKernel& kernel, const CostModel& costs);

  // malloc/free with red-zone poisoning. The red zone doubles as the
  // canary slot the plain allocator already reserves.
  [[nodiscard]] Vaddr malloc(std::size_t size);
  void free(Vaddr obj);

  // Instrumented write: checks shadow state first. Returns false (and
  // records a violation) when the access touches poisoned bytes; the write
  // is still performed, mirroring a report-only sanitizer deployment.
  bool write(Vaddr va, std::span<const std::byte> data);

  [[nodiscard]] const std::vector<AsanViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t checks_performed() const { return checks_; }
  // Total virtual-time overhead of the inline checks so far.
  [[nodiscard]] Nanos overhead() const {
    return costs_->asan_per_access * checks_;
  }

  [[nodiscard]] ShadowMemory& shadow() { return shadow_; }

 private:
  GuestKernel* kernel_;
  const CostModel* costs_;
  ShadowMemory shadow_;
  std::unordered_map<std::uint64_t, std::size_t> size_of_obj_;
  std::uint64_t checks_ = 0;
  std::vector<AsanViolation> violations_;
};

}  // namespace crimes
