#include "asan/shadow_memory.h"

#include <stdexcept>

namespace crimes {

ShadowMemory::ShadowMemory(Vaddr base, std::size_t bytes)
    : base_(base), shadow_((bytes + kGranule - 1) / kGranule, 0) {}

bool ShadowMemory::in_range(Vaddr va, std::size_t len) const {
  return va.value() >= base_.value() &&
         va.value() + len <= base_.value() + shadow_.size() * kGranule;
}

void ShadowMemory::poison(Vaddr va, std::size_t len) {
  if (!in_range(va, len)) {
    throw std::out_of_range("ShadowMemory::poison: outside covered range");
  }
  const std::size_t first = (va.value() - base_.value()) / kGranule;
  const std::size_t last = (va.value() - base_.value() + len - 1) / kGranule;
  for (std::size_t i = first; i <= last; ++i) shadow_[i] = 1;
}

void ShadowMemory::unpoison(Vaddr va, std::size_t len) {
  if (!in_range(va, len)) {
    throw std::out_of_range("ShadowMemory::unpoison: outside covered range");
  }
  const std::size_t first = (va.value() - base_.value()) / kGranule;
  const std::size_t last = (va.value() - base_.value() + len - 1) / kGranule;
  for (std::size_t i = first; i <= last; ++i) shadow_[i] = 0;
}

bool ShadowMemory::is_poisoned(Vaddr va, std::size_t len) const {
  if (len == 0) return false;
  if (!in_range(va, len)) return true;  // out of covered range = bad access
  const std::size_t first = (va.value() - base_.value()) / kGranule;
  const std::size_t last = (va.value() - base_.value() + len - 1) / kGranule;
  for (std::size_t i = first; i <= last; ++i) {
    if (shadow_[i] != 0) return true;
  }
  return false;
}

AsanRuntime::AsanRuntime(GuestKernel& kernel, const CostModel& costs)
    : kernel_(&kernel),
      costs_(&costs),
      shadow_(kernel.layout().va_of(kernel.layout().heap_base),
              kernel.layout().heap_pages * kPageSize) {
  // Fresh heap: everything is unaddressable until malloc'd.
  shadow_.poison(shadow_.base(), shadow_.covered_bytes());
}

Vaddr AsanRuntime::malloc(std::size_t size) {
  const Vaddr obj = kernel_->heap().malloc(size);
  shadow_.unpoison(obj, size);
  // The trailing canary slot is the red zone: poisoned so any overflow
  // into it trips the inline check.
  shadow_.poison(obj + size, kCanaryBytes);
  size_of_obj_[obj.value()] = size;
  return obj;
}

void AsanRuntime::free(Vaddr obj) {
  auto it = size_of_obj_.find(obj.value());
  if (it == size_of_obj_.end()) {
    throw std::out_of_range("AsanRuntime::free: not an allocated object");
  }
  kernel_->heap().free(obj);
  shadow_.poison(obj, it->second);  // use-after-free detection
  size_of_obj_.erase(it);
}

bool AsanRuntime::write(Vaddr va, std::span<const std::byte> data) {
  ++checks_;
  const bool bad = shadow_.is_poisoned(va, data.size());
  if (bad) {
    violations_.push_back(AsanViolation{
        .va = va,
        .length = data.size(),
        .instr_index = kernel_->vm().vcpu().instr_retired + 1,
    });
  }
  kernel_->write_virt(va, data);
  return !bad;
}

}  // namespace crimes
