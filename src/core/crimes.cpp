#include "core/crimes.h"

#include "common/bytes.h"
#include "common/log.h"
#include "forensics/plugins.h"
#include "replication/store_journal.h"
#include "store/checkpoint_store.h"
#include "telemetry/export.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace crimes {

const char* to_string(SafetyMode mode) {
  switch (mode) {
    case SafetyMode::Synchronous: return "Synchronous";
    case SafetyMode::BestEffort: return "BestEffort";
    case SafetyMode::Disabled: return "Disabled";
  }
  return "?";
}

PhaseCosts RunSummary::avg_costs() const {
  if (checkpoints == 0) return {};
  const auto n = static_cast<std::int64_t>(checkpoints);
  return PhaseCosts{
      .suspend = total_costs.suspend / n,
      .vmi = total_costs.vmi / n,
      .bitscan = total_costs.bitscan / n,
      .map = total_costs.map / n,
      .copy = total_costs.copy / n,
      .protect = total_costs.protect / n,
      .resume = total_costs.resume / n,
      .observe = total_costs.observe / n,
      .control = total_costs.control / n,
      .dirty_pages = total_costs.dirty_pages / checkpoints,
  };
}

Crimes::Crimes(Hypervisor& hypervisor, GuestKernel& kernel,
               CrimesConfig config, const CostModel& costs)
    : hypervisor_(&hypervisor),
      kernel_(&kernel),
      config_(config),
      costs_(&costs),
      network_(costs.net_wire_latency),
      disk_(config.disk_blocks) {
  // The control plane reads windowed percentiles from the time-series
  // engine, so enabling it implies the telemetry bundle.
  if (config_.control.enabled && config_.mode != SafetyMode::Disabled) {
    config_.telemetry = true;
  }
  if (config_.telemetry) {
    telemetry_ = std::make_unique<telemetry::Telemetry>(clock_);
  }
}

void Crimes::add_module(std::unique_ptr<ScanModule> module) {
  detector_.add_module(std::move(module));
}

VmiSession& Crimes::vmi() {
  if (!vmi_) throw std::logic_error("Crimes: initialize() not called");
  return *vmi_;
}

Checkpointer& Crimes::checkpointer() {
  if (!checkpointer_) {
    throw std::logic_error("Crimes: no checkpointer (Disabled mode?)");
  }
  return *checkpointer_;
}

void Crimes::apply_output_mode(SafetyMode mode) {
  // Output plumbing per SafetyMode: Synchronous holds everything in the
  // buffer until the audit passes; other modes ship immediately.
  if (mode == SafetyMode::Synchronous) {
    nic_.set_sink([this](Packet&& p) { buffer_.hold(std::move(p)); });
    disk_.set_buffering(true);
  } else {
    nic_.set_sink([this](Packet&& p) {
      const Nanos at = p.sent_at;
      network_.deliver(std::move(p), at);
    });
    disk_.set_buffering(false);
  }
  active_mode_ = mode;
}

void Crimes::initialize() {
  if (initialized_) throw std::logic_error("Crimes: already initialized");

  apply_output_mode(config_.mode);

  // Resilience layer: a non-empty fault plan means copies can abort or
  // tear, so the backup must be verified -- force the checksum sweep on
  // before the Checkpointer snapshots its config.
  if (config_.faults.any()) {
    injector_ = std::make_unique<fault::FaultInjector>(config_.faults);
    config_.checkpoint.verify_backup = true;
  }

  vmi_ = std::make_unique<VmiSession>(*hypervisor_, kernel_->vm().id(),
                                      kernel_->symbols(), kernel_->flavor(),
                                      *costs_);
  vmi_->init();
  vmi_->preprocess();
  clock_.advance(vmi_->take_cost());

  if (config_.mode != SafetyMode::Disabled) {
    checkpointer_ = std::make_unique<Checkpointer>(
        *hypervisor_, kernel_->vm(), clock_, *costs_, config_.checkpoint);
    checkpointer_->initialize();
    if (injector_) checkpointer_->set_fault_injector(injector_.get());
    if (config_.governor.enabled) {
      // Only Synchronous mode has a cheaper mode to fall back to; the
      // governor still tracks failure streaks (and can freeze) elsewhere.
      governor_.emplace(config_.governor,
                        /*can_degrade=*/config_.mode ==
                            SafetyMode::Synchronous);
    }
    replay_ = std::make_unique<ReplayEngine>(*kernel_, *checkpointer_,
                                             clock_, *costs_);
    if (config_.record_execution) {
      recorder_.enable();
      kernel_->set_write_observer(
          [this](Vaddr va, std::span<const std::byte> data,
                 std::uint64_t instr) { recorder_.record(va, data, instr); });
    }
  }
  if (config_.replication.enabled && checkpointer_) {
    // The standby is a second simulated machine, seeded from the backup
    // image (the last committed checkpoint -- the only replicated state).
    standby_ = std::make_unique<replication::StandbyHost>(
        *costs_, config_.replication, kernel_->vm().name(),
        kernel_->vm().page_count());
    clock_.advance(standby_->initialize(
        checkpointer_->backup(), checkpointer_->backup_vcpu(),
        checkpointer_->checkpoints_taken(), clock_.now()));
    replicator_ = std::make_unique<replication::Replicator>(
        *costs_, config_.replication, checkpointer_->backup(),
        standby_->vm(), checkpointer_->checkpoints_taken());
    // Attested replication (DESIGN.md section 15): the standby pins the
    // primary store's post-seed root as its trust anchor and verifies
    // every generation it applies against the chain from there.
    if (config_.checkpoint.store.enabled &&
        config_.checkpoint.store.crypto.attest &&
        checkpointer_->store() != nullptr) {
      replicator_->set_attestation(config_.checkpoint.store.crypto.tenant_key,
                                   checkpointer_->store()->root());
    }
    if (injector_) replicator_->set_fault_injector(injector_.get());
    // First heartbeat and the initial fencing lease arrive with the seed.
    standby_->detector().record_heartbeat(clock_.now());
    lease_ = standby_->authority().grant(clock_.now());
    clock_.advance(costs_->lease_renew_rtt);
  }
  detector_.set_audit_policy(config_.audit_policy);
  if (injector_) detector_.set_fault_injector(injector_.get());
  if (config_.adaptive.enabled) {
    adaptive_.emplace(config_.adaptive, config_.checkpoint.epoch_interval);
  }
  if (telemetry_) {
    if (checkpointer_) checkpointer_->set_telemetry(telemetry_.get());
    detector_.set_telemetry(telemetry_.get());
    buffer_.set_telemetry(telemetry_.get());
    if (adaptive_) adaptive_->set_telemetry(telemetry_.get());
    if (replicator_) replicator_->set_telemetry(telemetry_.get());
    telemetry_->enable_series(config_.timeseries);
  }
  // Observability layer: both preallocate here so the per-epoch path
  // stays allocation-free. The SLO monitor needs a pipeline to judge, so
  // Disabled mode runs without one.
  if (config_.flight_recorder) {
    flight_ = std::make_unique<telemetry::FlightRecorder>(
        config_.flight_capacity);
  }
  if (config_.slo.enabled && config_.mode != SafetyMode::Disabled) {
    slo_ = std::make_unique<telemetry::SloMonitor>(config_.slo);
  }
  // Control plane: built last so it can see which actuators exist.
  // Policies for absent actuators (no replicator, no store, no scan
  // modules) are disabled outright; the interval policy subsumes the
  // adaptive controller (current_interval() prefers the plane).
  if (config_.control.enabled && config_.mode != SafetyMode::Disabled) {
    control::ControlConfig cc = config_.control;
    if (!replicator_) cc.manage_window = false;
    if (detector_.module_count() == 0) cc.manage_scan = false;
    store::CheckpointStore* store =
        checkpointer_ ? checkpointer_->store() : nullptr;
    control_ = std::make_unique<control::ControlPlane>(
        cc, *costs_, config_.slo.budget, config_.checkpoint.epoch_interval,
        replicator_ ? config_.replication.window : 0,
        store != nullptr ? store->config().gc_generations_per_epoch : 0);
    control_->set_telemetry(telemetry_.get());
    full_sweep_every_ = control_->full_sweep_every();
    if (adaptive_) {
      CRIMES_LOG(Info, "control")
          << "control plane enabled: its interval policy overrides the "
             "adaptive controller";
    }
  }
  initialized_ = true;
  CRIMES_LOG(Info, "crimes") << "initialized: mode="
                             << to_string(config_.mode) << ", scheme="
                             << config_.checkpoint.label() << ", modules="
                             << detector_.module_count();
}

AuditResult Crimes::run_audit(std::span<const Pfn> dirty, Nanos audit_start) {
  if (detector_.module_count() == 0) {
    // No tenant modules registered: the minimal no-op introspection the
    // paper's overhead experiments run.
    last_findings_.clear();
    return AuditResult{.passed = true, .cost = costs_->vmi_noop_scan};
  }
  const ScanPlan plan = ScanPlan::classify(kernel_->layout(), dirty);
  // Control-plane scan schedule: every full_sweep_every_-th epoch runs
  // without a plan, so every module falls back to its conservative
  // full-coverage scan (the ScanPlanner's documented nullptr semantics).
  const bool full_sweep =
      full_sweep_every_ != 0 && epoch_index_ % full_sweep_every_ == 0;
  if (full_sweep) last_audit_full_sweep_ = true;
  ScanContext ctx{
      .vmi = *vmi_,
      .dirty = dirty,
      .costs = *costs_,
      .pending_packets = active_mode_ == SafetyMode::Synchronous
                             ? &buffer_.pending()
                             : nullptr,
      .plan = full_sweep ? nullptr : &plan,
      .now = clock_.now(),
      .trace_start = audit_start,
  };
  ThreadPool* pool = checkpointer_ ? checkpointer_->pool() : nullptr;
  ScanResult result = config_.checkpoint.parallel_audit && pool != nullptr
                          ? detector_.audit_parallel(ctx, *pool)
                          : detector_.audit(ctx);
  const bool passed = result.clean();
  last_findings_ = std::move(result.findings);
  return AuditResult{.passed = passed, .cost = result.cost};
}

RunSummary Crimes::run(Nanos max_work_time) {
  if (!initialized_) throw std::logic_error("Crimes: initialize() first");
  if (workload_ == nullptr) throw std::logic_error("Crimes: no workload set");

  RunSummary summary;
  summary.scheme = config_.mode == SafetyMode::Disabled
                       ? "Disabled"
                       : config_.checkpoint.label();

  telemetry::TraceRecorder* trace =
      telemetry_ ? &telemetry_->trace : nullptr;
  // Always collected (independent of the telemetry knob): tail pause for
  // RunSummary. Recording is two relaxed atomic adds per epoch.
  telemetry::Histogram pause_hist;

  while (!workload_->finished() && summary.work_time < max_work_time) {
    // A frozen pipeline never runs another epoch: the checkpoint path is
    // lost and the VM was paused by the governor.
    if (governor_ && governor_->state() == fault::GovernorState::Frozen) {
      summary.frozen_by_governor = true;
      break;
    }
    if (primary_killed_) break;  // the host died in an earlier slice
    // Fault decisions are drawn before the epoch opens: a primary kill is
    // a *host* failure, and the failover span it triggers must sit between
    // epochs on the trace, never inside one.
    if (injector_) injector_->begin_epoch(epoch_index_);
    if (replicator_ &&
        (host_kill_pending_ || (injector_ && injector_->kills_primary()))) {
      const bool correlated = host_kill_pending_;
      host_kill_pending_ = false;
      primary_killed_ = true;
      summary.primary_killed = true;
      if (flight_) {
        flight_->record(clock_.now(), epoch_index_,
                        telemetry::FlightEventKind::Fault, "kills_primary",
                        correlated ? "correlated-failover" : "");
      }
      kernel_->vm().pause();  // the whole host powers off
      if (!failed_over_) fail_over(summary, clock_.now());
      break;
    }
    if (replicator_ && !failed_over_ && !promotion_refused_ &&
        standby_->detector().suspects(clock_.now()) &&
        clock_.now() >= standby_->authority().promotion_safe_at()) {
      // The standby has not heard a heartbeat for long enough to promote,
      // yet this primary is still running: the split-brain scenario.
      // Fencing -- not coordination -- keeps it safe.
      split_brain_promote(summary);
    }
    CRIMES_TRACE_SPAN(trace, "epoch");
    const Nanos interval = current_interval();
    const Nanos epoch_start = clock_.now();
    ++epoch_index_;
    recorder_.begin_epoch();
    if (replicator_ && !standby_->promoted()) {
      // Epoch heartbeat. A partitioned link (sticky) or an injected drop
      // means the standby's detector simply sees a longer gap.
      if (injector_ && injector_->partitions_link() &&
          !replicator_->partitioned()) {
        replicator_->partition(clock_.now());
        if (flight_) {
          flight_->record(clock_.now(), epoch_index_,
                          telemetry::FlightEventKind::Fault,
                          "partitions_link");
        }
      }
      if (!replicator_->partitioned() &&
          !(injector_ && injector_->drops_heartbeat())) {
        standby_->detector().record_heartbeat(epoch_start);
        clock_.advance(costs_->heartbeat_eval);
      } else if (flight_ && !replicator_->partitioned()) {
        flight_->record(clock_.now(), epoch_index_,
                        telemetry::FlightEventKind::Fault, "drops_heartbeat");
      }
    }
    workload_->run_epoch(epoch_start, interval);
    clock_.advance(interval);
    summary.work_time += interval;
    ++summary.epochs;

    if (config_.mode == SafetyMode::Disabled) continue;

    // Commit barrier for the previous epoch's speculative CoW drain: it
    // overlapped with the epoch that just executed, so by now it is
    // usually done and the barrier stalls only on the remainder.
    if (cow_stash_.active && !finish_cow_commit(summary)) {
      summary.frozen_by_governor = true;
      break;
    }

    // Shed ladder rung 3 (host_pause_protection): the epoch executed, but
    // the checkpoint/audit pipeline is skipped entirely. Synchronous
    // outputs stay held in the buffer -- audited-never-released is safe,
    // just late -- and the dirty bitmap keeps accumulating, so the first
    // checkpoint after protection resumes covers the whole gap.
    if (host_protection_paused_) {
      ++summary.host_paused_epochs;
      continue;
    }

    const EpochResult epoch =
        checkpointer_->run_checkpoint([this](std::span<const Pfn> dirty,
                                             Nanos audit_start) {
          return run_audit(dirty, audit_start);
        });

    summary.total_costs.suspend += epoch.costs.suspend;
    summary.total_costs.vmi += epoch.costs.vmi;
    summary.total_costs.bitscan += epoch.costs.bitscan;
    summary.total_costs.map += epoch.costs.map;
    summary.total_costs.copy += epoch.costs.copy;
    summary.total_costs.protect += epoch.costs.protect;
    summary.total_costs.resume += epoch.costs.resume;
    summary.total_costs.dirty_pages += epoch.costs.dirty_pages;
    summary.total_dirty_pages += epoch.costs.dirty_pages;
    summary.copy_retries += epoch.copy_retries;
    summary.recovery_time += epoch.recovery_cost;
    summary.store_time += epoch.store_cost;
    if (adaptive_) (void)adaptive_->observe(epoch.costs);

    // Epoch-boundary observability: flight-recorder events, time-series
    // sample, SLO evaluation. The (small) virtual cost lands inside the
    // pause accounting -- it is work done while the tenant waits -- which
    // is exactly what ablation_telemetry_overhead budgets at <1%.
    const Nanos observe_cost = observe_epoch(epoch, interval, summary);
    summary.total_costs.observe += observe_cost;
    // Control plane: runs after the telemetry sample so its windowed
    // inputs include this epoch, and its cost joins the pause for the
    // same reason observe's does.
    const Nanos control_cost = control_epoch(epoch, interval, summary);
    summary.total_costs.control += control_cost;
    if (last_audit_full_sweep_) {
      ++summary.control_full_sweeps;
      last_audit_full_sweep_ = false;
    }
    const Nanos pause =
        epoch.costs.pause_total() + observe_cost + control_cost;
    summary.total_pause += pause;
    summary.max_pause = std::max(summary.max_pause, pause);
    pause_hist.record(static_cast<std::uint64_t>(pause.count()));

    if (epoch.cow_pending) {
      // Resume-first checkpoint: the copy is still draining and commits at
      // the next barrier. Stash the epoch's outputs *now* -- the buffer
      // holds exactly this (audited) epoch's packets; by barrier time the
      // next epoch's would have mixed in. The disk overlay cannot split
      // its pending writes the same way, so the (audited) disk state
      // commits here; a later drain failure keeps the packets held but
      // accepts this epoch's disk writes -- the documented tradeoff.
      cow_stash_.active = true;
      cow_stash_.epoch = epoch;
      cow_stash_.held = buffer_.take_all();
      cow_stash_.resume_at = clock_.now();
      cow_stash_.epoch_start = epoch_start;
      disk_.commit_pending();
      disk_checkpoint_ = disk_.snapshot_committed();
      continue;
    }

    if (epoch.audit_passed) {
      if (epoch.checkpoint_committed) {
        ++summary.checkpoints;
        // Commit the speculative epoch: outputs may now leave the host --
        // immediately when unreplicated; once the standby acknowledges
        // (and the fencing lease still holds) when replication is on.
        {
          CRIMES_TRACE_SPAN(trace, "commit");
          if (replicator_) {
            replicate_commit(epoch, summary, buffer_.take_all());
          } else {
            CRIMES_TRACE_SPAN(trace, "buffer_release");
            buffer_.release_all(network_, clock_.now());
          }
          disk_.commit_pending();
          disk_checkpoint_ = disk_.snapshot_committed();
        }
      } else {
        // The copy/verify loop exhausted its retries: the backup was
        // restored to the previous clean checkpoint, the dirty bitmap was
        // retained (the next epoch's checkpoint carries these pages), and
        // -- in Synchronous mode -- the audited outputs stay held until a
        // checkpoint actually covers them. Best Effort already shipped.
        ++summary.checkpoint_failures;
        dump_postmortem("checkpoint-retries-exhausted", summary);
      }

      if (governor_ &&
          apply_governor_action(governor_->on_epoch(epoch.checkpoint_committed),
                                summary)) {
        summary.frozen_by_governor = true;
        break;
      }
      if (governor_ &&
          governor_->state() == fault::GovernorState::Degraded) {
        ++summary.degraded_epochs;
      }
      if (!epoch.checkpoint_committed) continue;

      // Async deep-scan extension: completed scans may surface evidence
      // the online modules missed; due scans are launched on the fresh
      // backup.
      if (async_scan_ && clock_.now() >= async_scan_->ready_at) {
        if (!async_scan_->findings.empty()) {
          last_findings_ = std::move(async_scan_->findings);
          async_scan_.reset();
          summary.attack_detected = true;
          kernel_->vm().pause();
          respond(epoch, epoch_start);
          break;
        }
        async_scan_.reset();
      }
      if (config_.async_deep_scan_every != 0 && !async_scan_ &&
          summary.epochs % config_.async_deep_scan_every == 0) {
        launch_async_deep_scan();
      }
    } else {
      // Zero-window guarantee: nothing from the poisoned epoch escapes.
      buffer_.drop_all();
      disk_.drop_pending();
      summary.attack_detected = true;
      respond(epoch, epoch_start);
      break;
    }
  }
  if (cow_stash_.active && !primary_killed_) {
    // The run ended with a drain still in flight (workload finished or the
    // work-time budget ran out): settle it so the caller never observes a
    // half-committed backup. The synthetic epoch span keeps the barrier's
    // commit/release spans under an epoch, like every other one.
    CRIMES_TRACE_SPAN(trace, "epoch");
    if (!finish_cow_commit(summary)) summary.frozen_by_governor = true;
  }
  summary.pause_histogram = pause_hist.snapshot();
  if (injector_) {
    // Report the delta since the last run(): CloudHost sums per-slice
    // summaries, so a cumulative total would be counted repeatedly.
    summary.faults_injected = injector_->total_injected() - faults_reported_;
    faults_reported_ = injector_->total_injected();
  }
  summary.quarantined_modules = detector_.quarantined_modules();
  collect_attestation(summary);
  verify_store_seals(summary);
  verify_journal(summary);
  return summary;
}

bool Crimes::apply_governor_action(fault::SafetyGovernor::Action action,
                                   RunSummary& summary) {
  using Action = fault::SafetyGovernor::Action;
  switch (action) {
    case Action::None:
      return false;
    case Action::Downgrade:
      // Sustained checkpoint failure: stop holding the tenant's outputs
      // behind a checkpoint path that keeps failing. Everything currently
      // held passed its audit -- releasing it is exactly Best Effort
      // semantics (audited, not checkpoint-covered).
      ++summary.governor_downgrades;
      buffer_.release_all(network_, clock_.now());
      if (replicator_ != nullptr) {
        // Ack-gated outputs stop waiting too -- Best Effort semantics --
        // but fencing still rules: an invalid lease discards, never ships.
        if (lease_.valid(clock_.now())) {
          for (auto& entry : pending_release_) {
            for (auto& packet : entry.packets) {
              network_.deliver(std::move(packet), clock_.now());
            }
          }
          pending_release_.clear();
        } else {
          discard_pending_outputs(summary);
        }
      }
      disk_.commit_pending();
      apply_output_mode(SafetyMode::BestEffort);
      if (telemetry_) {
        telemetry_->metrics.counter("governor.downgrades").add();
        telemetry_->metrics.gauge("governor.degraded").set(1.0);
      }
      if (flight_) {
        flight_->record(clock_.now(), epoch_index_,
                        telemetry::FlightEventKind::Governor, "downgrade",
                        "Synchronous -> BestEffort");
      }
      CRIMES_LOG(Warn, "governor")
          << "sustained checkpoint failure ("
          << governor_->consecutive_failures()
          << " epochs): downgrading Synchronous -> Best Effort at "
          << to_ms(clock_.now()) << " ms";
      return false;
    case Action::Upgrade:
      ++summary.governor_upgrades;
      // A host-shed tenant stays in Best Effort even when its own
      // checkpoint path heals: the host arbiter's restore lifts the shed.
      apply_output_mode(host_downgraded_ ? SafetyMode::BestEffort
                                         : SafetyMode::Synchronous);
      if (telemetry_) {
        telemetry_->metrics.counter("governor.upgrades").add();
        telemetry_->metrics.gauge("governor.degraded").set(0.0);
      }
      if (flight_) {
        flight_->record(clock_.now(), epoch_index_,
                        telemetry::FlightEventKind::Governor, "upgrade",
                        "BestEffort -> Synchronous");
      }
      CRIMES_LOG(Info, "governor")
          << "checkpoint path healthy again: upgrading back to Synchronous "
             "at "
          << to_ms(clock_.now()) << " ms";
      return false;
    case Action::Freeze:
      // The checkpoint path is gone for good. Running on without a
      // recoverable backup voids every guarantee the tenant signed up
      // for, so the VM stops here. Whatever the buffer still holds was
      // never covered by a checkpoint and stays unreleased.
      kernel_->vm().pause();
      if (replicator_ != nullptr) {
        // Quiesce the replication stream: the primary will produce no
        // more generations, so nothing in flight will ever be needed and
        // the window must not stay pinned open across the freeze.
        clock_.advance(replicator_->quiesce(clock_.now()));
      }
      if (telemetry_) telemetry_->metrics.counter("governor.freezes").add();
      if (flight_) {
        flight_->record(clock_.now(), epoch_index_,
                        telemetry::FlightEventKind::Governor, "freeze",
                        "checkpoint path lost; VM paused",
                        static_cast<double>(
                            governor_->consecutive_failures()));
      }
      CRIMES_LOG(Error, "governor")
          << "checkpoint path lost (" << governor_->consecutive_failures()
          << " consecutive failures): VM frozen at " << to_ms(clock_.now())
          << " ms";
      dump_postmortem("governor-freeze", summary);
      return true;
  }
  return false;
}

bool Crimes::finish_cow_commit(RunSummary& summary) {
  telemetry::TraceRecorder* trace =
      telemetry_ ? &telemetry_->trace : nullptr;
  const CowCommit commit =
      checkpointer_->complete_cow_drain(cow_stash_.resume_at);
  EpochResult epoch = std::move(cow_stash_.epoch);
  std::vector<Packet> held = std::move(cow_stash_.held);
  const Nanos epoch_start = cow_stash_.epoch_start;
  cow_stash_ = {};

  summary.cow_first_touches += commit.first_touches;
  summary.cow_drain_time += commit.drain_cost;
  summary.cow_first_touch_time += commit.first_touch_cost;
  summary.cow_commit_stall += commit.stall;
  summary.copy_retries += commit.copy_retries;
  summary.recovery_time += commit.recovery_cost;
  summary.store_time += commit.store_cost;

  // The buffer currently holds the *still unaudited* packets of the epoch
  // that overlapped the drain. Set them aside: commit releases (and a
  // governor downgrade would release) audited outputs only.
  std::vector<Packet> unaudited = buffer_.take_all();

  if (commit.committed) {
    ++summary.checkpoints;
    CRIMES_TRACE_SPAN(trace, "commit");
    if (replicator_) {
      replicate_commit(epoch, summary, std::move(held));
    } else {
      CRIMES_TRACE_SPAN(trace, "buffer_release");
      for (auto& packet : held) {
        network_.deliver(std::move(packet), clock_.now());
      }
    }
    // Disk state was committed at protect time (see the stash site).
  } else {
    // The drain exhausted its retries: the backup was restored untorn and
    // the dirty set re-marked. The epoch's outputs stay held -- into the
    // (momentarily empty) buffer first, so they precede the overlapping
    // epoch's packets when a later checkpoint finally covers them.
    ++summary.checkpoint_failures;
    for (auto& packet : held) buffer_.hold(std::move(packet));
    dump_postmortem("checkpoint-retries-exhausted", summary);
  }

  bool frozen = false;
  if (governor_ &&
      apply_governor_action(governor_->on_epoch(commit.committed), summary)) {
    frozen = true;
  }
  if (governor_ && governor_->state() == fault::GovernorState::Degraded) {
    ++summary.degraded_epochs;
  }
  for (auto& packet : unaudited) buffer_.hold(std::move(packet));
  if (frozen) return false;

  // Async deep-scan extension rides committed epochs, like the stop-copy
  // path.
  if (commit.committed) {
    if (async_scan_ && clock_.now() >= async_scan_->ready_at) {
      if (!async_scan_->findings.empty()) {
        last_findings_ = std::move(async_scan_->findings);
        async_scan_.reset();
        summary.attack_detected = true;
        kernel_->vm().pause();
        respond(epoch, epoch_start);
        return false;
      }
      async_scan_.reset();
    }
    if (config_.async_deep_scan_every != 0 && !async_scan_ &&
        summary.epochs % config_.async_deep_scan_every == 0) {
      launch_async_deep_scan();
    }
  }
  return true;
}

void Crimes::replicate_commit(const EpochResult& epoch, RunSummary& summary,
                              std::vector<Packet> held) {
  telemetry::TraceRecorder* trace =
      telemetry_ ? &telemetry_->trace : nullptr;
  {
    CRIMES_TRACE_SPAN(trace, "replicate");
    // With attestation armed the commit carries the primary store's root;
    // the standby recomputes the leaf from the bytes it applied and will
    // refuse to extend trust past a mismatch.
    const std::uint64_t root =
        checkpointer_->store() != nullptr ? checkpointer_->store()->root() : 0;
    const replication::Replicator::SendResult sent = replicator_->on_commit(
        checkpointer_->checkpoints_taken(), epoch.dirty,
        checkpointer_->backup_vcpu(), clock_.now(), root);
    clock_.advance(sent.stall + sent.charge + sent.verify_cost);
    summary.replication_stall += sent.stall;
    if (trace != nullptr && sent.verify_cost.count() > 0) {
      trace->add_span("verify_chain", clock_.now() - sent.verify_cost,
                      sent.verify_cost);
    }
    if (sent.dropped) {
      ++summary.replication_dropped;
    } else {
      ++summary.replicated_generations;
    }
  }
  // A standby-side verification failure is first-class evidence: recorded
  // the moment it is detected, then frozen into a postmortem.
  if (replicator_->attested() &&
      replicator_->tampers_detected() > tamper_events_logged_) {
    const std::uint64_t fresh =
        replicator_->tampers_detected() - tamper_events_logged_;
    tamper_events_logged_ = replicator_->tampers_detected();
    if (flight_) {
      flight_->record(clock_.now(), epoch_index_,
                      telemetry::FlightEventKind::Tamper, "replication_verify",
                      "standby root mismatch; trust not extended",
                      static_cast<double>(fresh));
    }
    CRIMES_LOG(Error, "crimes")
        << "attestation verify failed on the replication stream at "
        << to_ms(clock_.now()) << " ms (generation "
        << checkpointer_->checkpoints_taken() << ")";
    dump_postmortem("attestation-verify", summary);
  }
  // Lease renewal rides the healthy link; a promoted standby refuses the
  // old primary (its fencing epoch moved on), so the lease just runs out.
  if (!replicator_->partitioned() && !standby_->promoted()) {
    lease_ = standby_->authority().grant(clock_.now());
    clock_.advance(costs_->lease_renew_rtt);
  }
  pending_release_.push_back(PendingRelease{
      checkpointer_->checkpoints_taken(), std::move(held)});
  release_acked_outputs(summary);
}

void Crimes::release_acked_outputs(RunSummary& summary) {
  telemetry::TraceRecorder* trace =
      telemetry_ ? &telemetry_->trace : nullptr;
  replicator_->advance(clock_.now());
  const std::uint64_t acked = replicator_->acked_through();
  while (!pending_release_.empty() &&
         pending_release_.front().generation <= acked) {
    PendingRelease entry = std::move(pending_release_.front());
    pending_release_.pop_front();
    // Self-fencing is local by design: the primary checks only its own
    // lease's clock, never the (possibly unreachable) authority.
    if (lease_.valid(clock_.now())) {
      CRIMES_TRACE_SPAN(trace, "buffer_release");
      for (auto& packet : entry.packets) {
        network_.deliver(std::move(packet), clock_.now());
      }
    } else {
      ++summary.fenced_epochs;
      summary.outputs_discarded += entry.packets.size();
    }
  }
}

void Crimes::discard_pending_outputs(RunSummary& summary) {
  for (const PendingRelease& entry : pending_release_) {
    summary.outputs_discarded += entry.packets.size();
  }
  pending_release_.clear();
}

void Crimes::fail_over(RunSummary& summary, Nanos failed_at) {
  telemetry::TraceRecorder* trace =
      telemetry_ ? &telemetry_->trace : nullptr;
  if (cow_stash_.active) {
    // The in-flight drain died with the primary; its epoch never
    // committed, so its held outputs are discarded like any other
    // un-replicated epoch's.
    summary.outputs_discarded += cow_stash_.held.size();
    cow_stash_ = {};
  }
  // The detector needs a heartbeat-free gap before it suspects, and every
  // lease ever granted must expire; virtual time fast-forwards through
  // both (nothing else can run -- the primary is dead).
  const Nanos ready = standby_->promotion_ready_at(failed_at);
  if (ready > clock_.now()) clock_.advance(ready - clock_.now());
  const replication::StandbyHost::PromotionReport report =
      standby_->promote(*replicator_, clock_.now());
  clock_.advance(report.cost);
  if (trace != nullptr) {
    trace->add_span("failover", failed_at, clock_.now() - failed_at);
  }
  if (report.refused) {
    // The chain did not verify to the trusted root: the standby holds
    // state that is not provably the primary's history, and resuming it
    // would launder the tamper. The VM stays a paused crime scene.
    promotion_refused_ = true;
    ++summary.promotions_refused;
    discard_pending_outputs(summary);
    buffer_.drop_all();
    if (flight_) {
      flight_->record(clock_.now(), epoch_index_,
                      telemetry::FlightEventKind::Tamper, "promotion_refused",
                      "chain does not verify to trusted root",
                      static_cast<double>(report.promoted_generation));
    }
    CRIMES_LOG(Error, "crimes")
        << "failover ABORTED at " << to_ms(clock_.now())
        << " ms: standby refused promotion (attestation chain broken at "
        << "generation " << report.promoted_generation << ")";
    dump_postmortem("attestation-verify", summary);
    return;
  }
  failed_over_ = true;
  summary.failed_over = true;
  summary.failover_time = clock_.now() - failed_at;
  summary.promoted_generation = report.promoted_generation;
  summary.generations_rolled_back += report.generations_rolled_back;
  // Un-replicated epochs' outputs die with the primary: held, never
  // released, now discarded.
  discard_pending_outputs(summary);
  buffer_.drop_all();
  if (telemetry_) {
    telemetry_->metrics.histogram("failover.time")
        .record(static_cast<std::uint64_t>(summary.failover_time.count()));
  }
  if (flight_) {
    flight_->record(clock_.now(), epoch_index_,
                    telemetry::FlightEventKind::Failover, "promote",
                    "primary killed; standby promoted",
                    static_cast<double>(report.promoted_generation));
  }
  CRIMES_LOG(Warn, "crimes")
      << "primary killed at " << to_ms(failed_at) << " ms; standby running "
      << "from generation " << report.promoted_generation << " after "
      << to_ms(summary.failover_time) << " ms";
  dump_postmortem("failover", summary);
}

void Crimes::split_brain_promote(RunSummary& summary) {
  telemetry::TraceRecorder* trace =
      telemetry_ ? &telemetry_->trace : nullptr;
  const Nanos onset = standby_->detector().last_arrival();
  const Nanos start = clock_.now();
  const replication::StandbyHost::PromotionReport report =
      standby_->promote(*replicator_, clock_.now());
  if (report.refused) {
    // Same veto as the kill path, but here the (fenced) primary is still
    // running -- it keeps going; only the standby's promotion is off the
    // table. The veto is final: re-promoting the same unverifiable
    // stream every epoch would change nothing.
    clock_.advance(report.cost);
    promotion_refused_ = true;
    ++summary.promotions_refused;
    if (flight_) {
      flight_->record(clock_.now(), epoch_index_,
                      telemetry::FlightEventKind::Tamper, "promotion_refused",
                      "chain does not verify to trusted root",
                      static_cast<double>(report.promoted_generation));
    }
    CRIMES_LOG(Error, "crimes")
        << "split-brain promotion REFUSED at " << to_ms(clock_.now())
        << " ms: attestation chain broken at generation "
        << report.promoted_generation;
    dump_postmortem("attestation-verify", summary);
    return;
  }
  // The promoted standby closes the replication channel: this primary's
  // future commits must never reach the now-running image.
  replicator_->partition(clock_.now());
  clock_.advance(report.cost);
  if (trace != nullptr) {
    trace->add_span("failover", start, clock_.now() - start);
  }
  failed_over_ = true;
  summary.failed_over = true;
  summary.failover_time = clock_.now() - onset;
  summary.promoted_generation = report.promoted_generation;
  summary.generations_rolled_back += report.generations_rolled_back;
  // This primary is now permanently fenced: its lease has expired (the
  // authority waited it out before promoting) and renewal is refused, so
  // everything it holds -- and will hold -- can only be discarded.
  discard_pending_outputs(summary);
  if (telemetry_) {
    telemetry_->metrics.histogram("failover.time")
        .record(static_cast<std::uint64_t>(summary.failover_time.count()));
  }
  if (flight_) {
    flight_->record(clock_.now(), epoch_index_,
                    telemetry::FlightEventKind::Failover,
                    "split_brain_promote", "primary fenced",
                    static_cast<double>(report.promoted_generation));
  }
  CRIMES_LOG(Warn, "crimes")
      << "standby promoted behind a live primary (split brain) at "
      << to_ms(clock_.now()) << " ms; primary fenced at generation "
      << report.promoted_generation;
  dump_postmortem("failover", summary);
}

Nanos Crimes::observe_epoch(const EpochResult& epoch, Nanos interval,
                            RunSummary& summary) {
  Nanos cost{0};
  if (flight_) {
    const char* outcome = epoch.cow_pending           ? "cow-pending"
                          : !epoch.audit_passed       ? "audit-failed"
                          : epoch.checkpoint_committed ? "committed"
                                                       : "retries-exhausted";
    flight_->record(clock_.now(), epoch_index_,
                    telemetry::FlightEventKind::Phase, "epoch", outcome,
                    to_ms(epoch.costs.pause_total()));
    cost += costs_->flight_record_event;
    if (epoch.copy_retries > 0) {
      flight_->record(clock_.now(), epoch_index_,
                      telemetry::FlightEventKind::Fault, "transport_copy",
                      "copy retried",
                      static_cast<double>(epoch.copy_retries));
      cost += costs_->flight_record_event;
    }
  }
  if (telemetry_ && telemetry_->series) {
    telemetry_->series->sample(clock_.now());
    cost += costs_->telemetry_sample_cost(
        telemetry_->series->last_sample_metrics());
  }
  if (slo_) {
    telemetry::SloInput input;
    input.epoch = epoch_index_;
    input.pause_ms = to_ms(epoch.costs.pause_total());
    input.audit_ms = to_ms(epoch.costs.vmi);
    input.replication_lag =
        replicator_ ? static_cast<double>(replicator_->in_flight()) : 0.0;
    // Vulnerability window: Synchronous holds outputs until the commit
    // covers them (zero exposure); a released-before-covered mode
    // (configured Best Effort, or degraded into it) exposes roughly the
    // epoch that just ran plus its pause.
    input.vulnerability_ms =
        active_mode_ == SafetyMode::Synchronous
            ? 0.0
            : to_ms(interval + epoch.costs.pause_total());
    const telemetry::SloState before = slo_->state();
    const telemetry::SloState after = slo_->observe(input);
    cost += costs_->slo_eval;
    if (after == telemetry::SloState::Warn) ++summary.slo_warn_epochs;
    if (after == telemetry::SloState::Critical) {
      ++summary.slo_critical_epochs;
    }
    if (after != before && flight_) {
      flight_->record(clock_.now(), epoch_index_,
                      telemetry::FlightEventKind::Slo, to_string(after),
                      to_string(before));
    }
  }
  clock_.advance(cost);
  return cost;
}

Nanos Crimes::control_epoch(const EpochResult& epoch, Nanos interval,
                            RunSummary& summary) {
  if (!control_) return Nanos{0};
  Nanos cost = costs_->control_observe;

  control::ControlInputs in;
  in.epoch = epoch_index_;
  in.interval_ms = to_ms(interval);
  in.pause_ms = to_ms(epoch.costs.pause_total());
  if (telemetry_ && telemetry_->series) {
    if (const telemetry::HistogramSeries* hist =
            telemetry_->series->find_histogram("phase.pause_total")) {
      in.pause_p95_ms =
          static_cast<double>(hist->window_p95(config_.control.window)) / 1e6;
      in.pause_p99_ms =
          static_cast<double>(hist->window_p99(config_.control.window)) / 1e6;
    }
  }
  in.audit_ms = to_ms(epoch.costs.vmi);
  // Same formula the SLO monitor uses: Synchronous holds outputs until
  // the commit covers them, so only released-before-covered modes expose.
  in.vulnerability_ms = active_mode_ == SafetyMode::Synchronous
                            ? 0.0
                            : to_ms(interval + epoch.costs.pause_total());
  if (replicator_) {
    in.replication_lag = static_cast<double>(replicator_->in_flight());
    const Nanos stall_total = replicator_->total_stall();
    in.replication_stall_ms = to_ms(stall_total - control_stall_seen_);
    control_stall_seen_ = stall_total;
  }
  in.dirty_pages = static_cast<double>(epoch.costs.dirty_pages);
  if (checkpointer_ && checkpointer_->store() != nullptr) {
    in.store_backlog =
        static_cast<double>(checkpointer_->store()->stats().gc_backlog);
  }
  in.governor = static_cast<std::uint8_t>(governor_state());
  in.slo = slo_ ? static_cast<std::uint8_t>(slo_->state()) : 0;

  const control::ControlPlane::CycleResult result = control_->observe(in);
  if (result.cycle_ran) {
    ++summary.control_cycles;
    cost += costs_->control_cycle;
  }
  if (result.held) ++summary.control_holds;
  if (result.decisions > 0) {
    summary.control_adjustments += result.decisions;
    cost += costs_->control_apply * result.decisions;
    // Apply the new knob positions to the actuators. The interval takes
    // effect through current_interval() at the next epoch's start.
    full_sweep_every_ = control_->full_sweep_every();
    if (replicator_) {
      replicator_->set_window(
          host_capped_window(control_->replication_window()));
    }
    if (checkpointer_ && checkpointer_->store() != nullptr &&
        control_->gc_budget() > 0) {
      checkpointer_->store()->set_gc_budget(
          host_capped_gc(control_->gc_budget()));
    }
    if (flight_) {
      const auto& log = control_->decisions();
      const std::size_t first =
          log.size() >= result.decisions ? log.size() - result.decisions : 0;
      for (std::size_t i = first; i < log.size(); ++i) {
        const control::ControlDecision& d = log[i];
        flight_->record(clock_.now(), epoch_index_,
                        telemetry::FlightEventKind::Control,
                        control::to_string(d.knob), d.reason, d.to);
        cost += costs_->flight_record_event;
      }
    }
  }
  if (result.cycle_ran && telemetry_) {
    // Decision-cycle marker on the control plane's own trace lane
    // (check_trace.py validates the lane stays exclusive).
    telemetry_->trace.add_span("control_decide", clock_.now(), cost,
                               control::kControlPlaneLane);
  }
  clock_.advance(cost);
  return cost;
}

void Crimes::dump_postmortem(std::string_view reason, RunSummary& summary) {
  // Every abnormal path lands here, so flush the registered exporters
  // first: even with the recorder off (or the dump budget spent), a
  // partial run must leave complete, parseable trace/metrics files.
  if (!flight_ || postmortems_.size() >= config_.postmortem_limit) {
    if (telemetry_) (void)telemetry_->flush_exports();
    return;
  }
  // The trigger itself is evidence -- recorded first, so the dump's last
  // ring entry names the reason it exists.
  flight_->record(clock_.now(), epoch_index_,
                  telemetry::FlightEventKind::Postmortem, reason);
  telemetry::PostmortemContext ctx;
  ctx.reason = std::string(reason);
  ctx.tenant = kernel_->vm().name();
  ctx.at = clock_.now();
  ctx.epoch = epoch_index_;
  ctx.config_summary = config_summary();
  ctx.flight = flight_.get();
  ctx.series =
      telemetry_ && telemetry_->series ? telemetry_->series.get() : nullptr;
  ctx.slo = slo_.get();
  PostmortemRecord record{ctx.reason, epoch_index_,
                          telemetry::render_postmortem(ctx)};
  if (!config_.postmortem_dir.empty()) {
    const std::string path = config_.postmortem_dir + "/" + ctx.tenant + "-" +
                             ctx.reason + "-" +
                             std::to_string(epoch_index_) +
                             ".postmortem.json";
    telemetry::FileSink sink(path);
    if (sink.ok()) {
      sink.write(record.json);
    } else {
      CRIMES_LOG(Warn, "flight") << "postmortem not written: " << path;
    }
  }
  if (telemetry_) {
    // Dump marker on the flight recorder's own trace lane (the pipeline's
    // nesting invariants never see it), and a full exporter flush so even
    // an aborted run leaves parseable trace/metrics files behind.
    telemetry_->trace.add_span("postmortem_dump", clock_.now(),
                               costs_->postmortem_dump,
                               telemetry::kFlightRecorderLane);
    (void)telemetry_->flush_exports();
  }
  clock_.advance(costs_->postmortem_dump);
  ++summary.postmortems_dumped;
  CRIMES_LOG(Warn, "flight")
      << "postmortem dumped (" << ctx.reason << ") at epoch " << epoch_index_
      << ", " << to_ms(clock_.now()) << " ms";
  postmortems_.push_back(std::move(record));
}

void Crimes::collect_attestation(RunSummary& summary) {
  if (!replicator_ || !replicator_->attested()) return;
  // Per-slice deltas, like faults_injected: CloudHost sums summaries.
  summary.tampers_detected +=
      replicator_->tampers_detected() - tampers_reported_;
  tampers_reported_ = replicator_->tampers_detected();
  summary.roots_verified += replicator_->roots_verified() - roots_reported_;
  roots_reported_ = replicator_->roots_verified();
}

void Crimes::verify_store_seals(RunSummary& summary) {
  if (!checkpointer_) return;
  store::CheckpointStore* store = checkpointer_->store();
  if (store == nullptr || !config_.checkpoint.store.crypto.enabled()) return;
  if (config_.checkpoint.store.crypto.seal) {
    const store::CheckpointStore::SealAudit audit = store->audit_seals();
    clock_.advance(audit.cost);
    if (!audit.bad_digests.empty()) {
      summary.tampers_detected += audit.bad_digests.size();
      if (flight_) {
        flight_->record(clock_.now(), epoch_index_,
                        telemetry::FlightEventKind::Tamper, "store_seal_audit",
                        "sealed page fails its MAC",
                        static_cast<double>(audit.bad_digests.size()));
      }
      CRIMES_LOG(Error, "crimes")
          << "seal audit found " << audit.bad_digests.size()
          << " tampered page(s) in the checkpoint store at "
          << to_ms(clock_.now()) << " ms";
      dump_postmortem("seal-audit", summary);
    }
  }
  if (config_.checkpoint.store.crypto.attest) {
    const store::CheckpointStore::ChainAudit chain = store->verify_chain();
    clock_.advance(chain.cost);
    if (!chain.ok) {
      ++summary.tampers_detected;
      if (flight_) {
        flight_->record(clock_.now(), epoch_index_,
                        telemetry::FlightEventKind::Tamper, "store_chain",
                        chain.reason, static_cast<double>(chain.bad_index));
      }
      CRIMES_LOG(Error, "crimes")
          << "store attestation chain broken: " << chain.reason;
      dump_postmortem("attestation-verify", summary);
    }
  }
}

void Crimes::verify_journal(RunSummary& summary) {
  if (!checkpointer_ || checkpointer_->journal() == nullptr) return;
  // Without attestation, fsck only after a slice with a failure signature:
  // CloudHost calls run() once per epoch, and a clean slice has nothing to
  // verify. With attestation armed the journal is itself a trust boundary
  // -- an adversary can rewrite it without tripping anything else (the
  // framing checksum is unkeyed), so the keyed walk always runs and
  // localizes which durable record was touched.
  if (!config_.checkpoint.store.crypto.attest &&
      summary.checkpoint_failures == 0 && !summary.frozen_by_governor &&
      !summary.failed_over && !summary.primary_killed) {
    return;
  }
  const replication::StoreJournal::FsckReport report =
      checkpointer_->journal()->fsck();
  clock_.advance(costs_->journal_scan_per_record * report.records);
  if (report.ok) return;
  const bool keyed = report.reason.rfind("attestation", 0) == 0;
  if (keyed) ++summary.tampers_detected;
  if (flight_) {
    // Structured evidence: which record, at what byte offset, and why.
    flight_->record(clock_.now(), epoch_index_,
                    keyed ? telemetry::FlightEventKind::Tamper
                          : telemetry::FlightEventKind::Phase,
                    "journal_fsck", report.reason.empty() ? report.error
                                                          : report.reason,
                    static_cast<double>(report.bad_record));
  }
  CRIMES_LOG(Error, "journal")
      << "fsck failed at record " << report.bad_record << " (offset "
      << report.bad_offset << " of " << report.records << " records): "
      << (report.reason.empty() ? report.error : report.reason);
  dump_postmortem("journal-fsck", summary);
}

std::string Crimes::config_summary() const {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "scheme=%s mode=%s interval_ms=%.1f telemetry=%s governor=%s "
      "replication=%s faults=%s control=%s slo{pause_ms=%.2f,lag=%.0f,"
      "vuln_ms=%.2f,audit_ms=%.2f}",
      config_.checkpoint.label(), to_string(config_.mode),
      to_ms(current_interval()), telemetry_ ? "on" : "off",
      governor_ ? "on" : "off", config_.replication.enabled ? "on" : "off",
      injector_ ? "on" : "off", control_ ? "on" : "off",
      config_.slo.budget.pause_ms, config_.slo.budget.replication_lag,
      config_.slo.budget.vulnerability_ms, config_.slo.budget.audit_ms);
  return buf;
}

Nanos Crimes::current_interval() const {
  Nanos base = config_.checkpoint.epoch_interval;
  if (control_) {
    base = control_->interval();
  } else if (adaptive_) {
    base = adaptive_->interval();
  }
  if (host_interval_scale_ != 1.0) {
    // Shed ladder rung 1: the host stretches epochs multiplicatively on
    // top of the tenant's own tuning, so the tenant's loop keeps steering.
    base = Nanos{static_cast<Nanos::rep>(static_cast<double>(base.count()) *
                                         host_interval_scale_)};
  }
  return base;
}

void Crimes::host_downgrade(bool shed) {
  if (config_.mode != SafetyMode::Synchronous) return;  // nothing to shed
  if (shed == host_downgraded_) return;
  host_downgraded_ = shed;
  // Governor precedence: while it holds the pipeline Degraded/Frozen, the
  // output mode is its call. The flag above still records the host's
  // intent, so a later governor upgrade lands in the shed mode.
  if (governor_ && governor_->state() != fault::GovernorState::Normal) return;
  if (shed) {
    // Same semantics as the governor's downgrade: everything currently
    // held passed its audit, so releasing it is exactly Best Effort.
    buffer_.release_all(network_, clock_.now());
    apply_output_mode(SafetyMode::BestEffort);
  } else if (active_mode_ == SafetyMode::BestEffort) {
    apply_output_mode(SafetyMode::Synchronous);
  }
}

void Crimes::set_host_window_cap(std::size_t cap) {
  host_window_cap_ = cap;
  if (!replicator_) return;
  const std::size_t base =
      control_ ? control_->replication_window() : config_.replication.window;
  replicator_->set_window(host_capped_window(base));
}

void Crimes::set_host_gc_cap(std::size_t cap) {
  host_gc_cap_ = cap;
  if (!checkpointer_ || checkpointer_->store() == nullptr) return;
  const std::size_t base =
      control_ && control_->gc_budget() > 0
          ? control_->gc_budget()
          : config_.checkpoint.store.gc_generations_per_epoch;
  if (base > 0) checkpointer_->store()->set_gc_budget(host_capped_gc(base));
}

void Crimes::launch_async_deep_scan() {
  // Runs on the backup image, concurrently with the primary (section 5.3:
  // Volatility is far too slow for the synchronous path, but the stable
  // backup checkpoint can absorb it). Only the completion *time* is
  // deferred; the backup cannot change until the scan's findings are
  // consumed, so evaluating eagerly is equivalent.
  if (!volatility_initialized_) {
    // Init happens once, also off the critical path.
    volatility_initialized_ = true;
  }
  const MemoryDump dump = MemoryDump::capture(
      checkpointer_->backup(), kernel_->symbols(), kernel_->flavor(),
      "async-deep-scan", clock_.now());
  AsyncScan scan;
  scan.ready_at = clock_.now() + costs_->volatility_process_scan;
  for (const auto& row : forensics::psxview(dump)) {
    if (!row.suspicious()) continue;
    scan.findings.push_back(Finding{
        .module = "async-psxview",
        .severity = Severity::Critical,
        .description = "process '" + row.proc.name + "' (pid " +
                       std::to_string(row.proc.pid.value()) +
                       ") visible to psscan but not pslist "
                       "(deep cross-view)",
        .location = row.proc.task_va,
        .pid = row.proc.pid,
        .object = std::nullopt,
    });
  }
  async_scan_ = std::move(scan);
}

Crimes::HoneypotLog Crimes::run_honeypot(Nanos duration) {
  if (!attack_) {
    throw std::logic_error("Crimes::run_honeypot: no attack detected");
  }
  if (workload_ == nullptr) {
    throw std::logic_error("Crimes::run_honeypot: no workload");
  }
  HoneypotLog log;

  // Quarantine: every output is captured for intelligence, none delivered.
  nic_.set_sink([&log](Packet&& p) {
    log.quarantined_packets.push_back(std::move(p));
  });
  disk_.set_buffering(true);  // writes stay in the overlay

  std::unordered_set<std::string> known;
  for (const auto& p : kernel_->process_list_ground_truth()) {
    known.insert(p.name);
  }

  kernel_->vm().unpause();
  const Nanos interval = config_.checkpoint.epoch_interval;
  for (Nanos ran{0}; ran < duration; ran += interval) {
    workload_->run_epoch(clock_.now(), interval);
    clock_.advance(interval);
    ++log.epochs;
    for (const auto& p : kernel_->process_list_ground_truth()) {
      if (known.insert(p.name).second) log.new_processes.push_back(p.name);
    }
  }
  kernel_->vm().pause();
  disk_.drop_pending();
  return log;
}

void Crimes::respond(const EpochResult& epoch, Nanos epoch_start) {
  telemetry::TraceRecorder* trace =
      telemetry_ ? &telemetry_->trace : nullptr;
  AttackReport report;
  report.findings = last_findings_;
  report.timeline.epoch_start = epoch_start;
  report.timeline.detected_at = clock_.now();

  // Disk snapshot extension: in Best-Effort mode (configured, or degraded
  // into by the governor) the failed epoch's writes already hit the
  // committed image; revert to the last clean checkpoint's disk state.
  // (Synchronous mode already dropped the pending overlay, so this is a
  // no-op there.)
  if (active_mode_ == SafetyMode::BestEffort) {
    disk_.restore_committed(disk_checkpoint_);
  }

  // Snapshot the evidence before anything else disturbs it. (Reserve all
  // three slots up front: references into the vector are taken below.)
  report.dumps.reserve(3);
  report.dumps.push_back(MemoryDump::capture(
      checkpointer_->backup(), kernel_->symbols(), kernel_->flavor(),
      "last-clean-checkpoint", clock_.now()));
  report.dumps.push_back(MemoryDump::capture(
      kernel_->vm(), kernel_->symbols(), kernel_->flavor(), "audit-fail",
      clock_.now()));
  const MemoryDump& clean_dump = report.dumps[0];
  const MemoryDump& bad_dump = report.dumps[1];

  // Rollback + replay for canary findings: pinpoint the exact write.
  const Finding* canary_finding = nullptr;
  for (const auto& f : report.findings) {
    if (f.module == "canary-scan" && f.severity == Severity::Critical) {
      canary_finding = &f;
      break;
    }
  }
  if (canary_finding != nullptr && config_.rollback_replay &&
      config_.record_execution) {
    recorder_.disable();  // do not re-record the replayed writes
    const std::uint64_t expected =
        kernel_->heap().canary_key() ^ canary_finding->location.value();
    {
      CRIMES_TRACE_SPAN(trace, "replay");
      report.pinpoint = replay_->pinpoint_canary_corruption(
          recorder_.ops(), canary_finding->location, expected);
    }
    report.timeline.replay_done_at = clock_.now();
    report.dumps.push_back(MemoryDump::capture(
        kernel_->vm(), kernel_->symbols(), kernel_->flavor(),
        "attack-instant", clock_.now()));
  }

  // Volatility-style postmortem.
  if (config_.forensics) {
    CRIMES_TRACE_SPAN(trace, "forensics");
    if (!volatility_initialized_) {
      clock_.advance(costs_->volatility_init);
      volatility_initialized_ = true;
    }
    forensics::ForensicReport text("attack on domain " + kernel_->vm().name());

    std::string detections;
    for (const auto& f : report.findings) {
      detections += std::string(to_string(f.severity)) + " [" + f.module +
                    "] " + f.description + "\n";
    }
    text.add_section("Detections", detections);

    for (const auto& f : report.findings) {
      if (f.module == "malware-scan" || f.module == "hidden-process") {
        analyze_malware(text, clean_dump, bad_dump, f);
      } else if (f.module == "canary-scan") {
        analyze_overflow(text, bad_dump, f);
        if (report.pinpoint) {
          const auto& pp = *report.pinpoint;
          text.add_section(
              "Replay pinpoint",
              pp.found
                  ? "corrupting write at instruction " +
                        std::to_string(pp.instr_index) + ", VA " +
                        to_hex(pp.write_va.value()) + ", " +
                        std::to_string(pp.write_len) + " bytes (replayed " +
                        std::to_string(pp.ops_replayed) + " ops)"
                  : "replay did not reproduce the corruption");
        }
      } else if (f.module == "syscall-integrity") {
        const auto diff = forensics::DumpDiff::compute(clean_dump, bad_dump);
        clock_.advance(costs_->volatility_plugin_base);
        text.add_section("Syscall table diff", forensics::render_diff(diff));
      }
    }

    // Always include the cross-view: it is the paper's rootkit safety net.
    clock_.advance(costs_->volatility_process_scan);
    text.add_section("psxview",
                     forensics::render_psxview(forensics::psxview(bad_dump)));

    // Shellcode sweep and event timeline round out the report.
    clock_.advance(costs_->volatility_plugin_base);
    const auto shellcode = forensics::malfind(bad_dump);
    if (!shellcode.empty()) {
      std::string body;
      for (const auto& hit : shellcode) {
        body += to_hex(hit.va.value()) + "  " +
                std::to_string(hit.length) + " bytes  " + hit.reason + "\n";
      }
      text.add_section("malfind", body);
    }
    {
      std::string body;
      for (const auto& event : forensics::timeline(bad_dump)) {
        body += std::to_string(event.at_ns / 1'000'000) + " ms  " +
                event.description + "\n";
      }
      text.add_section("timeline", body);
    }

    report.forensic_text = text.to_string();
    report.timeline.analysis_done_at = clock_.now();
  }

  // Persist the snapshots for offline investigators ("tens of seconds for
  // large VMs" -- section 5.5).
  if (config_.persist_checkpoints) {
    std::size_t pages = 0;
    for (const auto& d : report.dumps) pages += d.page_count();
    clock_.advance(costs_->disk_write_per_page * pages);
    report.timeline.persisted_at = clock_.now();
  }

  attack_ = std::move(report);
  (void)epoch;
}

void Crimes::analyze_malware(forensics::ForensicReport& report,
                             const MemoryDump& clean, const MemoryDump& bad,
                             const Finding& finding) {
  if (!finding.pid) return;
  const Pid pid = *finding.pid;

  clock_.advance(costs_->volatility_plugin_base);  // procdump
  if (auto dump = forensics::procdump(bad, pid)) {
    report.add_table(
        "Malware detected",
        {"Name", "PID", "Start"},
        {{dump->proc.name, std::to_string(pid.value()),
          std::to_string(dump->proc.start_time_ns / 1'000'000) + " ms"}});
    report.add_section("procdump",
                       "extracted " + std::to_string(dump->image.size()) +
                           " bytes of process image for sandbox analysis");
  }

  // netscan + handles on both checkpoints, then diff (section 5.6).
  clock_.advance(costs_->volatility_plugin_base * 2);
  const auto diff = forensics::DumpDiff::compute(clean, bad);
  report.add_section("Open Sockets (new since last clean checkpoint)",
                     forensics::render_netscan(diff.new_sockets));
  report.add_section("Open File Handles (new since last clean checkpoint)",
                     forensics::render_handles(diff.new_handles));
}

void Crimes::analyze_overflow(forensics::ForensicReport& report,
                              const MemoryDump& bad, const Finding& finding) {
  // linux_proc_map + linux_dump_map: extract the address space around the
  // overflowed object (~5 s in the paper).
  clock_.advance(costs_->volatility_dump_map);
  std::string body = "overflowed object at VA " +
                     to_hex(finding.object.value_or(Vaddr{0}).value()) +
                     ", canary at VA " +
                     to_hex(finding.location.value()) + "\n";
  // Find the owning process via pslist (single-address-space guest: report
  // every user process mapping the heap).
  for (const auto& p : forensics::pslist(bad)) {
    const auto regions = forensics::proc_maps(bad, p.pid);
    for (const auto& r : regions) {
      if (finding.location.value() >= r.start.value() &&
          finding.location.value() < r.end.value()) {
        body += "mapped in pid " + std::to_string(p.pid.value()) + " (" +
                p.name + ") region " + r.label + "\n";
        const auto bytes = forensics::dump_map(bad, r, 4096);
        body += "dumped " + std::to_string(bytes.size()) +
                " bytes of the region for offline analysis\n";
        break;
      }
    }
  }
  report.add_section("linux_dump_map", body);
}

}  // namespace crimes
