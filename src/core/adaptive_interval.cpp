#include "core/adaptive_interval.h"

#include "telemetry/telemetry.h"

#include <algorithm>
#include <cmath>

namespace crimes {

void AdaptiveIntervalController::set_telemetry(
    telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    interval_gauge_ = nullptr;
    pause_gauge_ = nullptr;
    adjustments_counter_ = nullptr;
    return;
  }
  interval_gauge_ = &telemetry->metrics.gauge("adaptive.interval_ms");
  pause_gauge_ = &telemetry->metrics.gauge("adaptive.smoothed_pause_ms");
  adjustments_counter_ = &telemetry->metrics.counter("adaptive.adjustments");
  interval_gauge_->set(to_ms(interval_));
}

Nanos AdaptiveIntervalController::observe(const PhaseCosts& costs) {
  if (!config_.enabled) return interval_;

  const double pause_ms = to_ms(costs.pause_total());
  smoothed_pause_ms_ = smoothed_pause_ms_ == 0.0
                           ? pause_ms
                           : config_.smoothing * pause_ms +
                                 (1.0 - config_.smoothing) *
                                     smoothed_pause_ms_;

  // The interval at which the smoothed pause would hit the target ratio.
  // (Pause grows sub-linearly with the interval -- dirty sets saturate --
  // so stepping toward this point converges rather than oscillates.)
  const double ideal_ms = smoothed_pause_ms_ / config_.target_overhead;
  const double current_ms = to_ms(interval_);
  const double step =
      std::clamp(ideal_ms / current_ms, 1.0 / config_.max_step,
                 config_.max_step);
  const Nanos next = clamp(millis(current_ms * step));
  if (next != interval_) {
    interval_ = next;
    ++adjustments_;
    if (adjustments_counter_ != nullptr) adjustments_counter_->add();
  }
  if (interval_gauge_ != nullptr) {
    interval_gauge_->set(to_ms(interval_));
    pause_gauge_->set(smoothed_pause_ms_);
  }
  return interval_;
}

}  // namespace crimes
