// Adaptive epoch-interval controller.
//
// The paper leaves the epoch interval as a per-VM tunable ("set depending
// on the applications that run on the VM and the level of security the VM
// requires", section 3.1): CPU-bound VMs want long epochs to amortize
// pause cost; latency-bound VMs want short ones to bound buffering delay.
// This controller automates that guidance: after each epoch it nudges the
// interval so the observed *pause overhead ratio* (pause / interval)
// tracks a target, clamped to a [min, max] window that encodes the VM's
// security requirement (the scan cadence never degrades past max).
#pragma once

#include "checkpoint/checkpointer.h"
#include "common/sim_clock.h"

namespace crimes {

namespace telemetry {
struct Telemetry;
class Counter;
class Gauge;
}  // namespace telemetry

struct AdaptiveIntervalConfig {
  bool enabled = false;
  Nanos min_interval = millis(20);
  Nanos max_interval = millis(200);
  // Target pause/interval ratio, e.g. 0.05 = spend at most ~5% of time
  // suspended.
  double target_overhead = 0.05;
  // Exponential smoothing of the observed pause (0 = no memory).
  double smoothing = 0.5;
  // Per-epoch multiplicative step bound, to stay stable under bursts.
  double max_step = 1.5;
};

class AdaptiveIntervalController {
 public:
  AdaptiveIntervalController(AdaptiveIntervalConfig config, Nanos initial)
      : config_(config), interval_(clamp(initial)), smoothed_pause_ms_(0) {}

  [[nodiscard]] Nanos interval() const { return interval_; }
  [[nodiscard]] const AdaptiveIntervalConfig& config() const {
    return config_;
  }

  // Feeds one epoch's observed pause; returns the interval to use for the
  // next epoch.
  Nanos observe(const PhaseCosts& costs);

  [[nodiscard]] std::size_t adjustments() const { return adjustments_; }

  // Publishes the controller's reaction each epoch: adaptive.interval_ms /
  // adaptive.smoothed_pause_ms gauges and an adaptive.adjustments counter,
  // so traces show *why* epoch spans change length mid-run.
  void set_telemetry(telemetry::Telemetry* telemetry);

 private:
  [[nodiscard]] Nanos clamp(Nanos interval) const {
    if (interval < config_.min_interval) return config_.min_interval;
    if (interval > config_.max_interval) return config_.max_interval;
    return interval;
  }

  AdaptiveIntervalConfig config_;
  Nanos interval_;
  double smoothed_pause_ms_;
  std::size_t adjustments_ = 0;
  telemetry::Gauge* interval_gauge_ = nullptr;
  telemetry::Gauge* pause_gauge_ = nullptr;
  telemetry::Counter* adjustments_counter_ = nullptr;
};

}  // namespace crimes
