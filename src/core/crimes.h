// The CRIMES framework core (Figure 1): speculative execution with output
// buffering, per-epoch security audits, and the Analyzer's attack response
// (rollback, replay pinpointing, Volatility-style forensics, report).
//
// Typical use:
//
//   Hypervisor hv;
//   Vm& vm = hv.create_domain("tenant", cfg.page_count);
//   GuestKernel kernel(vm, cfg);
//   kernel.boot();
//
//   Crimes crimes(hv, kernel, CrimesConfig{...});
//   crimes.add_module(std::make_unique<CanaryScanModule>());
//   OverflowWorkload app(kernel, {});
//   crimes.set_workload(&app);
//   crimes.initialize();
//   RunSummary summary = crimes.run(millis(2000));
//   if (summary.attack_detected) std::cout << crimes.attack()->forensic_text;
#pragma once

#include "checkpoint/checkpointer.h"
#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "control/control_plane.h"
#include "core/adaptive_interval.h"
#include "detect/detector.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/safety_governor.h"
#include "forensics/memory_dump.h"
#include "forensics/report.h"
#include "guestos/guest_kernel.h"
#include "net/output_buffer.h"
#include "net/virtual_disk.h"
#include "net/virtual_nic.h"
#include "replay/recorder.h"
#include "replay/replay_engine.h"
#include "replication/replicator.h"
#include "replication/standby.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/slo.h"
#include "telemetry/telemetry.h"
#include "vmi/vmi_session.h"
#include "workload/workload.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace crimes {

// Section 3.1: Synchronous Safety buffers all outputs until the audit
// passes (zero window of vulnerability); Best Effort scans at the same
// cadence but releases outputs immediately; Disabled is the unprotected
// baseline used for normalization.
enum class SafetyMode { Synchronous, BestEffort, Disabled };

[[nodiscard]] const char* to_string(SafetyMode mode);

struct CrimesConfig {
  CheckpointConfig checkpoint = CheckpointConfig::full();
  SafetyMode mode = SafetyMode::Synchronous;
  bool record_execution = true;   // keep a write log for replay
  bool rollback_replay = true;    // pinpoint canary corruptions via replay
  bool forensics = true;          // run the Volatility-style analysis
  bool persist_checkpoints = true;  // write snapshots to disk afterwards
  std::size_t disk_blocks = 4096;
  // Extension (section 5.3 future work): every N committed epochs, run a
  // Volatility-grade cross-view (psscan-based psxview) *asynchronously on
  // the backup checkpoint* while the primary keeps running. Catches
  // rootkits thorough enough to evade the cheap online scans, at the cost
  // of a detection lag of roughly the deep-scan duration. 0 = disabled.
  std::size_t async_deep_scan_every = 0;
  // Extension: automate the paper's per-workload epoch-interval tuning
  // (section 3.1). When enabled, the interval floats inside
  // [min_interval, max_interval] tracking a target pause-overhead ratio.
  AdaptiveIntervalConfig adaptive;
  // Telemetry layer: per-epoch phase spans (suspend/dirty_scan/audit/map/
  // copy/resume, scan:<module>, commit/rollback/replay, buffer_release) on
  // a TraceRecorder plus a MetricsRegistry of phase histograms, exportable
  // as Chrome trace_event JSON / metrics JSONL (telemetry/export.h). Off by
  // default: the disabled path allocates nothing per epoch.
  bool telemetry = false;
  // Resilience layer (src/fault, DESIGN.md section 9). `faults` is the
  // deterministic fault plan to inject (empty = no injection; a non-empty
  // plan also forces checkpoint.verify_backup on). `governor` tunes the
  // SafetyGovernor that downgrades Synchronous -> Best Effort under
  // sustained checkpoint failure, upgrades back after clean epochs, and
  // freezes the VM when the checkpoint path is lost for good.
  // `audit_policy` sets the per-module audit deadline behind scan-module
  // quarantine.
  fault::FaultPlan faults;
  fault::GovernorConfig governor;
  AuditPolicy audit_policy;
  // Standby replication & crash recovery (DESIGN.md section 11). When
  // enabled, every committed generation streams to a simulated standby
  // host; output release additionally waits for the standby's ack and a
  // valid fencing lease, a heartbeat detector drives epoch-fenced
  // failover, and -- if checkpoint.store.journal is also set -- the store
  // journal makes the primary's snapshot history crash-recoverable.
  replication::ReplicationConfig replication;
  // Observability layer (DESIGN.md section 13). The flight recorder and
  // SLO monitor are always-on by default: both preallocate at
  // initialize() and their per-epoch work is allocation-free, so they ride
  // along even where the `telemetry` knob stays off (like RunSummary's
  // pause histogram does). The time-series engine needs the registry and
  // therefore follows the `telemetry` knob.
  bool flight_recorder = true;
  std::size_t flight_capacity = 1024;
  telemetry::SloConfig slo;
  telemetry::TimeSeriesConfig timeseries;
  // Closed-loop control plane (src/control, DESIGN.md section 14). Off by
  // default -- no ControlPlane is built and the per-epoch path costs
  // nothing. When enabled it implies `telemetry` (the policies read
  // windowed percentiles from the time-series engine) and subsumes
  // `adaptive` (its interval policy wins over AdaptiveIntervalController).
  control::ControlConfig control;
  // Postmortem destination: when non-empty, every dump also writes
  // `<dir>/<tenant>-<reason>-<epoch>.postmortem.json`. In-memory records
  // are kept either way (Crimes::postmortems()).
  std::string postmortem_dir;
  // Dumps per Crimes instance: a fault storm must not bury the run under
  // one postmortem per failed epoch.
  std::size_t postmortem_limit = 4;
};

// Timeline of an attack response, in virtual time (Figure 8).
struct AttackTimeline {
  Nanos epoch_start{0};        // start of the epoch containing the attack
  Nanos detected_at{0};        // audit failure (includes suspend+scan)
  Nanos replay_done_at{0};     // rollback+replay finished (0 = not run)
  Nanos analysis_done_at{0};   // forensic report complete
  Nanos persisted_at{0};       // checkpoints written to disk (0 = not run)
};

struct AttackReport {
  std::vector<Finding> findings;
  std::optional<PinpointResult> pinpoint;
  std::string forensic_text;
  AttackTimeline timeline;
  // Snapshots around the attack: [0] last clean checkpoint, [1] end of the
  // failed epoch, [2] the attack instant (present only after replay).
  std::vector<MemoryDump> dumps;
};

struct RunSummary {
  std::string scheme;
  Nanos work_time{0};          // guest execution time (epochs x interval)
  Nanos total_pause{0};        // time spent suspended for checkpoints
  Nanos max_pause{0};          // worst single-epoch pause
  std::size_t epochs = 0;
  std::size_t checkpoints = 0;
  bool attack_detected = false;
  PhaseCosts total_costs;      // summed over all checkpoints
  std::size_t total_dirty_pages = 0;
  // Per-epoch pause distribution (nanoseconds), always collected: figure
  // benches report tail pause (p95/p99), not just the average.
  telemetry::HistogramSnapshot pause_histogram;

  // --- Resilience layer (src/fault): all zero unless faults were injected.
  std::size_t checkpoint_failures = 0;  // epochs whose copy exhausted retries
  std::size_t copy_retries = 0;
  std::uint64_t faults_injected = 0;    // injector decisions that fired
  std::size_t governor_downgrades = 0;  // Synchronous -> Best Effort
  std::size_t governor_upgrades = 0;    // back to Synchronous
  std::size_t degraded_epochs = 0;      // epochs spent in degraded mode
  bool frozen_by_governor = false;      // checkpoint path lost; VM paused
  // Virtual time burnt on failure handling (wasted attempts, backoff,
  // undo-log restores, rereads, respawns); a subset of total_pause.
  Nanos recovery_time{0};
  std::vector<std::string> quarantined_modules;
  // Checkpoint-store work (generation append + GC), charged after resume
  // -- lengthens epochs, not pauses. Zero unless checkpoint.store.enabled.
  Nanos store_time{0};

  // --- Speculative CoW (checkpoint.speculative_cow): all zero otherwise.
  std::size_t cow_first_touches = 0;  // guest writes that forced a copy
  Nanos cow_drain_time{0};        // background drain, overlapped with epochs
  Nanos cow_first_touch_time{0};  // subset of drain: first-touch traps
  // Drain time that outlived its overlap window and stalled the commit
  // barrier. Not part of total_pause (the VM is running, only outputs
  // wait); add it to total_pause for end-to-end overhead comparisons.
  Nanos cow_commit_stall{0};

  // --- Replication & failover (src/replication): all zero/false unless
  // CrimesConfig::replication.enabled.
  Nanos replication_stall{0};  // backpressure waits (window full)
  std::size_t replicated_generations = 0;
  std::size_t replication_dropped = 0;  // commits lost to a partitioned link
  bool primary_killed = false;          // injected host failure fired
  bool failed_over = false;             // the standby promoted
  Nanos failover_time{0};  // failure onset -> standby running
  std::uint64_t promoted_generation = 0;
  std::size_t generations_rolled_back = 0;  // partially replicated, undone
  // Held outputs of un-replicated (or fenced) epochs, discarded unreleased.
  std::size_t outputs_discarded = 0;
  // Commits whose outputs were blocked by an expired/invalidated lease.
  std::size_t fenced_epochs = 0;

  // --- Attested storage & replication (src/crypto, DESIGN.md section 15):
  // all zero unless checkpoint.store.crypto is armed. Per-slice deltas,
  // like faults_injected.
  std::uint64_t tampers_detected = 0;   // verify failures, any boundary
  std::uint64_t roots_verified = 0;     // attestation root checks that ran
  std::size_t promotions_refused = 0;   // failovers vetoed by the chain

  // --- Observability (src/telemetry, DESIGN.md section 13): epochs the
  // SLO monitor spent in each degraded health state, and postmortems the
  // flight recorder froze. Per-slice counts, like faults_injected.
  std::size_t slo_warn_epochs = 0;
  std::size_t slo_critical_epochs = 0;
  std::size_t postmortems_dumped = 0;

  // --- Control plane (src/control, DESIGN.md section 14): all zero unless
  // CrimesConfig::control.enabled.
  std::size_t control_cycles = 0;       // policy evaluations that ran
  std::size_t control_adjustments = 0;  // knob moves applied
  std::size_t control_holds = 0;        // cycles preempted by the governor
  std::size_t control_full_sweeps = 0;  // audits run without a ScanPlan

  // --- Host overload (src/cloud host arbiter): epochs executed with
  // protection paused by the shed ladder's top rung -- the workload ran,
  // outputs stayed held, no checkpoint/audit work was charged. Zero
  // unless a CloudHost with an enabled HostConfig shed this tenant.
  std::size_t host_paused_epochs = 0;

  [[nodiscard]] double normalized_runtime() const {
    if (work_time.count() == 0) return 1.0;
    return to_ms(work_time + total_pause) / to_ms(work_time);
  }
  [[nodiscard]] double avg_pause_ms() const {
    return checkpoints == 0
               ? 0.0
               : to_ms(total_pause) / static_cast<double>(checkpoints);
  }
  [[nodiscard]] double avg_dirty_pages() const {
    return checkpoints == 0 ? 0.0
                            : static_cast<double>(total_dirty_pages) /
                                  static_cast<double>(checkpoints);
  }
  [[nodiscard]] double max_pause_ms() const { return to_ms(max_pause); }
  // Tail pause from the log2 histogram: accurate to a factor of 2,
  // clamped to the exact max.
  [[nodiscard]] double p50_pause_ms() const {
    return static_cast<double>(pause_histogram.p50()) / 1e6;
  }
  [[nodiscard]] double p95_pause_ms() const {
    return static_cast<double>(pause_histogram.p95()) / 1e6;
  }
  [[nodiscard]] double p99_pause_ms() const {
    return static_cast<double>(pause_histogram.p99()) / 1e6;
  }
  [[nodiscard]] PhaseCosts avg_costs() const;
};

class Crimes {
 public:
  Crimes(Hypervisor& hypervisor, GuestKernel& kernel, CrimesConfig config,
         const CostModel& costs = CostModel::defaults());

  // --- Assembly (before initialize()) -----------------------------------
  void add_module(std::unique_ptr<ScanModule> module);
  void set_workload(Workload* workload) { workload_ = workload; }

  // Wires the NIC/disk according to the SafetyMode, brings up VMI
  // (init + preprocess), and initializes the Checkpointer.
  void initialize();

  // --- Execution ----------------------------------------------------------
  // Runs epochs until the workload finishes, `max_work_time` of guest time
  // has executed, or an attack is detected (which triggers the full
  // response pipeline before returning).
  RunSummary run(Nanos max_work_time);

  [[nodiscard]] const AttackReport* attack() const {
    return attack_ ? &*attack_ : nullptr;
  }

  // Extension (section 6): instead of keeping the attacked VM frozen,
  // convert it into a quarantined honeypot -- resume execution with every
  // output captured (never delivered) and the process list monitored each
  // epoch -- to gather intelligence about the attacker's next moves.
  // Requires a detected attack. Leaves the VM Paused again afterwards.
  struct HoneypotLog {
    std::vector<Packet> quarantined_packets;
    std::vector<std::string> new_processes;
    std::size_t epochs = 0;
  };
  HoneypotLog run_honeypot(Nanos duration);

  // --- Accessors ------------------------------------------------------------
  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] VirtualNic& nic() { return nic_; }
  [[nodiscard]] ExternalNetwork& network() { return network_; }
  [[nodiscard]] OutputBuffer& buffer() { return buffer_; }
  [[nodiscard]] VirtualDisk& disk() { return disk_; }
  [[nodiscard]] VmiSession& vmi();
  [[nodiscard]] Detector& detector() { return detector_; }
  [[nodiscard]] Checkpointer& checkpointer();
  [[nodiscard]] ExecutionRecorder& recorder() { return recorder_; }
  [[nodiscard]] const CrimesConfig& config() const { return config_; }
  [[nodiscard]] GuestKernel& kernel() { return *kernel_; }
  // The epoch interval currently in force (differs from the configured one
  // only when the control plane or adaptive tuning is enabled; the control
  // plane's interval policy wins when both are on).
  [[nodiscard]] Nanos current_interval() const;
  [[nodiscard]] std::size_t interval_adjustments() const {
    return adaptive_ ? adaptive_->adjustments() : 0;
  }
  // The control plane, or nullptr when CrimesConfig::control is off.
  [[nodiscard]] control::ControlPlane* control_plane() {
    return control_.get();
  }
  [[nodiscard]] const control::ControlPlane* control_plane() const {
    return control_.get();
  }
  // The telemetry bundle, or nullptr when CrimesConfig::telemetry is off.
  [[nodiscard]] telemetry::Telemetry* telemetry() {
    return telemetry_.get();
  }
  [[nodiscard]] const telemetry::Telemetry* telemetry() const {
    return telemetry_.get();
  }
  // The fault injector, or nullptr when CrimesConfig::faults is empty.
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return injector_.get();
  }
  // The governor's view of the pipeline; Normal when no governor runs.
  [[nodiscard]] fault::GovernorState governor_state() const {
    return governor_ ? governor_->state() : fault::GovernorState::Normal;
  }
  // The SafetyMode currently in force: differs from config().mode while
  // the governor holds the pipeline in degraded Best Effort.
  [[nodiscard]] SafetyMode active_mode() const { return active_mode_; }

  // --- Host-arbiter hooks (CloudHost overload subsystem) ----------------
  // The shedding ladder and cross-tenant arbiter actuate a tenant only
  // through these; all of them are cheap, idempotent, and inert at their
  // defaults, so a host without an enabled HostConfig never perturbs the
  // pipeline. The SafetyGovernor keeps precedence: mode changes no-op
  // while it holds the run, and CloudHost never calls these on a tenant
  // whose governor is non-Normal.
  //
  // Rung 1: stretch (or restore, scale=1.0) the epoch interval. Applied
  // multiplicatively on top of whatever the control plane / adaptive
  // controller decided, so the tenant's own loop keeps steering.
  void set_host_interval_scale(double scale) { host_interval_scale_ = scale; }
  [[nodiscard]] double host_interval_scale() const {
    return host_interval_scale_;
  }
  // Rung 2: downgrade Synchronous -> BestEffort (audited outputs release
  // immediately, exactly the governor's degraded semantics) and back.
  void host_downgrade(bool shed);
  [[nodiscard]] bool host_downgraded() const { return host_downgraded_; }
  // Rung 3: pause protection with outputs held -- epochs still execute,
  // but the checkpoint/audit pipeline is skipped and Synchronous outputs
  // accumulate in the buffer until protection resumes and a checkpoint
  // covers them. Nothing unaudited ever escapes.
  void host_pause_protection(bool paused) {
    host_protection_paused_ = paused;
  }
  [[nodiscard]] bool host_protection_paused() const {
    return host_protection_paused_;
  }
  // Rack-correlated failover injection: the next epoch observes a primary
  // kill exactly like FaultKind::PrimaryKill (no-op without replication).
  void host_kill_primary() { host_kill_pending_ = true; }
  // Cross-tenant trades: cap the replication in-flight window / store GC
  // budget below the tenant's own (control-plane) position; 0 lifts the
  // cap and restores the tenant's setting.
  void set_host_window_cap(std::size_t cap);
  void set_host_gc_cap(std::size_t cap);
  [[nodiscard]] std::size_t host_window_cap() const {
    return host_window_cap_;
  }
  [[nodiscard]] std::size_t host_gc_cap() const { return host_gc_cap_; }

  // Observability layer. The flight recorder exists unless
  // config().flight_recorder was turned off; the SLO monitor unless
  // config().slo.enabled was (or the mode is Disabled -- no pipeline, no
  // contract to monitor).
  [[nodiscard]] telemetry::FlightRecorder* flight_recorder() {
    return flight_.get();
  }
  [[nodiscard]] telemetry::SloMonitor* slo_monitor() { return slo_.get(); }
  [[nodiscard]] const telemetry::SloMonitor* slo_monitor() const {
    return slo_.get();
  }
  // Postmortems dumped so far (bounded by config().postmortem_limit);
  // each holds the rendered JSON, so tests and benches can validate a dump
  // without going through the filesystem.
  struct PostmortemRecord {
    std::string reason;
    std::uint64_t epoch = 0;
    std::string json;
  };
  [[nodiscard]] const std::vector<PostmortemRecord>& postmortems() const {
    return postmortems_;
  }
  // One-line config snapshot embedded in every postmortem.
  [[nodiscard]] std::string config_summary() const;

  // Replication layer; nullptr unless config().replication.enabled.
  [[nodiscard]] replication::StandbyHost* standby() { return standby_.get(); }
  [[nodiscard]] replication::Replicator* replicator() {
    return replicator_.get();
  }
  // The primary's current fencing lease (held() false when replication is
  // off or the lease was never granted).
  [[nodiscard]] const replication::Lease& lease() const { return lease_; }
  [[nodiscard]] bool failed_over() const { return failed_over_; }
  [[nodiscard]] bool primary_killed() const { return primary_killed_; }
  // Committed outputs waiting on the standby's acknowledgement.
  [[nodiscard]] std::size_t pending_release_count() const {
    std::size_t n = 0;
    for (const auto& entry : pending_release_) n += entry.packets.size();
    return n;
  }

 private:
  [[nodiscard]] AuditResult run_audit(std::span<const Pfn> dirty,
                                      Nanos audit_start);
  // Wires the NIC sink and disk buffering for `mode`; the governor calls
  // it again mid-run to downgrade/upgrade the output plumbing.
  void apply_output_mode(SafetyMode mode);
  // Applies a governor transition; returns true when the run must stop
  // (Freeze).
  [[nodiscard]] bool apply_governor_action(fault::SafetyGovernor::Action
                                               action,
                                           RunSummary& summary);
  void respond(const EpochResult& epoch, Nanos epoch_start);
  // Commit barrier for the speculative CoW drain stashed by the previous
  // epoch: completes the drain (overlapped with the epoch that just ran),
  // releases or re-holds the stashed outputs, and feeds the governor.
  // Returns false when the governor froze the pipeline.
  [[nodiscard]] bool finish_cow_commit(RunSummary& summary);
  // Replication helpers (all no-ops unless the replicator exists). `held`
  // is the committed epoch's output set (captured at protect time on the
  // CoW path, so the draining epoch's packets never mix with the next
  // epoch's).
  void replicate_commit(const EpochResult& epoch, RunSummary& summary,
                        std::vector<Packet> held);
  void release_acked_outputs(RunSummary& summary);
  void discard_pending_outputs(RunSummary& summary);
  // Kill-path failover: the primary host died at clock_.now(); waits out
  // suspicion + lease expiry, promotes the standby, records telemetry.
  void fail_over(RunSummary& summary, Nanos failed_at);
  // Split-brain-path promotion: the standby, unheard-from, promotes while
  // the (fenced) primary keeps running.
  void split_brain_promote(RunSummary& summary);
  // Observability helpers. observe_epoch feeds the flight recorder, the
  // time-series engine and the SLO monitor at the epoch boundary and
  // charges the (tiny) virtual cost of that work into the pause
  // accounting; dump_postmortem freezes the evidence (ring + series +
  // SLO history + config) on the abnormal paths.
  Nanos observe_epoch(const EpochResult& epoch, Nanos interval,
                      RunSummary& summary);
  // Control-plane step at the epoch boundary (after observe_epoch, so the
  // inputs include this epoch's telemetry sample): records inputs, runs
  // the cycle when due, applies decisions to the actuators, and returns
  // the virtual cost to charge into the pause (PhaseCosts::control).
  Nanos control_epoch(const EpochResult& epoch, Nanos interval,
                      RunSummary& summary);
  void dump_postmortem(std::string_view reason, RunSummary& summary);
  // End-of-run journal verification: fsck after any failure signature (a
  // detected tamper counts as one when attestation is armed); a failed
  // fsck is itself a postmortem trigger.
  void verify_journal(RunSummary& summary);
  // End-of-run storage sweep (DESIGN.md section 15): re-MAC every sealed
  // page and re-verify the attestation chain at the store boundary. Every
  // detection becomes flight-recorder evidence and a postmortem.
  void verify_store_seals(RunSummary& summary);
  // Folds the replicator's attestation counters into the summary (and the
  // flight recorder, once per detection).
  void collect_attestation(RunSummary& summary);
  void analyze_malware(forensics::ForensicReport& report,
                       const MemoryDump& clean, const MemoryDump& bad,
                       const Finding& finding);
  void analyze_overflow(forensics::ForensicReport& report,
                        const MemoryDump& bad, const Finding& finding);

  Hypervisor* hypervisor_;
  GuestKernel* kernel_;
  CrimesConfig config_;
  const CostModel* costs_;

  SimClock clock_;
  VirtualNic nic_;
  ExternalNetwork network_;
  OutputBuffer buffer_;
  VirtualDisk disk_;
  Detector detector_;
  ExecutionRecorder recorder_;
  std::unique_ptr<VmiSession> vmi_;
  std::unique_ptr<Checkpointer> checkpointer_;
  std::unique_ptr<ReplayEngine> replay_;
  std::optional<AdaptiveIntervalController> adaptive_;
  std::unique_ptr<telemetry::Telemetry> telemetry_;

  // Control plane (persists across run() slices like the governor: knob
  // positions and hysteresis state must survive CloudHost's one-epoch
  // slices). full_sweep_every_ mirrors the plane's scan-schedule knob so
  // run_audit can consult it without a cross-module call per epoch.
  std::unique_ptr<control::ControlPlane> control_;
  std::size_t full_sweep_every_ = 0;
  bool last_audit_full_sweep_ = false;
  Nanos control_stall_seen_{0};  // replication stall already fed to the plane

  // Observability state (persists across run() slices, like the
  // governor's: CloudHost drives tenants one epoch at a time and the SLO
  // windows must not reset at slice boundaries).
  std::unique_ptr<telemetry::FlightRecorder> flight_;
  std::unique_ptr<telemetry::SloMonitor> slo_;
  std::vector<PostmortemRecord> postmortems_;

  // Resilience state. All of it persists across run() calls: CloudHost
  // drives tenants one epoch-sized run() at a time, and the governor's
  // failure streaks must survive those slice boundaries.
  std::unique_ptr<fault::FaultInjector> injector_;
  std::optional<fault::SafetyGovernor> governor_;
  SafetyMode active_mode_ = SafetyMode::Synchronous;
  std::size_t epoch_index_ = 0;
  std::uint64_t faults_reported_ = 0;  // injector total already summarized

  // Host-arbiter state (persists across run() slices like the governor's;
  // all inert at defaults -- the no-CloudHost path never reads past them).
  double host_interval_scale_ = 1.0;
  bool host_downgraded_ = false;
  bool host_protection_paused_ = false;
  bool host_kill_pending_ = false;
  std::size_t host_window_cap_ = 0;  // 0 = uncapped
  std::size_t host_gc_cap_ = 0;      // 0 = uncapped
  [[nodiscard]] std::size_t host_capped_window(std::size_t window) const {
    return host_window_cap_ == 0 ? window
                                 : std::min(window, host_window_cap_);
  }
  [[nodiscard]] std::size_t host_capped_gc(std::size_t budget) const {
    return host_gc_cap_ == 0 ? budget : std::min(budget, host_gc_cap_);
  }

  // Attestation accounting (per-slice deltas, like faults_reported_), plus
  // the flight-recorder's high-water mark so each detection is recorded as
  // evidence exactly once.
  std::uint64_t tampers_reported_ = 0;
  std::uint64_t roots_reported_ = 0;
  std::uint64_t tamper_events_logged_ = 0;
  bool promotion_refused_ = false;  // chain veto is final for this standby

  // Replication state (persists across run() slices, like the governor's).
  std::unique_ptr<replication::StandbyHost> standby_;
  std::unique_ptr<replication::Replicator> replicator_;
  replication::Lease lease_{};
  struct PendingRelease {
    std::uint64_t generation = 0;  // the checkpoint covering these outputs
    std::vector<Packet> packets;
  };
  std::deque<PendingRelease> pending_release_;
  bool failed_over_ = false;
  bool primary_killed_ = false;

  // Speculative CoW: everything stashed between the resume-first
  // checkpoint (end of epoch i) and its commit barrier (after epoch i+1
  // executes). `held` is epoch i's Synchronous output set, captured at
  // protect time -- before epoch i+1's packets can mix into the buffer.
  struct CowStash {
    bool active = false;
    EpochResult epoch;
    std::vector<Packet> held;
    Nanos resume_at{0};
    Nanos epoch_start{0};
  };
  CowStash cow_stash_;

  Workload* workload_ = nullptr;
  bool initialized_ = false;
  bool volatility_initialized_ = false;
  std::vector<Finding> last_findings_;
  std::optional<AttackReport> attack_;

  // Async deep-scan extension state.
  struct AsyncScan {
    Nanos ready_at{0};
    std::vector<Finding> findings;
  };
  std::optional<AsyncScan> async_scan_;
  void launch_async_deep_scan();

  // Disk snapshot taken at each committed epoch (Best-Effort mode writes
  // through, so attack response must restore the disk explicitly).
  VirtualDisk::Image disk_checkpoint_;
};

}  // namespace crimes
