// The durable store journal (DESIGN.md section 11): an append-only record
// of every operation applied to the checkpoint store, detailed enough that
// a crashed primary rebuilds its PageStore/GenerationChain byte-for-byte.
//
// The journal logs *operations*, not state: SEED and APPEND records carry
// the generation manifest plus the RLE-packed payload of every changed
// page; COLLECT/AUDIT_FAILURE/PIN/TRUNCATE records replay the retention
// machinery's decisions. Replaying the record stream against a fresh
// CheckpointStore (and a scratch image for the page bytes) is
// deterministic, so the recovered store is byte-identical to the one the
// crash destroyed -- the property the recovery test asserts generation by
// generation.
//
// Record framing, all fields little-endian:
//
//   u32 magic 'CRJL' | u8 type | u64 seq | u32 payload_len
//   | payload | u64 fnv1a(everything above)
//
// The per-record checksum is what makes torn tails detectable: a crash (or
// an injected JournalTornWrite) leaves a prefix of a record on the device;
// fsck()/recover() verify record by record and truncate the journal at the
// first frame that fails to parse or checksum. Torn writes *during normal
// operation* are caught the same way -- the journal re-reads what it wrote,
// truncates the damaged frame and rewrites it, charging the repair.
#pragma once

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "crypto/crypto_config.h"
#include "hypervisor/foreign_mapping.h"
#include "hypervisor/hypervisor.h"
#include "store/store_config.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace crimes::fault {
class FaultInjector;
}  // namespace crimes::fault

namespace crimes::store {
class CheckpointStore;
}  // namespace crimes::store

namespace crimes::replication {

class StoreJournal {
 public:
  enum class RecordType : std::uint8_t {
    Seed = 1,
    Append = 2,
    Collect = 3,
    AuditFailure = 4,
    Pin = 5,
    Truncate = 6,
  };

  explicit StoreJournal(const CostModel& costs,
                        crypto::CryptoConfig crypto = {})
      : costs_(&costs), crypto_(crypto) {}

  // Attaches (nullptr detaches) the fault injector behind the
  // JournalTornWrite and JournalBlockTamper sites.
  void set_fault_injector(fault::FaultInjector* faults) { faults_ = faults; }

  [[nodiscard]] const crypto::CryptoConfig& crypto() const { return crypto_; }

  // --- Logging (each returns the virtual write cost) --------------------
  // With attestation on, Seed/Append records carry the store's root after
  // the logged commit (`root`) at the end of the payload; fsck() reverifies
  // the whole chain from the record bytes alone, and recover() refuses a
  // replay whose recomputed roots diverge from the carried ones. With
  // attestation off the record bytes are identical to the pre-crypto
  // format.
  Nanos log_seed(std::uint64_t epoch, Nanos now, ForeignMapping& image,
                 const VcpuState& vcpu, std::uint64_t root = 0);
  Nanos log_append(std::uint64_t epoch, Nanos now, std::span<const Pfn> dirty,
                   ForeignMapping& image, const VcpuState& vcpu,
                   std::uint64_t root = 0);
  Nanos log_collect();
  Nanos log_audit_failure();
  Nanos log_pin(std::uint64_t epoch);
  Nanos log_truncate(std::uint64_t epoch);

  // --- Commit batching --------------------------------------------------
  // A commit appends several records back to back (APPEND + COLLECT plus
  // retention decisions); batching submits them as one vectored device
  // write, so the fixed journal_append_base is paid once per batch.
  // Record bytes and ordering are unchanged -- fsck/recover never see the
  // difference.
  void begin_batch() {
    batching_ = true;
    batch_base_paid_ = false;
  }
  void end_batch() { batching_ = false; }
  [[nodiscard]] bool batching() const { return batching_; }

  // The raw device contents (what a crash leaves behind).
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return log_; }
  [[nodiscard]] std::uint64_t records() const { return seq_; }
  [[nodiscard]] std::uint64_t torn_writes_repaired() const {
    return torn_repaired_;
  }

  // Crash simulation: tears the tail of the device, leaving the final
  // `drop` bytes of the last record unwritten (clamped to the log size).
  void tear_tail(std::size_t drop);

  // --- Verification / recovery -----------------------------------------
  struct FsckReport {
    bool ok = false;            // every byte belongs to a valid record
    std::size_t records = 0;    // valid records found
    std::size_t valid_bytes = 0;
    std::size_t torn_bytes = 0;  // trailing bytes of a torn/corrupt record
    std::string error;           // first structural problem, if any
    // Structured evidence: exactly where verification stopped (meaningful
    // only when !ok) -- the record index, the byte offset of its frame on
    // the device, and the failure class. Forensic reports render these.
    std::size_t bad_record = 0;
    std::size_t bad_offset = 0;
    std::string reason;
    // Attestation walk (crypto.attest): Seed/Append roots recomputed from
    // the record bytes and chained from genesis.
    bool attested = false;
    std::size_t roots_verified = 0;
  };
  // Walks the device read-only: frame structure, checksums, sequence
  // numbers. A torn tail is reported, not an error -- recovery truncates
  // it. Mid-log corruption (a bad record *followed by* valid ones) can
  // never verify and reports ok = false either way; everything after the
  // damage is unreachable. With attestation on, the walk additionally
  // recomputes every Seed/Append record's pages fold and verifies the
  // carried root -- an adversary can fix the unkeyed framing checksum
  // after rewriting ciphertext, but not the keyed root.
  [[nodiscard]] FsckReport fsck() const;

  struct Recovered {
    std::unique_ptr<Hypervisor> hypervisor;  // owns the rebuilt image
    Vm* image = nullptr;  // backup image as of the last journaled record
    std::unique_ptr<store::CheckpointStore> store;
    std::size_t records_applied = 0;
    std::size_t torn_bytes_truncated = 0;
    Nanos cost{0};
  };
  // Rebuilds the store (and the backup image) from a journal device
  // image, truncating a torn tail first. `config` must match the store
  // config the journal was written under -- retention decides which
  // generations exist at all. Throws on a journal whose valid prefix is
  // empty or does not begin with a Seed record; with attestation on,
  // throws crypto::TamperError when a replayed generation's recomputed
  // root diverges from the record's carried root (a forged replay is
  // refused, never trusted).
  [[nodiscard]] static Recovered recover(std::span<const std::byte> device,
                                         const CostModel& costs,
                                         const store::StoreConfig& config);

 private:
  // Serializes one record (with checksum) and appends it to the device,
  // applying an injected torn write -- and repairing it -- when the fault
  // plan says so. Returns the virtual cost.
  Nanos append_record(RecordType type, std::span<const std::byte> payload);

  const CostModel* costs_;
  crypto::CryptoConfig crypto_;
  fault::FaultInjector* faults_ = nullptr;
  std::vector<std::byte> log_;
  std::uint64_t seq_ = 0;
  std::uint64_t torn_repaired_ = 0;
  bool batching_ = false;
  bool batch_base_paid_ = false;
};

}  // namespace crimes::replication
