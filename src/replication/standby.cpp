#include "replication/standby.h"

#include "common/log.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace crimes::replication {

StandbyHost::StandbyHost(const CostModel& costs,
                         const ReplicationConfig& config,
                         const std::string& primary_name,
                         std::size_t page_count)
    : costs_(&costs),
      config_(config),
      hypervisor_(page_count + 64),  // one image plus bookkeeping slack
      detector_(config.heartbeat),
      authority_(config.lease_term) {
  vm_ = &hypervisor_.create_domain(primary_name + "-standby", page_count);
  vm_->pause();  // the standby never executes until promoted
}

Vm& StandbyHost::vm() {
  if (vm_ == nullptr) throw std::logic_error("StandbyHost: no VM");
  return *vm_;
}

Nanos StandbyHost::initialize(Vm& source, const VcpuState& vcpu,
                              std::uint64_t seed_generation, Nanos now) {
  ForeignMapping src{source};
  ForeignMapping dst{*vm_};
  std::size_t backed = 0;
  for (std::size_t i = 0; i < source.page_count(); ++i) {
    const Pfn pfn{i};
    if (!src.is_backed(pfn)) continue;
    std::memcpy(dst.page(pfn).data.data(), src.peek(pfn).data.data(),
                kPageSize);
    ++backed;
  }
  vm_->vcpu() = vcpu;
  seed_generation_ = seed_generation;
  (void)now;
  // The whole image crosses the wire once (Remus' initial synchronization),
  // through the socket path plus one propagation hop.
  return costs_->copy_socket_per_page * backed + costs_->replication_one_way;
}

Nanos StandbyHost::promotion_ready_at(Nanos from) const {
  const Nanos suspicion = detector_.suspicion_time(from);
  if (suspicion == Nanos::max()) return Nanos::max();
  return std::max(suspicion, authority_.promotion_safe_at());
}

StandbyHost::PromotionReport StandbyHost::promote(Replicator& replicator,
                                                  Nanos now) {
  if (promoted_) throw std::logic_error("StandbyHost: already promoted");
  if (now < authority_.promotion_safe_at()) {
    // Promoting inside a live lease term is exactly the split-brain the
    // fencing design exists to rule out.
    throw std::logic_error(
        "StandbyHost::promote: the old primary's lease has not expired");
  }
  const Replicator::DrainReport drained = replicator.drain(now);
  PromotionReport report;
  report.promoted_generation = drained.received_through;
  report.generations_rolled_back = drained.rolled_back;
  report.pages_rolled_back = drained.pages_rolled_back;
  report.attested = replicator.attested();
  report.trusted_root = drained.trusted_root;
  if (report.attested && !drained.chain_verified) {
    // The chain does not verify to the last trusted root: what the
    // standby holds is not provably the primary's history, and resuming
    // it would launder tampered state into a "legitimate" promoted VM.
    // Refuse: no unpause, no fencing advance -- the VM stays a paused
    // crime scene for forensics.
    report.refused = true;
    report.cost = drained.cost + costs_->crypto_root_verify;
    CRIMES_LOG(Error, "standby")
        << "promotion REFUSED at " << to_ms(now)
        << " ms: attestation chain does not verify to the trusted root "
        << "(generation " << report.promoted_generation << ")";
    return report;
  }
  report.fencing_token = authority_.advance_epoch();
  report.cost = drained.cost + costs_->promote_base;
  vm_->unpause();
  promoted_ = true;
  CRIMES_LOG(Warn, "standby")
      << "promoted at " << to_ms(now) << " ms from generation "
      << report.promoted_generation << " (fencing epoch "
      << report.fencing_token << ", " << report.generations_rolled_back
      << " partially received generation(s) rolled back)";
  return report;
}

}  // namespace crimes::replication
