// Knobs for the standby replication layer (DESIGN.md section 11).
//
// Dependency-light on purpose, mirroring store/store_config.h:
// CrimesConfig embeds a ReplicationConfig by value; the machinery itself
// (Replicator, StandbyHost, HeartbeatDetector, fencing) lives behind
// pointers and is only constructed when `enabled` is set.
#pragma once

#include "common/sim_clock.h"

#include <cstddef>

namespace crimes::replication {

// Phi-accrual failure detector tuning (Hayashibara et al.): suspicion is a
// continuous value phi = -log10(P(heartbeat still in flight)) over the
// observed inter-arrival distribution, not a binary timeout.
struct HeartbeatConfig {
  // How often the primary sends a heartbeat; Crimes sends one at every
  // epoch boundary, so this should track the epoch interval.
  Nanos interval = millis(200);
  // Suspicion threshold: phi = 8 means the detector is wrong once in 1e8
  // evaluations under the modeled distribution.
  double phi_threshold = 8.0;
  // Sliding window of inter-arrival samples behind the mean/stddev.
  std::size_t window = 16;
  // Floor on the modeled stddev as a fraction of the mean: virtual-clock
  // heartbeats arrive perfectly regularly, and a zero-variance model
  // would suspect one nanosecond after the first late beat.
  double min_stddev_fraction = 0.1;
};

struct ReplicationConfig {
  // Off by default: Crimes never constructs the standby machinery and the
  // per-epoch path is a single null check.
  bool enabled = false;
  // Maximum committed-but-unacked generations in flight on the link. A
  // full window stalls the primary at the next commit until the oldest
  // ack arrives (backpressure, charged to the virtual clock).
  std::size_t window = 4;
  // Stream XOR-delta + RLE pages (CompressedSocketTransport) instead of
  // the plain ciphered stream (SocketTransport).
  bool compress = false;
  // Scatter-gather zero-copy framing on the replication stream: per-page
  // records are ciphered in place against a reusable scratch frame instead
  // of staged through the contiguous stream buffer, dropping the per-page
  // serialization cost. On by default -- it changes neither bytes nor
  // record order, only the staging -- but switchable off to measure the
  // staged baseline.
  bool zero_copy = true;
  HeartbeatConfig heartbeat;
  // Fencing lease term. Must exceed the heartbeat interval (renewal
  // piggybacks on the epoch loop) and bounds how long a partitioned
  // primary may keep releasing outputs: promotion waits the term out, so
  // by the time the standby takes over the old primary has self-fenced.
  Nanos lease_term = millis(600);
};

}  // namespace crimes::replication
