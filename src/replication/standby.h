// The standby host: a second simulated machine holding a warm copy of the
// primary's last replicated checkpoint (DESIGN.md section 11).
//
// The standby owns its own Hypervisor (its frames do not compete with the
// primary's machine), the phi-accrual heartbeat detector, and the lease
// authority. Promotion is the only state transition: once the detector
// suspects the primary AND every lease ever granted has expired, the
// standby rolls back any partially received generations (Replicator::
// drain), advances the fencing epoch -- permanently invalidating the old
// primary's lease token -- and unpauses its VM at the last *fully
// replicated* generation. Synchronous Safety holds across the boundary:
// every output the promoted image has ever externalized was covered by a
// replicated-and-acked checkpoint, and the un-replicated epochs' outputs
// were never released by anyone.
#pragma once

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "hypervisor/hypervisor.h"
#include "replication/fencing.h"
#include "replication/heartbeat.h"
#include "replication/replication_config.h"
#include "replication/replicator.h"

#include <cstdint>
#include <memory>
#include <string>

namespace crimes::replication {

class StandbyHost {
 public:
  StandbyHost(const CostModel& costs, const ReplicationConfig& config,
              const std::string& primary_name, std::size_t page_count);

  // Initial full synchronization from the primary's backup image (over
  // the wire: the standby is a different machine). Returns the cost.
  Nanos initialize(Vm& source, const VcpuState& vcpu,
                   std::uint64_t seed_generation, Nanos now);

  [[nodiscard]] bool initialized() const { return vm_ != nullptr; }
  [[nodiscard]] bool promoted() const { return promoted_; }
  [[nodiscard]] Vm& vm();
  [[nodiscard]] std::uint64_t seed_generation() const {
    return seed_generation_;
  }

  [[nodiscard]] HeartbeatDetector& detector() { return detector_; }
  [[nodiscard]] const HeartbeatDetector& detector() const {
    return detector_;
  }
  [[nodiscard]] LeaseAuthority& authority() { return authority_; }
  [[nodiscard]] const LeaseAuthority& authority() const { return authority_; }

  // Earliest instant promotion is legal at/after `from`: the detector must
  // suspect the primary (assuming no further heartbeat) and the last
  // granted lease must have expired. Nanos::max() when the detector can
  // never conclude anything (no heartbeat was ever seen).
  [[nodiscard]] Nanos promotion_ready_at(Nanos from) const;

  struct PromotionReport {
    std::uint64_t promoted_generation = 0;  // what the standby resumes from
    std::uint64_t fencing_token = 0;        // the new fencing epoch
    std::size_t generations_rolled_back = 0;
    std::size_t pages_rolled_back = 0;
    // Attestation verdict (DESIGN.md section 15). `refused` means the
    // drained stream failed chain verification: the VM stays paused, the
    // fencing epoch does not advance, and promoted() stays false --
    // unverifiable state is never resumed.
    bool attested = false;
    bool refused = false;
    std::uint64_t trusted_root = 0;
    Nanos cost{0};  // drain rollback + fixed promotion work
  };
  // Fails over: drains the replication stream, advances the fencing epoch
  // and unpauses the standby VM. Requires now >= promotion_ready_at().
  // The caller advances the clock by `cost`. With attestation armed the
  // promotion is refused (report.refused) unless the chain verified all
  // the way to the generation being promoted.
  PromotionReport promote(Replicator& replicator, Nanos now);

 private:
  const CostModel* costs_;
  ReplicationConfig config_;
  Hypervisor hypervisor_;
  Vm* vm_ = nullptr;
  std::uint64_t seed_generation_ = 0;
  HeartbeatDetector detector_;
  LeaseAuthority authority_;
  bool promoted_ = false;
};

}  // namespace crimes::replication
