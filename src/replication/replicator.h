// The Replicator: streams every committed generation from the primary's
// backup image to a standby host over the Remus socket path
// (DESIGN.md section 11).
//
// The stream is asynchronous with a bounded in-flight window, like Remus'
// checkpoint drain: at commit time the generation's dirty pages really move
// (bytes are copied into the standby image through a SocketTransport or
// CompressedSocketTransport immediately), but on the virtual timeline the
// transfer occupies the link for its modeled duration, arrives one wire
// hop later, and is acknowledged one hop after that. The primary charges
// itself only the per-generation framing cost -- unless the window is
// full, in which case it stalls until the oldest in-flight generation acks
// (backpressure, charged to the virtual clock).
//
// Because bytes are applied eagerly but *arrive* later on the virtual
// timeline, every in-flight generation carries an undo log (the standby's
// prior bytes + vCPU). A link partition or a promotion rolls back exactly
// the generations whose receive instant lies beyond the cut, restoring the
// invariant that the standby image equals its last fully received
// generation -- the only state failover may promote.
#pragma once

#include "checkpoint/transport.h"
#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "crypto/attestation_chain.h"
#include "hypervisor/vm.h"
#include "replication/replication_config.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace crimes::telemetry {
struct Telemetry;
class Gauge;
class Histogram;
}  // namespace crimes::telemetry

namespace crimes::fault {
class FaultInjector;
}  // namespace crimes::fault

namespace crimes::replication {

class Replicator {
 public:
  // `source` is the primary host's backup image (the last committed
  // checkpoint -- the only state that is ever replicated); `standby` is
  // the standby host's image, already seeded to `seed_generation`.
  Replicator(const CostModel& costs, ReplicationConfig config, Vm& source,
             Vm& standby, std::uint64_t seed_generation);

  struct SendResult {
    Nanos stall{0};    // backpressure wait (window was full)
    Nanos charge{0};   // primary-side framing cost
    Nanos verify_cost{0};  // standby-side attestation verify (attested only)
    bool dropped = false;  // link partitioned; nothing was sent
  };
  // Ships generation `generation` (the pages in `dirty`, plus the vCPU) at
  // virtual time `now`. Caller advances the clock by stall + charge +
  // verify_cost. With attestation armed, `root` is the primary store's
  // root after this commit; the standby recomputes the leaf from the bytes
  // it actually applied and refuses to extend trust past a mismatch.
  SendResult on_commit(std::uint64_t generation, std::span<const Pfn> dirty,
                       const VcpuState& vcpu, Nanos now,
                       std::uint64_t root = 0);

  // Processes every acknowledgement due by `now`, freeing window slots and
  // their undo logs.
  void advance(Nanos now);

  // Severs the link at `now`. Generations received after `now` are rolled
  // back immediately (their bytes never arrive); generations received but
  // not yet acknowledged stay applied on the standby -- their acks are
  // lost, so the primary never releases the outputs they cover. The
  // partition is sticky.
  void partition(Nanos now);
  [[nodiscard]] bool partitioned() const { return partitioned_; }

  // Governor freeze: the primary stops, so nothing in flight will ever be
  // needed. Rolls back unreceived generations, releases the whole window
  // (in_flight() == 0 afterwards) and returns the standby-side cost.
  Nanos quiesce(Nanos now);

  // Promotion support: rolls back every generation not fully received by
  // `now` and reports what the standby may legally resume from.
  struct DrainReport {
    std::uint64_t received_through = 0;  // newest fully received generation
    std::size_t rolled_back = 0;         // generations undone
    std::size_t pages_rolled_back = 0;
    // Attestation verdict over everything the standby still holds: false
    // iff a verified-at-apply generation failed its root check. Partition
    // drops never applied anything, so they cannot fail this (no false
    // positives); with attestation off it stays true.
    bool chain_verified = true;
    std::uint64_t trusted_root = 0;  // root of received_through (attested)
    Nanos cost{0};
  };
  DrainReport drain(Nanos now);

  // --- Attestation (DESIGN.md section 15) -------------------------------
  // Arms standby-side verification: the standby trusts `trusted_root` (the
  // root it observed at initialization) and extends trust one generation
  // at a time as commits apply.
  void set_attestation(std::uint64_t tenant_key, std::uint64_t trusted_root) {
    attest_ = true;
    chain_ = crypto::AttestationChain(tenant_key);
    chain_.reset(trusted_root, 0);
    base_root_ = trusted_root;
    last_root_sent_ = trusted_root;
  }
  [[nodiscard]] bool attested() const { return attest_; }
  [[nodiscard]] bool chain_intact() const { return chain_intact_; }
  [[nodiscard]] std::uint64_t tampers_detected() const {
    return tampers_detected_;
  }
  [[nodiscard]] std::uint64_t roots_verified() const {
    return roots_verified_;
  }

  // Attaches (nullptr detaches) the injector behind the ReplicationTamper
  // and StaleRootReplay sites.
  void set_fault_injector(fault::FaultInjector* faults) { faults_ = faults; }

  // --- Accounting -------------------------------------------------------
  [[nodiscard]] std::uint64_t acked_through() const { return acked_through_; }
  [[nodiscard]] std::uint64_t received_through(Nanos now) const;
  [[nodiscard]] std::size_t in_flight() const { return window_.size(); }
  [[nodiscard]] Nanos total_stall() const { return total_stall_; }
  [[nodiscard]] std::uint64_t generations_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t generations_dropped() const { return dropped_; }
  [[nodiscard]] std::size_t max_in_flight() const { return max_in_flight_; }
  [[nodiscard]] const Transport& transport() const { return *transport_; }
  [[nodiscard]] const ReplicationConfig& config() const { return config_; }

  // Attaches (nullptr detaches) the replication.lag gauge and the
  // replication.ack_delay histogram.
  void set_telemetry(telemetry::Telemetry* telemetry);

  // Runtime window actuator (control plane). Clamped to >= 1; a shrink
  // does not cancel generations already in flight -- the window drains
  // down to the new bound through normal acks before sends admit again.
  void set_window(std::size_t window) {
    config_.window = window == 0 ? 1 : window;
  }

 private:
  struct InFlight {
    std::uint64_t generation = 0;
    std::uint64_t root = 0;  // attestation root after this generation
    Nanos sent_at{0};
    Nanos recv_at{0};  // fully received (transfer + one-way wire + apply)
    Nanos ack_at{0};   // ack back at the primary
    bool ack_lost = false;  // partition cut the ack path
    bool lost = false;      // partition cut the data path; must roll back
    std::vector<std::pair<Pfn, Page>> undo;  // standby bytes before apply
    VcpuState prior_vcpu;
  };

  // Rolls back the window's suffix whose recv_at > `now` (newest first).
  // Returns the standby-side cost; fills the counters when given.
  Nanos rollback_unreceived(Nanos now, std::size_t* generations,
                            std::size_t* pages);
  void update_lag_gauge();

  const CostModel* costs_;
  ReplicationConfig config_;
  Vm* source_;
  Vm* standby_;
  std::unique_ptr<Transport> transport_;

  std::deque<InFlight> window_;
  std::uint64_t acked_through_;
  std::uint64_t received_base_;  // newest generation applied & kept
  Nanos link_busy_until_{0};
  bool partitioned_ = false;
  Nanos partitioned_at_{0};

  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t max_in_flight_ = 0;
  Nanos total_stall_{0};

  // Attestation state (armed by set_attestation).
  bool attest_ = false;
  crypto::AttestationChain chain_;
  std::uint64_t base_root_ = 0;  // root of received_base_
  std::uint64_t last_root_sent_ = 0;  // what a stale-root replay resends
  bool chain_intact_ = true;
  // Partition gap: once a generation is dropped, later roots could never
  // chain from what the standby holds, so verification stands down rather
  // than report false tampering. Nothing is applied past the gap anyway
  // (the partition is sticky).
  bool chain_gap_ = false;
  std::uint64_t tampers_detected_ = 0;
  std::uint64_t roots_verified_ = 0;
  fault::FaultInjector* faults_ = nullptr;

  telemetry::Gauge* lag_gauge_ = nullptr;
  telemetry::Histogram* ack_delay_ = nullptr;
};

}  // namespace crimes::replication
