// The Replicator: streams every committed generation from the primary's
// backup image to a standby host over the Remus socket path
// (DESIGN.md section 11).
//
// The stream is asynchronous with a bounded in-flight window, like Remus'
// checkpoint drain: at commit time the generation's dirty pages really move
// (bytes are copied into the standby image through a SocketTransport or
// CompressedSocketTransport immediately), but on the virtual timeline the
// transfer occupies the link for its modeled duration, arrives one wire
// hop later, and is acknowledged one hop after that. The primary charges
// itself only the per-generation framing cost -- unless the window is
// full, in which case it stalls until the oldest in-flight generation acks
// (backpressure, charged to the virtual clock).
//
// Because bytes are applied eagerly but *arrive* later on the virtual
// timeline, every in-flight generation carries an undo log (the standby's
// prior bytes + vCPU). A link partition or a promotion rolls back exactly
// the generations whose receive instant lies beyond the cut, restoring the
// invariant that the standby image equals its last fully received
// generation -- the only state failover may promote.
#pragma once

#include "checkpoint/transport.h"
#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "hypervisor/vm.h"
#include "replication/replication_config.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace crimes::telemetry {
struct Telemetry;
class Gauge;
class Histogram;
}  // namespace crimes::telemetry

namespace crimes::replication {

class Replicator {
 public:
  // `source` is the primary host's backup image (the last committed
  // checkpoint -- the only state that is ever replicated); `standby` is
  // the standby host's image, already seeded to `seed_generation`.
  Replicator(const CostModel& costs, ReplicationConfig config, Vm& source,
             Vm& standby, std::uint64_t seed_generation);

  struct SendResult {
    Nanos stall{0};    // backpressure wait (window was full)
    Nanos charge{0};   // primary-side framing cost
    bool dropped = false;  // link partitioned; nothing was sent
  };
  // Ships generation `generation` (the pages in `dirty`, plus the vCPU) at
  // virtual time `now`. Caller advances the clock by stall + charge.
  SendResult on_commit(std::uint64_t generation, std::span<const Pfn> dirty,
                       const VcpuState& vcpu, Nanos now);

  // Processes every acknowledgement due by `now`, freeing window slots and
  // their undo logs.
  void advance(Nanos now);

  // Severs the link at `now`. Generations received after `now` are rolled
  // back immediately (their bytes never arrive); generations received but
  // not yet acknowledged stay applied on the standby -- their acks are
  // lost, so the primary never releases the outputs they cover. The
  // partition is sticky.
  void partition(Nanos now);
  [[nodiscard]] bool partitioned() const { return partitioned_; }

  // Governor freeze: the primary stops, so nothing in flight will ever be
  // needed. Rolls back unreceived generations, releases the whole window
  // (in_flight() == 0 afterwards) and returns the standby-side cost.
  Nanos quiesce(Nanos now);

  // Promotion support: rolls back every generation not fully received by
  // `now` and reports what the standby may legally resume from.
  struct DrainReport {
    std::uint64_t received_through = 0;  // newest fully received generation
    std::size_t rolled_back = 0;         // generations undone
    std::size_t pages_rolled_back = 0;
    Nanos cost{0};
  };
  DrainReport drain(Nanos now);

  // --- Accounting -------------------------------------------------------
  [[nodiscard]] std::uint64_t acked_through() const { return acked_through_; }
  [[nodiscard]] std::uint64_t received_through(Nanos now) const;
  [[nodiscard]] std::size_t in_flight() const { return window_.size(); }
  [[nodiscard]] Nanos total_stall() const { return total_stall_; }
  [[nodiscard]] std::uint64_t generations_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t generations_dropped() const { return dropped_; }
  [[nodiscard]] std::size_t max_in_flight() const { return max_in_flight_; }
  [[nodiscard]] const Transport& transport() const { return *transport_; }
  [[nodiscard]] const ReplicationConfig& config() const { return config_; }

  // Attaches (nullptr detaches) the replication.lag gauge and the
  // replication.ack_delay histogram.
  void set_telemetry(telemetry::Telemetry* telemetry);

  // Runtime window actuator (control plane). Clamped to >= 1; a shrink
  // does not cancel generations already in flight -- the window drains
  // down to the new bound through normal acks before sends admit again.
  void set_window(std::size_t window) {
    config_.window = window == 0 ? 1 : window;
  }

 private:
  struct InFlight {
    std::uint64_t generation = 0;
    Nanos sent_at{0};
    Nanos recv_at{0};  // fully received (transfer + one-way wire + apply)
    Nanos ack_at{0};   // ack back at the primary
    bool ack_lost = false;  // partition cut the ack path
    bool lost = false;      // partition cut the data path; must roll back
    std::vector<std::pair<Pfn, Page>> undo;  // standby bytes before apply
    VcpuState prior_vcpu;
  };

  // Rolls back the window's suffix whose recv_at > `now` (newest first).
  // Returns the standby-side cost; fills the counters when given.
  Nanos rollback_unreceived(Nanos now, std::size_t* generations,
                            std::size_t* pages);
  void update_lag_gauge();

  const CostModel* costs_;
  ReplicationConfig config_;
  Vm* source_;
  Vm* standby_;
  std::unique_ptr<Transport> transport_;

  std::deque<InFlight> window_;
  std::uint64_t acked_through_;
  std::uint64_t received_base_;  // newest generation applied & kept
  Nanos link_busy_until_{0};
  bool partitioned_ = false;
  Nanos partitioned_at_{0};

  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t max_in_flight_ = 0;
  Nanos total_stall_{0};

  telemetry::Gauge* lag_gauge_ = nullptr;
  telemetry::Histogram* ack_delay_ = nullptr;
};

}  // namespace crimes::replication
