#include "replication/store_journal.h"

#include "checkpoint/transport.h"  // rle::encode / rle::decode
#include "common/hash.h"
#include "common/log.h"
#include "crypto/attestation_chain.h"
#include "fault/fault_injector.h"
#include "store/checkpoint_store.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>

namespace crimes::replication {
namespace {

constexpr std::uint32_t kMagic = 0x4C4A5243;  // "CRJL"
constexpr std::size_t kHeaderBytes =
    sizeof(std::uint32_t) + 1 + sizeof(std::uint64_t) + sizeof(std::uint32_t);
constexpr std::size_t kChecksumBytes = sizeof(std::uint64_t);

static_assert(std::is_trivially_copyable_v<VcpuState>,
              "VcpuState is serialized by memcpy");

void put_bytes(std::vector<std::byte>& out, const void* src, std::size_t n) {
  if (n == 0) return;  // empty payloads carry a null data() — UB for memcpy
  const std::size_t at = out.size();
  out.resize(at + n);
  std::memcpy(out.data() + at, src, n);
}
void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  put_bytes(out, &v, sizeof v);
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  put_bytes(out, &v, sizeof v);
}
void put_i64(std::vector<std::byte>& out, std::int64_t v) {
  put_bytes(out, &v, sizeof v);
}

// Bounds-checked little-endian reader over a journal device image.
struct Reader {
  std::span<const std::byte> data;
  std::size_t off = 0;

  [[nodiscard]] std::size_t remaining() const { return data.size() - off; }
  bool read(void* dst, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, data.data() + off, n);
    off += n;
    return true;
  }
  bool u8(std::uint8_t& v) { return read(&v, sizeof v); }
  bool u32(std::uint32_t& v) { return read(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return read(&v, sizeof v); }
  bool i64(std::int64_t& v) { return read(&v, sizeof v); }
};

// Serializes the shared part of Seed/Append payloads: the generation's
// manifest plus every carried page as pfn | encoded_len | RLE bytes.
void encode_pages(std::vector<std::byte>& payload, ForeignMapping& image,
                  std::span<const Pfn> pfns) {
  put_u32(payload, static_cast<std::uint32_t>(pfns.size()));
  for (const Pfn pfn : pfns) {
    const Page& page = image.peek(pfn);
    const std::vector<std::byte> encoded =
        rle::encode(std::span<const std::byte>(page.data));
    put_u64(payload, pfn.raw);
    put_u32(payload, static_cast<std::uint32_t>(encoded.size()));
    put_bytes(payload, encoded.data(), encoded.size());
  }
}

struct DecodedGeneration {
  std::uint64_t epoch = 0;
  std::int64_t now = 0;
  VcpuState vcpu;
  std::vector<Pfn> pfns;
};

// Decodes a Seed/Append payload, writing the page bytes straight into the
// scratch image. Returns false on a malformed payload (which fsck would
// have rejected -- recover() only sees verified records).
bool decode_generation(Reader& reader, ForeignMapping& image,
                       DecodedGeneration& out) {
  std::uint64_t page_count = 0;  // already consumed by the caller's peek
  if (!reader.u64(out.epoch) || !reader.i64(out.now) ||
      !reader.u64(page_count)) {
    return false;
  }
  if (!reader.read(&out.vcpu, sizeof(VcpuState))) return false;
  std::uint32_t n_pages = 0;
  if (!reader.u32(n_pages)) return false;
  out.pfns.reserve(n_pages);
  for (std::uint32_t i = 0; i < n_pages; ++i) {
    std::uint64_t pfn_value = 0;
    std::uint32_t encoded_len = 0;
    if (!reader.u64(pfn_value) || !reader.u32(encoded_len)) return false;
    if (reader.remaining() < encoded_len) return false;
    const Pfn pfn{pfn_value};
    if (pfn.raw >= image.page_count()) return false;
    if (!rle::decode(reader.data.subspan(reader.off, encoded_len),
                     std::span<std::byte>(image.page(pfn).data))) {
      return false;
    }
    reader.off += encoded_len;
    out.pfns.push_back(pfn);
  }
  return true;
}

}  // namespace

Nanos StoreJournal::append_record(RecordType type,
                                  std::span<const std::byte> payload) {
  std::vector<std::byte> record;
  record.reserve(kHeaderBytes + payload.size() + kChecksumBytes);
  put_u32(record, kMagic);
  put_u8(record, static_cast<std::uint8_t>(type));
  put_u64(record, seq_);
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_bytes(record, payload.data(), payload.size());
  put_u64(record, fnv1a(std::span<const std::byte>(record)));

  // Adversarial ciphertext rewrite (JournalBlockTamper): a device-level
  // adversary flips one payload byte just below the carried root and
  // *fixes up* the unkeyed framing checksum -- the frame still parses and
  // checksums clean. Only the keyed attestation walk (fsck/recover) can
  // tell the record no longer matches its root. Armed only with
  // attestation on: without it the rewrite would be an undetectable
  // corruption, not an experiment.
  if (faults_ != nullptr && crypto_.attest &&
      (type == RecordType::Seed || type == RecordType::Append) &&
      payload.size() > kChecksumBytes && faults_->tampers_journal()) {
    record[kHeaderBytes + payload.size() - sizeof(std::uint64_t) - 1] ^=
        std::byte{0x20};
    const std::uint64_t fixed = fnv1a(std::span<const std::byte>(
        record.data(), kHeaderBytes + payload.size()));
    std::memcpy(record.data() + kHeaderBytes + payload.size(), &fixed,
                sizeof fixed);
    CRIMES_LOG(Warn, "journal")
        << "injected block tamper on record " << seq_
        << " (framing checksum fixed up by the adversary)";
  }

  const std::size_t pages =
      (record.size() + kPageSize - 1) / kPageSize;  // device blocks touched
  Nanos base = costs_->journal_append_base;
  if (batching_) {
    if (batch_base_paid_) base = Nanos{0};  // rides the batch's submission
    batch_base_paid_ = true;
  }
  Nanos cost = base + costs_->journal_write_per_page * pages;

  if (faults_ != nullptr && faults_->tears_journal_write()) {
    // The device acks a torn write: only a prefix of the record lands. The
    // journal's write-verify read-back catches the bad checksum, truncates
    // the damaged frame and rewrites it -- paying the scan plus a second
    // full write.
    const std::size_t torn = std::max<std::size_t>(1, record.size() / 2);
    log_.insert(log_.end(), record.begin(),
                record.begin() + static_cast<std::ptrdiff_t>(torn));
    log_.resize(log_.size() - torn);  // detected; truncate the torn frame
    ++torn_repaired_;
    cost += costs_->journal_scan_per_record +
            costs_->journal_write_per_page * pages;
    CRIMES_LOG(Warn, "journal")
        << "torn write on record " << seq_ << " (" << torn << " of "
        << record.size() << " bytes landed); truncated and rewritten";
  }

  log_.insert(log_.end(), record.begin(), record.end());
  ++seq_;
  return cost;
}

Nanos StoreJournal::log_seed(std::uint64_t epoch, Nanos now,
                             ForeignMapping& image, const VcpuState& vcpu,
                             std::uint64_t root) {
  std::vector<Pfn> backed;
  for (std::size_t i = 0; i < image.page_count(); ++i) {
    if (image.is_backed(Pfn{i})) backed.push_back(Pfn{i});
  }
  std::vector<std::byte> payload;
  put_u64(payload, epoch);
  put_i64(payload, now.count());
  put_u64(payload, image.page_count());
  put_bytes(payload, &vcpu, sizeof vcpu);
  encode_pages(payload, image, backed);
  if (crypto_.attest) put_u64(payload, root);
  return append_record(RecordType::Seed, payload);
}

Nanos StoreJournal::log_append(std::uint64_t epoch, Nanos now,
                               std::span<const Pfn> dirty,
                               ForeignMapping& image, const VcpuState& vcpu,
                               std::uint64_t root) {
  std::vector<std::byte> payload;
  put_u64(payload, epoch);
  put_i64(payload, now.count());
  put_u64(payload, image.page_count());
  put_bytes(payload, &vcpu, sizeof vcpu);
  encode_pages(payload, image, dirty);
  if (crypto_.attest) put_u64(payload, root);
  return append_record(RecordType::Append, payload);
}

Nanos StoreJournal::log_collect() {
  return append_record(RecordType::Collect, {});
}

Nanos StoreJournal::log_audit_failure() {
  return append_record(RecordType::AuditFailure, {});
}

Nanos StoreJournal::log_pin(std::uint64_t epoch) {
  std::vector<std::byte> payload;
  put_u64(payload, epoch);
  return append_record(RecordType::Pin, payload);
}

Nanos StoreJournal::log_truncate(std::uint64_t epoch) {
  std::vector<std::byte> payload;
  put_u64(payload, epoch);
  return append_record(RecordType::Truncate, payload);
}

void StoreJournal::tear_tail(std::size_t drop) {
  drop = std::min(drop, log_.size());
  log_.resize(log_.size() - drop);
}

namespace {

// Shared record walk: advances through `device`, yielding each verified
// record's (type, payload) span. Stops at the first frame that cannot
// parse or checksum; `valid_bytes` then marks the torn-tail boundary.
struct RecordWalk {
  std::span<const std::byte> device;
  std::size_t off = 0;
  std::uint64_t expect_seq = 0;
  std::string error{};

  struct Record {
    StoreJournal::RecordType type;
    std::span<const std::byte> payload;
  };

  // Returns true and fills `out` for the next valid record; false at the
  // end of the valid prefix (error describes why, empty for a clean end).
  bool next(Record& out) {
    if (off == device.size()) return false;
    Reader reader{device, off};
    std::uint32_t magic = 0;
    std::uint8_t type = 0;
    std::uint64_t seq = 0;
    std::uint32_t payload_len = 0;
    if (!reader.u32(magic) || !reader.u8(type) || !reader.u64(seq) ||
        !reader.u32(payload_len)) {
      error = "torn header";
      return false;
    }
    if (magic != kMagic) {
      error = "bad magic";
      return false;
    }
    if (seq != expect_seq) {
      error = "sequence gap";
      return false;
    }
    if (type < static_cast<std::uint8_t>(StoreJournal::RecordType::Seed) ||
        type > static_cast<std::uint8_t>(StoreJournal::RecordType::Truncate)) {
      error = "unknown record type";
      return false;
    }
    if (reader.remaining() < payload_len + kChecksumBytes) {
      error = "torn payload";
      return false;
    }
    const std::size_t payload_at = reader.off;
    reader.off += payload_len;
    std::uint64_t stored = 0;
    (void)reader.u64(stored);
    const std::uint64_t computed = fnv1a(
        device.subspan(off, kHeaderBytes + payload_len));
    if (stored != computed) {
      error = "checksum mismatch";
      return false;
    }
    out.type = static_cast<StoreJournal::RecordType>(type);
    out.payload = device.subspan(payload_at, payload_len);
    off = reader.off;
    ++expect_seq;
    return true;
  }
};

// Recomputes a Seed/Append record's attestation leaf from its bytes
// alone: every carried page is RLE-decoded into a scratch frame and
// digested exactly the way the store digested the live image at commit
// time, so the fold agrees iff the ciphertext was not rewritten.
bool recompute_leaf(std::span<const std::byte> payload,
                    crypto::AttestationLeaf& leaf, std::uint64_t& carried) {
  Reader reader{payload, 0};
  std::int64_t when = 0;
  std::uint64_t page_count = 0;
  VcpuState vcpu;
  std::uint32_t n_pages = 0;
  if (!reader.u64(leaf.epoch) || !reader.i64(when) ||
      !reader.u64(page_count) || !reader.read(&vcpu, sizeof vcpu) ||
      !reader.u32(n_pages)) {
    return false;
  }
  leaf.vcpu_digest = crypto::pod_digest(vcpu);
  Page scratch;
  for (std::uint32_t i = 0; i < n_pages; ++i) {
    std::uint64_t pfn = 0;
    std::uint32_t encoded_len = 0;
    if (!reader.u64(pfn) || !reader.u32(encoded_len)) return false;
    if (reader.remaining() < encoded_len) return false;
    if (!rle::decode(payload.subspan(reader.off, encoded_len),
                     std::span<std::byte>(scratch.data))) {
      return false;
    }
    reader.off += encoded_len;
    leaf.fold_page(pfn, store::page_digest(scratch));
  }
  return reader.u64(carried);
}

}  // namespace

StoreJournal::FsckReport StoreJournal::fsck() const {
  FsckReport report;
  RecordWalk walk{std::span<const std::byte>(log_)};
  RecordWalk::Record record;
  report.attested = crypto_.attest;
  crypto::AttestationChain verifier(crypto_.tenant_key);
  // Truncate records rewind the store's chain to an earlier epoch; the
  // walk mirrors that by re-anchoring the verifier at the root it already
  // trusted for the target epoch.
  std::unordered_map<std::uint64_t, std::uint64_t> roots_by_epoch;

  const auto fail_at = [&](std::size_t frame_off, std::string reason) {
    report.valid_bytes = frame_off;
    report.torn_bytes = log_.size() - frame_off;
    report.bad_record = report.records;
    report.bad_offset = frame_off;
    report.reason = std::move(reason);
    report.error = report.reason;
    return report;  // ok stays false: trust ends at this frame
  };

  while (true) {
    const std::size_t frame_off = walk.off;
    if (!walk.next(record)) break;
    if (crypto_.attest && (record.type == RecordType::Seed ||
                           record.type == RecordType::Append)) {
      crypto::AttestationLeaf leaf;
      std::uint64_t carried = 0;
      if (!recompute_leaf(record.payload, leaf, carried)) {
        return fail_at(frame_off, "attestation: undecodable generation payload");
      }
      if (!verifier.verify_extend(leaf, carried)) {
        return fail_at(frame_off,
                       "attestation: root mismatch (keyed chain rejects "
                       "record bytes)");
      }
      roots_by_epoch[leaf.epoch] = carried;
      ++report.roots_verified;
    } else if (crypto_.attest && record.type == RecordType::Truncate) {
      Reader reader{record.payload, 0};
      std::uint64_t target = 0;
      if (!reader.u64(target) || roots_by_epoch.count(target) == 0) {
        return fail_at(frame_off, "attestation: truncate to unverified epoch");
      }
      verifier.reset(roots_by_epoch.at(target), 0);
    }
    ++report.records;
  }
  report.valid_bytes = walk.off;
  report.torn_bytes = log_.size() - walk.off;
  report.error = walk.error;
  report.ok = report.torn_bytes == 0;
  if (!report.ok) {
    report.bad_record = report.records;
    report.bad_offset = walk.off;
    report.reason = walk.error;
  }
  return report;
}

StoreJournal::Recovered StoreJournal::recover(
    std::span<const std::byte> device, const CostModel& costs,
    const store::StoreConfig& config) {
  Recovered out;
  RecordWalk walk{device};
  RecordWalk::Record record;

  while (walk.next(record)) {
    Reader reader{record.payload, 0};
    out.cost += costs.journal_scan_per_record;
    switch (record.type) {
      case RecordType::Seed: {
        if (out.store != nullptr) {
          throw std::runtime_error("StoreJournal: duplicate Seed record");
        }
        std::uint64_t epoch = 0;
        std::int64_t when = 0;
        std::uint64_t page_count = 0;
        VcpuState vcpu;
        if (!reader.u64(epoch) || !reader.i64(when) ||
            !reader.u64(page_count) || !reader.read(&vcpu, sizeof vcpu)) {
          throw std::runtime_error("StoreJournal: malformed Seed record");
        }
        out.hypervisor = std::make_unique<Hypervisor>(
            static_cast<std::size_t>(page_count) + 64);
        out.image = &out.hypervisor->create_domain(
            "journal-recovery", static_cast<std::size_t>(page_count));
        out.image->pause();
        ForeignMapping image{*out.image};
        reader.off = 0;  // decode_generation re-reads the manifest
        DecodedGeneration gen;
        if (!decode_generation(reader, image, gen)) {
          throw std::runtime_error("StoreJournal: malformed Seed pages");
        }
        out.image->vcpu() = gen.vcpu;
        out.store = std::make_unique<store::CheckpointStore>(costs, config);
        out.cost += out.store->seed(gen.epoch, image, gen.vcpu,
                                    Nanos{gen.now});
        if (config.crypto.attest) {
          std::uint64_t carried = 0;
          if (!reader.u64(carried)) {
            throw std::runtime_error(
                "StoreJournal: Seed record missing attestation root");
          }
          if (out.store->root() != carried) {
            throw crypto::TamperError(
                "StoreJournal: replayed Seed root diverges from carried "
                "root -- refusing recovery");
          }
          out.cost += costs.crypto_root_verify;
        }
        break;
      }
      case RecordType::Append: {
        if (out.store == nullptr) {
          throw std::runtime_error("StoreJournal: Append before Seed");
        }
        std::uint64_t epoch = 0;
        std::int64_t when = 0;
        std::uint64_t page_count = 0;
        if (!reader.u64(epoch) || !reader.i64(when) ||
            !reader.u64(page_count)) {
          throw std::runtime_error("StoreJournal: malformed Append record");
        }
        ForeignMapping image{*out.image};
        reader.off = 0;
        DecodedGeneration gen;
        if (!decode_generation(reader, image, gen)) {
          throw std::runtime_error("StoreJournal: malformed Append pages");
        }
        out.image->vcpu() = gen.vcpu;
        // Serial hashing (no pool): digests are content-determined, so the
        // rebuilt manifests match the originals bit for bit regardless.
        out.cost += out.store->append(gen.epoch, gen.pfns, image, gen.vcpu,
                                      Nanos{gen.now}, nullptr);
        if (config.crypto.attest) {
          std::uint64_t carried = 0;
          if (!reader.u64(carried)) {
            throw std::runtime_error(
                "StoreJournal: Append record missing attestation root");
          }
          if (out.store->root() != carried) {
            throw crypto::TamperError(
                "StoreJournal: replayed Append root diverges from carried "
                "root -- refusing recovery");
          }
          out.cost += costs.crypto_root_verify;
        }
        break;
      }
      case RecordType::Collect:
        if (out.store == nullptr) {
          throw std::runtime_error("StoreJournal: Collect before Seed");
        }
        out.cost += out.store->collect();
        break;
      case RecordType::AuditFailure:
        if (out.store == nullptr) {
          throw std::runtime_error("StoreJournal: AuditFailure before Seed");
        }
        out.store->note_audit_failure();
        break;
      case RecordType::Pin: {
        std::uint64_t epoch = 0;
        if (out.store == nullptr || !reader.u64(epoch)) {
          throw std::runtime_error("StoreJournal: malformed Pin record");
        }
        out.store->pin(epoch);
        break;
      }
      case RecordType::Truncate: {
        std::uint64_t epoch = 0;
        if (out.store == nullptr || !reader.u64(epoch)) {
          throw std::runtime_error("StoreJournal: malformed Truncate record");
        }
        // Mirror Checkpointer::rollback_to: the image rewinds from the
        // newest generation to the target *before* the chain truncates
        // (rewind needs the newest manifests to compute the page diff).
        ForeignMapping image{*out.image};
        const store::CheckpointStore::Restored restored =
            out.store->rewind(epoch, image);
        out.image->vcpu() = restored.vcpu;
        out.cost += restored.cost + out.store->truncate_to(epoch);
        break;
      }
    }
    ++out.records_applied;
  }

  out.torn_bytes_truncated = device.size() - walk.off;
  if (out.store == nullptr) {
    throw std::runtime_error(
        "StoreJournal: no recoverable Seed record in journal");
  }
  if (out.torn_bytes_truncated > 0) {
    CRIMES_LOG(Warn, "journal")
        << "recovery truncated a torn tail of " << out.torn_bytes_truncated
        << " byte(s) (" << walk.error << ") after " << out.records_applied
        << " valid record(s)";
  }
  return out;
}

}  // namespace crimes::replication
