// Epoch-numbered fencing leases (DESIGN.md section 11).
//
// The lease authority is colocated with the standby host (in a real
// deployment it would be an external arbiter; colocating it here keeps the
// failure domains honest -- losing the standby loses the authority, and no
// promotion can happen anyway). It hands out time-bounded leases stamped
// with the current *fencing epoch*. Promotion advances the fencing epoch,
// which invalidates every outstanding lease permanently; and promotion is
// only legal once the last grant has expired, so at any virtual instant at
// most one host holds a valid lease. That pair of rules is the whole
// split-brain argument:
//
//   - a partitioned primary cannot renew (the renewal rides the broken
//     link), so its lease dies of old age no later than grant + term;
//   - the standby waits out that expiry before promoting, then bumps the
//     fencing epoch -- the old primary's token can never validate again,
//     even if the partition heals.
//
// The primary checks `Lease::valid(now)` before every commit/release; a
// stale lease means self-fence: keep speculating if it likes, but nothing
// escapes the host.
#pragma once

#include "common/sim_clock.h"

#include <cstdint>

namespace crimes::replication {

struct Lease {
  std::uint64_t token = 0;  // fencing epoch at grant time
  Nanos expires_at{0};

  [[nodiscard]] bool held() const { return expires_at.count() > 0; }
  // Time-valid. Token staleness is the authority's side of the check;
  // the holder can only see the clock.
  [[nodiscard]] bool valid(Nanos now) const {
    return held() && now < expires_at;
  }
};

class LeaseAuthority {
 public:
  explicit LeaseAuthority(Nanos term) : term_(term) {}

  // Grants (or renews) the primary's lease. Only callable while the link
  // to the authority is up -- the caller models the partition.
  [[nodiscard]] Lease grant(Nanos now) {
    const Lease lease{.token = fencing_epoch_, .expires_at = now + term_};
    if (lease.expires_at > last_expiry_) last_expiry_ = lease.expires_at;
    return lease;
  }

  // Both sides of the fence: a token is good only while it matches the
  // current fencing epoch AND its time bound holds.
  [[nodiscard]] bool validates(const Lease& lease, Nanos now) const {
    return lease.token == fencing_epoch_ && lease.valid(now);
  }

  // Earliest instant promotion is allowed: every lease ever granted has
  // expired by then.
  [[nodiscard]] Nanos promotion_safe_at() const { return last_expiry_; }

  // Promotion: advance the fencing epoch. Returns the new token. Requires
  // now >= promotion_safe_at() -- enforced by the caller (StandbyHost),
  // which waits the old lease out on the virtual clock.
  std::uint64_t advance_epoch() { return ++fencing_epoch_; }

  [[nodiscard]] std::uint64_t fencing_epoch() const { return fencing_epoch_; }
  [[nodiscard]] Nanos term() const { return term_; }

 private:
  Nanos term_;
  std::uint64_t fencing_epoch_ = 1;
  Nanos last_expiry_{0};
};

}  // namespace crimes::replication
