#include "replication/replicator.h"

#include "common/log.h"
#include "fault/fault_injector.h"
#include "store/page_store.h"
#include "telemetry/telemetry.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace crimes::replication {

Replicator::Replicator(const CostModel& costs, ReplicationConfig config,
                       Vm& source, Vm& standby,
                       std::uint64_t seed_generation)
    : costs_(&costs),
      config_(std::move(config)),
      source_(&source),
      standby_(&standby),
      acked_through_(seed_generation),
      received_base_(seed_generation) {
  if (config_.window == 0) {
    throw std::invalid_argument("ReplicationConfig: window must be >= 1");
  }
  if (config_.compress) {
    transport_ = std::make_unique<CompressedSocketTransport>(costs);
  } else {
    transport_ = std::make_unique<SocketTransport>(costs);
  }
  transport_->set_zero_copy(config_.zero_copy);
}

void Replicator::set_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    lag_gauge_ = nullptr;
    ack_delay_ = nullptr;
    return;
  }
  lag_gauge_ = &telemetry->metrics.gauge("replication.lag");
  ack_delay_ = &telemetry->metrics.histogram("replication.ack_delay_ns");
}

void Replicator::update_lag_gauge() {
  if (lag_gauge_ != nullptr) {
    lag_gauge_->set(static_cast<double>(window_.size()));
  }
}

Replicator::SendResult Replicator::on_commit(std::uint64_t generation,
                                             std::span<const Pfn> dirty,
                                             const VcpuState& vcpu, Nanos now,
                                             std::uint64_t root) {
  SendResult result;
  advance(now);
  if (partitioned_) {
    // The socket errors immediately; the generation never leaves the
    // primary. Its held outputs can only be covered by an ack that will
    // never come -- exactly the state fencing exists for.
    ++dropped_;
    result.dropped = true;
    chain_gap_ = true;  // later roots can no longer chain from our state
    return result;
  }

  // Backpressure: a full window stalls the primary until the oldest
  // in-flight generation acknowledges. The link is healthy here (a
  // partition empties into the dropped path above), so that ack has a
  // definite virtual arrival time.
  while (window_.size() >= config_.window) {
    const Nanos wake = window_.front().ack_at;
    result.stall += wake - now;
    now = wake;
    advance(now);
  }
  total_stall_ += result.stall;

  // Undo log first: the standby's bytes + vCPU before this generation, so
  // a partition or promotion can un-apply it if it never "arrives".
  InFlight entry;
  entry.generation = generation;
  entry.root = root;
  entry.prior_vcpu = standby_->vcpu();
  entry.undo.reserve(dirty.size());
  {
    ForeignMapping src{*source_};
    ForeignMapping dst{*standby_};
    for (const Pfn pfn : dirty) entry.undo.emplace_back(pfn, dst.peek(pfn));
    // The real byte movement, through the real Remus socket path (cipher,
    // and optionally XOR-delta + RLE against the standby's stale copy).
    const Nanos transfer = transport_->copy(src, dst, dirty);
    standby_->vcpu() = vcpu;

    // Attested apply: the standby recomputes this generation's leaf from
    // the bytes it just wrote -- not from anything the primary claims --
    // and extends its trusted root only if the carried root matches
    // (Buhren et al.: verify before extending trust).
    if (attest_ && !chain_gap_) {
      std::uint64_t claimed = root;
      if (faults_ != nullptr && !dirty.empty() &&
          faults_->tampers_replication()) {
        // In-flight ciphertext corruption: one applied standby byte flips.
        const std::size_t victim = static_cast<std::size_t>(
            faults_->tamper_victim() % dirty.size());
        dst.page(dirty[victim]).data[kPageSize / 2] ^= std::byte{0x08};
        CRIMES_LOG(Warn, "replicator")
            << "injected replication tamper on generation " << generation;
      }
      if (faults_ != nullptr && faults_->replays_stale_root()) {
        // The wire adversary substitutes the previous root for this one.
        claimed = last_root_sent_;
        CRIMES_LOG(Warn, "replicator")
            << "injected stale-root replay on generation " << generation;
      }
      crypto::AttestationLeaf leaf;
      leaf.epoch = generation;
      leaf.vcpu_digest = crypto::pod_digest(standby_->vcpu());
      for (const Pfn pfn : dirty) {
        leaf.fold_page(pfn.raw, store::page_digest(dst.peek(pfn)));
      }
      result.verify_cost = costs_->store_hash_per_page * dirty.size() +
                           costs_->crypto_leaf_extend +
                           costs_->crypto_root_verify;
      ++roots_verified_;
      if (!chain_.verify_extend(leaf, claimed)) {
        chain_intact_ = false;
        ++tampers_detected_;
        CRIMES_LOG(Error, "replicator")
            << "attestation verify FAILED for generation " << generation
            << " -- trust not extended; promotion from this stream will "
               "be refused";
      }
    }
    last_root_sent_ = root;

    // Virtual timeline: the link serializes transfers; arrival adds a wire
    // hop plus the standby-side apply; the ack rides one hop back.
    entry.sent_at = now;
    const Nanos send_start = std::max(now, link_busy_until_);
    link_busy_until_ = send_start + transfer;
    entry.recv_at = link_busy_until_ + costs_->replication_one_way +
                    costs_->replication_apply_per_page * dirty.size();
    entry.ack_at = entry.recv_at + costs_->replication_one_way;
  }
  if (ack_delay_ != nullptr) {
    ack_delay_->record(
        static_cast<std::uint64_t>((entry.ack_at - entry.sent_at).count()));
  }
  window_.push_back(std::move(entry));
  max_in_flight_ = std::max(max_in_flight_, window_.size());
  ++sent_;
  result.charge = costs_->replication_frame;
  update_lag_gauge();
  return result;
}

void Replicator::advance(Nanos now) {
  while (!window_.empty() && !window_.front().ack_lost &&
         window_.front().ack_at <= now) {
    acked_through_ = window_.front().generation;
    received_base_ = window_.front().generation;
    base_root_ = window_.front().root;
    window_.pop_front();
  }
  update_lag_gauge();
}

std::uint64_t Replicator::received_through(Nanos now) const {
  std::uint64_t through = received_base_;
  for (const InFlight& entry : window_) {
    if (entry.lost || entry.recv_at > now) break;
    through = entry.generation;
  }
  return through;
}

void Replicator::partition(Nanos now) {
  if (partitioned_) return;
  advance(now);  // acks already home are home
  partitioned_ = true;
  partitioned_at_ = now;
  for (InFlight& entry : window_) {
    // recv times are monotone (FIFO link), so the lost entries form the
    // window's suffix; the prefix was received but its acks are gone.
    if (entry.recv_at > now) entry.lost = true;
    entry.ack_lost = true;
  }
  CRIMES_LOG(Warn, "replicator")
      << "link partitioned at " << to_ms(now) << " ms with "
      << window_.size() << " generation(s) in flight";
}

Nanos Replicator::rollback_unreceived(Nanos now, std::size_t* generations,
                                      std::size_t* pages) {
  Nanos cost{0};
  ForeignMapping dst{*standby_};
  while (!window_.empty() &&
         (window_.back().lost || window_.back().recv_at > now)) {
    InFlight& entry = window_.back();
    for (auto it = entry.undo.rbegin(); it != entry.undo.rend(); ++it) {
      std::memcpy(dst.page(it->first).data.data(), it->second.data.data(),
                  kPageSize);
    }
    standby_->vcpu() = entry.prior_vcpu;
    cost += costs_->replication_apply_per_page * entry.undo.size() +
            costs_->replication_frame;
    if (generations != nullptr) ++*generations;
    if (pages != nullptr) *pages += entry.undo.size();
    window_.pop_back();
  }
  // Trust rewinds with the bytes: the chain re-anchors at the newest
  // generation the standby still holds.
  if (attest_) {
    chain_.reset(window_.empty() ? base_root_ : window_.back().root, 0);
  }
  return cost;
}

Replicator::DrainReport Replicator::drain(Nanos now) {
  advance(now);
  DrainReport report;
  report.cost =
      rollback_unreceived(now, &report.rolled_back, &report.pages_rolled_back);
  // Whatever survived the rollback was fully received; the stream is
  // consumed and the window closes.
  while (!window_.empty()) {
    received_base_ = window_.front().generation;
    base_root_ = window_.front().root;
    window_.pop_front();
  }
  report.received_through = received_base_;
  report.chain_verified = !attest_ || chain_intact_;
  report.trusted_root = base_root_;
  update_lag_gauge();
  return report;
}

Nanos Replicator::quiesce(Nanos now) {
  const DrainReport report = drain(now);
  CRIMES_LOG(Info, "replicator")
      << "quiesced: window released, " << report.rolled_back
      << " unreceived generation(s) rolled back, standby at generation "
      << report.received_through;
  return report.cost;
}

}  // namespace crimes::replication
