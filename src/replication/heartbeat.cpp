#include "replication/heartbeat.h"

#include <algorithm>
#include <cmath>

namespace crimes::replication {

void HeartbeatDetector::record_heartbeat(Nanos now) {
  if (seen_ > 0) {
    if (now <= last_) return;  // duplicate or reordered
    intervals_.push_back(now - last_);
    while (intervals_.size() > config_.window) intervals_.pop_front();
  }
  last_ = now;
  ++seen_;
}

void HeartbeatDetector::model(double& mean_ns, double& stddev_ns) const {
  if (intervals_.empty()) {
    mean_ns = static_cast<double>(config_.interval.count());
    stddev_ns = mean_ns * config_.min_stddev_fraction;
    return;
  }
  double sum = 0.0;
  for (const Nanos i : intervals_) sum += static_cast<double>(i.count());
  mean_ns = sum / static_cast<double>(intervals_.size());
  double var = 0.0;
  for (const Nanos i : intervals_) {
    const double d = static_cast<double>(i.count()) - mean_ns;
    var += d * d;
  }
  var /= static_cast<double>(intervals_.size());
  stddev_ns = std::max(std::sqrt(var), mean_ns * config_.min_stddev_fraction);
}

double HeartbeatDetector::phi(Nanos now) const {
  if (seen_ == 0 || now <= last_) return 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  model(mean, stddev);
  const double elapsed = static_cast<double>((now - last_).count());
  // P(interval > elapsed) under N(mean, stddev), via the complementary
  // error function; clamped away from zero so phi stays finite.
  const double z = (elapsed - mean) / (stddev * std::sqrt(2.0));
  const double p = std::max(0.5 * std::erfc(z), 1e-300);
  return -std::log10(p);
}

Nanos HeartbeatDetector::suspicion_time(Nanos from) const {
  if (seen_ == 0) return Nanos::max();  // never heard from the primary
  if (suspects(from)) return from;
  // phi is monotone in `now` past the last arrival; bisect to the nanosecond.
  double mean = 0.0;
  double stddev = 0.0;
  model(mean, stddev);
  Nanos lo = std::max(from, last_);
  // Upper bound: mean + enough sigmas that erfc underflows past any
  // reasonable threshold (40 sigma ~ phi 350).
  Nanos hi = last_ + Nanos{static_cast<std::int64_t>(mean + 40.0 * stddev)};
  if (!suspects(hi)) return Nanos::max();
  while (lo + Nanos{1} < hi) {
    const Nanos mid = lo + (hi - lo) / 2;
    if (suspects(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace crimes::replication
