// Phi-accrual failure detector (Hayashibara et al., adapted): the standby
// host's view of whether the primary is still alive.
//
// The primary sends one heartbeat per epoch; the detector keeps a sliding
// window of inter-arrival intervals and models them as a normal
// distribution. Suspicion is the continuous value
//
//   phi(now) = -log10( P(interval > now - last_arrival) )
//
// so a heartbeat that is merely late raises phi gradually while a dead
// primary drives it past any threshold. Everything runs on the virtual
// clock -- for a fixed fault seed the suspicion time is bit-reproducible.
#pragma once

#include "common/sim_clock.h"
#include "replication/replication_config.h"

#include <cstddef>
#include <deque>

namespace crimes::replication {

class HeartbeatDetector {
 public:
  explicit HeartbeatDetector(HeartbeatConfig config) : config_(config) {}

  // A heartbeat arrived at `now` (standby clock == primary clock in the
  // simulator). Out-of-order arrivals are ignored.
  void record_heartbeat(Nanos now);

  // Current suspicion level. Zero before the first heartbeat (nothing to
  // miss yet) and right after an arrival.
  [[nodiscard]] double phi(Nanos now) const;

  [[nodiscard]] bool suspects(Nanos now) const {
    return phi(now) > config_.phi_threshold;
  }

  // Earliest time >= `from` at which phi crosses the threshold assuming no
  // further heartbeat arrives. Used to fast-forward the virtual clock to
  // the detection instant instead of polling it.
  [[nodiscard]] Nanos suspicion_time(Nanos from) const;

  [[nodiscard]] std::size_t heartbeats_seen() const { return seen_; }
  [[nodiscard]] Nanos last_arrival() const { return last_; }
  [[nodiscard]] const HeartbeatConfig& config() const { return config_; }

 private:
  // Modeled mean/stddev of the inter-arrival distribution, with the
  // configured variance floor applied. Falls back to the configured
  // interval until two heartbeats have arrived.
  void model(double& mean_ns, double& stddev_ns) const;

  HeartbeatConfig config_;
  std::deque<Nanos> intervals_;
  Nanos last_{0};
  std::size_t seen_ = 0;
};

}  // namespace crimes::replication
