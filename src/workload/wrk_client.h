// Closed-loop HTTP load generator in the style of wrk (section 5.1).
//
// Each of N connections runs its own loop: TCP handshake, then
// `requests_per_connection` request/response exchanges, then close and
// reopen. Because it is closed-loop ("new connections are not created
// until old ones complete", section 5.4), output buffering throttles the
// offered load itself -- which is exactly why the paper's Figure 7
// throughput collapses under Synchronous Safety at large intervals.
#pragma once

#include "common/sim_clock.h"
#include "net/output_buffer.h"
#include "workload/web_server.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace crimes {

struct WrkStats {
  std::uint64_t completed_requests = 0;
  std::uint64_t completed_handshakes = 0;
  Nanos total_latency{0};
  Nanos max_latency{0};
  Nanos first_request{0};
  Nanos last_response{0};
  std::vector<Nanos> samples;  // one latency per completed request

  [[nodiscard]] double mean_latency_ms() const {
    return completed_requests == 0
               ? 0.0
               : to_ms(total_latency) /
                     static_cast<double>(completed_requests);
  }
  // Latency percentile in [0, 100], like wrk's --latency histogram.
  [[nodiscard]] double percentile_ms(double p) const;
  // Requests per second over the active window.
  [[nodiscard]] double throughput_rps(Nanos run_duration) const {
    const double secs = to_sec(run_duration);
    return secs <= 0.0 ? 0.0
                       : static_cast<double>(completed_requests) / secs;
  }
};

class WrkClient {
 public:
  WrkClient(WebServerWorkload& server, ExternalNetwork& network,
            std::size_t connections, std::size_t requests_per_connection = 8);

  // Opens all connections (staggered by a few microseconds each) and hooks
  // the external network's delivery callback.
  void start(Nanos at);

  [[nodiscard]] const WrkStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t connections() const { return conns_.size(); }

 private:
  struct Conn {
    bool established = false;
    std::size_t requests_done = 0;
  };

  void open_connection(std::uint64_t conn, Nanos at);
  void send_request(std::uint64_t conn, Nanos at);
  void on_delivered(const DeliveredPacket& d);

  WebServerWorkload* server_;
  ExternalNetwork* network_;
  std::size_t requests_per_connection_;
  std::vector<Conn> conns_;
  std::unordered_map<std::uint64_t, Nanos> request_sent_at_;
  std::uint64_t next_request_id_ = 1;
  WrkStats stats_;
};

}  // namespace crimes
