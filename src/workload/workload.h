// Workload interface: a program running inside the guest VM, driven in
// epoch-sized slices by the CRIMES core (speculative execution runs the VM
// for one epoch, then suspends it for the audit).
#pragma once

#include "common/sim_clock.h"

#include <cstdint>
#include <string>

namespace crimes {

class Workload {
 public:
  virtual ~Workload();

  [[nodiscard]] virtual std::string name() const = 0;

  // Execute `duration` of guest virtual time starting at `start`. The
  // workload performs its memory writes / network sends for that window.
  virtual void run_epoch(Nanos start, Nanos duration) = 0;

  // True once the program has completed its work (batch workloads);
  // servers run forever and keep the default.
  [[nodiscard]] virtual bool finished() const { return false; }

  // Cumulative count of instrumentable memory accesses -- the accesses an
  // inline tool like AddressSanitizer would check. Used by the AS baseline.
  [[nodiscard]] virtual std::uint64_t total_accesses() const { return 0; }

  // Demand multiplier for host-level load scenarios (flash crowds, noisy
  // neighbours): 1.0 is the workload's calibrated rate. Workloads that
  // cannot vary their demand keep the default no-op.
  virtual void set_intensity(double factor) { (void)factor; }
};

}  // namespace crimes
