#include "workload/overflow.h"

#include <stdexcept>

namespace crimes {

OverflowWorkload::OverflowWorkload(GuestKernel& kernel, OverflowScript script,
                                   std::uint64_t seed)
    : kernel_(&kernel), script_(script), rng_(seed) {
  if (script_.object_size < 8) {
    throw std::invalid_argument("OverflowWorkload: objects must hold a u64");
  }
  objects_.reserve(script_.object_count);
  for (std::size_t i = 0; i < script_.object_count; ++i) {
    objects_.push_back(kernel_->heap().malloc(script_.object_size));
  }
  victim_ = objects_[script_.object_count / 2];
  const auto live = kernel_->heap().live_objects();
  victim_canary_ = live.at(victim_.value());
}

void OverflowWorkload::run_epoch(Nanos start, Nanos duration) {
  // Benign in-bounds writes across the object pool.
  const auto touches = static_cast<std::uint64_t>(
      script_.benign_touches_per_ms * to_ms(duration));
  for (std::uint64_t i = 0; i < touches; ++i) {
    const Vaddr obj = objects_[rng_.next_below(objects_.size())];
    const std::uint64_t off =
        rng_.next_below((script_.object_size - 8) / 8 + 1) * 8;
    kernel_->write_value<std::uint64_t>(obj + off, rng_.next_u64());
  }
  accesses_ += touches;

  const Nanos before = elapsed_;
  elapsed_ += duration;
  if (!attack_instr_ && script_.attack_at >= before &&
      script_.attack_at < elapsed_) {
    attack_instr_ = kernel_->attack_heap_overflow(
        victim_, script_.object_size, script_.overrun_bytes);
    attack_abs_time_ = start + (script_.attack_at - before);
  }
  kernel_->tick(static_cast<std::uint64_t>(duration.count()));
}

}  // namespace crimes
