// The buffer-overflow workload of case study 1 (section 5.5): a C-style
// program using the canary-placing allocator that, at a scripted time,
// writes past the end of one of its heap objects -- the memcpy-with-wrong-
// length bug class. Ground truth about the attack (time, victim object,
// offending instruction index) is exposed so tests and the Figure 8 bench
// can validate CRIMES's detection, replay pinpointing and forensics.
#pragma once

#include "common/rng.h"
#include "guestos/guest_kernel.h"
#include "workload/workload.h"

#include <optional>
#include <vector>

namespace crimes {

struct OverflowScript {
  // Guest *work time* at which the overflow fires (independent of startup
  // costs and checkpoint pauses on the virtual clock).
  Nanos attack_at = millis(125);
  std::size_t object_count = 64;
  std::size_t object_size = 256;
  std::size_t overrun_bytes = 16;
  double benign_touches_per_ms = 20.0;
};

class OverflowWorkload final : public Workload {
 public:
  OverflowWorkload(GuestKernel& kernel, OverflowScript script,
                   std::uint64_t seed = 1234);

  [[nodiscard]] std::string name() const override { return "overflow-app"; }
  void run_epoch(Nanos start, Nanos duration) override;
  [[nodiscard]] std::uint64_t total_accesses() const override {
    return accesses_;
  }

  [[nodiscard]] bool attacked() const { return attack_instr_.has_value(); }
  // Absolute virtual time of the attack (valid once attacked()).
  [[nodiscard]] Nanos attack_time() const { return attack_abs_time_; }
  [[nodiscard]] std::optional<std::uint64_t> attack_instr() const {
    return attack_instr_;
  }
  [[nodiscard]] Vaddr victim_object() const { return victim_; }
  [[nodiscard]] Vaddr victim_canary() const { return victim_canary_; }

 private:
  GuestKernel* kernel_;
  OverflowScript script_;
  Rng rng_;
  std::vector<Vaddr> objects_;
  Vaddr victim_{0};
  Vaddr victim_canary_{0};
  std::optional<std::uint64_t> attack_instr_;
  Nanos attack_abs_time_{0};
  Nanos elapsed_{0};
  std::uint64_t accesses_ = 0;
};

}  // namespace crimes
