#include "workload/workload.h"

namespace crimes {

Workload::~Workload() = default;

}  // namespace crimes
