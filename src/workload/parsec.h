// Synthetic stand-ins for the PARSEC 3.0 benchmarks (Table 2 of the paper).
//
// Each benchmark is characterized by the properties that drive the paper's
// checkpointing results: working-set size, page-touch rate (which yields
// the dirty-pages-per-epoch curves of Figure 5c through a saturating
// random-touch process), instrumentable-access rate (which yields the
// AddressSanitizer slowdown of Figure 3), and run length. The rates are
// calibrated so the per-benchmark dirty-page volumes match the relative
// behaviour the paper reports (e.g. fluidanimate dirties far more pages
// per epoch than raytrace).
#pragma once

#include "common/rng.h"
#include "guestos/guest_kernel.h"
#include "workload/workload.h"

#include <string>
#include <vector>

namespace crimes {

struct ParsecProfile {
  std::string name;
  std::size_t working_set_pages = 4096;
  double touches_per_ms = 14.0;     // page-touch (write) rate
  double accesses_per_us = 200.0;   // instrumentable accesses (ASan)
  double duration_ms = 6000.0;      // virtual run length

  // Expected distinct pages dirtied in an epoch of length `epoch_ms`
  // under the uniform-random-touch model: W * (1 - exp(-r*T/W)).
  [[nodiscard]] double expected_dirty_pages(double epoch_ms) const;

  // A guest sized to hold this benchmark's working set.
  [[nodiscard]] GuestConfig recommended_guest() const;

  [[nodiscard]] static const std::vector<ParsecProfile>& suite();
  [[nodiscard]] static ParsecProfile by_name(const std::string& name);
};

class ParsecWorkload final : public Workload {
 public:
  ParsecWorkload(GuestKernel& kernel, ParsecProfile profile,
                 std::uint64_t seed = 42);

  [[nodiscard]] std::string name() const override { return profile_.name; }
  void run_epoch(Nanos start, Nanos duration) override;
  [[nodiscard]] bool finished() const override;
  [[nodiscard]] std::uint64_t total_accesses() const override {
    return accesses_;
  }
  // Scales the page-touch and access rates (flash-crowd / noisy-neighbour
  // scenarios); the saturating dirty-page model keeps its shape.
  void set_intensity(double factor) override { intensity_ = factor; }
  [[nodiscard]] double intensity() const { return intensity_; }

  [[nodiscard]] const ParsecProfile& profile() const { return profile_; }
  [[nodiscard]] Nanos elapsed() const { return elapsed_; }

 private:
  GuestKernel* kernel_;
  ParsecProfile profile_;
  Rng rng_;
  Vaddr buffer_;                  // the working-set arena (one big malloc)
  std::vector<Vaddr> objects_;    // small heap objects, churned over time
  Nanos elapsed_{0};
  std::uint64_t accesses_ = 0;
  double touch_carry_ = 0.0;      // fractional touches carried across epochs
  double intensity_ = 1.0;        // demand multiplier (host load scenarios)
};

}  // namespace crimes
