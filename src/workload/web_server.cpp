#include "workload/web_server.h"

namespace crimes {

WebServerWorkload::WebServerWorkload(GuestKernel& kernel, VirtualNic& nic,
                                     WebServerProfile profile,
                                     std::uint64_t seed)
    : kernel_(&kernel), nic_(&nic), profile_(profile), rng_(seed) {
  pid_ = kernel_->find_process_by_name("nginx").value_or(
      kernel_->spawn_process("nginx", 33));
  const std::size_t arena_bytes =
      profile_.churn_ws_pages * kPageSize - 2 * kCanaryBytes;
  cache_ = kernel_->heap().malloc(arena_bytes);
  // The listening socket, visible to netscan.
  kernel_->open_socket(SocketInfo{
      .pid = pid_,
      .proto = 6,
      .state = 10,  // LISTEN
      .local_ip = make_ipv4(0, 0, 0, 0),
      .local_port = 80,
      .remote_ip = 0,
      .remote_port = 0,
      .entry_va = Vaddr{0},
  });
}

void WebServerWorkload::churn(Nanos duration) {
  const double ms = to_ms(duration);
  const double exact = profile_.churn_touches_per_ms * ms + touch_carry_;
  const auto touches = static_cast<std::uint64_t>(exact);
  touch_carry_ = exact - static_cast<double>(touches);
  const std::size_t usable =
      profile_.churn_ws_pages * kPageSize - 2 * kCanaryBytes - 8;
  for (std::uint64_t i = 0; i < touches; ++i) {
    const std::uint64_t page = rng_.next_below(profile_.churn_ws_pages);
    std::uint64_t off =
        page * kPageSize + rng_.next_below(kPageSize / 8) * 8;
    if (off > usable) off = usable;
    kernel_->write_value<std::uint64_t>(cache_ + off, rng_.next_u64());
  }
}

void WebServerWorkload::run_epoch(Nanos start, Nanos duration) {
  churn(duration);

  const Nanos end = start + duration;
  // Serve every message that arrives inside this window. Under Best-Effort
  // safety a reply can reach the client and trigger a new request that
  // lands back inside the same window; the loop keeps draining until the
  // earliest pending arrival is beyond the epoch.
  while (!inbound_.empty() && inbound_.top().arrive_at < end) {
    const InboundMsg msg = inbound_.top();
    inbound_.pop();

    if (msg.kind == PacketKind::Syn) {
      // Handshake reply: immediate (no application service time).
      ++handshakes_served_;
      nic_->send(
          Packet{.flow = msg.conn,
                 .kind = PacketKind::SynAck,
                 .size_bytes = 60,
                 .payload = "SYN-ACK",
                 .request_id = msg.request_id},
          msg.arrive_at);
      continue;
    }

    // HTTP request: touch the served file's pages, then respond.
    ++requests_served_;
    const std::size_t usable =
        profile_.churn_ws_pages * kPageSize - 2 * kCanaryBytes - 8;
    for (std::size_t i = 0; i < profile_.pages_per_request; ++i) {
      const std::uint64_t page = rng_.next_below(profile_.churn_ws_pages);
      std::uint64_t off = page * kPageSize + rng_.next_below(512) * 8;
      if (off > usable) off = usable;
      kernel_->write_value<std::uint64_t>(cache_ + off, rng_.next_u64());
    }
    nic_->send(
        Packet{.flow = msg.conn,
               .kind = PacketKind::Response,
               .size_bytes = 1024,
               .payload = "HTTP/1.1 200 OK\r\nContent-Length: 612\r\n\r\n",
               .request_id = msg.request_id},
        msg.arrive_at + profile_.service_time);
  }

  accesses_ += static_cast<std::uint64_t>(profile_.accesses_per_us *
                                          to_us(duration));
  kernel_->tick(static_cast<std::uint64_t>(duration.count()));
}

}  // namespace crimes
