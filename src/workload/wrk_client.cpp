#include "workload/wrk_client.h"

#include <algorithm>

namespace crimes {

double WrkStats::percentile_ms(double p) const {
  if (samples.empty()) return 0.0;
  std::vector<Nanos> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 *
      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return to_ms(sorted[lo]) * (1.0 - frac) + to_ms(sorted[hi]) * frac;
}

WrkClient::WrkClient(WebServerWorkload& server, ExternalNetwork& network,
                     std::size_t connections,
                     std::size_t requests_per_connection)
    : server_(&server),
      network_(&network),
      requests_per_connection_(requests_per_connection),
      conns_(connections) {
  network_->set_listener(
      [this](const DeliveredPacket& d) { on_delivered(d); });
}

void WrkClient::start(Nanos at) {
  for (std::uint64_t c = 0; c < conns_.size(); ++c) {
    open_connection(c, at + micros(5 * static_cast<double>(c)));
  }
}

void WrkClient::open_connection(std::uint64_t conn, Nanos at) {
  conns_[conn].established = false;
  conns_[conn].requests_done = 0;
  server_->enqueue(InboundMsg{
      .arrive_at = at + network_->wire_latency(),
      .conn = conn,
      .request_id = 0,
      .kind = PacketKind::Syn,
  });
}

void WrkClient::send_request(std::uint64_t conn, Nanos at) {
  const std::uint64_t id = next_request_id_++;
  request_sent_at_.emplace(id, at);
  if (stats_.first_request == Nanos::zero()) stats_.first_request = at;
  server_->enqueue(InboundMsg{
      .arrive_at = at + network_->wire_latency(),
      .conn = conn,
      .request_id = id,
      .kind = PacketKind::Request,
  });
}

void WrkClient::on_delivered(const DeliveredPacket& d) {
  const Packet& p = d.packet;
  if (p.flow >= conns_.size()) return;  // not ours (e.g. malware exfil)
  Conn& conn = conns_[p.flow];

  if (p.kind == PacketKind::SynAck) {
    conn.established = true;
    ++stats_.completed_handshakes;
    // Final ACK piggybacks on the first request.
    send_request(p.flow, d.delivered_at);
    return;
  }
  if (p.kind != PacketKind::Response) return;

  if (auto it = request_sent_at_.find(p.request_id);
      it != request_sent_at_.end()) {
    const Nanos latency = d.delivered_at - it->second;
    stats_.total_latency += latency;
    stats_.samples.push_back(latency);
    stats_.max_latency = std::max(stats_.max_latency, latency);
    ++stats_.completed_requests;
    stats_.last_response = d.delivered_at;
    request_sent_at_.erase(it);
  }

  if (++conn.requests_done < requests_per_connection_) {
    send_request(p.flow, d.delivered_at);  // zero think time
  } else {
    // Close and immediately reopen: fresh three-way handshake.
    open_connection(p.flow, d.delivered_at);
  }
}

}  // namespace crimes
