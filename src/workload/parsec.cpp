#include "workload/parsec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crimes {

double ParsecProfile::expected_dirty_pages(double epoch_ms) const {
  const double w = static_cast<double>(working_set_pages);
  return w * (1.0 - std::exp(-touches_per_ms * epoch_ms / w));
}

GuestConfig ParsecProfile::recommended_guest() const {
  GuestConfig config;
  // A 1 GiB guest, matching the paper's testbed VMs (the bit-by-bit dirty
  // scan cost depends on total guest size, not the working set). Profiles
  // whose working set outgrows that get working set + slack instead; the
  // page table (8 B per page) is covered by the cushion either way.
  // Frames are lazily allocated, so an idle 1 GiB guest costs only its
  // touched pages of host memory.
  config.page_count = std::max<std::size_t>(working_set_pages + 1024,
                                            262144);
  return config;
}

const std::vector<ParsecProfile>& ParsecProfile::suite() {
  // Working sets / touch rates calibrated so dirty-pages-per-200ms-epoch
  // match the relative magnitudes behind Figures 3-5: raytrace dirties the
  // least, fluidanimate by far the most (the paper reports its dirty rate
  // made unoptimized Remus ~4.7x slower than native). Access rates are set
  // so the AS bars land in the 1.3-1.7x band of Figure 3.
  static const std::vector<ParsecProfile> suite_{
      {"blackscholes", 3600, 12.5, 200.0, 6000.0},
      {"swaptions", 4200, 14.6, 175.0, 6000.0},
      {"vips", 28000, 97.0, 300.0, 6000.0},
      {"radiosity", 6400, 22.2, 240.0, 6000.0},
      {"raytrace", 1600, 5.5, 150.0, 6000.0},
      {"volrend", 5200, 18.0, 180.0, 6000.0},
      {"bodytrack", 18000, 62.4, 280.0, 6000.0},
      {"fluidanimate", 100000, 602.0, 320.0, 6000.0},
      {"freqmine", 8000, 27.7, 330.0, 6000.0},
      {"water-spatial", 3000, 10.4, 160.0, 6000.0},
      {"water-n2", 2400, 8.3, 170.0, 6000.0},
  };
  return suite_;
}

ParsecProfile ParsecProfile::by_name(const std::string& name) {
  for (const auto& p : suite()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("ParsecProfile::by_name: unknown benchmark " + name);
}

ParsecWorkload::ParsecWorkload(GuestKernel& kernel, ParsecProfile profile,
                               std::uint64_t seed)
    : kernel_(&kernel), profile_(std::move(profile)), rng_(seed) {
  // One large arena holds the working set (with its own trailing canary),
  // plus a pool of small objects churned during the run so canary scans
  // always have live entries to validate.
  const std::size_t arena_bytes =
      profile_.working_set_pages * kPageSize - 2 * kCanaryBytes;
  buffer_ = kernel_->heap().malloc(arena_bytes);
  for (int i = 0; i < 48; ++i) {
    objects_.push_back(
        kernel_->heap().malloc(64 + rng_.next_below(448)));
  }
}

void ParsecWorkload::run_epoch(Nanos start, Nanos duration) {
  (void)start;
  const double ms = to_ms(duration);

  // Page touches: uniform over the working set, so distinct-pages-per-
  // epoch follows the saturating curve of Figure 5c.
  const double exact = profile_.touches_per_ms * intensity_ * ms + touch_carry_;
  const auto touches = static_cast<std::uint64_t>(exact);
  touch_carry_ = exact - static_cast<double>(touches);

  const std::size_t usable =
      profile_.working_set_pages * kPageSize - 2 * kCanaryBytes - 8;
  for (std::uint64_t i = 0; i < touches; ++i) {
    const std::uint64_t page = rng_.next_below(profile_.working_set_pages);
    std::uint64_t off = page * kPageSize + (rng_.next_below(kPageSize / 8) * 8);
    if (off > usable) off = usable;
    kernel_->write_value<std::uint64_t>(buffer_ + off, rng_.next_u64());
  }

  // Heap churn: free one object, allocate another (keeps the canary table
  // warm and exercises the allocator's reuse path).
  if (!objects_.empty() && rng_.next_bool(0.5)) {
    const std::size_t victim = rng_.next_below(objects_.size());
    kernel_->heap().free(objects_[victim]);
    objects_[victim] = kernel_->heap().malloc(64 + rng_.next_below(448));
    // Touch the fresh object in-bounds.
    kernel_->write_value<std::uint64_t>(objects_[victim], rng_.next_u64());
  }

  accesses_ += static_cast<std::uint64_t>(profile_.accesses_per_us *
                                          intensity_ * to_us(duration));
  elapsed_ += duration;
  kernel_->tick(static_cast<std::uint64_t>(duration.count()));
}

bool ParsecWorkload::finished() const {
  return to_ms(elapsed_) >= profile_.duration_ms;
}

}  // namespace crimes
