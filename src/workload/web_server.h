// nginx-like web server workload (section 5.4's latency-sensitive VM).
//
// The server consumes inbound messages (SYNs and HTTP requests) from a
// time-ordered queue, answers them through the virtual NIC -- where the
// replies fall under CRIMES's output buffering -- and churns guest pages
// like a real server's page cache. The light/medium/high profiles are
// calibrated so the dirty-pages-per-20ms-epoch match Table 1's workloads.
#pragma once

#include "common/rng.h"
#include "guestos/guest_kernel.h"
#include "net/virtual_nic.h"
#include "workload/workload.h"

#include <cstdint>
#include <queue>
#include <vector>

namespace crimes {

struct WebServerProfile {
  std::size_t churn_ws_pages = 3000;  // page-cache working set
  double churn_touches_per_ms = 95.0;
  std::size_t pages_per_request = 2;
  Nanos service_time = micros(130);
  double accesses_per_us = 120.0;

  // Table 1's three intensities (dirty pages/20ms epoch: ~1.2k/1.4k/1.9k).
  [[nodiscard]] static WebServerProfile light() {
    return {.churn_touches_per_ms = 80.0};
  }
  [[nodiscard]] static WebServerProfile medium() {
    return {.churn_touches_per_ms = 95.0};
  }
  [[nodiscard]] static WebServerProfile high() {
    return {.churn_touches_per_ms = 140.0};
  }
};

struct InboundMsg {
  Nanos arrive_at{0};
  std::uint64_t conn = 0;
  std::uint64_t request_id = 0;
  PacketKind kind = PacketKind::Request;

  friend bool operator>(const InboundMsg& a, const InboundMsg& b) {
    return a.arrive_at > b.arrive_at;
  }
};

class WebServerWorkload final : public Workload {
 public:
  WebServerWorkload(GuestKernel& kernel, VirtualNic& nic,
                    WebServerProfile profile, std::uint64_t seed = 7);

  [[nodiscard]] std::string name() const override { return "nginx"; }
  void run_epoch(Nanos start, Nanos duration) override;
  [[nodiscard]] std::uint64_t total_accesses() const override {
    return accesses_;
  }

  // Client side injects inbound traffic here (inbound is not buffered;
  // only the VM's *outputs* are).
  void enqueue(InboundMsg msg) { inbound_.push(msg); }

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_;
  }
  [[nodiscard]] std::uint64_t handshakes_served() const {
    return handshakes_served_;
  }
  [[nodiscard]] std::size_t backlog() const { return inbound_.size(); }
  [[nodiscard]] Pid pid() const { return pid_; }

 private:
  void churn(Nanos duration);

  GuestKernel* kernel_;
  VirtualNic* nic_;
  WebServerProfile profile_;
  Rng rng_;
  Pid pid_;
  Vaddr cache_;  // page-cache arena
  std::priority_queue<InboundMsg, std::vector<InboundMsg>,
                      std::greater<InboundMsg>>
      inbound_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t handshakes_served_ = 0;
  std::uint64_t accesses_ = 0;
  double touch_carry_ = 0.0;
};

}  // namespace crimes
