// Virtual block device with hypervisor-side write buffering.
//
// Guest writes land in a pending overlay; the CRIMES core commits the
// overlay when an epoch's audit passes and discards it on failure. The
// guest reads through the overlay (it must see its own writes), while an
// external observer -- backup jobs, shared storage -- sees only committed
// state. This mirrors how the paper extends Remus's disk buffering.
#pragma once

#include "common/types.h"

#include <cstdint>
#include <map>
#include <vector>

namespace crimes {

class VirtualDisk {
 public:
  static constexpr std::size_t kBlockSize = 4096;

  explicit VirtualDisk(std::size_t block_count) : block_count_(block_count) {}

  void write_block(std::uint64_t block, std::vector<std::byte> data);
  [[nodiscard]] std::vector<std::byte> read_block(std::uint64_t block) const;

  // External view: committed state only (what has really hit the platter).
  [[nodiscard]] std::vector<std::byte> read_committed(
      std::uint64_t block) const;

  void set_buffering(bool enabled) { buffering_ = enabled; }
  [[nodiscard]] bool buffering() const { return buffering_; }

  void commit_pending();
  void drop_pending();

  // Disk snapshot extension (paper section 3.1: checkpointing "can easily
  // be extended to include disk snapshots as well"). Snapshots cover the
  // committed state only; the pending overlay is transient by definition.
  using Image = std::map<std::uint64_t, std::vector<std::byte>>;
  [[nodiscard]] Image snapshot_committed() const { return committed_; }
  void restore_committed(Image image);

  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t total_committed() const {
    return total_committed_;
  }
  [[nodiscard]] std::uint64_t total_dropped() const { return total_dropped_; }
  [[nodiscard]] std::size_t block_count() const { return block_count_; }

 private:
  void check_block(std::uint64_t block) const;

  std::size_t block_count_;
  bool buffering_ = true;
  std::map<std::uint64_t, std::vector<std::byte>> committed_;
  std::map<std::uint64_t, std::vector<std::byte>> pending_;
  std::uint64_t total_committed_ = 0;
  std::uint64_t total_dropped_ = 0;
};

}  // namespace crimes
