#include "net/output_buffer.h"

namespace crimes {

void ExternalNetwork::deliver(Packet packet, Nanos released_at) {
  DeliveredPacket d{
      .packet = std::move(packet),
      .released_at = released_at,
      .delivered_at = released_at + wire_latency_,
  };
  log_.push_back(d);
  if (listener_) listener_(log_.back());
}

void OutputBuffer::release_all(ExternalNetwork& net, Nanos released_at) {
  for (auto& p : pending_) {
    net.deliver(std::move(p), released_at);
    ++total_released_;
  }
  pending_.clear();
}

void OutputBuffer::drop_all() {
  total_dropped_ += pending_.size();
  pending_.clear();
}

}  // namespace crimes
