#include "net/output_buffer.h"

#include "telemetry/telemetry.h"

namespace crimes {

void ExternalNetwork::deliver(Packet packet, Nanos released_at) {
  DeliveredPacket d{
      .packet = std::move(packet),
      .released_at = released_at,
      .delivered_at = released_at + wire_latency_,
  };
  log_.push_back(d);
  if (listener_) listener_(log_.back());
}

void OutputBuffer::release_all(ExternalNetwork& net, Nanos released_at) {
  if (released_counter_ != nullptr) released_counter_->add(pending_.size());
  for (auto& p : pending_) {
    net.deliver(std::move(p), released_at);
    ++total_released_;
  }
  pending_.clear();
  if (pending_gauge_ != nullptr) pending_gauge_->set(0.0);
}

void OutputBuffer::drop_all() {
  if (dropped_counter_ != nullptr) dropped_counter_->add(pending_.size());
  total_dropped_ += pending_.size();
  pending_.clear();
  if (pending_gauge_ != nullptr) pending_gauge_->set(0.0);
}

void OutputBuffer::set_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    released_counter_ = nullptr;
    dropped_counter_ = nullptr;
    pending_gauge_ = nullptr;
    return;
  }
  released_counter_ = &telemetry->metrics.counter("net.packets_released");
  dropped_counter_ = &telemetry->metrics.counter("net.packets_dropped");
  pending_gauge_ = &telemetry->metrics.gauge("net.pending");
}

}  // namespace crimes
