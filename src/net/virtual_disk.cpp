#include "net/virtual_disk.h"

#include <stdexcept>

namespace crimes {

void VirtualDisk::check_block(std::uint64_t block) const {
  if (block >= block_count_) {
    throw std::out_of_range("VirtualDisk: block out of range");
  }
}

void VirtualDisk::write_block(std::uint64_t block,
                              std::vector<std::byte> data) {
  check_block(block);
  data.resize(kBlockSize);
  if (buffering_) {
    pending_[block] = std::move(data);
  } else {
    committed_[block] = std::move(data);
    ++total_committed_;
  }
}

std::vector<std::byte> VirtualDisk::read_block(std::uint64_t block) const {
  check_block(block);
  if (auto it = pending_.find(block); it != pending_.end()) return it->second;
  return read_committed(block);
}

std::vector<std::byte> VirtualDisk::read_committed(std::uint64_t block) const {
  check_block(block);
  if (auto it = committed_.find(block); it != committed_.end()) {
    return it->second;
  }
  return std::vector<std::byte>(kBlockSize, std::byte{0});
}

void VirtualDisk::commit_pending() {
  for (auto& [block, data] : pending_) {
    committed_[block] = std::move(data);
    ++total_committed_;
  }
  pending_.clear();
}

void VirtualDisk::drop_pending() {
  total_dropped_ += pending_.size();
  pending_.clear();
}

void VirtualDisk::restore_committed(Image image) {
  committed_ = std::move(image);
  pending_.clear();
}

}  // namespace crimes
