// Hypervisor-side output buffer: the heart of the paper's Synchronous
// Safety. Packets produced during an epoch are held here and only released
// once the epoch's security audit passes; on an audit failure they are
// dropped, so an attack has zero external impact.
#pragma once

#include "common/sim_clock.h"
#include "net/packet.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace crimes {

// The "outside world": a log of packets that actually escaped the host.
// Invariant tests key off this -- anything here was externally visible.
class ExternalNetwork {
 public:
  using Listener = std::function<void(const DeliveredPacket&)>;

  explicit ExternalNetwork(Nanos wire_latency) : wire_latency_(wire_latency) {}

  void set_listener(Listener listener) { listener_ = std::move(listener); }

  void deliver(Packet packet, Nanos released_at);

  [[nodiscard]] const std::vector<DeliveredPacket>& log() const {
    return log_;
  }
  [[nodiscard]] std::size_t delivered_count() const { return log_.size(); }
  [[nodiscard]] Nanos wire_latency() const { return wire_latency_; }

 private:
  Nanos wire_latency_;
  Listener listener_;
  std::vector<DeliveredPacket> log_;
};

class OutputBuffer {
 public:
  void hold(Packet&& packet) { pending_.push_back(std::move(packet)); }

  // Commits the epoch: every held packet escapes at `released_at`.
  void release_all(ExternalNetwork& net, Nanos released_at);

  // Audit failed: the epoch's outputs never existed.
  void drop_all();

  [[nodiscard]] const std::vector<Packet>& pending() const {
    return pending_;
  }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t total_released() const {
    return total_released_;
  }
  [[nodiscard]] std::uint64_t total_dropped() const { return total_dropped_; }

 private:
  std::vector<Packet> pending_;
  std::uint64_t total_released_ = 0;
  std::uint64_t total_dropped_ = 0;
};

}  // namespace crimes
