// Hypervisor-side output buffer: the heart of the paper's Synchronous
// Safety. Packets produced during an epoch are held here and only released
// once the epoch's security audit passes; on an audit failure they are
// dropped, so an attack has zero external impact.
#pragma once

#include "common/sim_clock.h"
#include "net/packet.h"
#include "telemetry/metrics.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace crimes {

namespace telemetry {
struct Telemetry;
}  // namespace telemetry

// The "outside world": a log of packets that actually escaped the host.
// Invariant tests key off this -- anything here was externally visible.
class ExternalNetwork {
 public:
  using Listener = std::function<void(const DeliveredPacket&)>;

  explicit ExternalNetwork(Nanos wire_latency) : wire_latency_(wire_latency) {}

  void set_listener(Listener listener) { listener_ = std::move(listener); }

  void deliver(Packet packet, Nanos released_at);

  [[nodiscard]] const std::vector<DeliveredPacket>& log() const {
    return log_;
  }
  [[nodiscard]] std::size_t delivered_count() const { return log_.size(); }
  [[nodiscard]] Nanos wire_latency() const { return wire_latency_; }

 private:
  Nanos wire_latency_;
  Listener listener_;
  std::vector<DeliveredPacket> log_;
};

class OutputBuffer {
 public:
  void hold(Packet&& packet) {
    pending_.push_back(std::move(packet));
    if (pending_gauge_ != nullptr) {
      pending_gauge_->set(static_cast<double>(pending_.size()));
    }
  }

  // Commits the epoch: every held packet escapes at `released_at`.
  void release_all(ExternalNetwork& net, Nanos released_at);

  // Audit failed: the epoch's outputs never existed.
  void drop_all();

  // Replication extension (DESIGN.md section 11): the audit passed but the
  // outputs must additionally wait for the standby's acknowledgement.
  // Empties the buffer into the caller's pending-release queue; the caller
  // releases (or discards) them later, against its own counters.
  [[nodiscard]] std::vector<Packet> take_all() {
    std::vector<Packet> taken = std::move(pending_);
    pending_.clear();
    if (pending_gauge_ != nullptr) pending_gauge_->set(0.0);
    return taken;
  }

  // Attaches net.packets_released / net.packets_dropped counters and the
  // net.pending depth gauge (nullptr detaches).
  void set_telemetry(telemetry::Telemetry* telemetry);

  [[nodiscard]] const std::vector<Packet>& pending() const {
    return pending_;
  }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t total_released() const {
    return total_released_;
  }
  [[nodiscard]] std::uint64_t total_dropped() const { return total_dropped_; }

 private:
  std::vector<Packet> pending_;
  std::uint64_t total_released_ = 0;
  std::uint64_t total_dropped_ = 0;
  telemetry::Counter* released_counter_ = nullptr;
  telemetry::Counter* dropped_counter_ = nullptr;
  telemetry::Gauge* pending_gauge_ = nullptr;
};

}  // namespace crimes
