// Network packets exchanged between guest VMs and external clients.
//
// Timestamps are explicit: the guest stamps a packet when it transmits, the
// output buffer stamps it again when it is released to the outside world.
// The gap between the two is exactly the paper's output-buffering delay.
#pragma once

#include "common/sim_clock.h"
#include "common/types.h"

#include <cstdint>
#include <string>

namespace crimes {

enum class PacketKind : std::uint8_t {
  Syn,       // client -> server connection open
  SynAck,    // server -> client handshake reply (buffered!)
  Ack,       // client -> server handshake completion
  Request,   // client -> server HTTP request
  Response,  // server -> client HTTP response (buffered!)
  Data,      // generic payload (e.g. malware exfiltration)
};

[[nodiscard]] const char* to_string(PacketKind kind);

struct Packet {
  std::uint64_t id = 0;
  std::uint64_t flow = 0;        // connection identifier
  PacketKind kind = PacketKind::Data;
  std::size_t size_bytes = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t dst_port = 0;
  std::string payload;           // scanned by NetworkContentModule
  Nanos sent_at{0};              // guest transmit time
  std::uint64_t request_id = 0;  // echo of the request this answers, if any
};

struct DeliveredPacket {
  Packet packet;
  Nanos released_at{0};   // when the hypervisor let it leave
  Nanos delivered_at{0};  // released_at + wire latency
};

}  // namespace crimes
