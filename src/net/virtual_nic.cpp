#include "net/virtual_nic.h"

#include <stdexcept>

namespace crimes {

void VirtualNic::send(Packet packet, Nanos at) {
  if (!sink_) throw std::logic_error("VirtualNic: no sink installed");
  packet.id = next_id_++;
  packet.sent_at = at;
  ++packets_sent_;
  bytes_sent_ += packet.size_bytes;
  sink_(std::move(packet));
}

}  // namespace crimes
