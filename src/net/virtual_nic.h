// Guest-side virtual NIC. The guest hands egress packets to the NIC; where
// they go next (output buffer vs. straight to the wire) is decided by
// whoever installed the sink -- the CRIMES core wires this according to the
// configured SafetyMode.
#pragma once

#include "net/packet.h"

#include <cstdint>
#include <functional>

namespace crimes {

class VirtualNic {
 public:
  using Sink = std::function<void(Packet&&)>;

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  // Transmits a packet; `at` is the guest-side transmit time.
  void send(Packet packet, Nanos at);

  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  Sink sink_;
  std::uint64_t next_id_ = 1;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace crimes
