#include "net/packet.h"

namespace crimes {

const char* to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::Syn: return "SYN";
    case PacketKind::SynAck: return "SYN-ACK";
    case PacketKind::Ack: return "ACK";
    case PacketKind::Request: return "REQ";
    case PacketKind::Response: return "RESP";
    case PacketKind::Data: return "DATA";
  }
  return "?";
}

}  // namespace crimes
