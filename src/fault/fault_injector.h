// The FaultInjector turns a FaultPlan into concrete injection decisions.
//
// Determinism contract: every decision is a pure hash of
// (plan.seed, kind, epoch, site-salt). Sites that can repeat within an
// epoch (copy attempts) carry a per-epoch attempt counter as salt; sites
// keyed by identity (scan modules) hash their name. Nothing depends on
// wall time, thread scheduling, or the order different subsystems query
// the injector -- so the same seed yields the same RunSummary even when
// the checkpoint engine runs parallel phases, and the injector itself is
// only ever called from the epoch-driving thread (queries are drawn
// *before* work is fanned out to the pool).
#pragma once

#include "common/sim_clock.h"
#include "fault/fault_plan.h"

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace crimes::fault {

// Thrown by a transport whose page stream breaks mid-copy. `wasted` is the
// virtual time the aborted attempt burnt before failing; the Checkpointer
// charges it to the pause window on top of the retry backoff.
class TransportFault : public std::runtime_error {
 public:
  explicit TransportFault(Nanos wasted)
      : std::runtime_error("injected transport fault"), wasted_(wasted) {}
  [[nodiscard]] Nanos wasted() const { return wasted_; }

 private:
  Nanos wasted_;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  // Must be called at the top of every epoch; resets the per-epoch attempt
  // counters so decisions depend only on (epoch, site), not on history.
  void begin_epoch(std::size_t epoch) {
    epoch_ = epoch;
    copy_attempt_ = 0;
    tear_attempt_ = 0;
    heartbeat_attempt_ = 0;
    journal_attempt_ = 0;
    store_tamper_attempt_ = 0;
    journal_tamper_attempt_ = 0;
    replication_tamper_attempt_ = 0;
    stale_root_attempt_ = 0;
    mac_truncation_attempt_ = 0;
  }
  [[nodiscard]] std::size_t epoch() const { return epoch_; }

  // --- Decision sites (each call consumes one draw) ---------------------
  [[nodiscard]] bool transport_copy_fails();
  [[nodiscard]] bool tears_backup_write();
  // Deterministic victim selector for a torn write: an index in [0, n).
  [[nodiscard]] std::size_t torn_victim(std::size_t n) const;
  [[nodiscard]] bool scan_times_out(const std::string& module);
  [[nodiscard]] bool scan_crashes(const std::string& module);
  [[nodiscard]] bool bitmap_read_fails();
  [[nodiscard]] bool loses_worker();
  // Replication-layer sites (DESIGN.md section 11). kills_primary and
  // partitions_link are drawn once per epoch; heartbeat/journal sites
  // carry per-epoch attempt counters like the copy sites do.
  [[nodiscard]] bool kills_primary();
  [[nodiscard]] bool drops_heartbeat();
  [[nodiscard]] bool partitions_link();
  [[nodiscard]] bool tears_journal_write();
  // Adversarial tamper sites (DESIGN.md section 15). Each layer queries
  // its own site at its own boundary: the store after an append, the
  // journal after framing a record, the replicator after applying a
  // generation to the standby. The sites are dormant unless the matching
  // crypto layer is armed -- tampering an unsealed substrate would be an
  // undetectable corruption, not an experiment.
  [[nodiscard]] bool tampers_store();
  [[nodiscard]] bool tampers_journal();
  [[nodiscard]] bool tampers_replication();
  [[nodiscard]] bool replays_stale_root();
  [[nodiscard]] bool truncates_mac();
  // Host-level sites, drawn once per CloudHost scheduling round (the host
  // owns its own injector; "epoch" is the round index for these).
  [[nodiscard]] bool flash_crowd_hits();
  [[nodiscard]] bool neighbor_storm_hits();
  [[nodiscard]] bool correlated_failover_hits();
  // Deterministic 64-bit victim selector for tamper sites (the store
  // reduces it modulo its entry count; bit 32 picks flip-vs-move).
  [[nodiscard]] std::uint64_t tamper_victim() const;

  // --- Accounting -------------------------------------------------------
  [[nodiscard]] std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t total_injected() const {
    std::uint64_t total = 0;
    for (const std::uint64_t n : injected_) total += n;
    return total;
  }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] bool decide(FaultKind kind, std::uint64_t salt);
  [[nodiscard]] bool scheduled_hit(FaultKind kind,
                                   const std::string& module) const;

  FaultPlan plan_;
  std::size_t epoch_ = 0;
  std::uint64_t copy_attempt_ = 0;
  std::uint64_t tear_attempt_ = 0;
  std::uint64_t heartbeat_attempt_ = 0;
  std::uint64_t journal_attempt_ = 0;
  std::uint64_t store_tamper_attempt_ = 0;
  std::uint64_t journal_tamper_attempt_ = 0;
  std::uint64_t replication_tamper_attempt_ = 0;
  std::uint64_t stale_root_attempt_ = 0;
  std::uint64_t mac_truncation_attempt_ = 0;
  std::array<std::uint64_t, kFaultKindCount> injected_{};
};

}  // namespace crimes::fault
