// Deterministic fault plans for the resilience layer (DESIGN.md section 9).
//
// A FaultPlan describes *which* faults a run should experience: per-site
// probabilities for each FaultKind, an epoch window the probabilistic
// faults are confined to, and an optional list of exactly-scheduled
// one-shot faults. The plan is pure data; FaultInjector turns it into
// concrete injection decisions that are pure functions of
// (seed, kind, epoch, site) -- never of wall time or thread interleaving --
// so a given seed produces the identical fault sequence on every run.
//
// Each FaultKind maps to a real failure mode of the paper's Xen + Remus
// deployment; the mapping table lives in DESIGN.md section 9.
#pragma once

#include "common/sim_clock.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace crimes::fault {

enum class FaultKind : std::uint8_t {
  TransportCopy,   // a checkpoint page-copy attempt aborts mid-stream
  TornWrite,       // one backup page is corrupted by a torn/partial write
  ScanTimeout,     // a scan module hangs past its audit deadline
  ScanCrash,       // a scan module dies mid-scan
  BitmapRead,      // the log-dirty bitmap read errors and must be retried
  WorkerLoss,      // a thread-pool worker thread dies and must be respawned
  PrimaryKill,     // the whole primary host dies (power loss / kernel panic)
  HeartbeatDrop,   // one epoch heartbeat to the standby is lost in flight
  LinkPartition,   // the replication link partitions (and stays down)
  JournalTornWrite,  // a store-journal record append is torn mid-record
  // Adversarial (tamper) kinds -- SEVurity-style attacks on the sealed
  // substrate (DESIGN.md section 15). These are malicious, not accidental:
  // the ciphertext is modified consistently (checksums fixed up), so only
  // the keyed seal/attestation layer can catch them.
  StoreBlockTamper,    // flip/move a sealed page record at rest
  JournalBlockTamper,  // rewrite journal ciphertext, fixing the framing sum
  ReplicationTamper,   // corrupt a replicated page in flight
  StaleRootReplay,     // replay an old attestation root on the wire
  MacTruncation,       // strip a stored record's MAC tag
  // Host-level sites (drawn once per CloudHost scheduling round, not per
  // tenant epoch) -- the consolidation failure modes of ROADMAP item 1.
  FlashCrowd,          // demand spike across every tenant at once
  NeighborDirtyStorm,  // best-effort tenants go dirty-page-heavy
  CorrelatedFailover,  // rack-level event kills every replicated primary
};
inline constexpr std::size_t kFaultKindCount = 18;

[[nodiscard]] const char* to_string(FaultKind kind);

// An exactly-placed fault: fires once at `epoch` regardless of the plan's
// probabilities or epoch window. `module` targets a specific scan module
// for ScanTimeout/ScanCrash (empty = any module queried that epoch).
struct ScheduledFault {
  std::size_t epoch = 0;
  FaultKind kind = FaultKind::TransportCopy;
  std::string module;
};

struct FaultPlan {
  static constexpr std::size_t kNoLimit =
      std::numeric_limits<std::size_t>::max();

  std::uint64_t seed = 1;

  // Per-site probabilities in [0, 1]. "Site" is one decision point: a copy
  // attempt (so each retry redraws), a module per audit, or an epoch.
  double transport_copy_fail = 0.0;  // per copy attempt
  double torn_write = 0.0;           // per copy attempt that completes
  double scan_timeout = 0.0;         // per module per audit
  double scan_crash = 0.0;           // per module per audit
  double bitmap_read_error = 0.0;    // per epoch
  double worker_loss = 0.0;          // per epoch
  // Replication-layer sites (no-ops unless ReplicationConfig::enabled).
  double primary_kill = 0.0;         // per epoch
  double heartbeat_drop = 0.0;       // per heartbeat send
  double link_partition = 0.0;       // per epoch; the partition is sticky
  double journal_torn_write = 0.0;   // per journal record append
  // Tamper sites (no-ops unless CryptoConfig arms the matching layer).
  double store_block_tamper = 0.0;   // per store append
  double journal_block_tamper = 0.0;  // per journal record append
  double replication_tamper = 0.0;   // per replicated generation
  double stale_root_replay = 0.0;    // per replicated generation
  double mac_truncation = 0.0;       // per store append
  // Host-level sites (no-ops unless a CloudHost schedules with an enabled
  // HostConfig; "epoch" for these is the host's scheduling round).
  double flash_crowd = 0.0;          // per scheduling round
  double neighbor_dirty_storm = 0.0;  // per scheduling round
  double correlated_failover = 0.0;  // per scheduling round

  // Probabilistic faults fire only in epochs [from_epoch, until_epoch).
  // Bounding the window lets a faulty run drain its accumulated dirty
  // pages through fault-free epochs and converge on the same final backup
  // image as a clean run.
  std::size_t from_epoch = 0;
  std::size_t until_epoch = kNoLimit;

  // Virtual time a hung module stalls before the audit deadline kills it.
  Nanos scan_hang = millis(10);

  std::vector<ScheduledFault> scheduled;

  [[nodiscard]] double rate(FaultKind kind) const {
    switch (kind) {
      case FaultKind::TransportCopy: return transport_copy_fail;
      case FaultKind::TornWrite: return torn_write;
      case FaultKind::ScanTimeout: return scan_timeout;
      case FaultKind::ScanCrash: return scan_crash;
      case FaultKind::BitmapRead: return bitmap_read_error;
      case FaultKind::WorkerLoss: return worker_loss;
      case FaultKind::PrimaryKill: return primary_kill;
      case FaultKind::HeartbeatDrop: return heartbeat_drop;
      case FaultKind::LinkPartition: return link_partition;
      case FaultKind::JournalTornWrite: return journal_torn_write;
      case FaultKind::StoreBlockTamper: return store_block_tamper;
      case FaultKind::JournalBlockTamper: return journal_block_tamper;
      case FaultKind::ReplicationTamper: return replication_tamper;
      case FaultKind::StaleRootReplay: return stale_root_replay;
      case FaultKind::MacTruncation: return mac_truncation;
      case FaultKind::FlashCrowd: return flash_crowd;
      case FaultKind::NeighborDirtyStorm: return neighbor_dirty_storm;
      case FaultKind::CorrelatedFailover: return correlated_failover;
    }
    return 0.0;
  }

  // True when this plan can inject anything at all -- Crimes only builds a
  // FaultInjector (and turns on backup verification) in that case.
  [[nodiscard]] bool any() const {
    return transport_copy_fail > 0.0 || torn_write > 0.0 ||
           scan_timeout > 0.0 || scan_crash > 0.0 ||
           bitmap_read_error > 0.0 || worker_loss > 0.0 ||
           primary_kill > 0.0 || heartbeat_drop > 0.0 ||
           link_partition > 0.0 || journal_torn_write > 0.0 ||
           store_block_tamper > 0.0 || journal_block_tamper > 0.0 ||
           replication_tamper > 0.0 || stale_root_replay > 0.0 ||
           mac_truncation > 0.0 || flash_crowd > 0.0 ||
           neighbor_dirty_storm > 0.0 || correlated_failover > 0.0 ||
           !scheduled.empty();
  }

  // A mixed plan exercising every transport-side fault at `rate`, confined
  // to [from, until) so runs still converge (the bench sweeps this).
  [[nodiscard]] static FaultPlan transport_storm(double rate,
                                                 std::size_t from,
                                                 std::size_t until,
                                                 std::uint64_t seed = 1) {
    FaultPlan plan;
    plan.seed = seed;
    plan.transport_copy_fail = rate;
    plan.torn_write = rate / 2.0;
    plan.bitmap_read_error = rate / 4.0;
    plan.worker_loss = rate / 4.0;
    plan.from_epoch = from;
    plan.until_epoch = until;
    return plan;
  }

  // A replication-side storm: lost heartbeats, torn journal records, the
  // occasional sticky partition. Primary kills are left to `scheduled`
  // one-shots -- a per-epoch kill probability would end most runs in the
  // first few epochs of the window (the failover bench sweeps this).
  [[nodiscard]] static FaultPlan failover_storm(double rate,
                                                std::size_t from,
                                                std::size_t until,
                                                std::uint64_t seed = 1) {
    FaultPlan plan;
    plan.seed = seed;
    plan.heartbeat_drop = rate;
    plan.journal_torn_write = rate / 2.0;
    plan.link_partition = rate / 4.0;
    plan.from_epoch = from;
    plan.until_epoch = until;
    return plan;
  }

  // An adversarial storm against the sealed substrate: every tamper kind
  // at `rate`, confined to [from, until). Only meaningful with
  // CryptoConfig sealing/attestation armed -- the tamper-sweep bench
  // asserts every injection is *caught*, not survived.
  [[nodiscard]] static FaultPlan tamper_storm(double rate, std::size_t from,
                                              std::size_t until,
                                              std::uint64_t seed = 1) {
    FaultPlan plan;
    plan.seed = seed;
    plan.store_block_tamper = rate;
    plan.journal_block_tamper = rate;
    plan.replication_tamper = rate;
    plan.stale_root_replay = rate / 2.0;
    plan.mac_truncation = rate / 2.0;
    plan.from_epoch = from;
    plan.until_epoch = until;
    return plan;
  }

  // A host-level overload storm: flash crowds and noisy best-effort
  // neighbours at `rate`, with the rarer rack-correlated failover at a
  // quarter of it, confined to scheduling rounds [from, until). Feed it to
  // HostConfig::faults -- the cloud_scale scenario suite gates that the
  // shedding ladder keeps every non-shed tenant inside 110% of its pause
  // SLO while this storm runs.
  [[nodiscard]] static FaultPlan overload_storm(double rate, std::size_t from,
                                                std::size_t until,
                                                std::uint64_t seed = 1) {
    FaultPlan plan;
    plan.seed = seed;
    plan.flash_crowd = rate;
    plan.neighbor_dirty_storm = rate;
    plan.correlated_failover = rate / 4.0;
    plan.from_epoch = from;
    plan.until_epoch = until;
    return plan;
  }
};

}  // namespace crimes::fault
