// SafetyGovernor: the degradation state machine of the resilience layer.
//
// The degradation ladder (DESIGN.md section 9): individual failures are
// first absorbed by retries (Checkpointer) and quarantine (Detector); the
// governor watches what leaks past those -- whole-epoch checkpoint
// failures -- and trades safety for availability:
//
//   Normal --[downgrade_after consecutive failures]--> Degraded
//     (Synchronous Safety -> Best Effort: held outputs are released and
//      buffering stops, so a broken checkpoint path no longer stalls the
//      tenant's traffic; scans continue at the same cadence)
//   Degraded --[upgrade_after consecutive committed epochs]--> Normal
//   any --[freeze_after consecutive failures]--> Frozen
//     (the checkpoint path is considered lost; the VM is paused rather
//      than run indefinitely without a recoverable backup)
//
// The governor itself is mode-agnostic pure logic: Crimes::run feeds it
// one observation per epoch and applies the returned Action (rewiring
// output plumbing, pausing the VM, logging and counting transitions).
#pragma once

#include "common/sim_clock.h"

#include <cstddef>

namespace crimes::fault {

struct GovernorConfig {
  bool enabled = true;
  // Consecutive checkpoint failures before Synchronous drops to Best
  // Effort. Retries inside the Checkpointer have already been exhausted by
  // the time a failure reaches the governor.
  std::size_t downgrade_after = 3;
  // Consecutive committed epochs (while Degraded) before upgrading back.
  std::size_t upgrade_after = 5;
  // Consecutive failures -- counted across the downgrade -- before the VM
  // is frozen outright. Must exceed downgrade_after to give Best Effort a
  // chance to ride out the fault burst.
  std::size_t freeze_after = 10;
};

enum class GovernorState { Normal, Degraded, Frozen };

[[nodiscard]] const char* to_string(GovernorState state);

class SafetyGovernor {
 public:
  enum class Action { None, Downgrade, Upgrade, Freeze };

  // `can_degrade` is false when the configured SafetyMode is already Best
  // Effort -- then the only rung below Normal is Frozen.
  SafetyGovernor(GovernorConfig config, bool can_degrade)
      : config_(config), can_degrade_(can_degrade) {}

  // One observation per epoch: did the checkpoint commit? Returns the
  // transition the caller must apply (at most one per epoch).
  [[nodiscard]] Action on_epoch(bool checkpoint_committed);

  [[nodiscard]] GovernorState state() const { return state_; }
  [[nodiscard]] std::size_t downgrades() const { return downgrades_; }
  [[nodiscard]] std::size_t upgrades() const { return upgrades_; }
  [[nodiscard]] std::size_t consecutive_failures() const {
    return consecutive_failures_;
  }

 private:
  GovernorConfig config_;
  bool can_degrade_;
  GovernorState state_ = GovernorState::Normal;
  std::size_t consecutive_failures_ = 0;
  std::size_t consecutive_clean_ = 0;
  std::size_t downgrades_ = 0;
  std::size_t upgrades_ = 0;
};

}  // namespace crimes::fault
