#include "fault/fault_injector.h"

#include "common/hash.h"

namespace crimes::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::TransportCopy: return "transport-copy";
    case FaultKind::TornWrite: return "torn-write";
    case FaultKind::ScanTimeout: return "scan-timeout";
    case FaultKind::ScanCrash: return "scan-crash";
    case FaultKind::BitmapRead: return "bitmap-read";
    case FaultKind::WorkerLoss: return "worker-loss";
    case FaultKind::PrimaryKill: return "primary-kill";
    case FaultKind::HeartbeatDrop: return "heartbeat-drop";
    case FaultKind::LinkPartition: return "link-partition";
    case FaultKind::JournalTornWrite: return "journal-torn-write";
    case FaultKind::StoreBlockTamper: return "store-block-tamper";
    case FaultKind::JournalBlockTamper: return "journal-block-tamper";
    case FaultKind::ReplicationTamper: return "replication-tamper";
    case FaultKind::StaleRootReplay: return "stale-root-replay";
    case FaultKind::MacTruncation: return "mac-truncation";
    case FaultKind::FlashCrowd: return "flash-crowd";
    case FaultKind::NeighborDirtyStorm: return "neighbor-dirty-storm";
    case FaultKind::CorrelatedFailover: return "correlated-failover";
  }
  return "?";
}

namespace {

// SplitMix64 finalizer: a single avalanche step is enough to decorrelate
// the (seed, kind, epoch, salt) tuples we feed it.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t x) {
  // Top 53 bits -> [0, 1).
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultInjector::scheduled_hit(FaultKind kind,
                                  const std::string& module) const {
  for (const ScheduledFault& s : plan_.scheduled) {
    if (s.epoch != epoch_ || s.kind != kind) continue;
    if (s.module.empty() || s.module == module) return true;
  }
  return false;
}

bool FaultInjector::decide(FaultKind kind, std::uint64_t salt) {
  const bool in_window =
      epoch_ >= plan_.from_epoch && epoch_ < plan_.until_epoch;
  const double rate = plan_.rate(kind);
  if (!in_window || rate <= 0.0) return false;
  const std::uint64_t draw =
      mix(plan_.seed ^ mix(static_cast<std::uint64_t>(kind) ^
                           (static_cast<std::uint64_t>(epoch_) << 8) ^
                           mix(salt)));
  return to_unit(draw) < rate;
}

bool FaultInjector::transport_copy_fails() {
  const bool hit = decide(FaultKind::TransportCopy, copy_attempt_++) ||
                   (copy_attempt_ == 1 &&
                    scheduled_hit(FaultKind::TransportCopy, ""));
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::TransportCopy)];
  return hit;
}

bool FaultInjector::tears_backup_write() {
  const bool hit =
      decide(FaultKind::TornWrite, 0x7EA5 + tear_attempt_++) ||
      (tear_attempt_ == 1 && scheduled_hit(FaultKind::TornWrite, ""));
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::TornWrite)];
  return hit;
}

std::size_t FaultInjector::torn_victim(std::size_t n) const {
  if (n == 0) return 0;
  return static_cast<std::size_t>(
      mix(plan_.seed ^ 0x1C7ED ^ (static_cast<std::uint64_t>(epoch_) << 8) ^
          tear_attempt_) %
      n);
}

bool FaultInjector::scan_times_out(const std::string& module) {
  const bool hit = decide(FaultKind::ScanTimeout, fnv1a(module)) ||
                   scheduled_hit(FaultKind::ScanTimeout, module);
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::ScanTimeout)];
  return hit;
}

bool FaultInjector::scan_crashes(const std::string& module) {
  const bool hit = decide(FaultKind::ScanCrash, fnv1a(module) ^ 0xDEAD) ||
                   scheduled_hit(FaultKind::ScanCrash, module);
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::ScanCrash)];
  return hit;
}

bool FaultInjector::bitmap_read_fails() {
  const bool hit = decide(FaultKind::BitmapRead, 0xB17) ||
                   scheduled_hit(FaultKind::BitmapRead, "");
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::BitmapRead)];
  return hit;
}

bool FaultInjector::loses_worker() {
  const bool hit = decide(FaultKind::WorkerLoss, 0x1057) ||
                   scheduled_hit(FaultKind::WorkerLoss, "");
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::WorkerLoss)];
  return hit;
}

bool FaultInjector::kills_primary() {
  const bool hit = decide(FaultKind::PrimaryKill, 0xD1E) ||
                   scheduled_hit(FaultKind::PrimaryKill, "");
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::PrimaryKill)];
  return hit;
}

bool FaultInjector::drops_heartbeat() {
  const bool hit =
      decide(FaultKind::HeartbeatDrop, 0xBEA7 + heartbeat_attempt_++) ||
      (heartbeat_attempt_ == 1 && scheduled_hit(FaultKind::HeartbeatDrop, ""));
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::HeartbeatDrop)];
  return hit;
}

bool FaultInjector::partitions_link() {
  const bool hit = decide(FaultKind::LinkPartition, 0x5117) ||
                   scheduled_hit(FaultKind::LinkPartition, "");
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::LinkPartition)];
  return hit;
}

bool FaultInjector::tears_journal_write() {
  const bool hit =
      decide(FaultKind::JournalTornWrite, 0x70AE + journal_attempt_++) ||
      (journal_attempt_ == 1 &&
       scheduled_hit(FaultKind::JournalTornWrite, ""));
  if (hit) {
    ++injected_[static_cast<std::size_t>(FaultKind::JournalTornWrite)];
  }
  return hit;
}

bool FaultInjector::tampers_store() {
  const bool hit =
      decide(FaultKind::StoreBlockTamper, 0x7A3B + store_tamper_attempt_++) ||
      (store_tamper_attempt_ == 1 &&
       scheduled_hit(FaultKind::StoreBlockTamper, ""));
  if (hit) {
    ++injected_[static_cast<std::size_t>(FaultKind::StoreBlockTamper)];
  }
  return hit;
}

bool FaultInjector::tampers_journal() {
  const bool hit =
      decide(FaultKind::JournalBlockTamper,
             0x7A31 + journal_tamper_attempt_++) ||
      (journal_tamper_attempt_ == 1 &&
       scheduled_hit(FaultKind::JournalBlockTamper, ""));
  if (hit) {
    ++injected_[static_cast<std::size_t>(FaultKind::JournalBlockTamper)];
  }
  return hit;
}

bool FaultInjector::tampers_replication() {
  const bool hit =
      decide(FaultKind::ReplicationTamper,
             0x7A32 + replication_tamper_attempt_++) ||
      (replication_tamper_attempt_ == 1 &&
       scheduled_hit(FaultKind::ReplicationTamper, ""));
  if (hit) {
    ++injected_[static_cast<std::size_t>(FaultKind::ReplicationTamper)];
  }
  return hit;
}

bool FaultInjector::replays_stale_root() {
  const bool hit =
      decide(FaultKind::StaleRootReplay, 0x57A1E + stale_root_attempt_++) ||
      (stale_root_attempt_ == 1 &&
       scheduled_hit(FaultKind::StaleRootReplay, ""));
  if (hit) {
    ++injected_[static_cast<std::size_t>(FaultKind::StaleRootReplay)];
  }
  return hit;
}

bool FaultInjector::truncates_mac() {
  const bool hit =
      decide(FaultKind::MacTruncation, 0x3AC0 + mac_truncation_attempt_++) ||
      (mac_truncation_attempt_ == 1 &&
       scheduled_hit(FaultKind::MacTruncation, ""));
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::MacTruncation)];
  return hit;
}

bool FaultInjector::flash_crowd_hits() {
  const bool hit = decide(FaultKind::FlashCrowd, 0xF1A5) ||
                   scheduled_hit(FaultKind::FlashCrowd, "");
  if (hit) ++injected_[static_cast<std::size_t>(FaultKind::FlashCrowd)];
  return hit;
}

bool FaultInjector::neighbor_storm_hits() {
  const bool hit = decide(FaultKind::NeighborDirtyStorm, 0xD127) ||
                   scheduled_hit(FaultKind::NeighborDirtyStorm, "");
  if (hit) {
    ++injected_[static_cast<std::size_t>(FaultKind::NeighborDirtyStorm)];
  }
  return hit;
}

bool FaultInjector::correlated_failover_hits() {
  const bool hit = decide(FaultKind::CorrelatedFailover, 0xFA11) ||
                   scheduled_hit(FaultKind::CorrelatedFailover, "");
  if (hit) {
    ++injected_[static_cast<std::size_t>(FaultKind::CorrelatedFailover)];
  }
  return hit;
}

std::uint64_t FaultInjector::tamper_victim() const {
  return mix(plan_.seed ^ 0x71C71 ^
             (static_cast<std::uint64_t>(epoch_) << 8) ^
             (store_tamper_attempt_ + mac_truncation_attempt_));
}

}  // namespace crimes::fault
