#include "fault/safety_governor.h"

namespace crimes::fault {

const char* to_string(GovernorState state) {
  switch (state) {
    case GovernorState::Normal: return "Normal";
    case GovernorState::Degraded: return "Degraded";
    case GovernorState::Frozen: return "Frozen";
  }
  return "?";
}

SafetyGovernor::Action SafetyGovernor::on_epoch(bool checkpoint_committed) {
  if (state_ == GovernorState::Frozen) return Action::None;

  if (checkpoint_committed) {
    consecutive_failures_ = 0;
    ++consecutive_clean_;
    if (state_ == GovernorState::Degraded &&
        consecutive_clean_ >= config_.upgrade_after) {
      state_ = GovernorState::Normal;
      ++upgrades_;
      return Action::Upgrade;
    }
    return Action::None;
  }

  consecutive_clean_ = 0;
  ++consecutive_failures_;
  if (consecutive_failures_ >= config_.freeze_after) {
    state_ = GovernorState::Frozen;
    return Action::Freeze;
  }
  if (state_ == GovernorState::Normal && can_degrade_ &&
      consecutive_failures_ >= config_.downgrade_after) {
    state_ = GovernorState::Degraded;
    ++downgrades_;
    return Action::Downgrade;
  }
  return Action::None;
}

}  // namespace crimes::fault
