// The CRIMES Checkpointer: Remus-style continuous checkpointing with the
// paper's three optimizations, driving the per-epoch pipeline
//
//   suspend -> bitscan -> audit(vmi) -> map -> copy -> resume
//
// (Execution order note: the paper's Table 1 lists "vmi" before "bitscan";
// we run the bitmap scan first because guest-aided scans consume the dirty
// list -- section 3.2. Costs are attributed per phase either way.)
//
// The backup VM always holds the *last clean checkpoint*: on an audit
// failure nothing is propagated, the primary is left Paused, and the dirty
// bitmap is retained so rollback() can restore exactly the pages the failed
// epoch touched.
#pragma once

#include "checkpoint/transport.h"
#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "hypervisor/hypervisor.h"
#include "store/store_config.h"

namespace crimes::telemetry {
struct Telemetry;
class Counter;
class Gauge;
class Histogram;
}  // namespace crimes::telemetry

namespace crimes::fault {
class FaultInjector;
}  // namespace crimes::fault

namespace crimes::store {
class CheckpointStore;
}  // namespace crimes::store

namespace crimes::replication {
class StoreJournal;
}  // namespace crimes::replication

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace crimes {

class CowCheckpointer;

struct CheckpointConfig {
  Nanos epoch_interval = millis(200);
  bool opt_memcpy = false;        // Optimization 1: memcpy, not write
  bool opt_premap = false;        // Optimization 2: global memory mapping
  bool opt_chunked_scan = false;  // Optimization 3: word-wise dirty scan
  std::size_t history_capacity = 0;  // extension: ring of full snapshots
  // Extension (section 4.1): keep the backup on a *remote* host for high
  // availability as well as security. Forces the Remus socket transport
  // and adds a per-epoch commit acknowledgement round trip. Incompatible
  // with the local-mapping optimizations (1 and 2).
  bool remote_backup = false;
  // Extension: Remus-style page compression on the socket transport (XOR
  // delta vs. the backup's stale copy + RLE). Only meaningful for the
  // socket path -- memcpy never serializes, so there is nothing to
  // compress.
  bool compress = false;
  // Parallel checkpoint engine (post-paper): spread the suspended window
  // across cores on a fixed worker pool owned by the Checkpointer.
  //   copy_threads    shard the memcpy copy phase (0/1 = serial; requires
  //                   opt_memcpy -- the socket stream cipher is sequential)
  //   parallel_scan   shard the word-wise bitmap scan (requires
  //                   opt_chunked_scan; sharding a bit-by-bit scan would
  //                   parallelize the very work Optimization 3 deletes)
  //   parallel_audit  run independent detection scan modules concurrently
  // Virtual-time charges become max(per-shard cost) + fork/join overhead;
  // wall-clock drops with core count.
  std::size_t copy_threads = 0;
  bool parallel_scan = false;
  bool parallel_audit = false;
  // SIMD fast path for the word-wise scan (requires opt_chunked_scan):
  // four words tested per vector compare, clean blocks skipped after one
  // load. parallel_scan wins when both are set -- sharding subsumes the
  // vector win.
  bool simd_scan = false;
  // Speculative copy-on-write checkpointing (DESIGN.md section 12,
  // requires opt_memcpy): after the bitmap scan + audit, the dirty set is
  // write-protected via the mem-event machinery, the VM resumes
  // immediately, and the copy drains asynchronously -- a guest
  // first-touch of a still-pending page forces that page's copy before
  // the write proceeds. The epoch's commit barriers on drain completion:
  // run_checkpoint() returns with `cow_pending` set and the caller
  // finishes the epoch via complete_cow_drain(). The committed backup is
  // byte-identical to what the stop-copy path produces.
  bool speculative_cow = false;
  // Resilience layer (DESIGN.md section 9): after every copy, checksum the
  // dirty pages on both sides (FNV-1a, really computed) and retry a
  // mismatched or aborted copy with exponential backoff. Off by default --
  // the checksum sweep costs pause time -- but forced on by Crimes
  // whenever a FaultPlan is active.
  bool verify_backup = false;
  // Retries after the first failed attempt before the epoch's checkpoint
  // is declared failed and the backup restored from the undo log.
  std::size_t max_copy_retries = 3;
  // Multi-generation checkpoint store (DESIGN.md section 10): every
  // committed epoch also appends a deduplicated generation manifest, and
  // rollback_to() can rewind to *any* retained generation, not just the
  // last. Off by default -- the per-epoch path is then one null check and
  // allocates nothing.
  store::StoreConfig store = {};

  [[nodiscard]] static CheckpointConfig no_opt(Nanos interval = millis(200)) {
    return {.epoch_interval = interval};
  }
  [[nodiscard]] static CheckpointConfig memcpy_only(
      Nanos interval = millis(200)) {
    return {.epoch_interval = interval, .opt_memcpy = true};
  }
  [[nodiscard]] static CheckpointConfig premap(Nanos interval = millis(200)) {
    return {.epoch_interval = interval, .opt_memcpy = true,
            .opt_premap = true};
  }
  [[nodiscard]] static CheckpointConfig full(Nanos interval = millis(200)) {
    return {.epoch_interval = interval, .opt_memcpy = true, .opt_premap = true,
            .opt_chunked_scan = true};
  }
  // Full optimizations plus every parallel path on a `threads`-wide pool.
  [[nodiscard]] static CheckpointConfig parallel(
      std::size_t threads, Nanos interval = millis(200)) {
    CheckpointConfig config = full(interval);
    config.copy_threads = threads;
    config.parallel_scan = true;
    config.parallel_audit = true;
    return config;
  }
  // Full optimizations plus the speculative CoW drain and the SIMD scan:
  // the pause shrinks to suspend + scan + audit + protect + resume.
  [[nodiscard]] static CheckpointConfig cow(Nanos interval = millis(200)) {
    CheckpointConfig config = full(interval);
    config.speculative_cow = true;
    config.simd_scan = true;
    return config;
  }

  [[nodiscard]] bool wants_pool() const {
    return copy_threads > 1 || parallel_scan || parallel_audit ||
           (store.enabled && store.parallel_hash);
  }
  // Worker count for the pool: an explicit copy_threads wins, otherwise
  // one worker per hardware thread.
  [[nodiscard]] std::size_t pool_threads() const;

  [[nodiscard]] const char* label() const;
};

// Per-phase virtual-time cost of one checkpoint (the paper's Table 1 row).
struct PhaseCosts {
  Nanos suspend{0};
  Nanos vmi{0};
  Nanos bitscan{0};
  Nanos map{0};
  Nanos copy{0};
  // Speculative CoW path only: write-protecting the dirty set before
  // resume (the map and copy phases then run off-pause, on the drain).
  Nanos protect{0};
  Nanos resume{0};
  // Epoch-boundary observability (flight-recorder events, time-series
  // sample, SLO evaluation). Charged by Crimes, not the checkpointer: the
  // work happens while the tenant is still waiting on the epoch boundary,
  // so it belongs in the pause the tenant experiences.
  Nanos observe{0};
  // Control-plane work at the epoch boundary (input recording, control
  // cycles, decision application). Charged by Crimes like observe; zero
  // whenever CrimesConfig::control is off.
  Nanos control{0};
  std::size_t dirty_pages = 0;

  [[nodiscard]] Nanos pause_total() const {
    return suspend + vmi + bitscan + map + copy + protect + resume + observe +
           control;
  }
};

struct AuditResult {
  bool passed = true;
  Nanos cost{0};
};

// The Detector is invoked through this hook while the VM is suspended.
// `audit_start` is the virtual time at which the audit phase begins
// (suspend and bitmap-scan costs are already known when the hook runs, but
// the SimClock only advances once the whole pause is charged) -- telemetry
// uses it to place scan spans on the epoch timeline.
using AuditFn =
    std::function<AuditResult(std::span<const Pfn> dirty, Nanos audit_start)>;

struct EpochResult {
  PhaseCosts costs;
  bool audit_passed = true;
  std::vector<Pfn> dirty;
  // Resilience layer: false when the copy/verify loop exhausted its
  // retries -- the backup was restored to the *previous* clean checkpoint
  // (never left torn), the dirty bitmap was retained so the next epoch's
  // checkpoint carries this epoch's pages, and the primary resumed
  // speculating. Meaningful only when audit_passed.
  bool checkpoint_committed = true;
  std::size_t copy_retries = 0;
  // Virtual time spent on failure handling this epoch (wasted copy
  // attempts, backoff, undo-log restore, bitmap rereads, worker respawns)
  // -- already included in `costs`, broken out for reporting.
  Nanos recovery_cost{0};
  // Checkpoint-store work (generation append + incremental GC). Charged
  // to the clock *after* resume -- it is not part of the pause -- and
  // therefore not included in `costs`.
  Nanos store_cost{0};
  // Speculative CoW path: true when the epoch's copy is still draining.
  // The commit is decided by complete_cow_drain(); checkpoint_committed
  // is meaningless until then.
  bool cow_pending = false;
};

// What complete_cow_drain() reports back: whether the speculative epoch
// committed, and where the drain's virtual time went. `drain_cost` runs
// from the moment the VM resumed; the caller overlaps it with the next
// epoch's execution and charges only `stall` (the portion that outlived
// the overlap window handed to complete_cow_drain).
struct CowCommit {
  bool committed = true;
  Nanos drain_cost{0};        // map + copy + first-touch + retries + verify
  Nanos stall{0};             // barrier wait charged to the clock
  Nanos store_cost{0};        // post-commit store append/GC/journal
  Nanos recovery_cost{0};     // wasted attempts, backoff, undo restore
  Nanos first_touch_cost{0};  // included in drain_cost, broken out
  std::size_t first_touches = 0;
  std::size_t drained_pages = 0;  // copied in the background (not touched)
  std::size_t copy_retries = 0;
};

// Extension (section 3.1: "CRIMES could be extended to include a history of
// checkpoints"): a full snapshot kept in a bounded ring.
struct Snapshot {
  Nanos taken_at{0};
  VcpuState vcpu;
  std::vector<Page> pages;
};

class Checkpointer {
 public:
  Checkpointer(Hypervisor& hypervisor, Vm& primary, SimClock& clock,
               const CostModel& costs, CheckpointConfig config);
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  // Creates the backup domain, performs the initial full synchronization,
  // charges the premap startup cost if configured, and enables log-dirty
  // mode on the primary.
  void initialize();

  [[nodiscard]] bool initialized() const { return backup_ != nullptr; }
  [[nodiscard]] Nanos startup_cost() const { return startup_cost_; }
  [[nodiscard]] const CheckpointConfig& config() const { return config_; }

  // Runs the end-of-epoch pipeline. Advances the SimClock by the total
  // pause time. On audit failure the primary is left Paused and the backup
  // untouched. With speculative_cow the returned result has cow_pending
  // set: the copy is still draining and the caller must finish the epoch
  // via complete_cow_drain() before the next run_checkpoint (which
  // otherwise completes the drain itself, without overlap credit).
  EpochResult run_checkpoint(const AuditFn& audit);

  // True while a speculative CoW drain is in flight.
  [[nodiscard]] bool cow_drain_pending() const;
  // Completes the in-flight drain: background-copies the pages the guest
  // never touched (fusing the per-page FNV-1a digest into the copy loop),
  // verifies/retries under fault injection, and either commits the epoch
  // (backup advanced, store appended with the fused digests, journal
  // batched) or restores the backup untorn and re-marks the dirty set.
  // `resume_at` is the virtual instant the VM resumed (the drain's start);
  // the clock is charged only the barrier stall beyond `resume_at +
  // drain_cost`. Pass a negative resume_at (the default) to charge the
  // full drain cost at the current instant -- the no-overlap fallback the
  // defensive barriers use.
  CowCommit complete_cow_drain(Nanos resume_at = Nanos{-1});

  // Restores every page dirtied since the last clean checkpoint (plus the
  // vCPU) from the backup. Requires the primary to be Paused; leaves it
  // Paused. Returns the rollback preparation cost (charged to the clock).
  Nanos rollback();

  // Time-travel rollback (requires the checkpoint store): rewinds the
  // backup to retained generation `epoch` -- byte-identical to the
  // primary's state when that epoch committed -- restores the primary
  // from it, and discards the store generations newer than `epoch` (the
  // timeline forward of the rewind point is being rewritten). Requires
  // the primary to be Paused; leaves it Paused. Returns the total cost
  // (charged to the clock).
  Nanos rollback_to(std::uint64_t epoch);

  // Remus failover semantics (section 4: "should the primary host go
  // unresponsive Remus will failover to the backup"): destroys the primary
  // and promotes the backup -- the last committed checkpoint -- to a
  // runnable VM. Speculative state since that checkpoint is lost by
  // design. The Checkpointer is defunct afterwards.
  Vm& failover();

  [[nodiscard]] Vm& primary() { return *primary_; }
  [[nodiscard]] Vm& backup();
  [[nodiscard]] const VcpuState& backup_vcpu() const { return backup_vcpu_; }
  [[nodiscard]] std::uint64_t checkpoints_taken() const {
    return checkpoints_taken_;
  }
  [[nodiscard]] const std::deque<Snapshot>& history() const {
    return history_;
  }
  [[nodiscard]] const Transport& transport() const { return *transport_; }
  // The worker pool behind the parallel knobs; nullptr when every phase is
  // serial. The Detector borrows it for parallel audits.
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }
  // The multi-generation checkpoint store; nullptr unless
  // config().store.enabled.
  [[nodiscard]] store::CheckpointStore* store() { return store_.get(); }
  [[nodiscard]] const store::CheckpointStore* store() const {
    return store_.get();
  }
  // The durable store journal; nullptr unless config().store.journal.
  [[nodiscard]] replication::StoreJournal* journal() { return journal_.get(); }
  [[nodiscard]] const replication::StoreJournal* journal() const {
    return journal_.get();
  }

  // Attaches (or detaches, with nullptr) the telemetry layer: per-phase
  // spans on the trace and phase.* histograms in the registry. Metric
  // pointers are resolved once here so the per-epoch path stays lock-free.
  void set_telemetry(telemetry::Telemetry* telemetry);

  // Attaches (nullptr detaches) the fault injector, forwarding it to the
  // transport. With an injector present every copy runs under the
  // undo-log/retry discipline.
  void set_fault_injector(fault::FaultInjector* faults);

 private:
  void full_sync();
  [[nodiscard]] Nanos map_cost(std::size_t dirty_pages) const;
  // FNV-1a page checksums of primary vs backup over `dirty`; the
  // virtual-time charge (2 sweeps) is added by the caller.
  [[nodiscard]] bool backup_matches(ForeignMapping& primary,
                                    ForeignMapping& backup,
                                    std::span<const Pfn> dirty) const;
  // The copy/verify/retry/undo loop behind checkpoint step 5. Returns the
  // phase's virtual-time cost and fills the resilience fields of `result`.
  Nanos copy_with_retries(ForeignMapping& src, ForeignMapping& dst,
                          EpochResult& result);
  void push_history();
  void record_epoch_metrics(const EpochResult& result);
  // Post-commit store hook: append the generation, run incremental GC,
  // refresh the store.* gauges. Advances the clock (after resume).
  void store_commit(EpochResult& result);
  // CoW twin of store_commit: appends with the drain's fused digests
  // (no hash pass) and batches the journal statements. Returns the cost.
  [[nodiscard]] Nanos cow_store_commit();
  void update_store_gauges();

  Hypervisor* hypervisor_;
  Vm* primary_;
  // Cached at construction: failover() must be able to ask "does the
  // primary domain still exist?" after an external destroy_domain has
  // already freed the Vm behind `primary_`.
  DomainId primary_id_{0};
  SimClock* clock_;
  const CostModel* costs_;
  CheckpointConfig config_;
  std::unique_ptr<ThreadPool> pool_;  // must outlive transport_

  Vm* backup_ = nullptr;
  VcpuState backup_vcpu_;
  std::unique_ptr<Transport> transport_;
  Nanos startup_cost_{0};
  std::uint64_t checkpoints_taken_ = 0;
  std::deque<Snapshot> history_;
  std::unique_ptr<store::CheckpointStore> store_;
  std::unique_ptr<replication::StoreJournal> journal_;
  std::unique_ptr<CowCheckpointer> cow_;  // speculative_cow only
  fault::FaultInjector* faults_ = nullptr;

  telemetry::Telemetry* telemetry_ = nullptr;
  struct PhaseMetrics {
    telemetry::Histogram* suspend = nullptr;
    telemetry::Histogram* dirty_scan = nullptr;
    telemetry::Histogram* audit = nullptr;
    telemetry::Histogram* map = nullptr;
    telemetry::Histogram* copy = nullptr;
    telemetry::Histogram* resume = nullptr;
    telemetry::Histogram* pause_total = nullptr;
    telemetry::Histogram* dirty_pages = nullptr;
    telemetry::Counter* epochs = nullptr;
    telemetry::Counter* audit_failures = nullptr;
    telemetry::Counter* copy_retries = nullptr;
    telemetry::Counter* checkpoint_failures = nullptr;
    telemetry::Counter* transport_faults = nullptr;
    telemetry::Counter* torn_writes = nullptr;
    telemetry::Counter* bitmap_rereads = nullptr;
    telemetry::Counter* worker_respawns = nullptr;
    telemetry::Histogram* recovery = nullptr;
    // Speculative CoW path; resolved only when speculative_cow is set.
    telemetry::Histogram* cow_protect = nullptr;
    telemetry::Histogram* cow_drain = nullptr;
    telemetry::Histogram* cow_stall = nullptr;
    telemetry::Counter* cow_first_touches = nullptr;
    telemetry::Gauge* cow_pending_pages = nullptr;
    // Checkpoint-store gauges; resolved only when the store is enabled.
    telemetry::Gauge* store_pages_unique = nullptr;
    telemetry::Gauge* store_bytes_logical = nullptr;
    telemetry::Gauge* store_bytes_physical = nullptr;
    telemetry::Gauge* store_generations = nullptr;
    // Sealing gauges; resolved only when the store's crypto layer is armed.
    telemetry::Gauge* crypto_pages_sealed = nullptr;
    telemetry::Gauge* crypto_seal_failures = nullptr;
  } metrics_{};
};

}  // namespace crimes
