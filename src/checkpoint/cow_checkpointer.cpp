#include "checkpoint/cow_checkpointer.h"

#include "common/hash.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "fault/fault_injector.h"
#include "store/page_store.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace crimes {

namespace {

// Fused copy+digest of one page, remapped exactly like store::page_digest
// so the captured digests drop into the store's manifests unchanged.
std::uint64_t copy_page_fused(Page& dst, const Page& src) {
  const std::uint64_t h =
      copy_and_fnv1a(dst.data.data(), src.data.data(), kPageSize);
  return h == store::kZeroDigest ? 0x9E3779B97F4A7C15ULL : h;
}

}  // namespace

CowCheckpointer::CowCheckpointer(Hypervisor& hypervisor, Vm& primary,
                                 Vm& backup, const CostModel& costs,
                                 const CheckpointConfig& config,
                                 ThreadPool* pool)
    : hypervisor_(&hypervisor),
      primary_(&primary),
      backup_(&backup),
      costs_(&costs),
      config_(&config),
      pool_(pool) {}

Nanos CowCheckpointer::protect(std::vector<Pfn> dirty, const VcpuState& vcpu,
                               bool capture_undo, bool want_digests) {
  if (active_) {
    throw std::logic_error("CowCheckpointer::protect: drain already pending");
  }
  active_ = true;
  want_digests_ = want_digests;
  dirty_ = std::move(dirty);
  slot_of_.clear();
  slot_of_.reserve(dirty_.size());
  for (std::size_t i = 0; i < dirty_.size(); ++i) slot_of_[dirty_[i]] = i;
  digests_.assign(dirty_.size(), 0);
  touched_.assign(dirty_.size(), false);
  first_touches_ = 0;
  first_touch_cost_ = Nanos{0};
  vcpu_ = vcpu;

  undo_.clear();
  if (capture_undo) {
    // The backup's current bytes -- the last clean checkpoint -- of every
    // page the drain will touch. peek() never materializes frames; pages
    // without a backup frame snapshot as the shared zero page. Only
    // captured when a failure path exists: without fault injection or
    // verification the drain cannot fail, and a 70k-page epoch's undo log
    // would cost hundreds of megabytes for nothing.
    ForeignMapping dst = hypervisor_->map_foreign(backup_->id());
    undo_.reserve(dirty_.size());
    for (const Pfn pfn : dirty_) undo_.push_back(dst.peek(pfn));
  }

  primary_->monitor().cow_protect(
      dirty_, [this](Pfn pfn) { on_first_touch(pfn); });
  return costs_->cow_protect_cost(dirty_.size());
}

std::size_t CowCheckpointer::pending_pages() const {
  return active_ ? dirty_.size() - first_touches_ : 0;
}

void CowCheckpointer::on_first_touch(Pfn pfn) {
  // Synchronous dom0 handler: the guest's write is held until the page's
  // pre-write bytes -- the checkpointed content, since this is the first
  // touch -- are safe in the backup. The protection was already dropped
  // by the monitor, so the copy below cannot re-trap.
  const auto it = slot_of_.find(pfn);
  if (it == slot_of_.end() || touched_[it->second]) return;
  const std::size_t slot = it->second;
  ForeignMapping src = hypervisor_->map_foreign(primary_->id());
  ForeignMapping dst = hypervisor_->map_foreign(backup_->id());
  Page& to = dst.page(pfn);
  const Page& from = src.peek(pfn);
  if (want_digests_) {
    digests_[slot] = copy_page_fused(to, from);
  } else {
    std::memcpy(to.data.data(), from.data.data(), kPageSize);
  }
  touched_[slot] = true;
  ++first_touches_;
  first_touch_cost_ +=
      costs_->cow_first_touch_per_page +
      (want_digests_ ? costs_->cow_fused_hash_per_page : Nanos{0});
}

CowCommit CowCheckpointer::complete(fault::FaultInjector* faults) {
  if (!active_) {
    throw std::logic_error("CowCheckpointer::complete: no drain pending");
  }
  CowCommit commit;
  commit.first_touches = first_touches_;
  commit.first_touch_cost = first_touch_cost_;

  std::vector<std::size_t> remaining;  // slots the guest never touched
  remaining.reserve(dirty_.size() - first_touches_);
  for (std::size_t i = 0; i < dirty_.size(); ++i) {
    if (!touched_[i]) remaining.push_back(i);
  }
  commit.drained_pages = remaining.size();

  // The drain pays what the pause used to: mapping the dirty frames, then
  // the copy itself -- plus the first-touch traps already accumulated.
  Nanos cost =
      config_->opt_premap
          ? costs_->premap_per_epoch
          : costs_->map_per_page *
                static_cast<std::int64_t>(dirty_.size() * 2);
  cost += first_touch_cost_;

  ForeignMapping src = hypervisor_->map_foreign(primary_->id());
  ForeignMapping dst = hypervisor_->map_foreign(backup_->id());
  const Nanos per_page =
      costs_->copy_memcpy_per_page +
      (want_digests_ ? costs_->cow_fused_hash_per_page : Nanos{0});

  // Serial gather (mutable backup access materializes frames from the
  // shared machine pool, which must not race), parallel copy: untouched
  // PFNs map to disjoint frames and disjoint digest slots.
  const auto copy_slots = [&](std::span<const std::size_t> slots) {
    std::vector<std::pair<Page*, const Page*>> frames;
    frames.reserve(slots.size());
    for (const std::size_t slot : slots) {
      frames.emplace_back(&dst.page(dirty_[slot]), &src.peek(dirty_[slot]));
    }
    std::size_t shards = 1;
    if (pool_ != nullptr && config_->copy_threads > 1) {
      shards = std::clamp<std::size_t>(
          slots.size() / MemcpyTransport::kMinPagesPerShard, 1,
          config_->copy_threads);
    }
    if (shards <= 1) {
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (want_digests_) {
          digests_[slots[i]] = copy_page_fused(*frames[i].first,
                                               *frames[i].second);
        } else {
          std::memcpy(frames[i].first->data.data(),
                      frames[i].second->data.data(), kPageSize);
        }
      }
      return per_page * static_cast<std::int64_t>(slots.size());
    }
    pool_->parallel_for_shards(
        slots.size(), shards,
        [this, &slots, &frames](std::size_t, std::size_t begin,
                                std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            if (want_digests_) {
              digests_[slots[i]] = copy_page_fused(*frames[i].first,
                                                   *frames[i].second);
            } else {
              std::memcpy(frames[i].first->data.data(),
                          frames[i].second->data.data(), kPageSize);
            }
          }
        });
    return costs_->parallel_shard_cost(per_page, slots.size(), shards);
  };

  bool committed = false;
  for (std::size_t attempt = 0;; ++attempt) {
    bool ok = true;
    if (faults != nullptr && faults->transport_copy_fails()) {
      // The drain stream aborts at half, like an interrupted Remus epoch.
      // Only background-drained pages are affected -- their primary-side
      // sources are still protected, hence intact for the retry.
      const std::size_t done = remaining.size() / 2;
      const Nanos wasted =
          copy_slots(std::span<const std::size_t>(remaining).first(done));
      cost += wasted;
      commit.recovery_cost += wasted;
      ok = false;
    } else {
      cost += copy_slots(remaining);
      if (faults != nullptr && faults->tears_backup_write() &&
          !remaining.empty()) {
        // A torn write can only strike a drained page: first-touched pages
        // went through the synchronous hypervisor path, and their primary
        // source is gone -- they must never need a recopy.
        const Pfn victim =
            dirty_[remaining[faults->torn_victim(remaining.size())]];
        Page& page = dst.page(victim);
        const std::size_t offset = (victim.value() * 64) % (kPageSize - 64);
        for (std::size_t i = 0; i < 64; ++i) {
          page.data[offset + i] ^= std::byte{0x5A};
        }
      }
      if (config_->verify_backup) {
        // One backup-side sweep; the primary side is free -- the fused
        // digests captured at copy/first-touch time are the reference.
        cost += costs_->checksum_per_page * dirty_.size();
        for (std::size_t i = 0; i < dirty_.size() && ok; ++i) {
          ok = store::page_digest(dst.peek(dirty_[i])) == digests_[i];
        }
      }
    }
    if (ok) {
      committed = true;
      break;
    }
    if (attempt >= config_->max_copy_retries) break;
    const Nanos backoff = costs_->retry_backoff_base * (1LL << attempt);
    cost += backoff;
    commit.recovery_cost += backoff;
    ++commit.copy_retries;
  }

  if (!committed) {
    // Retries exhausted: put the last clean checkpoint back -- every page
    // this drain touched, first-touch copies included -- and hand the
    // dirty set back to the primary's bitmap so the next successful
    // checkpoint carries this epoch's pages too.
    if (!undo_.empty()) {
      for (std::size_t i = 0; i < undo_.size(); ++i) {
        std::memcpy(dst.page(dirty_[i]).data.data(), undo_[i].data.data(),
                    kPageSize);
      }
    }
    const Nanos repair = costs_->copy_memcpy_per_page * dirty_.size();
    cost += repair;
    commit.recovery_cost += repair;
    for (const Pfn pfn : dirty_) primary_->dirty_bitmap().mark(pfn);
    commit.committed = false;
    CRIMES_LOG(Warn, "cow")
        << "drain FAILED after " << commit.copy_retries
        << " retries; backup restored, " << dirty_.size()
        << " dirty pages re-marked";
  }

  primary_->monitor().cow_unprotect_all();
  undo_.clear();
  active_ = false;
  commit.drain_cost = cost;
  return commit;
}

void CowCheckpointer::abandon() {
  if (!active_) return;
  const std::size_t never_drained = pending_pages();
  if (!undo_.empty()) {
    ForeignMapping dst = hypervisor_->map_foreign(backup_->id());
    for (std::size_t i = 0; i < undo_.size(); ++i) {
      std::memcpy(dst.page(dirty_[i]).data.data(), undo_[i].data.data(),
                  kPageSize);
    }
  }
  // No cow_unprotect_all() here: abandon() runs only when the primary
  // domain has been destroyed, and its monitor (and protections) died
  // with it -- the Vm behind primary_ is already freed.
  undo_.clear();
  active_ = false;
  CRIMES_LOG(Warn, "cow") << "drain abandoned (" << never_drained
                          << " pages never drained); backup restored to the "
                             "last committed checkpoint";
}

}  // namespace crimes
