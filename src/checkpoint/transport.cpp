#include "checkpoint/transport.h"

#include "common/bytes.h"
#include "common/thread_pool.h"
#include "fault/fault_injector.h"
#include "machine/page.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace crimes {

bool Transport::copy_attempt_fails() const {
  return faults_ != nullptr && faults_->transport_copy_fails();
}

void Transport::maybe_tear(ForeignMapping& backup,
                           std::span<const Pfn> dirty) const {
  if (faults_ == nullptr || dirty.empty()) return;
  if (!faults_->tears_backup_write()) return;
  const Pfn victim = dirty[faults_->torn_victim(dirty.size())];
  Page& page = backup.page(victim);
  const std::size_t offset = (victim.value() * 64) % (kPageSize - 64);
  for (std::size_t i = 0; i < 64; ++i) {
    page.data[offset + i] ^= std::byte{0x5A};
  }
}

namespace {

// Cheap keyed keystream standing in for ssh's stream cipher. Applied twice
// (encrypt on send, decrypt on receive), so the work -- the reason the
// paper's Optimization 1 exists -- is really done.
void xor_keystream(std::span<std::byte> data, std::uint64_t key) {
  std::uint64_t state = key ^ 0x9E3779B97F4A7C15ULL;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    std::uint64_t word;
    std::memcpy(&word, data.data() + i, 8);
    word ^= state;
    std::memcpy(data.data() + i, &word, 8);
  }
  for (; i < data.size(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    data[i] ^= static_cast<std::byte>(state);
  }
}

}  // namespace

std::size_t MemcpyTransport::effective_shards(std::size_t pages) const {
  if (pool_ == nullptr || shards_ <= 1) return 1;
  return std::clamp<std::size_t>(pages / kMinPagesPerShard, 1, shards_);
}

Nanos MemcpyTransport::copy(ForeignMapping& primary, ForeignMapping& backup,
                            std::span<const Pfn> dirty) {
  if (copy_attempt_fails()) {
    // The attempt aborts mid-stream: half the pages really land in the
    // backup (leaving it torn until the Checkpointer retries or restores
    // its undo log), and the wasted work is billed via the exception.
    const std::size_t done = dirty.size() / 2;
    for (const Pfn pfn : dirty.subspan(0, done)) {
      std::memcpy(backup.page(pfn).data.data(), primary.peek(pfn).data.data(),
                  kPageSize);
    }
    throw fault::TransportFault(costs_->copy_memcpy_per_page * done);
  }
  const std::size_t shards = effective_shards(dirty.size());
  if (shards <= 1) {
    for (const Pfn pfn : dirty) {
      std::memcpy(backup.page(pfn).data.data(), primary.peek(pfn).data.data(),
                  kPageSize);
    }
    maybe_tear(backup, dirty);
    return costs_->copy_memcpy_per_page * dirty.size();
  }

  // Gather pass, serial: mutable backup access materializes lazily
  // allocated frames from the shared machine pool, which must not race.
  // Frames are stable once handed out, so the collected pointers survive
  // the parallel pass.
  std::vector<std::pair<std::byte*, const std::byte*>> pages;
  pages.reserve(dirty.size());
  for (const Pfn pfn : dirty) {
    pages.emplace_back(backup.page(pfn).data.data(),
                       primary.peek(pfn).data.data());
  }

  // Copy pass: dirty PFNs are unique and map to disjoint frames, so the
  // shards share nothing -- no locks on the suspended-window path.
  pool_->parallel_for_shards(
      pages.size(), shards,
      [&pages](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          std::memcpy(pages[i].first, pages[i].second, kPageSize);
        }
      });
  maybe_tear(backup, dirty);
  return costs_->parallel_shard_cost(costs_->copy_memcpy_per_page,
                                     dirty.size(), shards);
}

namespace rle {

std::vector<std::byte> encode(std::span<const std::byte> data) {
  std::vector<std::byte> out;
  out.reserve(64);
  std::size_t i = 0;
  while (i < data.size()) {
    std::size_t zeros = 0;
    while (i + zeros < data.size() && data[i + zeros] == std::byte{0} &&
           zeros < 0xFFFF) {
      ++zeros;
    }
    std::size_t lit_start = i + zeros;
    std::size_t lits = 0;
    while (lit_start + lits < data.size() &&
           data[lit_start + lits] != std::byte{0} && lits < 0xFFFF) {
      ++lits;
    }
    const std::size_t base = out.size();
    out.resize(base + 4 + lits);
    store_le<std::uint16_t>(out, base, static_cast<std::uint16_t>(zeros));
    store_le<std::uint16_t>(out, base + 2, static_cast<std::uint16_t>(lits));
    if (lits > 0) {
      std::memcpy(out.data() + base + 4, data.data() + lit_start, lits);
    }
    i = lit_start + lits;
  }
  return out;
}

bool decode(std::span<const std::byte> encoded, std::span<std::byte> out) {
  std::size_t in = 0, pos = 0;
  while (in < encoded.size()) {
    if (in + 4 > encoded.size()) return false;
    const auto zeros = load_le<std::uint16_t>(encoded, in);
    const auto lits = load_le<std::uint16_t>(encoded, in + 2);
    in += 4;
    if (pos + zeros + lits > out.size() || in + lits > encoded.size()) {
      return false;
    }
    if (zeros > 0) {
      std::memset(out.data() + pos, 0, zeros);
      pos += zeros;
    }
    if (lits > 0) {
      std::memcpy(out.data() + pos, encoded.data() + in, lits);
      pos += lits;
      in += lits;
    }
  }
  // Trailing zeroes may be implicit. (Guarded: out.data() may be null for
  // an empty span, and memset's pointer must never be null, even for 0.)
  if (pos < out.size()) {
    std::memset(out.data() + pos, 0, out.size() - pos);
  }
  return true;
}

}  // namespace rle

Nanos SocketTransport::copy_gather(ForeignMapping& primary,
                                   ForeignMapping& backup,
                                   std::span<const Pfn> dirty) {
  // Zero-copy framing: each record is an iovec referencing the source
  // page; the cipher runs over a page-sized scratch (the NIC's bounce
  // slot) instead of an epoch-sized staging buffer, with a per-record key
  // standing in for the record nonce. The abort-at-half contract is
  // preserved record by record.
  constexpr std::size_t kRecordSize = sizeof(std::uint64_t) + kPageSize;
  const std::uint64_t key = 0xC0FFEE ^ (dirty.empty() ? 0 : dirty[0].value());
  const bool aborts = copy_attempt_fails();
  const std::size_t applied = aborts ? dirty.size() / 2 : dirty.size();
  std::array<std::byte, kRecordSize> record;
  for (std::size_t i = 0; i < applied; ++i) {
    const Pfn pfn = dirty[i];
    std::span<std::byte> rec(record.data(), kRecordSize);
    store_le<std::uint64_t>(rec, 0, pfn.value());
    std::memcpy(record.data() + sizeof(std::uint64_t),
                primary.peek(pfn).data.data(), kPageSize);
    const std::uint64_t rkey = key ^ (pfn.value() * 0x100000001B3ULL);
    xor_keystream(rec, rkey);   // encrypt onto the wire...
    bytes_streamed_ += kRecordSize;
    xor_keystream(rec, rkey);   // ...receiver decrypts...
    std::memcpy(backup.page(pfn).data.data(),    // ...and applies.
                record.data() + sizeof(std::uint64_t), kPageSize);
  }
  if (aborts) {
    throw fault::TransportFault(costs_->copy_socket_gather_per_page * applied);
  }
  maybe_tear(backup, dirty);
  return costs_->copy_socket_gather_per_page * dirty.size();
}

Nanos SocketTransport::copy(ForeignMapping& primary, ForeignMapping& backup,
                            std::span<const Pfn> dirty) {
  if (zero_copy_) return copy_gather(primary, backup, dirty);
  constexpr std::size_t kRecordSize = sizeof(std::uint64_t) + kPageSize;
  // Sender: serialize {pfn, page} records and encrypt them onto the wire.
  wire_.resize(dirty.size() * kRecordSize);
  std::size_t off = 0;
  for (const Pfn pfn : dirty) {
    store_le<std::uint64_t>(wire_, off, pfn.value());
    std::memcpy(wire_.data() + off + sizeof(std::uint64_t),
                primary.peek(pfn).data.data(), kPageSize);
    off += kRecordSize;
  }
  const std::uint64_t key = 0xC0FFEE ^ (dirty.empty() ? 0 : dirty[0].value());
  xor_keystream(wire_, key);
  bytes_streamed_ += wire_.size();

  // Receiver (the Remus "Restore" process): decrypt and apply.
  xor_keystream(wire_, key);
  const bool aborts = copy_attempt_fails();
  const std::size_t applied = aborts ? dirty.size() / 2 : dirty.size();
  off = 0;
  for (std::size_t i = 0; i < applied; ++i) {
    const Pfn pfn{load_le<std::uint64_t>(wire_, off)};
    std::memcpy(backup.page(pfn).data.data(),
                wire_.data() + off + sizeof(std::uint64_t), kPageSize);
    off += kRecordSize;
  }
  if (aborts) {
    // The stream broke mid-epoch: the records already applied leave the
    // backup torn, as on a dropped Remus connection.
    throw fault::TransportFault(costs_->copy_socket_per_page * applied);
  }
  maybe_tear(backup, dirty);
  return costs_->copy_socket_per_page * dirty.size();
}

Nanos CompressedSocketTransport::copy_gather(ForeignMapping& primary,
                                             ForeignMapping& backup,
                                             std::span<const Pfn> dirty) {
  // Zero-copy framing for the compressed stream: the delta is built and
  // RLE'd straight into a per-record buffer (referencing the primary and
  // stale backup pages in place), ciphered, and applied -- no epoch-sized
  // wire buffer between sender and receiver.
  const std::uint64_t key = 0xDE17A ^ (dirty.empty() ? 0 : dirty[0].value());
  const bool aborts = copy_attempt_fails();
  const std::size_t applied = aborts ? dirty.size() / 2 : dirty.size();
  std::uint64_t epoch_wire = 0;
  delta_.resize(kPageSize);
  std::vector<std::byte> record;
  for (std::size_t i = 0; i < applied; ++i) {
    const Pfn pfn = dirty[i];
    const Page& fresh = primary.peek(pfn);
    const Page& stale = backup.peek(pfn);
    for (std::size_t b = 0; b < kPageSize; ++b) {
      delta_[b] = fresh.data[b] ^ stale.data[b];
    }
    const std::vector<std::byte> encoded = rle::encode(delta_);
    record.resize(12 + encoded.size());
    store_le<std::uint64_t>(record, 0, pfn.value());
    store_le<std::uint32_t>(record, 8,
                            static_cast<std::uint32_t>(encoded.size()));
    std::memcpy(record.data() + 12, encoded.data(), encoded.size());
    const std::uint64_t rkey = key ^ (pfn.value() * 0x100000001B3ULL);
    xor_keystream(record, rkey);
    raw_bytes_ += kPageSize;
    wire_bytes_ += record.size();
    epoch_wire += record.size();
    xor_keystream(record, rkey);
    if (!rle::decode(
            std::span<const std::byte>(record).subspan(12, encoded.size()),
            delta_)) {
      throw std::runtime_error(
          "CompressedSocketTransport: corrupt wire record");
    }
    Page& dst = backup.page(pfn);
    for (std::size_t b = 0; b < kPageSize; ++b) {
      dst.data[b] ^= delta_[b];
    }
  }
  if (aborts) {
    throw fault::TransportFault(costs_->copy_compress_gather_per_page *
                                applied);
  }
  maybe_tear(backup, dirty);
  return costs_->copy_compress_gather_per_page * dirty.size() +
         Nanos{static_cast<std::int64_t>(
             static_cast<double>(epoch_wire) *
             static_cast<double>(costs_->copy_wire_per_byte.count()))};
}

Nanos CompressedSocketTransport::copy(ForeignMapping& primary,
                                      ForeignMapping& backup,
                                      std::span<const Pfn> dirty) {
  if (zero_copy_) return copy_gather(primary, backup, dirty);
  // Sender: XOR each dirty page against the backup's stale copy, RLE the
  // delta, stream the records.
  wire_.clear();
  delta_.resize(kPageSize);
  for (const Pfn pfn : dirty) {
    const Page& fresh = primary.peek(pfn);
    const Page& stale = backup.peek(pfn);
    for (std::size_t i = 0; i < kPageSize; ++i) {
      delta_[i] = fresh.data[i] ^ stale.data[i];
    }
    const std::vector<std::byte> encoded = rle::encode(delta_);
    const std::size_t base = wire_.size();
    wire_.resize(base + 12 + encoded.size());
    store_le<std::uint64_t>(wire_, base, pfn.value());
    store_le<std::uint32_t>(wire_, base + 8,
                            static_cast<std::uint32_t>(encoded.size()));
    std::memcpy(wire_.data() + base + 12, encoded.data(), encoded.size());
  }
  const std::uint64_t key = 0xDE17A ^ (dirty.empty() ? 0 : dirty[0].value());
  xor_keystream(wire_, key);
  raw_bytes_ += dirty.size() * kPageSize;
  wire_bytes_ += wire_.size();

  // Receiver: decrypt, decode each delta, XOR into the backup page.
  xor_keystream(wire_, key);
  const bool aborts = copy_attempt_fails();
  const std::size_t applied = aborts ? dirty.size() / 2 : dirty.size();
  std::size_t off = 0;
  for (std::size_t rec = 0; rec < applied; ++rec) {
    const Pfn pfn{load_le<std::uint64_t>(wire_, off)};
    const auto len = load_le<std::uint32_t>(wire_, off + 8);
    off += 12;
    if (!rle::decode(std::span<const std::byte>(wire_).subspan(off, len),
                     delta_)) {
      throw std::runtime_error(
          "CompressedSocketTransport: corrupt wire record");
    }
    Page& dst = backup.page(pfn);
    for (std::size_t i = 0; i < kPageSize; ++i) {
      dst.data[i] ^= delta_[i];
    }
    off += len;
  }
  if (aborts) {
    throw fault::TransportFault(costs_->copy_compress_per_page * applied);
  }
  maybe_tear(backup, dirty);

  // CPU to build/apply deltas plus wire time proportional to what was
  // actually sent.
  return costs_->copy_compress_per_page * dirty.size() +
         Nanos{static_cast<std::int64_t>(
             static_cast<double>(wire_.size()) *
             static_cast<double>(costs_->copy_wire_per_byte.count()))};
}

}  // namespace crimes
