// Checkpoint transports: how dirty pages move from the primary VM into the
// backup image.
//
// SocketTransport reproduces unmodified Remus: pages are serialized into a
// stream, run through a stream cipher (Remus pipes checkpoints through ssh
// even when the destination is local), "received" on the other side,
// decrypted and applied. All of that work really happens, byte for byte.
//
// MemcpyTransport is the paper's Optimization 1: the checkpointer maps both
// the primary's and the backup's frames into its own address space (the
// paper patches Remus's Restore process to export the backup's MFNs) and
// memcpy()s dirty pages across.
//
// Either way the backup image ends up byte-identical -- a property the test
// suite asserts for every transport/optimization combination.
//
// Parallel engine: MemcpyTransport can shard the dirty-PFN list across a
// worker pool. Dirty frames are disjoint (one PFN maps to one machine
// frame, and a PFN appears once in the list), so the concurrent memcpys
// need no locking; only the frame *materialization* (lazy allocation from
// the shared machine pool) is kept on the calling thread.
#pragma once

#include "common/cost_model.h"
#include "common/types.h"
#include "hypervisor/foreign_mapping.h"

#include <cstdint>
#include <span>
#include <vector>

namespace crimes {

namespace fault {
class FaultInjector;
}  // namespace fault

class ThreadPool;

class Transport {
 public:
  virtual ~Transport() = default;

  // Copies `dirty` pages from primary to backup. Returns the virtual-time
  // cost of the copy phase.
  //
  // Under fault injection a copy may abort mid-stream (throwing
  // fault::TransportFault after really copying a prefix of the pages --
  // the backup is left torn, exactly like an interrupted Remus epoch) or
  // complete but corrupt one backup page (a torn write the caller only
  // catches by verifying checksums). The Checkpointer owns the
  // undo-log/retry machinery that restores the atomic-apply invariant.
  virtual Nanos copy(ForeignMapping& primary, ForeignMapping& backup,
                     std::span<const Pfn> dirty) = 0;

  [[nodiscard]] virtual const char* name() const = 0;

  // Attaches (nullptr detaches) the fault injector. Decisions are drawn on
  // the calling thread before any parallel fan-out.
  void set_fault_injector(fault::FaultInjector* faults) { faults_ = faults; }

  // Scatter-gather zero-copy framing: records reference the source pages
  // via iovecs instead of staging the whole epoch into a wire buffer, so
  // the per-page cost drops by the staging memcpy and no epoch-sized
  // allocation happens. MemcpyTransport ignores the flag (it never
  // staged); the socket transports switch to per-record framing.
  void set_zero_copy(bool on) { zero_copy_ = on; }
  [[nodiscard]] bool zero_copy() const { return zero_copy_; }

 protected:
  // True when the injector says this copy attempt aborts mid-stream.
  [[nodiscard]] bool copy_attempt_fails() const;
  // Applies a torn write when the plan says so: one already-copied backup
  // page gets a 64-byte stripe of its fresh contents flipped.
  void maybe_tear(ForeignMapping& backup, std::span<const Pfn> dirty) const;

  fault::FaultInjector* faults_ = nullptr;
  bool zero_copy_ = false;
};

class MemcpyTransport final : public Transport {
 public:
  // With a pool and shards > 1, epochs with at least kMinPagesPerShard
  // pages per shard copy in parallel; smaller epochs stay serial (the
  // fork/join overhead would dominate).
  explicit MemcpyTransport(const CostModel& costs, ThreadPool* pool = nullptr,
                           std::size_t shards = 0)
      : costs_(&costs), pool_(pool), shards_(shards) {}

  static constexpr std::size_t kMinPagesPerShard = 16;

  Nanos copy(ForeignMapping& primary, ForeignMapping& backup,
             std::span<const Pfn> dirty) override;
  [[nodiscard]] const char* name() const override { return "memcpy"; }

  // Shard count the next copy of `pages` dirty pages would use (1 =
  // serial). Exposed so the cost accounting is testable.
  [[nodiscard]] std::size_t effective_shards(std::size_t pages) const;

 private:
  const CostModel* costs_;
  ThreadPool* pool_;
  std::size_t shards_;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(const CostModel& costs) : costs_(&costs) {}

  Nanos copy(ForeignMapping& primary, ForeignMapping& backup,
             std::span<const Pfn> dirty) override;
  [[nodiscard]] const char* name() const override { return "socket+ssh"; }

  [[nodiscard]] std::uint64_t bytes_streamed() const {
    return bytes_streamed_;
  }

 private:
  Nanos copy_gather(ForeignMapping& primary, ForeignMapping& backup,
                    std::span<const Pfn> dirty);

  const CostModel* costs_;
  std::vector<std::byte> wire_;  // reused staging buffer ("the socket")
  std::uint64_t bytes_streamed_ = 0;
};

// Remus's checkpoint compression (extension): each dirty page is XOR'd
// against the backup's stale copy of the same page and the resulting
// delta -- mostly zeroes when only part of a page changed -- is
// run-length encoded before hitting the (ciphered) wire. The receiver
// decodes and XORs the delta back into its copy. Trades CPU per page for
// wire bytes; wins exactly when epochs re-dirty pages sparsely.
//
// Wire record format, per page:
//   u64 pfn | u32 encoded_len | encoded_len bytes of RLE delta
// RLE stream: repeated (u16 zero_run, u16 literal_len, literal bytes).
class CompressedSocketTransport final : public Transport {
 public:
  explicit CompressedSocketTransport(const CostModel& costs)
      : costs_(&costs) {}

  Nanos copy(ForeignMapping& primary, ForeignMapping& backup,
             std::span<const Pfn> dirty) override;
  [[nodiscard]] const char* name() const override {
    return "socket+ssh+xor-rle";
  }

  [[nodiscard]] std::uint64_t raw_bytes() const { return raw_bytes_; }
  [[nodiscard]] std::uint64_t wire_bytes() const { return wire_bytes_; }
  // >1 means the delta encoding actually saved wire traffic.
  [[nodiscard]] double compression_ratio() const {
    return wire_bytes_ == 0 ? 1.0
                            : static_cast<double>(raw_bytes_) /
                                  static_cast<double>(wire_bytes_);
  }

 private:
  Nanos copy_gather(ForeignMapping& primary, ForeignMapping& backup,
                    std::span<const Pfn> dirty);

  const CostModel* costs_;
  std::vector<std::byte> wire_;
  std::vector<std::byte> delta_;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t wire_bytes_ = 0;
};

// Shared by the transport and its tests.
namespace rle {
// Encodes `data` as (zero_run, literal_len, literals)* records.
[[nodiscard]] std::vector<std::byte> encode(std::span<const std::byte> data);
// Decodes into exactly `out.size()` bytes; returns false on malformed
// input.
[[nodiscard]] bool decode(std::span<const std::byte> encoded,
                          std::span<std::byte> out);
}  // namespace rle

}  // namespace crimes
