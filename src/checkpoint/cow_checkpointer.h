// The speculative copy-on-write drain engine (DESIGN.md section 12).
//
// Stop-copy checkpointing pays the whole dirty-page copy inside the pause;
// this engine moves it off-pause: at checkpoint time the dirty set is
// write-protected through the mem-event machinery (the same Xen mem_access
// path replay uses, but with a synchronous dom0 handler and no ring), the
// VM resumes, and the copy drains in the background while the next epoch
// executes. Two sources feed the backup:
//
//   first-touch   the guest writes a still-protected page; the handler
//                 copies the page's pre-write bytes -- exactly the
//                 checkpointed content, since this is the first touch --
//                 into the backup before the write proceeds, then drops
//                 the protection.
//   drain         every page the guest never touched is copied at the
//                 commit barrier; its content is still the checkpointed
//                 content precisely *because* it was never touched.
//
// Either way the committed backup is byte-identical to what stop-copy
// would have produced -- the property the test suite and the
// ablation_cow_pause bench assert run by run.
//
// The per-page FNV-1a digest is fused into both copy loops (one pass over
// the bytes instead of copy-then-digest), so the checkpoint store's append
// skips its hash pass and backup verification reuses the captured digests.
//
// Fault discipline: an aborted drain attempt really copies a prefix and
// retries with backoff; a torn write can only strike a *background-drained*
// page (a first-touched page's primary-side source is gone the moment the
// guest's write lands, so its copy must never need a retry -- the handler
// path is the synchronous, cannot-abort hypervisor path). On retry
// exhaustion the undo log restores every touched backup page and the dirty
// set is re-marked, exactly like the stop-copy failure path: the backup is
// never left torn.
#pragma once

#include "checkpoint/checkpointer.h"
#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "hypervisor/hypervisor.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace crimes::fault {
class FaultInjector;
}  // namespace crimes::fault

namespace crimes {

class CowCheckpointer {
 public:
  CowCheckpointer(Hypervisor& hypervisor, Vm& primary, Vm& backup,
                  const CostModel& costs, const CheckpointConfig& config,
                  ThreadPool* pool);

  // Arms the drain for this epoch's dirty set: captures the undo log (only
  // when a failure path exists -- fault injection or verification),
  // registers the first-touch handler, write-protects the pages and
  // records the checkpoint vCPU. Returns the protect-phase pause cost.
  // `want_digests` turns on the fused digest (store enabled or
  // verify_backup; a plain memcpy drain otherwise).
  Nanos protect(std::vector<Pfn> dirty, const VcpuState& vcpu,
                bool capture_undo, bool want_digests);

  [[nodiscard]] bool pending() const { return active_; }
  [[nodiscard]] std::size_t pending_pages() const;
  [[nodiscard]] std::size_t first_touches() const { return first_touches_; }

  // Drains the untouched remainder, verifies/retries under faults, and
  // either leaves the backup holding the full checkpoint (returns
  // committed) or restores it untorn from the undo log and re-marks the
  // primary's dirty bitmap. Fills everything except `stall` and
  // `store_cost` (the Checkpointer's concern). The fused digests and the
  // dirty list remain readable via digests()/dirty() until the next
  // protect().
  CowCommit complete(fault::FaultInjector* faults);

  // Failover with a dead primary: the drain can never complete (its page
  // sources are gone with the domain). Restores the backup from the undo
  // log when one was captured, so the promoted image is the last
  // *committed* checkpoint, and disarms the drain.
  void abandon();

  // Valid after a committed complete(): parallel arrays for the store's
  // append_with_digests.
  [[nodiscard]] const std::vector<Pfn>& dirty() const { return dirty_; }
  [[nodiscard]] const std::vector<std::uint64_t>& digests() const {
    return digests_;
  }
  [[nodiscard]] const VcpuState& vcpu_at_checkpoint() const { return vcpu_; }

 private:
  void on_first_touch(Pfn pfn);

  Hypervisor* hypervisor_;
  Vm* primary_;
  Vm* backup_;
  const CostModel* costs_;
  const CheckpointConfig* config_;
  ThreadPool* pool_;

  bool active_ = false;
  bool want_digests_ = false;
  std::vector<Pfn> dirty_;
  std::unordered_map<Pfn, std::size_t> slot_of_;  // pfn -> index in dirty_
  std::vector<std::uint64_t> digests_;            // parallel to dirty_
  std::vector<bool> touched_;                     // parallel to dirty_
  std::vector<Page> undo_;  // backup bytes before this drain (may be empty)
  VcpuState vcpu_;
  std::size_t first_touches_ = 0;
  Nanos first_touch_cost_{0};
};

}  // namespace crimes
