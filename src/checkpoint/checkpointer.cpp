#include "checkpoint/checkpointer.h"

#include "checkpoint/cow_checkpointer.h"
#include "common/hash.h"
#include "common/log.h"
#include "fault/fault_injector.h"
#include "replication/store_journal.h"
#include "store/checkpoint_store.h"
#include "telemetry/telemetry.h"

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace crimes {

const char* CheckpointConfig::label() const {
  if (speculative_cow) return "CoW";
  if (opt_memcpy && opt_premap && opt_chunked_scan) {
    return wants_pool() ? "Parallel" : "Full";
  }
  if (opt_memcpy && opt_premap) return "Pre-map";
  if (opt_memcpy) return "Memcpy";
  return "No-opt";
}

std::size_t CheckpointConfig::pool_threads() const {
  return copy_threads > 1 ? copy_threads : ThreadPool::default_thread_count();
}

void Checkpointer::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    metrics_ = {};
    return;
  }
  auto& m = telemetry_->metrics;
  metrics_.suspend = &m.histogram("phase.suspend");
  metrics_.dirty_scan = &m.histogram("phase.dirty_scan");
  metrics_.audit = &m.histogram("phase.audit");
  metrics_.map = &m.histogram("phase.map");
  metrics_.copy = &m.histogram("phase.copy");
  metrics_.resume = &m.histogram("phase.resume");
  metrics_.pause_total = &m.histogram("phase.pause_total");
  metrics_.dirty_pages = &m.histogram("checkpoint.dirty_pages");
  metrics_.epochs = &m.counter("checkpoint.epochs");
  metrics_.audit_failures = &m.counter("checkpoint.audit_failures");
  metrics_.copy_retries = &m.counter("checkpoint.copy_retries");
  metrics_.checkpoint_failures = &m.counter("checkpoint.failures");
  metrics_.transport_faults = &m.counter("fault.transport");
  metrics_.torn_writes = &m.counter("fault.torn_write");
  metrics_.bitmap_rereads = &m.counter("fault.bitmap_reread");
  metrics_.worker_respawns = &m.counter("fault.worker_respawn");
  metrics_.recovery = &m.histogram("checkpoint.recovery_ns");
  if (config_.speculative_cow) {
    metrics_.cow_protect = &m.histogram("phase.protect");
    metrics_.cow_drain = &m.histogram("cow.drain_ns");
    metrics_.cow_stall = &m.histogram("cow.stall_ns");
    metrics_.cow_first_touches = &m.counter("cow.first_touches");
    metrics_.cow_pending_pages = &m.gauge("cow.pending_pages");
  }
  if (config_.store.enabled) {
    metrics_.store_pages_unique = &m.gauge("store.pages_unique");
    metrics_.store_bytes_logical = &m.gauge("store.bytes_logical");
    metrics_.store_bytes_physical = &m.gauge("store.bytes_physical");
    metrics_.store_generations = &m.gauge("store.generations");
    if (config_.store.crypto.enabled()) {
      metrics_.crypto_pages_sealed = &m.gauge("crypto.pages_sealed");
      metrics_.crypto_seal_failures = &m.gauge("crypto.seal_failures");
    }
    update_store_gauges();
  }
}

void Checkpointer::set_fault_injector(fault::FaultInjector* faults) {
  faults_ = faults;
  transport_->set_fault_injector(faults);
  if (journal_ != nullptr) journal_->set_fault_injector(faults);
  if (store_ != nullptr) store_->set_fault_injector(faults);
}

Checkpointer::Checkpointer(Hypervisor& hypervisor, Vm& primary,
                           SimClock& clock, const CostModel& costs,
                           CheckpointConfig config)
    : hypervisor_(&hypervisor),
      primary_(&primary),
      primary_id_(primary.id()),
      clock_(&clock),
      costs_(&costs),
      config_(config) {
  if (config_.opt_premap && !config_.opt_memcpy) {
    // Pre-mapping the backup's frames only makes sense once the
    // checkpointer copies into them directly (the paper stacks the
    // optimizations in this order).
    throw std::invalid_argument(
        "CheckpointConfig: opt_premap requires opt_memcpy");
  }
  if (config_.remote_backup && (config_.opt_memcpy || config_.opt_premap)) {
    throw std::invalid_argument(
        "CheckpointConfig: remote_backup cannot map the backup locally "
        "(Optimizations 1 and 2 do not apply)");
  }
  if (config_.compress && config_.opt_memcpy) {
    throw std::invalid_argument(
        "CheckpointConfig: compression applies to the socket transport "
        "only");
  }
  if (config_.copy_threads > 1 && !config_.opt_memcpy) {
    // The socket transports serialize through a sequential stream cipher;
    // only disjoint-frame memcpys shard without ordering constraints.
    throw std::invalid_argument(
        "CheckpointConfig: copy_threads requires opt_memcpy");
  }
  if (config_.parallel_scan && !config_.opt_chunked_scan) {
    throw std::invalid_argument(
        "CheckpointConfig: parallel_scan requires opt_chunked_scan");
  }
  if (config_.simd_scan && !config_.opt_chunked_scan) {
    throw std::invalid_argument(
        "CheckpointConfig: simd_scan requires opt_chunked_scan");
  }
  if (config_.speculative_cow && !config_.opt_memcpy) {
    // The drain and the first-touch handler copy through local foreign
    // mappings; a socket transport has no page to reference in place.
    throw std::invalid_argument(
        "CheckpointConfig: speculative_cow requires opt_memcpy");
  }
  if (config_.wants_pool()) {
    pool_ = std::make_unique<ThreadPool>(config_.pool_threads());
  }
  if (config_.opt_memcpy) {
    transport_ = std::make_unique<MemcpyTransport>(costs, pool_.get(),
                                                   config_.copy_threads);
  } else if (config_.compress) {
    transport_ = std::make_unique<CompressedSocketTransport>(costs);
  } else {
    transport_ = std::make_unique<SocketTransport>(costs);
  }
}

Checkpointer::~Checkpointer() {
  if (backup_ != nullptr && hypervisor_->has_domain(backup_->id())) {
    hypervisor_->destroy_domain(backup_->id());
  }
}

void Checkpointer::initialize() {
  if (backup_ != nullptr) {
    throw std::logic_error("Checkpointer: already initialized");
  }
  backup_ = &hypervisor_->create_domain(primary_->name() + "-backup",
                                        primary_->page_count());
  backup_->pause();  // the backup never executes

  full_sync();
  startup_cost_ = costs_->copy_memcpy_per_page * primary_->page_count();

  if (config_.opt_premap) {
    // Build the global PFN->MFN array for both domains once (Optimization
    // 2). This inflates startup time but removes per-epoch map work.
    startup_cost_ += costs_->premap_startup_per_page *
                     (primary_->page_count() + backup_->page_count());
  }
  if (config_.store.enabled) {
    // Generation 0 is the initial full synchronization -- the oldest
    // rewind target until retention ages it out.
    store_ = std::make_unique<store::CheckpointStore>(*costs_, config_.store);
    store_->set_fault_injector(faults_);
    ForeignMapping image = hypervisor_->map_foreign(backup_->id());
    startup_cost_ +=
        store_->seed(checkpoints_taken_, image, backup_vcpu_, clock_->now());
    if (config_.store.journal) {
      // The journal mirrors the store operation for operation from the
      // seed on; recovery replays it against a fresh store. It shares the
      // store's crypto config so Seed/Append records carry the same
      // attestation roots the store computes.
      journal_ = std::make_unique<replication::StoreJournal>(
          *costs_, config_.store.crypto);
      journal_->set_fault_injector(faults_);
      startup_cost_ += journal_->log_seed(checkpoints_taken_, clock_->now(),
                                          image, backup_vcpu_,
                                          store_->root());
    }
  }
  clock_->advance(startup_cost_);

  if (config_.speculative_cow) {
    cow_ = std::make_unique<CowCheckpointer>(*hypervisor_, *primary_,
                                             *backup_, *costs_, config_,
                                             pool_.get());
  }

  primary_->enable_log_dirty();
  CRIMES_LOG(Info, "checkpointer")
      << "initialized (" << config_.label() << ", interval "
      << to_ms(config_.epoch_interval) << " ms, backup domain "
      << backup_->id().value() << ")";
}

void Checkpointer::full_sync() {
  ForeignMapping src = hypervisor_->map_foreign(primary_->id());
  ForeignMapping dst = hypervisor_->map_foreign(backup_->id());
  for (std::size_t i = 0; i < primary_->page_count(); ++i) {
    const Pfn pfn{i};
    // Never-written primary pages are zero on both sides already; copying
    // them would only materialize backup frames for nothing.
    if (!src.is_backed(pfn)) continue;
    std::memcpy(dst.page(pfn).data.data(), src.peek(pfn).data.data(),
                kPageSize);
  }
  backup_vcpu_ = primary_->vcpu();
  // The backup domain carries the checkpointed vCPU too, so dom0 tools
  // (memory dumps, VMI) can translate through its CR3 directly.
  backup_->vcpu() = backup_vcpu_;
}

Nanos Checkpointer::map_cost(std::size_t dirty_pages) const {
  if (config_.opt_premap) return costs_->premap_per_epoch;
  // Without pre-mapping, every dirty page is mapped and unmapped each
  // epoch. The memcpy transport maps *both* the primary's and the backup's
  // frames (the socket transport's receive side maps the backup inside the
  // separate Restore process, which is not on this host's critical path).
  const std::size_t per_page_mappings = config_.opt_memcpy ? 2 : 1;
  return costs_->map_per_page * (dirty_pages * per_page_mappings);
}

EpochResult Checkpointer::run_checkpoint(const AuditFn& audit) {
  if (backup_ == nullptr) {
    throw std::logic_error("Checkpointer: initialize() not called");
  }
  // Defensive barrier: a caller that never collected the previous epoch's
  // speculative drain gets it completed here, without overlap credit, so
  // "the backup holds the last clean checkpoint" is true for everything
  // below (and for rollback/failover, which barrier the same way).
  if (cow_ != nullptr && cow_->pending()) complete_cow_drain();
  EpochResult result;
  const DirtyBitmap& bitmap = primary_->dirty_bitmap();
  const std::size_t dirty_count = bitmap.dirty_count();

  // Telemetry: phases are placed on the virtual timeline as their costs
  // become known (the SimClock only advances once the whole pause is
  // charged at the end); `cursor` walks the pause window phase by phase.
  // Wall time is measured around the phases that do real work.
  const bool traced = telemetry_ != nullptr;
  Nanos cursor = clock_->now();
  using WallClock = std::chrono::steady_clock;
  WallClock::time_point wall_begin;
  Nanos wall{0};
  const auto wall_start = [&] {
    if (traced) wall_begin = WallClock::now();
  };
  const auto wall_stop = [&] {
    wall = traced ? std::chrono::duration_cast<Nanos>(WallClock::now() -
                                                      wall_begin)
                  : Nanos{0};
  };
  const auto phase_span = [&](const char* name, Nanos cost, Nanos wall_dur) {
    if (traced) telemetry_->trace.add_span(name, cursor, cost, 0, wall_dur);
    cursor += cost;
  };

  // 1. Suspend the primary: quiesce vCPUs and in-flight DMA.
  primary_->suspend();
  result.costs.suspend = costs_->suspend_cost(dirty_count);
  // Resilience: a worker-loss fault kills one real pool thread; the pool
  // joins it and spawns a replacement before any parallel phase runs.
  if (faults_ != nullptr && pool_ != nullptr && faults_->loses_worker()) {
    pool_->replace_worker();
    result.costs.suspend += costs_->worker_respawn;
    result.recovery_cost += costs_->worker_respawn;
    if (metrics_.worker_respawns != nullptr) metrics_.worker_respawns->add();
    CRIMES_LOG(Warn, "checkpointer")
        << "pool worker lost; respawned (pool size " << pool_->size() << ")";
  }
  phase_span("suspend", result.costs.suspend, Nanos{0});

  // 2. Scan the dirty bitmap (Optimization 3 picks the algorithm; the
  // parallel engine shards it).
  wall_start();
  if (config_.opt_chunked_scan && config_.parallel_scan && pool_ != nullptr) {
    std::vector<std::size_t> shard_set_bits;
    result.dirty =
        bitmap.scan_parallel(*pool_, pool_->size(), &shard_set_bits);
    result.costs.bitscan =
        costs_->bitscan_parallel_cost(bitmap.word_count(), shard_set_bits);
  } else if (config_.opt_chunked_scan && config_.simd_scan) {
    result.dirty = bitmap.scan_simd();
    result.costs.bitscan =
        costs_->bitscan_simd_cost(bitmap.word_count(), result.dirty.size());
  } else if (config_.opt_chunked_scan) {
    result.dirty = bitmap.scan_chunked();
    result.costs.bitscan = costs_->bitscan_chunked_cost(bitmap.word_count(),
                                                        result.dirty.size());
  } else {
    result.dirty = bitmap.scan_naive();
    result.costs.bitscan = costs_->bitscan_naive_cost(bitmap.page_count());
  }
  result.costs.dirty_pages = result.dirty.size();
  // Resilience: an injected EIO on the log-dirty read forces a full
  // re-scan plus the re-issued hypercall. The data of the second read is
  // identical (the VM is suspended), so only the cost is charged.
  if (faults_ != nullptr && faults_->bitmap_read_fails()) {
    const Nanos reread = result.costs.bitscan + costs_->bitmap_reread;
    result.costs.bitscan += reread;
    result.recovery_cost += reread;
    if (metrics_.bitmap_rereads != nullptr) metrics_.bitmap_rereads->add();
  }
  wall_stop();
  phase_span("dirty_scan", result.costs.bitscan, wall);

  // 3. Security audit while the VM is quiesced. `cursor` is the audit
  // phase's virtual start; the Detector offsets its scan:<module> spans
  // from it.
  wall_start();
  if (audit) {
    const AuditResult verdict = audit(result.dirty, cursor);
    result.costs.vmi = verdict.cost;
    result.audit_passed = verdict.passed;
  } else {
    result.costs.vmi = costs_->vmi_noop_scan;
    result.audit_passed = true;
  }
  wall_stop();
  phase_span("audit", result.costs.vmi, wall);

  if (!result.audit_passed) {
    // Evidence found: freeze the VM, keep the backup clean, keep the dirty
    // bitmap so rollback knows what the failed epoch touched.
    primary_->pause();
    clock_->advance(result.costs.suspend + result.costs.bitscan +
                    result.costs.vmi);
    // The newest generation is the forensic baseline for the incident;
    // pin it (per policy) so GC cannot age it out mid-investigation.
    if (store_ != nullptr) store_->note_audit_failure();
    if (journal_ != nullptr) clock_->advance(journal_->log_audit_failure());
    if (traced) record_epoch_metrics(result);
    CRIMES_LOG(Warn, "checkpointer")
        << "audit FAILED at " << to_ms(clock_->now()) << " ms; VM paused";
    return result;
  }

  if (cow_ != nullptr) {
    // 4'. Speculative CoW (DESIGN.md section 12): write-protect the dirty
    // set and resume immediately. Map and copy move off-pause, onto the
    // drain; the pause is suspend + scan + audit + protect + resume.
    const bool capture_undo = faults_ != nullptr || config_.verify_backup;
    const bool want_digests = store_ != nullptr || config_.verify_backup;
    wall_start();
    result.costs.protect = cow_->protect(result.dirty, primary_->vcpu(),
                                         capture_undo, want_digests);
    wall_stop();
    phase_span("cow_protect", result.costs.protect, wall);
    // The protected set is the checkpoint; any page written during the
    // next epoch re-marks itself through the ordinary log-dirty path
    // (first-touch copies the pre-write bytes out before the write lands).
    primary_->dirty_bitmap().clear_all();
    result.cow_pending = true;

    primary_->resume();
    // The dirty pages are not flushed through the resume path -- they are
    // still live in the primary -- so only the base cost applies.
    result.costs.resume = costs_->resume_base;
    phase_span("resume", result.costs.resume, Nanos{0});

    clock_->advance(result.costs.pause_total());
    if (traced) record_epoch_metrics(result);
    if (metrics_.cow_pending_pages != nullptr) {
      metrics_.cow_pending_pages->set(
          static_cast<double>(cow_->pending_pages()));
    }
    return result;
  }

  // 4. Map the dirty frames (Optimization 2 makes this ~free).
  result.costs.map = map_cost(result.dirty.size());
  phase_span("map", result.costs.map, Nanos{0});

  // 5. Propagate dirty pages into the backup (Optimization 1 picks how;
  // the resilience layer wraps it in verify + bounded retries).
  wall_start();
  {
    ForeignMapping src = hypervisor_->map_foreign(primary_->id());
    ForeignMapping dst = hypervisor_->map_foreign(backup_->id());
    result.costs.copy = copy_with_retries(src, dst, result);
    if (result.checkpoint_committed && config_.remote_backup) {
      // Remus releases the epoch only after the remote host acknowledges
      // the complete checkpoint.
      result.costs.copy += costs_->remote_ack_rtt;
    }
  }
  wall_stop();
  phase_span("copy", result.costs.copy, wall);
  if (result.checkpoint_committed) {
    backup_vcpu_ = primary_->vcpu();
    backup_->vcpu() = backup_vcpu_;
    primary_->dirty_bitmap().clear_all();
    ++checkpoints_taken_;
    if (config_.history_capacity > 0) push_history();
  } else {
    // Copy failed for good this epoch: the backup was restored to the last
    // clean checkpoint and the dirty bitmap is retained, so the next
    // successful checkpoint carries this epoch's pages too. The primary
    // resumes -- whether speculation may continue is the SafetyGovernor's
    // call, one layer up.
    if (metrics_.checkpoint_failures != nullptr) {
      metrics_.checkpoint_failures->add();
    }
    CRIMES_LOG(Warn, "checkpointer")
        << "checkpoint FAILED after " << result.copy_retries
        << " retries; backup restored to last clean image ("
        << result.dirty.size() << " dirty pages carried over)";
  }

  // 6. Resume speculative execution.
  primary_->resume();
  result.costs.resume = costs_->resume_cost(result.dirty.size());
  phase_span("resume", result.costs.resume, Nanos{0});

  clock_->advance(result.costs.pause_total());
  if (traced) record_epoch_metrics(result);
  // Store work runs after resume: the primary is already speculating
  // again, so the append/GC cost lengthens the epoch, not the pause
  // (Remus drains checkpoints asynchronously for the same reason).
  if (store_ != nullptr && result.checkpoint_committed) {
    store_commit(result);
  }
  return result;
}

void Checkpointer::store_commit(EpochResult& result) {
  telemetry::TraceRecorder* trace =
      telemetry_ != nullptr ? &telemetry_->trace : nullptr;
  ForeignMapping image = hypervisor_->map_foreign(backup_->id());
  const Nanos append_cost =
      store_->append(checkpoints_taken_, result.dirty, image, backup_vcpu_,
                     clock_->now(), pool_.get());
  if (trace != nullptr) {
    trace->add_span("store_append", clock_->now(), append_cost);
    // The seal/attest share of the append renders as a nested child at
    // the tail of the store_append span (sealing happens as pages intern).
    const Nanos seal_cost = store_->last_seal_cost();
    if (seal_cost.count() > 0) {
      trace->add_span("seal", clock_->now() + append_cost - seal_cost,
                      seal_cost);
    }
  }
  clock_->advance(append_cost);

  const Nanos gc_cost = store_->collect();
  if (trace != nullptr && gc_cost.count() > 0) {
    trace->add_span("gc", clock_->now(), gc_cost);
  }
  clock_->advance(gc_cost);

  Nanos journal_cost{0};
  if (journal_ != nullptr) {
    // Journal the append and the GC decision as separate statements: the
    // device order must match store-operation order (append, then collect)
    // so replay reproduces the retention machinery's choices exactly, and
    // `a + b` would leave the two log calls unsequenced. Both statements
    // belong to one commit, so they share a batch -- one device flush,
    // only the first record pays the append base cost.
    journal_->begin_batch();
    journal_cost = journal_->log_append(checkpoints_taken_, clock_->now(),
                                        result.dirty, image, backup_vcpu_,
                                        store_->root());
    journal_cost += journal_->log_collect();
    journal_->end_batch();
    if (trace != nullptr) {
      trace->add_span("journal", clock_->now(), journal_cost);
    }
    clock_->advance(journal_cost);
  }

  result.store_cost = append_cost + gc_cost + journal_cost;
  update_store_gauges();
}

bool Checkpointer::cow_drain_pending() const {
  return cow_ != nullptr && cow_->pending();
}

CowCommit Checkpointer::complete_cow_drain(Nanos resume_at) {
  if (!cow_drain_pending()) {
    throw std::logic_error(
        "Checkpointer::complete_cow_drain: no drain pending");
  }
  CowCommit commit = cow_->complete(faults_);

  // Timeline: the drain ran on its own lane from the instant the VM
  // resumed; the commit barrier charges the clock only the portion that
  // outlived the overlap window. A negative resume_at is the no-overlap
  // fallback (defensive barriers): the whole drain lands at `now`.
  const Nanos now = clock_->now();
  const Nanos drain_start = resume_at.count() < 0 ? now : resume_at;
  const Nanos commit_at = drain_start + commit.drain_cost;
  commit.stall = commit_at > now ? commit_at - now : Nanos{0};

  if (telemetry_ != nullptr) {
    // tid 1 is the drain lane: sequential drains never overlap there
    // (epoch i's commit barrier precedes epoch i+1's resume). The epoch's
    // first-touch traps render as one aggregated child span.
    telemetry_->trace.add_span("cow_drain", drain_start, commit.drain_cost,
                               1);
    if (commit.first_touches > 0) {
      telemetry_->trace.add_span("cow_first_touch", drain_start,
                                 commit.first_touch_cost, 1, Nanos{0}, 1);
    }
  }
  clock_->advance(commit.stall);

  if (metrics_.cow_drain != nullptr) {
    metrics_.cow_drain->record(
        static_cast<std::uint64_t>(commit.drain_cost.count()));
    metrics_.cow_stall->record(
        static_cast<std::uint64_t>(commit.stall.count()));
    metrics_.cow_first_touches->add(commit.first_touches);
    metrics_.cow_pending_pages->set(0.0);
  }
  if (metrics_.copy_retries != nullptr && commit.copy_retries > 0) {
    metrics_.copy_retries->add(commit.copy_retries);
  }
  if (metrics_.recovery != nullptr && commit.recovery_cost.count() > 0) {
    metrics_.recovery->record(
        static_cast<std::uint64_t>(commit.recovery_cost.count()));
  }

  if (commit.committed) {
    backup_vcpu_ = cow_->vcpu_at_checkpoint();
    backup_->vcpu() = backup_vcpu_;
    ++checkpoints_taken_;
    if (config_.history_capacity > 0) push_history();
    if (store_ != nullptr) commit.store_cost = cow_store_commit();
  } else if (metrics_.checkpoint_failures != nullptr) {
    metrics_.checkpoint_failures->add();
  }
  return commit;
}

Nanos Checkpointer::cow_store_commit() {
  telemetry::TraceRecorder* trace =
      telemetry_ != nullptr ? &telemetry_->trace : nullptr;
  ForeignMapping image = hypervisor_->map_foreign(backup_->id());
  // The fused digests captured during the drain stand in for the store's
  // hash pass -- the append prices encoding only.
  const Nanos append_cost =
      store_->append_with_digests(checkpoints_taken_, cow_->dirty(),
                                  cow_->digests(), image, backup_vcpu_,
                                  clock_->now());
  if (trace != nullptr) {
    trace->add_span("store_append", clock_->now(), append_cost);
    const Nanos seal_cost = store_->last_seal_cost();
    if (seal_cost.count() > 0) {
      trace->add_span("seal", clock_->now() + append_cost - seal_cost,
                      seal_cost);
    }
  }
  clock_->advance(append_cost);

  const Nanos gc_cost = store_->collect();
  if (trace != nullptr && gc_cost.count() > 0) {
    trace->add_span("gc", clock_->now(), gc_cost);
  }
  clock_->advance(gc_cost);

  Nanos journal_cost{0};
  if (journal_ != nullptr) {
    // One commit, one device flush: the append and GC statements share a
    // single journal batch, so only the first record pays the base cost.
    journal_->begin_batch();
    journal_cost = journal_->log_append(checkpoints_taken_, clock_->now(),
                                        cow_->dirty(), image, backup_vcpu_,
                                        store_->root());
    journal_cost += journal_->log_collect();
    journal_->end_batch();
    if (trace != nullptr) {
      trace->add_span("journal", clock_->now(), journal_cost);
    }
    clock_->advance(journal_cost);
  }

  update_store_gauges();
  return append_cost + gc_cost + journal_cost;
}

void Checkpointer::update_store_gauges() {
  if (store_ == nullptr || metrics_.store_generations == nullptr) return;
  const store::StoreStats stats = store_->stats();
  metrics_.store_pages_unique->set(static_cast<double>(stats.pages_unique));
  metrics_.store_bytes_logical->set(static_cast<double>(stats.bytes_logical));
  metrics_.store_bytes_physical->set(
      static_cast<double>(stats.bytes_physical));
  metrics_.store_generations->set(static_cast<double>(stats.generations));
  if (metrics_.crypto_pages_sealed != nullptr) {
    metrics_.crypto_pages_sealed->set(static_cast<double>(stats.pages_sealed));
    metrics_.crypto_seal_failures->set(
        static_cast<double>(stats.seal_failures));
  }
}

bool Checkpointer::backup_matches(ForeignMapping& primary,
                                  ForeignMapping& backup,
                                  std::span<const Pfn> dirty) const {
  for (const Pfn pfn : dirty) {
    if (fnv1a(primary.peek(pfn).bytes()) != fnv1a(backup.peek(pfn).bytes())) {
      return false;
    }
  }
  return true;
}

Nanos Checkpointer::copy_with_retries(ForeignMapping& src, ForeignMapping& dst,
                                      EpochResult& result) {
  if (faults_ == nullptr && !config_.verify_backup) {
    return transport_->copy(src, dst, result.dirty);
  }

  // Undo log: the backup's current bytes -- the last clean checkpoint --
  // of every page this copy will touch. peek() never materializes frames;
  // a page with no backup frame snapshots as the shared zero page, which
  // restores to equivalent bytes. This is what keeps the "backup is never
  // left torn" invariant when every retry fails (Remus applies checkpoints
  // atomically for the same reason).
  std::vector<Page> undo;
  undo.reserve(result.dirty.size());
  for (const Pfn pfn : result.dirty) undo.push_back(dst.peek(pfn));

  Nanos cost{0};
  for (std::size_t attempt = 0;; ++attempt) {
    bool ok = true;
    try {
      cost += transport_->copy(src, dst, result.dirty);
    } catch (const fault::TransportFault& aborted) {
      cost += aborted.wasted();
      result.recovery_cost += aborted.wasted();
      if (metrics_.transport_faults != nullptr) metrics_.transport_faults->add();
      ok = false;
    }
    if (ok && config_.verify_backup) {
      // Checksum both sides of every dirty page (really computed): an
      // aborted stream is loud, but a torn write is only caught here.
      cost += costs_->checksum_per_page * (2 * result.dirty.size());
      if (!backup_matches(src, dst, result.dirty)) {
        if (metrics_.torn_writes != nullptr) metrics_.torn_writes->add();
        ok = false;
      }
    }
    if (ok) return cost;

    if (attempt >= config_.max_copy_retries) break;
    const Nanos backoff = costs_->retry_backoff_base * (1LL << attempt);
    cost += backoff;
    result.recovery_cost += backoff;
    ++result.copy_retries;
    if (metrics_.copy_retries != nullptr) metrics_.copy_retries->add();
  }

  // Retries exhausted: put the last clean checkpoint back.
  for (std::size_t i = 0; i < undo.size(); ++i) {
    std::memcpy(dst.page(result.dirty[i]).data.data(), undo[i].data.data(),
                kPageSize);
  }
  const Nanos repair = costs_->copy_memcpy_per_page * undo.size();
  cost += repair;
  result.recovery_cost += repair;
  result.checkpoint_committed = false;
  return cost;
}

void Checkpointer::record_epoch_metrics(const EpochResult& result) {
  metrics_.suspend->record(result.costs.suspend.count());
  metrics_.dirty_scan->record(result.costs.bitscan.count());
  metrics_.audit->record(result.costs.vmi.count());
  metrics_.dirty_pages->record(result.costs.dirty_pages);
  metrics_.epochs->add();
  if (!result.audit_passed) {
    metrics_.audit_failures->add();
    metrics_.pause_total->record(
        (result.costs.suspend + result.costs.bitscan + result.costs.vmi)
            .count());
    return;
  }
  metrics_.map->record(result.costs.map.count());
  metrics_.copy->record(result.costs.copy.count());
  if (metrics_.cow_protect != nullptr) {
    metrics_.cow_protect->record(result.costs.protect.count());
  }
  metrics_.resume->record(result.costs.resume.count());
  metrics_.pause_total->record(result.costs.pause_total().count());
  if (result.recovery_cost.count() > 0) {
    metrics_.recovery->record(result.recovery_cost.count());
  }
}

Nanos Checkpointer::rollback() {
  if (primary_->state() != VmState::Paused) {
    throw std::logic_error("Checkpointer::rollback: primary must be Paused");
  }
  // A pending speculative drain holds uncommitted pages in the backup;
  // settle it (commit or untorn restore) before reading the backup as
  // "the last clean checkpoint".
  if (cow_drain_pending()) complete_cow_drain();
  CRIMES_TRACE_SPAN(telemetry_ != nullptr ? &telemetry_->trace : nullptr,
                    "rollback");
  const std::vector<Pfn> dirty = primary_->dirty_bitmap().scan_chunked();
  ForeignMapping src = hypervisor_->map_foreign(backup_->id());
  ForeignMapping dst = hypervisor_->map_foreign(primary_->id());
  for (const Pfn pfn : dirty) {
    // peek: a page first touched during the failed epoch has no backup
    // frame; its checkpoint-time contents were all zeroes.
    std::memcpy(dst.page(pfn).data.data(), src.peek(pfn).data.data(),
                kPageSize);
  }
  primary_->vcpu() = backup_vcpu_;
  primary_->dirty_bitmap().clear_all();

  const Nanos cost = costs_->rollback_prepare_base +
                     costs_->rollback_per_dirty_page * dirty.size();
  clock_->advance(cost);
  CRIMES_LOG(Info, "checkpointer")
      << "rolled back " << dirty.size() << " pages to last clean checkpoint";
  return cost;
}

Nanos Checkpointer::rollback_to(std::uint64_t epoch) {
  if (primary_->state() != VmState::Paused) {
    throw std::logic_error(
        "Checkpointer::rollback_to: primary must be Paused");
  }
  if (store_ == nullptr) {
    throw std::logic_error(
        "Checkpointer::rollback_to: checkpoint store not enabled");
  }
  if (!store_->has_generation(epoch)) {
    throw std::invalid_argument(
        "Checkpointer::rollback_to: generation not retained");
  }
  // Same barrier as rollback(): the backup must hold a *committed*
  // generation before the rewind diffs against it.
  if (cow_drain_pending()) complete_cow_drain();
  CRIMES_TRACE_SPAN(telemetry_ != nullptr ? &telemetry_->trace : nullptr,
                    "rollback_to");

  // 1. Rewind the backup image from the store. The backup holds the
  // newest generation by invariant, so only the pages that differ between
  // it and the target are rewritten -- O(changed), never O(image).
  ForeignMapping backup_map = hypervisor_->map_foreign(backup_->id());
  const store::CheckpointStore::Restored restored =
      store_->rewind(epoch, backup_map);
  backup_vcpu_ = restored.vcpu;
  backup_->vcpu() = backup_vcpu_;

  // 2. Restore the primary from the rewound backup: the pages the failed
  // epoch dirtied, plus the pages the rewind itself changed.
  const std::vector<Pfn> dirty = primary_->dirty_bitmap().scan_chunked();
  ForeignMapping src = hypervisor_->map_foreign(backup_->id());
  ForeignMapping dst = hypervisor_->map_foreign(primary_->id());
  std::size_t copied = 0;
  const auto copy_back = [&](Pfn pfn) {
    if (!src.is_backed(pfn) && !dst.is_backed(pfn)) return;
    std::memcpy(dst.page(pfn).data.data(), src.peek(pfn).data.data(),
                kPageSize);
    ++copied;
  };
  for (const Pfn pfn : dirty) copy_back(pfn);
  for (const auto& entry :
       store_->chain().diff(store_->chain().size() - 1,
                            store_->chain().index_of(epoch))) {
    copy_back(entry.first);
  }
  primary_->vcpu() = backup_vcpu_;
  primary_->dirty_bitmap().clear_all();

  // 3. The timeline forward of the rewind point is being rewritten:
  // discard the newer generations so the chain's newest matches the
  // backup again (the invariant every append and rewind relies on).
  Nanos truncate_cost = store_->truncate_to(epoch);
  if (journal_ != nullptr) truncate_cost += journal_->log_truncate(epoch);
  update_store_gauges();

  const Nanos cost = costs_->rollback_prepare_base + restored.cost +
                     costs_->rollback_per_dirty_page * copied +
                     truncate_cost;
  clock_->advance(cost);
  CRIMES_LOG(Info, "checkpointer")
      << "rolled back to generation " << epoch << " ("
      << restored.pages_written << " backup pages rewound, " << copied
      << " primary pages restored)";
  return cost;
}

Vm& Checkpointer::backup() {
  if (backup_ == nullptr) {
    throw std::logic_error("Checkpointer: initialize() not called");
  }
  return *backup_;
}

Vm& Checkpointer::failover() {
  if (backup_ == nullptr) {
    throw std::logic_error("Checkpointer::failover: no backup image");
  }
  if (cow_drain_pending()) {
    if (hypervisor_->has_domain(primary_id_)) {
      // The primary's memory still exists, so the drain can finish: the
      // promoted image then carries the in-flight checkpoint too.
      complete_cow_drain();
    } else {
      // The drain's page sources died with the primary. Restore the
      // backup from the undo log so the promoted image is the last
      // *committed* checkpoint, never a half-drained one.
      cow_->abandon();
    }
  }
  if (hypervisor_->has_domain(primary_id_)) {
    hypervisor_->destroy_domain(primary_id_);
  }
  Vm& promoted = *backup_;
  promoted.unpause();  // the backup becomes the live VM
  CRIMES_LOG(Warn, "checkpointer")
      << "failover: promoted backup domain " << promoted.id().value()
      << " (speculative state since the last checkpoint is lost)";
  backup_ = nullptr;  // lifecycle ownership stays with the hypervisor
  return promoted;
}

void Checkpointer::push_history() {
  Snapshot snap;
  snap.taken_at = clock_->now();
  snap.vcpu = backup_vcpu_;
  snap.pages.resize(backup_->page_count());
  const Vm& backup = *backup_;
  for (std::size_t i = 0; i < backup.page_count(); ++i) {
    snap.pages[i] = backup.page(Pfn{i});
  }
  history_.push_back(std::move(snap));
  while (history_.size() > config_.history_capacity) history_.pop_front();
}

}  // namespace crimes
