// Host machine memory: a pool of 4 KiB frames indexed by Mfn.
//
// VMs own disjoint sets of frames; the checkpointer's backup image is simply
// a second set of frames in the same pool, which is what makes the paper's
// Optimization 1 (map both sides, then memcpy) expressible.
//
// Frames are allocated lazily page-by-page but an Mfn, once handed out, is
// stable for the lifetime of the pool (frames live in fixed-size chunks so
// growth never relocates existing pages).
#pragma once

#include "common/types.h"
#include "machine/page.h"

#include <cstddef>
#include <memory>
#include <vector>

namespace crimes {

class MachineMemory {
 public:
  // `capacity_frames` is a hard cap standing in for physical RAM size.
  explicit MachineMemory(std::size_t capacity_frames);

  MachineMemory(const MachineMemory&) = delete;
  MachineMemory& operator=(const MachineMemory&) = delete;

  // Allocates one zeroed frame. Throws std::bad_alloc when the pool is
  // exhausted (the host is genuinely out of memory).
  [[nodiscard]] Mfn allocate_frame();

  // Allocates `n` frames and returns their Mfns (not necessarily
  // contiguous, mirroring real machine allocation).
  [[nodiscard]] std::vector<Mfn> allocate_frames(std::size_t n);

  void free_frame(Mfn mfn);

  [[nodiscard]] Page& frame(Mfn mfn);
  [[nodiscard]] const Page& frame(Mfn mfn) const;

  [[nodiscard]] std::size_t capacity_frames() const { return capacity_; }
  [[nodiscard]] std::size_t allocated_frames() const {
    return live_frames_;
  }

 private:
  static constexpr std::size_t kChunkFrames = 4096;  // 16 MiB per chunk

  void check_valid(Mfn mfn) const;

  std::size_t capacity_;
  std::size_t live_frames_ = 0;
  std::vector<std::unique_ptr<std::array<Page, kChunkFrames>>> chunks_;
  std::vector<Mfn> free_list_;
  std::size_t next_unused_ = 0;  // high-water mark of handed-out Mfns
};

}  // namespace crimes
