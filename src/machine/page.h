// A single 4 KiB machine frame's contents.
#pragma once

#include "common/types.h"

#include <array>
#include <cstddef>
#include <cstring>
#include <span>

namespace crimes {

struct Page {
  alignas(64) std::array<std::byte, kPageSize> data{};

  [[nodiscard]] std::span<std::byte> bytes() { return {data.data(), data.size()}; }
  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {data.data(), data.size()};
  }

  void zero() { data.fill(std::byte{0}); }

  friend bool operator==(const Page& a, const Page& b) {
    return std::memcmp(a.data.data(), b.data.data(), kPageSize) == 0;
  }
};

// Shared all-zeroes frame backing never-written guest pages (lazy
// allocation: a VM's frames materialize on first write, like a ballooned
// or demand-paged guest).
[[nodiscard]] const Page& zero_page();

}  // namespace crimes
