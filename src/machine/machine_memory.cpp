#include "machine/machine_memory.h"

#include <new>
#include <stdexcept>

namespace crimes {

MachineMemory::MachineMemory(std::size_t capacity_frames)
    : capacity_(capacity_frames) {}

Mfn MachineMemory::allocate_frame() {
  if (live_frames_ >= capacity_) throw std::bad_alloc{};
  ++live_frames_;
  if (!free_list_.empty()) {
    const Mfn mfn = free_list_.back();
    free_list_.pop_back();
    frame(mfn).zero();
    return mfn;
  }
  const Mfn mfn{next_unused_++};
  const std::size_t chunk = mfn.value() / kChunkFrames;
  while (chunks_.size() <= chunk) {
    chunks_.push_back(std::make_unique<std::array<Page, kChunkFrames>>());
  }
  return mfn;
}

std::vector<Mfn> MachineMemory::allocate_frames(std::size_t n) {
  std::vector<Mfn> mfns;
  mfns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) mfns.push_back(allocate_frame());
  return mfns;
}

void MachineMemory::free_frame(Mfn mfn) {
  check_valid(mfn);
  --live_frames_;
  free_list_.push_back(mfn);
}

Page& MachineMemory::frame(Mfn mfn) {
  check_valid(mfn);
  return (*chunks_[mfn.value() / kChunkFrames])[mfn.value() % kChunkFrames];
}

const Page& MachineMemory::frame(Mfn mfn) const {
  check_valid(mfn);
  return (*chunks_[mfn.value() / kChunkFrames])[mfn.value() % kChunkFrames];
}

void MachineMemory::check_valid(Mfn mfn) const {
  if (!mfn.is_valid() || mfn.value() >= next_unused_) {
    throw std::out_of_range("MachineMemory: invalid MFN");
  }
}

}  // namespace crimes

namespace crimes {

const Page& zero_page() {
  static const Page page{};
  return page;
}

}  // namespace crimes
