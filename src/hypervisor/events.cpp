#include "hypervisor/events.h"

namespace crimes {

bool MemoryEventMonitor::deliver(const MemEvent& event) {
  if (!watches(event.pfn)) return false;
  if (ring_.size() >= kRingCapacity) {
    ++dropped_;
    return false;
  }
  ring_.push_back(event);
  ++delivered_;
  return true;
}

std::optional<MemEvent> MemoryEventMonitor::poll() {
  if (ring_.empty()) return std::nullopt;
  MemEvent ev = ring_.front();
  ring_.pop_front();
  return ev;
}

}  // namespace crimes
