#include "hypervisor/vm.h"

#include <cstring>
#include <stdexcept>

namespace crimes {

const char* to_string(VmState state) {
  switch (state) {
    case VmState::Running: return "Running";
    case VmState::Suspended: return "Suspended";
    case VmState::Paused: return "Paused";
    case VmState::Destroyed: return "Destroyed";
  }
  return "?";
}

Vm::Vm(DomainId id, std::string name, std::size_t page_count,
       MachineMemory& machine)
    : id_(id),
      name_(std::move(name)),
      machine_(machine),
      pfn_to_mfn_(page_count, Mfn::invalid()),
      dirty_(page_count) {}

Vm::~Vm() {
  if (state_ != VmState::Destroyed) {
    for (const Mfn mfn : pfn_to_mfn_) {
      if (mfn.is_valid()) machine_.free_frame(mfn);
    }
  }
}

void Vm::suspend() {
  require_state(VmState::Running, "suspend");
  state_ = VmState::Suspended;
}

void Vm::resume() {
  require_state(VmState::Suspended, "resume");
  state_ = VmState::Running;
}

void Vm::pause() {
  if (state_ == VmState::Destroyed) {
    throw std::logic_error("Vm::pause: domain destroyed");
  }
  state_ = VmState::Paused;
}

void Vm::unpause() {
  require_state(VmState::Paused, "unpause");
  state_ = VmState::Running;
}

void Vm::destroy() {
  if (state_ == VmState::Destroyed) return;
  for (const Mfn mfn : pfn_to_mfn_) {
    if (mfn.is_valid()) machine_.free_frame(mfn);
  }
  pfn_to_mfn_.clear();
  state_ = VmState::Destroyed;
}

Mfn Vm::mfn_of(Pfn pfn) const {
  if (pfn.value() >= pfn_to_mfn_.size()) {
    throw std::out_of_range("Vm::mfn_of: PFN out of range for domain " +
                            name_);
  }
  return pfn_to_mfn_[pfn.value()];
}

bool Vm::is_backed(Pfn pfn) const { return mfn_of(pfn).is_valid(); }

Page& Vm::page(Pfn pfn) {
  Mfn mfn = mfn_of(pfn);
  if (!mfn.is_valid()) {
    mfn = machine_.allocate_frame();
    pfn_to_mfn_[pfn.value()] = mfn;
  }
  return machine_.frame(mfn);
}

const Page& Vm::page(Pfn pfn) const {
  const Mfn mfn = mfn_of(pfn);
  if (!mfn.is_valid()) return zero_page();
  return machine_.frame(mfn);
}

void Vm::write_phys(Paddr addr, std::span<const std::byte> data,
                    Vaddr vaddr_hint) {
  check_writable("write_phys");
  std::size_t done = 0;
  while (done < data.size()) {
    const Paddr cur{addr.value() + done};
    const Pfn pfn = cur.pfn();
    const std::uint64_t offset = cur.page_offset();
    const std::size_t chunk =
        std::min(data.size() - done, kPageSize - offset);

    // CoW first-touch trap: fire before the guest's bytes land, so the
    // handler copies the page's pre-write (checkpoint-consistent) content.
    if (monitor_.cow_protected(pfn)) monitor_.cow_fault(pfn);

    Page& pg = page(pfn);
    std::memcpy(pg.data.data() + offset, data.data() + done, chunk);

    if (log_dirty_) dirty_.mark(pfn);
    if (monitor_.watches(pfn)) {
      monitor_.deliver(MemEvent{
          .pfn = pfn,
          .offset = offset,
          .length = chunk,
          .type = MemAccess::Write,
          .instr_index = vcpu_.instr_retired,
          .vaddr = vaddr_hint.is_null() ? Vaddr{0} : vaddr_hint + done,
      });
    }
    done += chunk;
  }
  bytes_written_ += data.size();
}

void Vm::read_phys(Paddr addr, std::span<std::byte> out) const {
  if (state_ == VmState::Destroyed) {
    throw std::logic_error("Vm::read_phys: domain destroyed");
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const Paddr cur{addr.value() + done};
    const Pfn pfn = cur.pfn();
    const std::uint64_t offset = cur.page_offset();
    const std::size_t chunk = std::min(out.size() - done, kPageSize - offset);
    const Page& pg = page(pfn);
    std::memcpy(out.data() + done, pg.data.data() + offset, chunk);
    done += chunk;
  }
}

void Vm::enable_log_dirty() {
  log_dirty_ = true;
  dirty_.clear_all();
}

void Vm::disable_log_dirty() { log_dirty_ = false; }

void Vm::require_state(VmState expected, const char* op) const {
  if (state_ != expected) {
    throw std::logic_error(std::string("Vm::") + op + ": domain " + name_ +
                           " is " + to_string(state_) + ", expected " +
                           to_string(expected));
  }
}

void Vm::check_writable(const char* op) const {
  // The guest can only execute (and thus write) while Running. Dom0-side
  // tools use foreign mappings instead, which bypass this check.
  if (state_ != VmState::Running) {
    throw std::logic_error(std::string("Vm::") + op + ": domain " + name_ +
                           " is " + to_string(state_) + ", not Running");
  }
}

}  // namespace crimes
