// RAII view of another domain's frames from a dom0 process, the simulator's
// xenforeignmemory_map(). Grants raw page access that bypasses the guest's
// lifecycle checks (dom0 tools read/write suspended domains all the time).
//
// Cost accounting note: *creating* mappings is what the paper's
// Optimization 2 eliminates per epoch; the Checkpointer charges
// CostModel::map_per_page or premap_* depending on configuration. This
// class is only the mechanism.
#pragma once

#include "hypervisor/vm.h"

namespace crimes {

class ForeignMapping {
 public:
  explicit ForeignMapping(Vm& domain) : domain_(&domain) {}

  [[nodiscard]] DomainId domain_id() const { return domain_->id(); }
  [[nodiscard]] std::size_t page_count() const {
    return domain_->page_count();
  }

  // Direct frame access (read/write), regardless of the domain's state.
  // Mutable access materializes lazily-allocated frames; peek() never does.
  [[nodiscard]] Page& page(Pfn pfn) { return domain_->page(pfn); }
  [[nodiscard]] const Page& page(Pfn pfn) const { return domain_->page(pfn); }
  [[nodiscard]] const Page& peek(Pfn pfn) const {
    return static_cast<const Vm*>(domain_)->page(pfn);
  }
  [[nodiscard]] bool is_backed(Pfn pfn) const {
    return domain_->is_backed(pfn);
  }

  [[nodiscard]] Vm& domain() { return *domain_; }
  [[nodiscard]] const Vm& domain() const { return *domain_; }

 private:
  Vm* domain_;
};

}  // namespace crimes
