// A virtual machine as the hypervisor sees it: a pseudo-physical address
// space backed by machine frames, a vCPU register file, a lifecycle state
// machine, a log-dirty bitmap and a memory-event monitor.
//
// Lifecycle mirrors the states the paper's epoch loop moves through:
//
//   Running --suspend()--> Suspended --resume()--> Running     (each epoch)
//   any     --pause()----> Paused                               (audit fail)
//   Paused  --unpause()--> Running                              (replay)
//
// Suspended is the transient quiesced state during checkpoint+audit; Paused
// is the indefinite security hold after a detection.
#pragma once

#include "common/types.h"
#include "hypervisor/dirty_bitmap.h"
#include "hypervisor/events.h"
#include "machine/machine_memory.h"

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace crimes {

enum class VmState { Running, Suspended, Paused, Destroyed };

[[nodiscard]] const char* to_string(VmState state);

// General-purpose register file; enough structure for checkpoint fidelity
// tests and for forensics to report "where the vCPU was".
struct VcpuState {
  std::array<std::uint64_t, 16> gpr{};
  std::uint64_t rip = 0;
  std::uint64_t cr3 = 0;          // guest page-table root (guest-physical)
  std::uint64_t instr_retired = 0;

  friend bool operator==(const VcpuState&, const VcpuState&) = default;
};

class Vm {
 public:
  Vm(DomainId id, std::string name, std::size_t page_count,
     MachineMemory& machine);
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  [[nodiscard]] DomainId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t page_count() const { return pfn_to_mfn_.size(); }
  [[nodiscard]] VmState state() const { return state_; }

  // --- Lifecycle -------------------------------------------------------
  void suspend();
  void resume();
  void pause();
  void unpause();
  void destroy();

  // --- Address space ---------------------------------------------------
  // Frames are allocated lazily: a PFN is backed by the shared zero page
  // until its first write. mfn_of() returns Mfn::invalid() for
  // never-written pages.
  [[nodiscard]] Mfn mfn_of(Pfn pfn) const;
  [[nodiscard]] bool is_backed(Pfn pfn) const;
  [[nodiscard]] const std::vector<Mfn>& p2m() const { return pfn_to_mfn_; }

  // Mutable access materializes the frame; const access never does.
  [[nodiscard]] Page& page(Pfn pfn);
  [[nodiscard]] const Page& page(Pfn pfn) const;

  // Guest-physical accessors used by the guest OS and devices. Writes mark
  // the dirty bitmap (when log-dirty is on) and may trap to the memory-
  // event monitor. `vaddr_hint` lets the guest report the virtual address
  // for forensics; Paddr-only writers pass the default.
  void write_phys(Paddr addr, std::span<const std::byte> data,
                  Vaddr vaddr_hint = Vaddr{0});
  void read_phys(Paddr addr, std::span<std::byte> out) const;

  template <typename T>
  void write_phys_value(Paddr addr, const T& value, Vaddr hint = Vaddr{0}) {
    write_phys(addr,
               std::span<const std::byte>(
                   reinterpret_cast<const std::byte*>(&value), sizeof(T)),
               hint);
  }
  template <typename T>
  [[nodiscard]] T read_phys_value(Paddr addr) const {
    T value;
    read_phys(addr, std::span<std::byte>(reinterpret_cast<std::byte*>(&value),
                                         sizeof(T)));
    return value;
  }

  // --- Log-dirty tracking (XEN_DOMCTL_SHADOW_OP equivalents) -----------
  void enable_log_dirty();
  void disable_log_dirty();
  [[nodiscard]] bool log_dirty_enabled() const { return log_dirty_; }
  [[nodiscard]] DirtyBitmap& dirty_bitmap() { return dirty_; }
  [[nodiscard]] const DirtyBitmap& dirty_bitmap() const { return dirty_; }

  // --- vCPU ------------------------------------------------------------
  [[nodiscard]] VcpuState& vcpu() { return vcpu_; }
  [[nodiscard]] const VcpuState& vcpu() const { return vcpu_; }
  void retire_instructions(std::uint64_t n) { vcpu_.instr_retired += n; }

  // --- Memory events ----------------------------------------------------
  [[nodiscard]] MemoryEventMonitor& monitor() { return monitor_; }
  [[nodiscard]] const MemoryEventMonitor& monitor() const { return monitor_; }

  // Total bytes of guest-physical writes since creation (telemetry).
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void require_state(VmState expected, const char* op) const;
  void check_writable(const char* op) const;

  DomainId id_;
  std::string name_;
  MachineMemory& machine_;
  std::vector<Mfn> pfn_to_mfn_;
  VmState state_ = VmState::Running;
  bool log_dirty_ = false;
  DirtyBitmap dirty_;
  VcpuState vcpu_;
  MemoryEventMonitor monitor_;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace crimes
