// Log-dirty bitmap, one bit per guest pseudo-physical page.
//
// This is the data structure behind the paper's Optimization 3: Remus scans
// the bitmap bit by bit, CRIMES scans it a machine word at a time and only
// decomposes nonzero words. Both algorithms are implemented for real (and
// raced against each other in bench/fig6b_bitmap_scan); the checkpointer
// additionally charges virtual time for whichever it used.
#pragma once

#include "common/types.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crimes {

class ThreadPool;

class DirtyBitmap {
 public:
  static constexpr std::size_t kBitsPerWord = 64;

  explicit DirtyBitmap(std::size_t page_count);

  void mark(Pfn pfn);
  [[nodiscard]] bool test(Pfn pfn) const;
  void clear_all();

  [[nodiscard]] std::size_t page_count() const { return page_count_; }
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }
  [[nodiscard]] std::size_t dirty_count() const { return dirty_count_; }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }
  [[nodiscard]] std::vector<std::uint64_t>& mutable_words() { return words_; }

  // Remus-style scan: test every bit individually.
  [[nodiscard]] std::vector<Pfn> scan_naive() const;

  // CRIMES-style scan: skip zero words, decompose nonzero ones with ctz.
  [[nodiscard]] std::vector<Pfn> scan_chunked() const;

  // SIMD fast path over the chunked scan: tests four words at a time with
  // a single OR (the scalar spelling of a 256-bit vector compare, which
  // the autovectorizer lowers to one), so clean blocks -- the common case
  // at realistic dirty rates -- cost one load+test per four words. Nonzero
  // blocks fall back to the ctz decomposition; output is identical to
  // scan_chunked() (PFN-ascending).
  [[nodiscard]] std::vector<Pfn> scan_simd() const;

  // Parallel checkpoint engine: the chunked scan sharded across the pool.
  // Each worker ctz-decomposes a contiguous slice of the word array into a
  // shard-local vector; shards are concatenated in slice order, so the
  // result is identical to scan_chunked() (PFN-ascending). When
  // `shard_set_bits` is non-null it receives the number of dirty bits each
  // shard decomposed, which is exactly what
  // CostModel::bitscan_parallel_cost needs to charge max-shard time.
  [[nodiscard]] std::vector<Pfn> scan_parallel(
      ThreadPool& pool, std::size_t shards,
      std::vector<std::size_t>* shard_set_bits = nullptr) const;

 private:
  std::size_t page_count_;
  std::size_t dirty_count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace crimes
