// The hypervisor: machine memory plus a registry of domains, exposing the
// domctl-style operations CRIMES needs (create/destroy domains, foreign
// mappings, log-dirty control).
#pragma once

#include "hypervisor/foreign_mapping.h"
#include "hypervisor/vm.h"
#include "machine/machine_memory.h"

#include <cstddef>
#include <map>
#include <memory>
#include <string>

namespace crimes {

class Hypervisor {
 public:
  // `machine_frames` caps host RAM; defaults to 1 GiB worth of frames,
  // enough for a primary VM plus its backup image (the paper notes CRIMES
  // "doubles the VM's memory cost").
  explicit Hypervisor(std::size_t machine_frames = 262144);

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  // Creates a domain with `page_count` pseudo-physical pages.
  Vm& create_domain(const std::string& name, std::size_t page_count);

  void destroy_domain(DomainId id);

  [[nodiscard]] Vm& domain(DomainId id);
  [[nodiscard]] const Vm& domain(DomainId id) const;
  [[nodiscard]] bool has_domain(DomainId id) const;
  [[nodiscard]] std::size_t domain_count() const { return domains_.size(); }

  // xenforeignmemory_map() equivalent: map a domain's frames into a dom0
  // tool's address space.
  [[nodiscard]] ForeignMapping map_foreign(DomainId id) {
    return ForeignMapping{domain(id)};
  }

  [[nodiscard]] MachineMemory& machine() { return machine_; }
  [[nodiscard]] const MachineMemory& machine() const { return machine_; }

 private:
  MachineMemory machine_;
  std::map<std::uint32_t, std::unique_ptr<Vm>> domains_;
  std::uint32_t next_domid_ = 1;  // 0 is dom0
};

}  // namespace crimes
