#include "hypervisor/hypervisor.h"

#include <stdexcept>

namespace crimes {

Hypervisor::Hypervisor(std::size_t machine_frames)
    : machine_(machine_frames) {}

Vm& Hypervisor::create_domain(const std::string& name,
                              std::size_t page_count) {
  const DomainId id{next_domid_++};
  auto vm = std::make_unique<Vm>(id, name, page_count, machine_);
  Vm& ref = *vm;
  domains_.emplace(id.value(), std::move(vm));
  return ref;
}

void Hypervisor::destroy_domain(DomainId id) {
  auto it = domains_.find(id.value());
  if (it == domains_.end()) {
    throw std::out_of_range("Hypervisor::destroy_domain: no such domain");
  }
  it->second->destroy();
  domains_.erase(it);
}

Vm& Hypervisor::domain(DomainId id) {
  auto it = domains_.find(id.value());
  if (it == domains_.end()) {
    throw std::out_of_range("Hypervisor::domain: no such domain");
  }
  return *it->second;
}

const Vm& Hypervisor::domain(DomainId id) const {
  auto it = domains_.find(id.value());
  if (it == domains_.end()) {
    throw std::out_of_range("Hypervisor::domain: no such domain");
  }
  return *it->second;
}

bool Hypervisor::has_domain(DomainId id) const {
  return domains_.contains(id.value());
}

}  // namespace crimes
