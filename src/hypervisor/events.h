// Memory-event monitoring: the simulator's equivalent of Xen's mem_access
// event channels consumed through LibVMI's VMI_EVENT_MEMORY interface.
//
// A monitor watches a set of guest pages; once *enabled*, every read/write/
// execute touching a watched page appends an event to a bounded ring buffer
// and the offending vCPU is held until the consumer responds. The paper
// stresses that this is expensive, so CRIMES only enables it during replay
// (section 4.2); the Checkpointer asserts it stays disabled in the normal
// epoch loop.
#pragma once

#include "common/types.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <unordered_set>

namespace crimes {

enum class MemAccess : std::uint8_t { Read, Write, Execute };

struct MemEvent {
  Pfn pfn;                    // page the access hit
  std::uint64_t offset;       // byte offset within the page
  std::uint64_t length;       // access width in bytes
  MemAccess type;
  std::uint64_t instr_index;  // vCPU instruction counter at the access
  Vaddr vaddr;                // guest-virtual address, if known (else 0)
};

class MemoryEventMonitor {
 public:
  // Ring capacity mirrors Xen's one-page event ring.
  static constexpr std::size_t kRingCapacity = 64;

  void watch_page(Pfn pfn) { watched_.insert(pfn); }
  void unwatch_page(Pfn pfn) { watched_.erase(pfn); }
  void clear_watches() { watched_.clear(); }

  void enable() { enabled_ = true; }
  void disable() {
    enabled_ = false;
    ring_.clear();
    dropped_ = 0;
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] bool watches(Pfn pfn) const {
    return enabled_ && watched_.contains(pfn);
  }

  // Called by the VM's access path. Returns true if the event was queued
  // (meaning the access trapped).
  bool deliver(const MemEvent& event);

  // Consumer side (LibVMI-style): pop the next pending event.
  [[nodiscard]] std::optional<MemEvent> poll();

  [[nodiscard]] std::size_t pending() const { return ring_.size(); }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t delivered() const { return delivered_; }

  // --- Copy-on-write protection (speculative checkpointing) -------------
  // A second, lighter use of the same mem_access machinery: the CoW
  // checkpointer write-protects the dirty set and handles the fault
  // synchronously in dom0 (copy the page aside, unprotect, re-enter) --
  // no ring, no vCPU hold, independent of the replay-only enabled_ flag
  // above. The handler runs *before* the guest's bytes land, so it sees
  // the page's pre-write (checkpoint-consistent) contents.
  using CowHandler = std::function<void(Pfn)>;

  void cow_protect(std::span<const Pfn> pfns, CowHandler handler) {
    cow_handler_ = std::move(handler);
    cow_protected_.insert(pfns.begin(), pfns.end());
  }
  void cow_unprotect(Pfn pfn) { cow_protected_.erase(pfn); }
  void cow_unprotect_all() {
    cow_protected_.clear();
    cow_handler_ = nullptr;
  }
  [[nodiscard]] bool cow_protected(Pfn pfn) const {
    return !cow_protected_.empty() && cow_protected_.contains(pfn);
  }
  [[nodiscard]] std::size_t cow_pending() const {
    return cow_protected_.size();
  }
  // Fires the first-touch handler for `pfn` and drops its protection.
  // Called by Vm::write_phys before the write's memcpy.
  void cow_fault(Pfn pfn) {
    cow_protected_.erase(pfn);
    if (cow_handler_) cow_handler_(pfn);
  }

 private:
  bool enabled_ = false;
  std::unordered_set<Pfn> watched_;
  std::deque<MemEvent> ring_;
  std::size_t dropped_ = 0;
  std::size_t delivered_ = 0;
  std::unordered_set<Pfn> cow_protected_;
  CowHandler cow_handler_;
};

}  // namespace crimes
