#include "hypervisor/dirty_bitmap.h"

#include <bit>
#include <stdexcept>

namespace crimes {

DirtyBitmap::DirtyBitmap(std::size_t page_count)
    : page_count_(page_count),
      words_((page_count + kBitsPerWord - 1) / kBitsPerWord, 0) {}

void DirtyBitmap::mark(Pfn pfn) {
  if (pfn.value() >= page_count_) {
    throw std::out_of_range("DirtyBitmap::mark: PFN out of range");
  }
  std::uint64_t& word = words_[pfn.value() / kBitsPerWord];
  const std::uint64_t bit = std::uint64_t{1} << (pfn.value() % kBitsPerWord);
  if ((word & bit) == 0) {
    word |= bit;
    ++dirty_count_;
  }
}

bool DirtyBitmap::test(Pfn pfn) const {
  if (pfn.value() >= page_count_) {
    throw std::out_of_range("DirtyBitmap::test: PFN out of range");
  }
  const std::uint64_t word = words_[pfn.value() / kBitsPerWord];
  return (word >> (pfn.value() % kBitsPerWord)) & 1;
}

void DirtyBitmap::clear_all() {
  for (auto& w : words_) w = 0;
  dirty_count_ = 0;
}

std::vector<Pfn> DirtyBitmap::scan_naive() const {
  std::vector<Pfn> dirty;
  dirty.reserve(dirty_count_);
  for (std::size_t i = 0; i < page_count_; ++i) {
    const std::uint64_t word = words_[i / kBitsPerWord];
    if ((word >> (i % kBitsPerWord)) & 1) dirty.push_back(Pfn{i});
  }
  return dirty;
}

std::vector<Pfn> DirtyBitmap::scan_chunked() const {
  std::vector<Pfn> dirty;
  dirty.reserve(dirty_count_);
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t word = words_[wi];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      const std::size_t pfn = wi * kBitsPerWord + static_cast<std::size_t>(bit);
      if (pfn < page_count_) dirty.push_back(Pfn{pfn});
      word &= word - 1;  // clear lowest set bit
    }
  }
  return dirty;
}

}  // namespace crimes
