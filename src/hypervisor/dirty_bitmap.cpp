#include "hypervisor/dirty_bitmap.h"

#include "common/thread_pool.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace crimes {

DirtyBitmap::DirtyBitmap(std::size_t page_count)
    : page_count_(page_count),
      words_((page_count + kBitsPerWord - 1) / kBitsPerWord, 0) {}

void DirtyBitmap::mark(Pfn pfn) {
  if (pfn.value() >= page_count_) {
    throw std::out_of_range("DirtyBitmap::mark: PFN out of range");
  }
  std::uint64_t& word = words_[pfn.value() / kBitsPerWord];
  const std::uint64_t bit = std::uint64_t{1} << (pfn.value() % kBitsPerWord);
  if ((word & bit) == 0) {
    word |= bit;
    ++dirty_count_;
  }
}

bool DirtyBitmap::test(Pfn pfn) const {
  if (pfn.value() >= page_count_) {
    throw std::out_of_range("DirtyBitmap::test: PFN out of range");
  }
  const std::uint64_t word = words_[pfn.value() / kBitsPerWord];
  return (word >> (pfn.value() % kBitsPerWord)) & 1;
}

void DirtyBitmap::clear_all() {
  for (auto& w : words_) w = 0;
  dirty_count_ = 0;
}

std::vector<Pfn> DirtyBitmap::scan_naive() const {
  std::vector<Pfn> dirty;
  dirty.reserve(dirty_count_);
  for (std::size_t i = 0; i < page_count_; ++i) {
    const std::uint64_t word = words_[i / kBitsPerWord];
    if ((word >> (i % kBitsPerWord)) & 1) dirty.push_back(Pfn{i});
  }
  return dirty;
}

std::vector<Pfn> DirtyBitmap::scan_chunked() const {
  std::vector<Pfn> dirty;
  dirty.reserve(dirty_count_);
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t word = words_[wi];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      const std::size_t pfn = wi * kBitsPerWord + static_cast<std::size_t>(bit);
      if (pfn < page_count_) dirty.push_back(Pfn{pfn});
      word &= word - 1;  // clear lowest set bit
    }
  }
  return dirty;
}

std::vector<Pfn> DirtyBitmap::scan_simd() const {
  std::vector<Pfn> dirty;
  dirty.reserve(dirty_count_);
  constexpr std::size_t kBlock = 4;  // 4 x u64 = one 256-bit lane
  const std::size_t words = words_.size();
  const std::size_t blocked = words - words % kBlock;
  std::size_t wi = 0;
  auto decompose = [this, &dirty](std::size_t index, std::uint64_t word) {
    while (word != 0) {
      const int bit = std::countr_zero(word);
      const std::size_t pfn =
          index * kBitsPerWord + static_cast<std::size_t>(bit);
      if (pfn < page_count_) dirty.push_back(Pfn{pfn});
      word &= word - 1;
    }
  };
  for (; wi < blocked; wi += kBlock) {
    const std::uint64_t w0 = words_[wi];
    const std::uint64_t w1 = words_[wi + 1];
    const std::uint64_t w2 = words_[wi + 2];
    const std::uint64_t w3 = words_[wi + 3];
    if ((w0 | w1 | w2 | w3) == 0) continue;
    decompose(wi, w0);
    decompose(wi + 1, w1);
    decompose(wi + 2, w2);
    decompose(wi + 3, w3);
  }
  for (; wi < words; ++wi) decompose(wi, words_[wi]);
  return dirty;
}

std::vector<Pfn> DirtyBitmap::scan_parallel(
    ThreadPool& pool, std::size_t shards,
    std::vector<std::size_t>* shard_set_bits) const {
  shards = std::clamp<std::size_t>(shards, 1,
                                   std::max<std::size_t>(1, words_.size()));
  if (shards == 1) {
    if (shard_set_bits != nullptr) *shard_set_bits = {dirty_count_};
    return scan_chunked();
  }

  std::vector<std::vector<Pfn>> local(shards);
  pool.parallel_for_shards(
      words_.size(), shards,
      [this, &local](std::size_t shard, std::size_t begin, std::size_t end) {
        std::vector<Pfn>& out = local[shard];
        std::size_t count = 0;
        for (std::size_t wi = begin; wi < end; ++wi) {
          count += static_cast<std::size_t>(std::popcount(words_[wi]));
        }
        out.reserve(count);
        for (std::size_t wi = begin; wi < end; ++wi) {
          std::uint64_t word = words_[wi];
          while (word != 0) {
            const int bit = std::countr_zero(word);
            const std::size_t pfn =
                wi * kBitsPerWord + static_cast<std::size_t>(bit);
            if (pfn < page_count_) out.push_back(Pfn{pfn});
            word &= word - 1;
          }
        }
      });

  std::vector<Pfn> dirty;
  dirty.reserve(dirty_count_);
  if (shard_set_bits != nullptr) {
    shard_set_bits->clear();
    shard_set_bits->reserve(shards);
  }
  for (const auto& part : local) {
    if (shard_set_bits != nullptr) shard_set_bits->push_back(part.size());
    dirty.insert(dirty.end(), part.begin(), part.end());
  }
  return dirty;
}

}  // namespace crimes
