// Helpers for reading/writing fixed-width values inside raw byte buffers.
//
// Guest kernel structures live as raw bytes inside guest pages, exactly as
// they would in a real VM; VMI and the guest OS both go through these
// helpers so layouts stay consistent.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace crimes {

template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] T load_le(std::span<const std::byte> bytes, std::size_t offset) {
  if (offset + sizeof(T) > bytes.size()) {
    throw std::out_of_range("load_le: read past end of buffer");
  }
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void store_le(std::span<std::byte> bytes, std::size_t offset, const T& value) {
  if (offset + sizeof(T) > bytes.size()) {
    throw std::out_of_range("store_le: write past end of buffer");
  }
  std::memcpy(bytes.data() + offset, &value, sizeof(T));
}

// Reads a NUL-terminated string of at most `max_len` bytes.
[[nodiscard]] inline std::string load_cstr(std::span<const std::byte> bytes,
                                           std::size_t offset,
                                           std::size_t max_len) {
  std::string out;
  for (std::size_t i = 0; i < max_len && offset + i < bytes.size(); ++i) {
    const char c = static_cast<char>(bytes[offset + i]);
    if (c == '\0') break;
    out.push_back(c);
  }
  return out;
}

// "0x..." rendering for guest addresses in reports and logs.
[[nodiscard]] inline std::string to_hex(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(value));
  return buf;
}

inline void store_cstr(std::span<std::byte> bytes, std::size_t offset,
                       const std::string& s, std::size_t field_len) {
  if (offset + field_len > bytes.size()) {
    throw std::out_of_range("store_cstr: write past end of buffer");
  }
  std::memset(bytes.data() + offset, 0, field_len);
  const std::size_t n = s.size() < field_len - 1 ? s.size() : field_len - 1;
  std::memcpy(bytes.data() + offset, s.data(), n);
}

}  // namespace crimes
