// Strong identifier types shared across the CRIMES simulator.
//
// The hypervisor distinguishes three address spaces, mirroring Xen:
//   * Vaddr -- a guest *virtual* address, translated by the guest page table.
//   * Pfn   -- a guest pseudo-physical frame number (per-VM, dense from 0).
//   * Mfn   -- a machine frame number (host-global, owned by MachineMemory).
//
// Mixing these up is the classic source of checkpointing bugs (the paper's
// Optimization 2 is entirely about caching the PFN->MFN conversion), so each
// gets its own type.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace crimes {

inline constexpr std::size_t kPageShift = 12;
inline constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;  // 4 KiB
inline constexpr std::uint64_t kPageOffsetMask = kPageSize - 1;

namespace detail {

// CRTP strong integer wrapper. Only equality/ordering and explicit access to
// the raw value are provided by default; arithmetic is opted into per type.
template <typename Tag, typename Rep = std::uint64_t>
struct StrongId {
  using rep = Rep;

  Rep raw{0};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : raw(v) {}

  [[nodiscard]] constexpr Rep value() const { return raw; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

}  // namespace detail

// Guest pseudo-physical frame number. Dense in [0, vm.page_count()).
struct Pfn : detail::StrongId<Pfn> {
  using StrongId::StrongId;
  [[nodiscard]] constexpr Pfn next() const { return Pfn{raw + 1}; }
};

// Host machine frame number. Index into MachineMemory's frame pool.
struct Mfn : detail::StrongId<Mfn> {
  using StrongId::StrongId;
  static constexpr Mfn invalid() {
    return Mfn{std::numeric_limits<rep>::max()};
  }
  [[nodiscard]] constexpr bool is_valid() const { return *this != invalid(); }
};

// Guest virtual address.
struct Vaddr : detail::StrongId<Vaddr> {
  using StrongId::StrongId;

  [[nodiscard]] constexpr std::uint64_t page_number() const {
    return raw >> kPageShift;
  }
  [[nodiscard]] constexpr std::uint64_t page_offset() const {
    return raw & kPageOffsetMask;
  }
  [[nodiscard]] constexpr Vaddr operator+(std::uint64_t off) const {
    return Vaddr{raw + off};
  }
  [[nodiscard]] constexpr Vaddr operator-(std::uint64_t off) const {
    return Vaddr{raw - off};
  }
  constexpr Vaddr& operator+=(std::uint64_t off) {
    raw += off;
    return *this;
  }
  [[nodiscard]] constexpr bool is_null() const { return raw == 0; }
};

// Guest physical address (byte-granular companion of Pfn).
struct Paddr : detail::StrongId<Paddr> {
  using StrongId::StrongId;
  [[nodiscard]] constexpr Pfn pfn() const { return Pfn{raw >> kPageShift}; }
  [[nodiscard]] constexpr std::uint64_t page_offset() const {
    return raw & kPageOffsetMask;
  }
  [[nodiscard]] static constexpr Paddr from(Pfn pfn, std::uint64_t offset) {
    return Paddr{(pfn.value() << kPageShift) | (offset & kPageOffsetMask)};
  }
};

// Hypervisor domain identifier. Domain 0 is the privileged control domain.
struct DomainId : detail::StrongId<DomainId, std::uint32_t> {
  using StrongId::StrongId;
  static constexpr DomainId dom0() { return DomainId{0}; }
};

// Guest process identifier.
struct Pid : detail::StrongId<Pid, std::uint32_t> {
  using StrongId::StrongId;
};

}  // namespace crimes

template <>
struct std::hash<crimes::Pfn> {
  std::size_t operator()(crimes::Pfn p) const noexcept {
    return std::hash<std::uint64_t>{}(p.value());
  }
};
template <>
struct std::hash<crimes::Mfn> {
  std::size_t operator()(crimes::Mfn m) const noexcept {
    return std::hash<std::uint64_t>{}(m.value());
  }
};
template <>
struct std::hash<crimes::Vaddr> {
  std::size_t operator()(crimes::Vaddr v) const noexcept {
    return std::hash<std::uint64_t>{}(v.value());
  }
};
template <>
struct std::hash<crimes::Pid> {
  std::size_t operator()(crimes::Pid p) const noexcept {
    return std::hash<std::uint32_t>{}(p.value());
  }
};
template <>
struct std::hash<crimes::DomainId> {
  std::size_t operator()(crimes::DomainId d) const noexcept {
    return std::hash<std::uint32_t>{}(d.value());
  }
};
