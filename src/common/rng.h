// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator (workload access patterns,
// canary values, client think times) draws from an explicitly seeded Rng so
// runs are reproducible bit-for-bit. SplitMix64 seeds a xoshiro256** core.
#pragma once

#include <cstdint>

namespace crimes {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace crimes
