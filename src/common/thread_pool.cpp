#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace crimes {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::pair<std::size_t, std::size_t> ThreadPool::shard_bounds(
    std::size_t n, std::size_t shards, std::size_t shard) {
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  const std::size_t begin = shard * base + std::min(shard, extra);
  const std::size_t end = begin + base + (shard < extra ? 1 : 0);
  return {begin, end};
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] {
        return stop_ || !retiring_.empty() || !queue_.empty();
      });
      if (!retiring_.empty()) {
        // This worker volunteers to die: hand replace_worker() our id
        // (after unlocking -- it takes the mutex to find and swap us).
        std::promise<std::thread::id>* retired = retiring_.front();
        retiring_.pop_front();
        lock.unlock();
        retired->set_value(std::this_thread::get_id());
        return;
      }
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the future
  }
}

void ThreadPool::replace_worker() {
  std::promise<std::thread::id> retired;
  std::future<std::thread::id> id_future = retired.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retiring_.push_back(&retired);
  }
  ready_.notify_all();
  const std::thread::id id = id_future.get();

  std::thread dead;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& worker : workers_) {
      if (worker.get_id() == id) {
        dead = std::move(worker);
        worker = std::thread([this] { worker_loop(); });
        break;
      }
    }
  }
  dead.join();  // the retiring thread has already left worker_loop
}

void ThreadPool::parallel_for_shards(
    std::size_t n, std::size_t shards,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  shards = std::clamp<std::size_t>(shards, 1, std::max<std::size_t>(1, n));
  if (shards == 1) {
    fn(0, 0, n);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const auto [begin, end] = shard_bounds(n, shards, shard);
    pending.push_back(submit([&fn, shard, begin = begin, end = end] {
      fn(shard, begin, end);
    }));
  }
  // Join every shard before surfacing any exception: shard lambdas capture
  // caller-stack state that must stay alive until all workers are done.
  for (auto& future : pending) future.wait();
  std::exception_ptr first;
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace crimes
