// The repo's one FNV-1a implementation.
//
// Three subsystems hash bytes on hot paths -- the checkpointer's backup
// verification sweep, the kernel-text integrity scanner, and now the
// content-addressed checkpoint store -- and each had grown its own copy of
// the same fold loop. This header is the single definition; the constants
// and reference vectors are pinned by tests/test_common.cpp.
//
// FNV-1a is the right tool here: it is dependency-free, byte-order
// independent, fast enough that the virtual-time charge (CostModel::
// checksum_per_page / store_hash_per_page) dominates the real cost, and
// its weaknesses (trivially forgeable) do not matter -- every digest in
// this repo indexes or cross-checks data the same process wrote.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace crimes {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ULL;

// Folds `bytes` into `seed`. Passing a previous digest as the seed chains
// blocks: fnv1a(b, fnv1a(a)) == fnv1a(a + b).
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::span<const std::byte> bytes,
    std::uint64_t seed = kFnv1aOffsetBasis) {
  std::uint64_t hash = seed;
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint8_t>(b);
    hash *= kFnv1aPrime;
  }
  return hash;
}

// String flavor (fault-site salts, module names).
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::string_view text, std::uint64_t seed = kFnv1aOffsetBasis) {
  std::uint64_t hash = seed;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnv1aPrime;
  }
  return hash;
}

// Fused copy+digest: copies `src` into `dst` and folds the bytes into the
// FNV-1a state in the same pass, so the CoW drain pays one sweep per page
// instead of memcpy-then-hash (the store's append re-reading the backup).
// The fold is byte-serial -- FNV-1a has no wider formulation -- but the
// copy moves word-at-a-time from the already-loaded data, so the result is
// bit-identical to memcpy(dst, src) followed by fnv1a(src).
[[nodiscard]] inline std::uint64_t copy_and_fnv1a(
    std::byte* dst, const std::byte* src, std::size_t len,
    std::uint64_t seed = kFnv1aOffsetBasis) {
  std::uint64_t hash = seed;
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= len; i += sizeof(std::uint64_t)) {
    std::uint64_t word;
    __builtin_memcpy(&word, src + i, sizeof(word));
    __builtin_memcpy(dst + i, &word, sizeof(word));
    for (std::size_t b = 0; b < sizeof(word); ++b) {
      hash ^= (word >> (b * 8)) & 0xFFU;
      hash *= kFnv1aPrime;
    }
  }
  for (; i < len; ++i) {
    dst[i] = src[i];
    hash ^= static_cast<std::uint8_t>(src[i]);
    hash *= kFnv1aPrime;
  }
  return hash;
}

}  // namespace crimes
