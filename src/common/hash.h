// The repo's one FNV-1a implementation.
//
// Three subsystems hash bytes on hot paths -- the checkpointer's backup
// verification sweep, the kernel-text integrity scanner, and now the
// content-addressed checkpoint store -- and each had grown its own copy of
// the same fold loop. This header is the single definition; the constants
// and reference vectors are pinned by tests/test_common.cpp.
//
// FNV-1a is the right tool here: it is dependency-free, byte-order
// independent, fast enough that the virtual-time charge (CostModel::
// checksum_per_page / store_hash_per_page) dominates the real cost, and
// its weaknesses (trivially forgeable) do not matter -- every digest in
// this repo indexes or cross-checks data the same process wrote.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace crimes {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ULL;

// Folds `bytes` into `seed`. Passing a previous digest as the seed chains
// blocks: fnv1a(b, fnv1a(a)) == fnv1a(a + b).
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::span<const std::byte> bytes,
    std::uint64_t seed = kFnv1aOffsetBasis) {
  std::uint64_t hash = seed;
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint8_t>(b);
    hash *= kFnv1aPrime;
  }
  return hash;
}

// String flavor (fault-site salts, module names).
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::string_view text, std::uint64_t seed = kFnv1aOffsetBasis) {
  std::uint64_t hash = seed;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnv1aPrime;
  }
  return hash;
}

}  // namespace crimes
