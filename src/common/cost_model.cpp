#include "common/cost_model.h"

namespace crimes {

const CostModel& CostModel::defaults() {
  static const CostModel model{};
  return model;
}

}  // namespace crimes
