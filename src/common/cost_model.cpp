#include "common/cost_model.h"

#include "common/thread_pool.h"

#include <algorithm>

namespace crimes {

Nanos CostModel::parallel_cost(std::span<const Nanos> shard_costs) const {
  if (shard_costs.empty()) return Nanos{0};
  Nanos slowest{0};
  for (const Nanos cost : shard_costs) slowest = std::max(slowest, cost);
  return slowest + thread_fork_join;
}

Nanos CostModel::parallel_shard_cost(Nanos per_item, std::size_t items,
                                     std::size_t workers) const {
  if (workers <= 1 || items == 0) return per_item * items;
  // shard_bounds gives the first shards one extra item, so the slowest
  // shard processes ceil(items / workers).
  const std::size_t largest = (items + workers - 1) / workers;
  return per_item * largest + thread_fork_join;
}

Nanos CostModel::bitscan_parallel_cost(
    std::size_t total_words,
    std::span<const std::size_t> shard_set_bits) const {
  const std::size_t shards = shard_set_bits.size();
  if (shards <= 1) {
    return bitscan_chunked_cost(
        total_words, shards == 1 ? shard_set_bits.front() : 0);
  }
  Nanos slowest{0};
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const auto [begin, end] =
        ThreadPool::shard_bounds(total_words, shards, shard);
    slowest = std::max(
        slowest, bitscan_chunked_cost(end - begin, shard_set_bits[shard]));
  }
  return slowest + thread_fork_join;
}

const CostModel& CostModel::defaults() {
  static const CostModel model{};
  return model;
}

}  // namespace crimes
