#include "common/log.h"

#include <cstdio>

namespace crimes {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (level < level_ || level_ == LogLevel::Off) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::Debug: tag = "DEBUG"; break;
    case LogLevel::Info: tag = "INFO "; break;
    case LogLevel::Warn: tag = "WARN "; break;
    case LogLevel::Error: tag = "ERROR"; break;
    case LogLevel::Off: return;
  }
  std::fprintf(stderr, "[%s] %-12s %s\n", tag, component.c_str(),
               message.c_str());
}

}  // namespace crimes
