#include "common/log.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace crimes {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : start_(std::chrono::steady_clock::now()) {
  if (const char* env = std::getenv("CRIMES_LOG_LEVEL")) {
    LogLevel parsed;
    if (parse_level(env, parsed)) {
      level_.store(parsed, std::memory_order_relaxed);
    } else {
      std::fprintf(stderr,
                   "[WARN ] %-12s unrecognized CRIMES_LOG_LEVEL '%s' "
                   "(want debug|info|warn|error|off)\n",
                   "log", env);
    }
  }
}

bool Logger::parse_level(const char* text, LogLevel& out) {
  if (text == nullptr) return false;
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  if (lower == "debug") out = LogLevel::Debug;
  else if (lower == "info") out = LogLevel::Info;
  else if (lower == "warn" || lower == "warning") out = LogLevel::Warn;
  else if (lower == "error") out = LogLevel::Error;
  else if (lower == "off" || lower == "none") out = LogLevel::Off;
  else return false;
  return true;
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  const LogLevel threshold = level_.load(std::memory_order_relaxed);
  if (level < threshold || threshold == LogLevel::Off) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::Debug: tag = "DEBUG"; break;
    case LogLevel::Info: tag = "INFO "; break;
    case LogLevel::Warn: tag = "WARN "; break;
    case LogLevel::Error: tag = "ERROR"; break;
    case LogLevel::Off: return;
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  const std::size_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000;

  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[%s] [%10.3f ms t:%05zu] ", tag,
                elapsed_ms, tid);
  const std::string line = std::string(prefix) + component + " " + message;

  const std::lock_guard lock(mutex_);
  if (sink_) {
    sink_(level, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace crimes
