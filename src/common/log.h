// Minimal leveled logger.
//
// Default level is Warn so tests and benches stay quiet; examples raise it
// to Info to narrate the epoch loop. The startup level can be overridden
// with the CRIMES_LOG_LEVEL environment variable (debug|info|warn|error|
// off, case-insensitive).
//
// write() is thread-safe (the parallel checkpoint engine logs from pool
// workers) and each line carries a monotonic timestamp (ms since process
// start) plus the writing thread's id.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace crimes {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }

  // Parses a CRIMES_LOG_LEVEL value; returns false (and leaves `out`
  // untouched) on anything unrecognized. Exposed for tests.
  [[nodiscard]] static bool parse_level(const char* text, LogLevel& out);

  void write(LogLevel level, const std::string& component,
             const std::string& message);

  // Redirects formatted lines away from stderr (tests); nullptr restores
  // the default. The sink is invoked under the logger's mutex.
  using Sink = std::function<void(LogLevel level, const std::string& line)>;
  void set_sink(Sink sink);

 private:
  Logger();

  std::atomic<LogLevel> level_{LogLevel::Warn};
  std::mutex mutex_;
  Sink sink_;
  std::chrono::steady_clock::time_point start_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::instance().write(level_, component_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace crimes

#define CRIMES_LOG(level, component) \
  ::crimes::detail::LogLine(::crimes::LogLevel::level, component)
