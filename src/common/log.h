// Minimal leveled logger.
//
// Default level is Warn so tests and benches stay quiet; examples raise it
// to Info to narrate the epoch loop.
#pragma once

#include <sstream>
#include <string>

namespace crimes {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  LogLevel level_ = LogLevel::Warn;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::instance().write(level_, component_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace crimes

#define CRIMES_LOG(level, component) \
  ::crimes::detail::LogLine(::crimes::LogLevel::level, component)
