// Discrete-event virtual clock.
//
// All *data* operations in the simulator are real (pages are really copied,
// bitmaps really scanned, guest structures really parsed), but *time* is
// virtual: components charge durations from the CostModel onto a SimClock.
// This keeps every experiment deterministic and fast while preserving the
// emergent behaviour the paper measures (see DESIGN.md section 2).
#pragma once

#include <chrono>
#include <cstdint>

namespace crimes {

using Nanos = std::chrono::nanoseconds;
using Micros = std::chrono::microseconds;
using Millis = std::chrono::milliseconds;

// Convenience literals-free constructors (avoid pulling operator""ns
// everywhere; Nanos{...} is explicit enough).
[[nodiscard]] constexpr Nanos nanos(std::int64_t n) { return Nanos{n}; }
[[nodiscard]] constexpr Nanos micros(double us) {
  return Nanos{static_cast<std::int64_t>(us * 1e3)};
}
[[nodiscard]] constexpr Nanos millis(double ms) {
  return Nanos{static_cast<std::int64_t>(ms * 1e6)};
}
[[nodiscard]] constexpr double to_ms(Nanos d) {
  return static_cast<double>(d.count()) / 1e6;
}
[[nodiscard]] constexpr double to_us(Nanos d) {
  return static_cast<double>(d.count()) / 1e3;
}
[[nodiscard]] constexpr double to_sec(Nanos d) {
  return static_cast<double>(d.count()) / 1e9;
}

// Monotonic virtual clock. Never goes backwards.
class SimClock {
 public:
  [[nodiscard]] Nanos now() const noexcept { return now_; }

  void advance(Nanos d) noexcept {
    if (d.count() > 0) now_ += d;
  }

  void reset() noexcept { now_ = Nanos::zero(); }

 private:
  Nanos now_{0};
};

}  // namespace crimes
