// Virtual-time cost model for the CRIMES simulator.
//
// Every constant below is calibrated against a measurement the paper
// reports; the calibration source is cited next to each field. Components
// compute durations with these constants and charge them to the SimClock.
// The *shape* results (who wins, crossovers, breakdown proportions) emerge
// from the mechanisms; only the per-unit costs are taken from the paper.
//
// Key calibration anchors:
//  * Table 1  (no-opt pause breakdown, 20 ms epoch, web workloads):
//      suspend ~1 ms, vmi 0.34 ms, bitscan ~2-2.8 ms, map 1.6-2.6 ms,
//      copy 12.6-20 ms, resume 1.5-2 ms, with ~1.3k-2k dirty pages.
//  * Figure 4 (swaptions, 200 ms epoch): no-opt pause 29.86 ms of which
//      copy is ~71%; full-opt bitscan 2.7 ms -> 0.14 ms; full-opt copy is
//      ~5% of pause time.
//  * Table 3  (LibVMI): init ~66-67 ms, preprocessing ~54 ms, per-scan
//      analysis 1.4-1.8 ms.
//  * Section 5.3: Volatility init ~2.5 s, process scan ~0.5 s.
//  * Section 5.5: memory dump ~5 s; writing full-system checkpoints to
//      disk "100+ sec"; canary validation ~90,000 canaries/ms.
//  * Section 5.6: malware blacklist audit ~0.3 us on top of the walk.
#pragma once

#include "common/sim_clock.h"

#include <cstddef>
#include <cstdint>
#include <span>

namespace crimes {

struct CostModel {
  // --- Suspend / resume (Table 1: ~1 ms / ~1.5 ms, mildly load dependent).
  Nanos suspend_base = micros(900);
  Nanos suspend_per_dirty_page = nanos(150);
  Nanos resume_base = micros(1400);
  Nanos resume_per_dirty_page = nanos(100);

  // --- Dirty bitmap scan (Figure 6b; Table 1 bitscan ~2.6 ms for a 1 GiB
  // guest scanned bit-by-bit; Figure 4: 2.7 ms -> 0.14 ms word-wise).
  Nanos bitscan_per_bit = nanos(10);       // unoptimized: test every bit
  Nanos bitscan_per_word = nanos(25);      // optimized: one load per word
  Nanos bitscan_per_set_bit = nanos(5);    // optimized: extract dirty bits
  // SIMD fast path: one 256-bit vector compare covers four words, so a
  // clean block is skipped after a single load+test; the per-word charge
  // drops to ~a third of the scalar load. Dirty words still decompose at
  // bitscan_per_set_bit.
  Nanos bitscan_simd_per_word = nanos(8);

  // --- Page mapping (Table 1: map 1.6-2.6 ms for 1.3k-2k dirty pages ->
  // ~1.3 us per page; dominated by the map_foreign_range hypercall and
  // page-table updates).
  Nanos map_per_page = nanos(1300);
  // With Optimization 2, the full PFN->MFN map is built once at startup...
  Nanos premap_startup_per_page = nanos(1300);
  // ...and each epoch pays only a fixed bookkeeping cost.
  Nanos premap_per_epoch = micros(50);

  // --- Copy (Table 1: ~10 us/page through the Remus socket path, which
  // includes the ssh stream cipher at ~400 MB/s plus writev syscalls;
  // Figure 4: full-opt copy is ~5% of a ~10 ms pause for ~2.1k pages ->
  // ~0.27 us/page, i.e. plain memcpy at ~15 GB/s).
  Nanos copy_socket_per_page = nanos(10000);
  Nanos copy_memcpy_per_page = nanos(270);
  // Compressed-transport extension (Remus page compression): CPU to XOR +
  // RLE one page, plus wire time per byte actually sent. An
  // incompressible page costs ~1.5 us + 4096 * 2.1 ns ~= 10 us -- the
  // plain socket cost; sparse deltas cost proportionally less.
  Nanos copy_compress_per_page = nanos(1500);
  Nanos copy_wire_per_byte = nanos(2);  // ~2.1 ns; stored integral
  // Scatter-gather zero-copy framing (replication frames reference the
  // store's pages via iovecs instead of staging the epoch into a wire
  // buffer). Saves the staging memcpy and the epoch-sized allocation:
  // socket records drop ~3 us of buffer assembly, compressed records the
  // ~0.3 us delta-staging share of their CPU cost.
  Nanos copy_socket_gather_per_page = nanos(7000);
  Nanos copy_compress_gather_per_page = nanos(1200);

  // --- VMI (Table 3).
  Nanos vmi_init = micros(66500);          // one-time LibVMI initialization
  Nanos vmi_preprocess = micros(54000);    // one-time translation caches
  Nanos vmi_translate = nanos(2000);       // per guest-VA translation
  // Per vmi_read_* call: LibVMI's access-layer overhead (mapping lookup,
  // bounds checks). Calibrated so a ~48-process list walk costs ~1.4 ms
  // (Table 3 "Memory Analysis").
  Nanos vmi_read_base = micros(3);
  // Reads through a page the session already has mapped (the canary
  // scanner bulk-maps the table and validates in place -- section 5.5's
  // ~90k canaries/ms path).
  Nanos vmi_read_fast = nanos(40);
  Nanos vmi_noop_scan = micros(340);       // Table 1 "vmi" column (no-op audit)

  // --- Detector modules.
  Nanos canary_check_each = nanos(11);     // ~90k canaries/ms (section 5.5)
  Nanos blacklist_lookup = nanos(300);     // ~0.3 us (section 5.6)

  // --- Volatility-style forensics (sections 5.3, 5.5, 5.6).
  Nanos volatility_init = millis(2500);
  Nanos volatility_process_scan = millis(500);
  Nanos volatility_dump_map = millis(5000);
  Nanos volatility_plugin_base = millis(120);

  // --- Rollback / replay (section 5.5: replay resumes within ~29 ms of
  // the attack, i.e. a few ms after the audit fails).
  Nanos rollback_prepare_base = micros(1500);
  Nanos rollback_per_dirty_page = nanos(300);
  // Replayed execution runs with memory-event monitoring enabled, which
  // Xen makes expensive (section 4.2: "event monitoring with Xen is
  // expensive"); we charge a multiplier over normal execution.
  double replay_slowdown = 8.0;
  Nanos replay_per_op = nanos(500);        // re-executing one recorded write
  Nanos mem_event_deliver = micros(4);     // per trapped access during replay

  // --- Remote backup extension (section 4.1): per-epoch commit
  // acknowledgement round trip to the remote Restore host.
  Nanos remote_ack_rtt = micros(200);

  // --- Parallel checkpoint engine (post-paper extension). A phase forked
  // across the worker pool finishes when its slowest shard does, so its
  // virtual-time charge is max(per-shard cost) + fork/join overhead. The
  // overhead covers dispatching tasks to already-running workers plus the
  // join barrier -- no thread spawn is ever on the suspended-window path.
  Nanos thread_fork_join = micros(15);

  // --- Disk persistence of checkpoints (section 5.5: "tens of seconds for
  // large VMs", "100+ sec" for several full snapshots -> ~30 MB/s).
  Nanos disk_write_per_page = micros(130);

  // --- Resilience layer (fault-injection extension, DESIGN.md section 9).
  // Verifying the backup after a copy: FNV-1a sweep of one 4 KiB page
  // (~20 GB/s), paid twice per dirty page (primary + backup side).
  Nanos checksum_per_page = nanos(180);
  // Exponential backoff before checkpoint copy retry k: base << k. The
  // base approximates re-arming the Remus transport after an aborted
  // stream (teardown + reconnect).
  Nanos retry_backoff_base = micros(100);
  // Re-issuing the log-dirty read hypercall after an EIO.
  Nanos bitmap_reread = micros(30);
  // pthread_create + warmup for a replacement pool worker.
  Nanos worker_respawn = micros(250);

  // --- Checkpoint store (multi-generation snapshot history, DESIGN.md
  // section 10). All store work runs after resume -- off the
  // pause-critical path -- but is still charged to the clock.
  // Digesting one 4 KiB page: the same FNV-1a sweep the resilience
  // layer's backup verification pays (checksum_per_page).
  Nanos store_hash_per_page = nanos(180);
  // Interning one *new* page: XOR against the previous version, RLE-encode
  // both candidates, keep the smaller (roughly the compressed transport's
  // per-page CPU, minus the wire side).
  Nanos store_encode_per_page = nanos(900);
  // Restoring one page from the store: decode (raw, or base + delta) plus
  // the copy into the target frame.
  Nanos store_materialize_per_page = nanos(600);
  // GC bookkeeping per manifest entry merged or released during a
  // generation drop (sorted-merge step + refcount update).
  Nanos store_gc_per_page = nanos(120);

  // --- Standby replication & failover (DESIGN.md section 11). The
  // replication link reuses the Remus socket path's per-page costs
  // (copy_socket_per_page / copy_compress_per_page / copy_wire_per_byte);
  // the constants below cover what the link adds on top.
  // One-way propagation to the standby host (LAN hop; acks pay it again
  // on the way back, so a generation's ack lags its send by transfer +
  // 2 x this).
  Nanos replication_one_way = micros(100);
  // Fixed per-generation framing on the stream (manifest header, ack
  // bookkeeping on both ends).
  Nanos replication_frame = micros(20);
  // Applying one received page into the standby image (decode + memcpy on
  // the standby's core; also paid when promotion rolls a page back from
  // its undo entry).
  Nanos replication_apply_per_page = nanos(400);
  // Standby-side failure detector: evaluating phi once, and the fixed
  // promotion work (fencing-epoch bump, unpause, device reattach).
  Nanos heartbeat_eval = micros(2);
  Nanos promote_base = millis(3);
  // Lease renewal round trip to the lease authority (piggybacks on the
  // replication link: one-way out + one-way back plus arbiter work).
  Nanos lease_renew_rtt = micros(220);

  // --- Durable store journal (DESIGN.md section 11): sequential appends
  // to a dedicated log device (~160 MB/s -> ~25 us per 4 KiB), a fixed
  // per-record overhead, and per-record verification/replay costs.
  Nanos journal_append_base = micros(5);
  Nanos journal_write_per_page = micros(25);  // per 4 KiB of record payload
  Nanos journal_scan_per_record = micros(2);  // fsck/recovery record walk

  // --- Speculative copy-on-write checkpointing (DESIGN.md section 12).
  // Write-protecting the dirty set before resume: one batched EPT
  // permission flip per 512-entry leaf block plus a TLB shootdown, in the
  // style of Xen's SHADOW_OP_CLEAN bulk clear -- so the per-page share is
  // tiny and the fixed hypercall/shootdown cost dominates.
  Nanos cow_protect_base = micros(80);
  Nanos cow_protect_per_page = nanos(15);
  // A guest first-touch of a still-pending page: VM exit, synchronous
  // handler copies the old bytes aside, unprotect, re-enter. Off the
  // pause path but charged to the drain timeline.
  Nanos cow_first_touch_per_page = micros(3);
  // Folding the per-page FNV-1a digest into the copy loop: the bytes are
  // already in cache from the memcpy, so fusing costs a third of the
  // standalone checksum_per_page sweep.
  Nanos cow_fused_hash_per_page = nanos(60);

  // --- Observability layer (DESIGN.md section 13). The flight recorder
  // and time-series engine are always-on, so their work is charged into
  // the pause window like any other pipeline step -- the
  // ablation_telemetry_overhead bench proves the total stays under 1% of
  // p95 pause at parsec dirty rates.
  // One flight-recorder slot write: a ticket fetch_add plus ~128 bytes of
  // stores into a cache-resident slot.
  Nanos flight_record_event = nanos(40);
  // Per-epoch time-series sample: registry snapshot bookkeeping...
  Nanos telemetry_sample_base = micros(2);
  // ...plus per-metric ring append / EWMA / fold work.
  Nanos telemetry_sample_per_metric = nanos(80);
  // One SLO evaluation: four budget compares, window ring updates, state
  // machine step.
  Nanos slo_eval = nanos(200);
  // Freezing a postmortem: walk the ring + series tails and serialize.
  // Off the pause path (dumps happen on abnormal exits, between epochs).
  Nanos postmortem_dump = micros(500);

  [[nodiscard]] Nanos telemetry_sample_cost(std::size_t metrics) const {
    return telemetry_sample_base + telemetry_sample_per_metric * metrics;
  }

  // --- Control plane (DESIGN.md section 14). Charged into the pause
  // window via PhaseCosts::control; the ablation_control_plane bench
  // proves the enabled-but-pinned overhead stays under 1% of mean pause.
  // Recording one epoch's sensor readings into the input ring.
  Nanos control_observe = nanos(60);
  // Running one control cycle: windowed percentile lookups plus the four
  // policy evaluations.
  Nanos control_cycle = micros(1);
  // Applying one decision: actuator store, flight-recorder slot, gauges.
  Nanos control_apply = nanos(300);

  // --- Sealed & attested chains (DESIGN.md section 15). Sealing rides
  // the store's encode loop (the bytes are already in cache), and all
  // store work runs after resume, so these charges lengthen the epoch,
  // not the pause -- ablation_tamper_sweep proves the added mean pause
  // stays under 10% at parsec dirty rates.
  // XOR-keystream pass over one 4 KiB payload fused into the encode
  // copy (half the standalone checksum sweep: one mix64 per word, bytes
  // already resident).
  Nanos crypto_seal_per_page = nanos(90);
  // Keyed FNV MAC fold over one sealed record (tag derivation + length
  // finalization on top of the byte sweep already fused above).
  Nanos crypto_mac_per_record = nanos(40);
  // Materialize-side verification: MAC recompute plus the unseal XOR
  // pass over one payload.
  Nanos crypto_unseal_per_page = nanos(130);
  // Folding one committed generation into the attestation chain: leaf
  // hash (four mix64 rounds) plus the root extension.
  Nanos crypto_leaf_extend = nanos(25);
  // Verifying one chain link at a trust boundary (journal fsck/replay,
  // standby apply, rollback): leaf recompute + root compare. The page
  // digest recompute underneath is priced at store_hash_per_page.
  Nanos crypto_root_verify = nanos(60);

  // --- AddressSanitizer baseline: cost per instrumented memory access.
  // Calibrated so PARSEC access profiles yield the 1.4-2.6x range of
  // Figure 3 ("AS" bars).
  Nanos asan_per_access = nanos(2);

  // --- Network wire latency for the web-server experiments. Calibrated so
  // the unprotected baseline reproduces section 5.4's 2.83 ms request
  // latency (2 x wire + service time); the paper's figure includes server
  // queueing at saturation, which this constant folds in.
  Nanos net_wire_latency = micros(1350);

  // Derived helpers -------------------------------------------------------

  [[nodiscard]] Nanos suspend_cost(std::size_t dirty_pages) const {
    return suspend_base + suspend_per_dirty_page * dirty_pages;
  }
  [[nodiscard]] Nanos resume_cost(std::size_t dirty_pages) const {
    return resume_base + resume_per_dirty_page * dirty_pages;
  }
  [[nodiscard]] Nanos bitscan_naive_cost(std::size_t total_bits) const {
    return bitscan_per_bit * total_bits;
  }
  [[nodiscard]] Nanos bitscan_chunked_cost(std::size_t total_words,
                                           std::size_t set_bits) const {
    return bitscan_per_word * total_words + bitscan_per_set_bit * set_bits;
  }
  [[nodiscard]] Nanos bitscan_simd_cost(std::size_t total_words,
                                        std::size_t set_bits) const {
    return bitscan_simd_per_word * total_words +
           bitscan_per_set_bit * set_bits;
  }
  [[nodiscard]] Nanos cow_protect_cost(std::size_t dirty_pages) const {
    return cow_protect_base + cow_protect_per_page * dirty_pages;
  }

  // Join rule for any forked phase: the slowest shard plus the fork/join
  // overhead. Zero shards means the phase did not run at all.
  [[nodiscard]] Nanos parallel_cost(std::span<const Nanos> shard_costs) const;

  // Forked phase over `items` uniform-cost items split evenly across
  // `workers` shards (the ThreadPool::shard_bounds partition).
  [[nodiscard]] Nanos parallel_shard_cost(Nanos per_item, std::size_t items,
                                          std::size_t workers) const;

  // Parallel word-wise bitmap scan: shard i covers an even slice of the
  // word array and decomposed shard_set_bits[i] dirty bits.
  [[nodiscard]] Nanos bitscan_parallel_cost(
      std::size_t total_words,
      std::span<const std::size_t> shard_set_bits) const;

  [[nodiscard]] static const CostModel& defaults();
};

}  // namespace crimes
