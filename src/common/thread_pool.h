// Fixed-size worker pool for the parallel checkpoint engine.
//
// The paper's entire latency budget is the VM-suspended window; its three
// optimizations attack that window single-threadedly. The pool lets the
// hot phases -- dirty-bitmap scan, dirty-page copy, detection scans --
// shard across cores without per-epoch thread spawns: workers are created
// once (at Checkpointer construction) and parked on a condition variable
// between epochs, so the per-phase overhead is one dispatch + one join
// barrier (charged as CostModel::thread_fork_join in virtual time).
//
// Plain mutex/condvar design on purpose: it is trivially clean under TSan
// and the dispatch cost is irrelevant next to the work each shard does.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace crimes {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // Hardware thread count, with a floor of 1 for exotic platforms.
  [[nodiscard]] static std::size_t default_thread_count();

  // Evenly partitions [0, n) into `shards` contiguous ranges and returns
  // [begin, end) of range `shard`. The first n % shards ranges get one
  // extra element, so sizes differ by at most one -- this is the partition
  // every parallel phase (and the cost model mirroring it) uses.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> shard_bounds(
      std::size_t n, std::size_t shards, std::size_t shard);

  // Schedules `fn` on the pool; the future resolves with its result (or
  // rethrows its exception).
  template <typename F>
  [[nodiscard]] auto submit(F&& fn)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  // Runs fn(shard, begin, end) for every shard of [0, n) on the pool and
  // blocks until all shards finish. Shards are disjoint, so `fn` may write
  // shard-local outputs without locking. The first exception any shard
  // threw is rethrown after every shard has completed (no dangling work).
  void parallel_for_shards(
      std::size_t n, std::size_t shards,
      const std::function<void(std::size_t shard, std::size_t begin,
                               std::size_t end)>& fn);

  // Fault-injection support (worker-loss faults): retires one live worker
  // -- the thread genuinely exits and is joined -- and spawns a fresh
  // replacement, leaving size() unchanged. Blocks until the swap is done;
  // callable only between parallel phases, never from a pool task.
  void replace_worker();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  // Retirement handshake: a worker that pops a promise fulfills it with
  // its own thread id and exits; replace_worker() joins that thread.
  std::deque<std::promise<std::thread::id>*> retiring_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace crimes
