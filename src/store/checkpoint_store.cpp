#include "store/checkpoint_store.h"

#include "common/log.h"

#include <stdexcept>
#include <utility>

namespace crimes::store {

Nanos CheckpointStore::hash_pages(std::span<const Pfn> dirty,
                                  const ForeignMapping& image,
                                  std::vector<std::uint64_t>& digests_out,
                                  ThreadPool* pool) const {
  digests_out.resize(dirty.size());
  if (config_.parallel_hash && pool != nullptr && dirty.size() > 1) {
    // Serial gather, parallel hash -- the same split the sharded copy
    // uses: peek() never materializes frames, and each shard writes a
    // disjoint slice of the output, so the workers share nothing.
    std::vector<const Page*> frames(dirty.size());
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      frames[i] = &image.peek(dirty[i]);
    }
    pool->parallel_for_shards(
        dirty.size(), pool->size(),
        [&frames, &digests_out](std::size_t, std::size_t begin,
                                std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            digests_out[i] = page_digest(*frames[i]);
          }
        });
    return costs_->parallel_shard_cost(costs_->store_hash_per_page,
                                       dirty.size(), pool->size());
  }
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    digests_out[i] = page_digest(image.peek(dirty[i]));
  }
  return costs_->store_hash_per_page * dirty.size();
}

Nanos CheckpointStore::seed(std::uint64_t epoch, ForeignMapping& image,
                            const VcpuState& vcpu, Nanos now) {
  if (!chain_.empty()) {
    throw std::logic_error("CheckpointStore::seed: already seeded");
  }
  image_pages_ = image.page_count();

  Generation gen;
  gen.epoch = epoch;
  gen.taken_at = now;
  gen.vcpu = vcpu;
  std::size_t backed = 0;
  for (std::size_t i = 0; i < image_pages_; ++i) {
    const Pfn pfn{i};
    // Never-written pages are the manifest's kZeroDigest sentinel -- i.e.
    // absent: digest_at() already defaults to it.
    if (!image.is_backed(pfn)) continue;
    const Page& page = image.peek(pfn);
    gen.changed.emplace_back(pfn, pages_.intern(page, page_digest(page)));
    ++backed;
  }
  chain_.append(std::move(gen));
  return (costs_->store_hash_per_page + costs_->store_encode_per_page) *
         backed;
}

Nanos CheckpointStore::append(std::uint64_t epoch, std::span<const Pfn> dirty,
                              ForeignMapping& image, const VcpuState& vcpu,
                              Nanos now, ThreadPool* pool) {
  if (chain_.empty()) {
    throw std::logic_error("CheckpointStore::append: seed() not called");
  }
  std::vector<std::uint64_t> digests;
  Nanos cost = hash_pages(dirty, image, digests, pool);

  const std::size_t newest = chain_.size() - 1;
  Generation gen;
  gen.epoch = epoch;
  gen.taken_at = now;
  gen.vcpu = vcpu;
  gen.changed.reserve(dirty.size());
  std::size_t encoded = 0;
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const Pfn pfn = dirty[i];
    const std::uint64_t prev = chain_.digest_at(newest, pfn);
    if (digests[i] == prev) continue;  // dirtied but rewritten identically
    const std::uint64_t before = pages_.stats().dedup_hits;
    pages_.intern(image.peek(pfn), digests[i], prev);
    if (pages_.stats().dedup_hits == before) ++encoded;  // new unique page
    gen.changed.emplace_back(pfn, digests[i]);
  }
  chain_.append(std::move(gen));
  return cost + costs_->store_encode_per_page * encoded;
}

Nanos CheckpointStore::append_with_digests(
    std::uint64_t epoch, std::span<const Pfn> dirty,
    std::span<const std::uint64_t> digests, ForeignMapping& image,
    const VcpuState& vcpu, Nanos now) {
  if (chain_.empty()) {
    throw std::logic_error(
        "CheckpointStore::append_with_digests: seed() not called");
  }
  if (digests.size() != dirty.size()) {
    throw std::invalid_argument(
        "CheckpointStore::append_with_digests: digest count mismatch");
  }
  const std::size_t newest = chain_.size() - 1;
  Generation gen;
  gen.epoch = epoch;
  gen.taken_at = now;
  gen.vcpu = vcpu;
  gen.changed.reserve(dirty.size());
  std::size_t encoded = 0;
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const Pfn pfn = dirty[i];
    const std::uint64_t prev = chain_.digest_at(newest, pfn);
    if (digests[i] == prev) continue;
    const std::uint64_t before = pages_.stats().dedup_hits;
    pages_.intern(image.peek(pfn), digests[i], prev);
    if (pages_.stats().dedup_hits == before) ++encoded;
    gen.changed.emplace_back(pfn, digests[i]);
  }
  chain_.append(std::move(gen));
  return costs_->store_encode_per_page * encoded;
}

Nanos CheckpointStore::collect() {
  std::size_t processed = 0;
  std::size_t dropped = 0;
  const std::size_t budget = config_.gc_generations_per_epoch == 0
                                 ? chain_.size()
                                 : config_.gc_generations_per_epoch;
  const std::uint64_t newest_epoch = chain_.newest().epoch;
  for (std::size_t i = 0; i + 1 < chain_.size() && dropped < budget;) {
    const Generation& gen = chain_.at(i);
    if (gen.pinned ||
        config_.retention.retains(gen.epoch, newest_epoch)) {
      ++i;
      continue;
    }
    processed += chain_.drop(i, pages_);
    ++dropped;  // the successor slid into slot i; re-examine it
  }
  generations_dropped_ += dropped;
  entries_merged_ += processed;
  const Nanos cost = costs_->store_gc_per_page * processed;
  gc_pauses_.record(static_cast<std::uint64_t>(cost.count()));
  return cost;
}

void CheckpointStore::note_audit_failure() {
  if (!config_.retention.pin_on_audit_failure || chain_.empty()) return;
  chain_.pin(chain_.size() - 1);
  CRIMES_LOG(Info, "store") << "audit failure: pinned clean generation "
                            << chain_.newest().epoch;
}

void CheckpointStore::pin(std::uint64_t epoch) {
  const std::size_t index = chain_.index_of(epoch);
  if (index == GenerationChain::npos) {
    throw std::invalid_argument("CheckpointStore::pin: unknown generation");
  }
  chain_.pin(index);
}

CheckpointStore::Restored CheckpointStore::materialize(
    std::uint64_t epoch, ForeignMapping& dst) const {
  const std::size_t index = chain_.index_of(epoch);
  if (index == GenerationChain::npos) {
    throw std::invalid_argument(
        "CheckpointStore::materialize: generation not retained");
  }
  Restored out;
  out.vcpu = chain_.at(index).vcpu;
  for (std::size_t i = 0; i < image_pages_; ++i) {
    const Pfn pfn{i};
    const std::uint64_t digest = chain_.digest_at(index, pfn);
    if (digest == kZeroDigest) {
      // Zero at this generation: only scrub frames that exist -- writing
      // would materialize backing for a page the generation never had.
      if (dst.is_backed(pfn)) {
        dst.page(pfn).zero();
        ++out.pages_written;
      }
      continue;
    }
    pages_.materialize(digest, dst.page(pfn));
    ++out.pages_written;
  }
  out.cost = costs_->store_materialize_per_page * out.pages_written;
  return out;
}

CheckpointStore::Restored CheckpointStore::rewind(std::uint64_t epoch,
                                                  ForeignMapping& dst) const {
  const std::size_t index = chain_.index_of(epoch);
  if (index == GenerationChain::npos) {
    throw std::invalid_argument(
        "CheckpointStore::rewind: generation not retained");
  }
  Restored out;
  out.vcpu = chain_.at(index).vcpu;
  for (const auto& [pfn, digest] : chain_.diff(chain_.size() - 1, index)) {
    if (digest == kZeroDigest && !dst.is_backed(pfn)) continue;
    pages_.materialize(digest, dst.page(pfn));
    ++out.pages_written;
  }
  out.cost = costs_->store_materialize_per_page * out.pages_written;
  return out;
}

Nanos CheckpointStore::truncate_to(std::uint64_t epoch) {
  const std::size_t index = chain_.index_of(epoch);
  if (index == GenerationChain::npos) {
    throw std::invalid_argument(
        "CheckpointStore::truncate_to: generation not retained");
  }
  const std::size_t released = chain_.truncate_after(index, pages_);
  return costs_->store_gc_per_page * released;
}

std::vector<std::uint64_t> CheckpointStore::retained_epochs() const {
  std::vector<std::uint64_t> out;
  out.reserve(chain_.size());
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    out.push_back(chain_.at(i).epoch);
  }
  return out;
}

StoreStats CheckpointStore::stats() const {
  StoreStats out;
  out.generations = chain_.size();
  out.pages_unique = pages_.stats().pages_unique;
  out.bytes_logical = static_cast<std::uint64_t>(chain_.size()) *
                      image_pages_ * kPageSize;
  out.bytes_physical = pages_.stats().bytes_physical;
  out.generations_dropped = generations_dropped_;
  out.entries_merged = entries_merged_;
  if (!chain_.empty()) {
    const std::uint64_t newest_epoch = chain_.newest().epoch;
    for (std::size_t i = 0; i + 1 < chain_.size(); ++i) {
      const Generation& gen = chain_.at(i);
      if (!gen.pinned && !config_.retention.retains(gen.epoch, newest_epoch)) {
        ++out.gc_backlog;
      }
    }
  }
  return out;
}

}  // namespace crimes::store
