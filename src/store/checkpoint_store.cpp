#include "store/checkpoint_store.h"

#include "common/log.h"
#include "fault/fault_injector.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace crimes::store {

namespace {

// Reconstructs the commit-time leaf frozen into a generation; every
// verifier (store audit, journal fsck/replay, standby) derives the same
// structure from its own copy of the data.
crypto::AttestationLeaf frozen_leaf(const Generation& gen) {
  crypto::AttestationLeaf leaf;
  leaf.epoch = gen.epoch;
  leaf.pages_digest = gen.attest_digest;
  leaf.vcpu_digest = crypto::pod_digest(gen.vcpu);
  leaf.audit_passed = gen.audit_passed;
  return leaf;
}

}  // namespace

Nanos CheckpointStore::hash_pages(std::span<const Pfn> dirty,
                                  const ForeignMapping& image,
                                  std::vector<std::uint64_t>& digests_out,
                                  ThreadPool* pool) const {
  digests_out.resize(dirty.size());
  if (config_.parallel_hash && pool != nullptr && dirty.size() > 1) {
    // Serial gather, parallel hash -- the same split the sharded copy
    // uses: peek() never materializes frames, and each shard writes a
    // disjoint slice of the output, so the workers share nothing.
    std::vector<const Page*> frames(dirty.size());
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      frames[i] = &image.peek(dirty[i]);
    }
    pool->parallel_for_shards(
        dirty.size(), pool->size(),
        [&frames, &digests_out](std::size_t, std::size_t begin,
                                std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            digests_out[i] = page_digest(*frames[i]);
          }
        });
    return costs_->parallel_shard_cost(costs_->store_hash_per_page,
                                       dirty.size(), pool->size());
  }
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    digests_out[i] = page_digest(image.peek(dirty[i]));
  }
  return costs_->store_hash_per_page * dirty.size();
}

Nanos CheckpointStore::seed(std::uint64_t epoch, ForeignMapping& image,
                            const VcpuState& vcpu, Nanos now) {
  if (!chain_.empty()) {
    throw std::logic_error("CheckpointStore::seed: already seeded");
  }
  image_pages_ = image.page_count();

  Generation gen;
  gen.epoch = epoch;
  gen.taken_at = now;
  gen.vcpu = vcpu;
  std::size_t backed = 0;
  const std::uint64_t sealed_before = pages_.stats().pages_sealed;
  crypto::AttestationLeaf fold;
  for (std::size_t i = 0; i < image_pages_; ++i) {
    const Pfn pfn{i};
    // Never-written pages are the manifest's kZeroDigest sentinel -- i.e.
    // absent: digest_at() already defaults to it.
    if (!image.is_backed(pfn)) continue;
    const Page& page = image.peek(pfn);
    const std::uint64_t digest = pages_.intern(page, page_digest(page));
    gen.changed.emplace_back(pfn, digest);
    fold.fold_page(pfn.raw, digest);
    ++backed;
  }
  // The seed's "dirty list" is the backed pages in ascending pfn order --
  // the exact sequence the journal's seed record encodes and a standby's
  // full sync applies, so all three folds agree.
  Nanos crypto_cost = extend_attestation(gen, fold.pages_digest);
  crypto_cost += (costs_->crypto_seal_per_page + costs_->crypto_mac_per_record) *
                 (pages_.stats().pages_sealed - sealed_before);
  last_seal_cost_ = crypto_cost;
  chain_.append(std::move(gen));
  return (costs_->store_hash_per_page + costs_->store_encode_per_page) *
             backed +
         crypto_cost;
}

Nanos CheckpointStore::append(std::uint64_t epoch, std::span<const Pfn> dirty,
                              ForeignMapping& image, const VcpuState& vcpu,
                              Nanos now, ThreadPool* pool) {
  if (chain_.empty()) {
    throw std::logic_error("CheckpointStore::append: seed() not called");
  }
  std::vector<std::uint64_t> digests;
  Nanos cost = hash_pages(dirty, image, digests, pool);

  const std::size_t newest = chain_.size() - 1;
  Generation gen;
  gen.epoch = epoch;
  gen.taken_at = now;
  gen.vcpu = vcpu;
  gen.changed.reserve(dirty.size());
  std::size_t encoded = 0;
  const std::uint64_t sealed_before = pages_.stats().pages_sealed;
  crypto::AttestationLeaf fold;
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const Pfn pfn = dirty[i];
    // The leaf folds the *full* dirty list -- including pages rewritten
    // identically -- because that is the sequence the journal record
    // carries and the standby applies; `changed` is a local optimization
    // the other recomputation sites never see.
    fold.fold_page(pfn.raw, digests[i]);
    const std::uint64_t prev = chain_.digest_at(newest, pfn);
    if (digests[i] == prev) continue;  // dirtied but rewritten identically
    const std::uint64_t before = pages_.stats().dedup_hits;
    pages_.intern(image.peek(pfn), digests[i], prev);
    if (pages_.stats().dedup_hits == before) ++encoded;  // new unique page
    gen.changed.emplace_back(pfn, digests[i]);
  }
  Nanos crypto_cost = extend_attestation(gen, fold.pages_digest);
  crypto_cost += (costs_->crypto_seal_per_page + costs_->crypto_mac_per_record) *
                 (pages_.stats().pages_sealed - sealed_before);
  last_seal_cost_ = crypto_cost;
  chain_.append(std::move(gen));
  maybe_inject_tamper();
  return cost + costs_->store_encode_per_page * encoded + crypto_cost;
}

Nanos CheckpointStore::append_with_digests(
    std::uint64_t epoch, std::span<const Pfn> dirty,
    std::span<const std::uint64_t> digests, ForeignMapping& image,
    const VcpuState& vcpu, Nanos now) {
  if (chain_.empty()) {
    throw std::logic_error(
        "CheckpointStore::append_with_digests: seed() not called");
  }
  if (digests.size() != dirty.size()) {
    throw std::invalid_argument(
        "CheckpointStore::append_with_digests: digest count mismatch");
  }
  const std::size_t newest = chain_.size() - 1;
  Generation gen;
  gen.epoch = epoch;
  gen.taken_at = now;
  gen.vcpu = vcpu;
  gen.changed.reserve(dirty.size());
  std::size_t encoded = 0;
  const std::uint64_t sealed_before = pages_.stats().pages_sealed;
  crypto::AttestationLeaf fold;
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const Pfn pfn = dirty[i];
    fold.fold_page(pfn.raw, digests[i]);  // full dirty list, commit order
    const std::uint64_t prev = chain_.digest_at(newest, pfn);
    if (digests[i] == prev) continue;
    const std::uint64_t before = pages_.stats().dedup_hits;
    pages_.intern(image.peek(pfn), digests[i], prev);
    if (pages_.stats().dedup_hits == before) ++encoded;
    gen.changed.emplace_back(pfn, digests[i]);
  }
  Nanos crypto_cost = extend_attestation(gen, fold.pages_digest);
  crypto_cost += (costs_->crypto_seal_per_page + costs_->crypto_mac_per_record) *
                 (pages_.stats().pages_sealed - sealed_before);
  last_seal_cost_ = crypto_cost;
  chain_.append(std::move(gen));
  maybe_inject_tamper();
  return costs_->store_encode_per_page * encoded + crypto_cost;
}

Nanos CheckpointStore::collect() {
  std::size_t processed = 0;
  std::size_t dropped = 0;
  const std::size_t budget = config_.gc_generations_per_epoch == 0
                                 ? chain_.size()
                                 : config_.gc_generations_per_epoch;
  const std::uint64_t newest_epoch = chain_.newest().epoch;
  for (std::size_t i = 0; i + 1 < chain_.size() && dropped < budget;) {
    const Generation& gen = chain_.at(i);
    if (gen.pinned ||
        config_.retention.retains(gen.epoch, newest_epoch)) {
      ++i;
      continue;
    }
    processed += chain_.drop(i, pages_);
    ++dropped;  // the successor slid into slot i; re-examine it
  }
  generations_dropped_ += dropped;
  entries_merged_ += processed;
  const Nanos cost = costs_->store_gc_per_page * processed;
  gc_pauses_.record(static_cast<std::uint64_t>(cost.count()));
  return cost;
}

void CheckpointStore::note_audit_failure() {
  if (!config_.retention.pin_on_audit_failure || chain_.empty()) return;
  chain_.pin(chain_.size() - 1);
  CRIMES_LOG(Info, "store") << "audit failure: pinned clean generation "
                            << chain_.newest().epoch;
}

void CheckpointStore::pin(std::uint64_t epoch) {
  const std::size_t index = chain_.index_of(epoch);
  if (index == GenerationChain::npos) {
    throw std::invalid_argument("CheckpointStore::pin: unknown generation");
  }
  chain_.pin(index);
}

CheckpointStore::Restored CheckpointStore::materialize(
    std::uint64_t epoch, ForeignMapping& dst) const {
  const std::size_t index = chain_.index_of(epoch);
  if (index == GenerationChain::npos) {
    throw std::invalid_argument(
        "CheckpointStore::materialize: generation not retained");
  }
  verify_generation_link(index);
  Restored out;
  out.vcpu = chain_.at(index).vcpu;
  std::size_t unsealed = 0;
  for (std::size_t i = 0; i < image_pages_; ++i) {
    const Pfn pfn{i};
    const std::uint64_t digest = chain_.digest_at(index, pfn);
    if (digest == kZeroDigest) {
      // Zero at this generation: only scrub frames that exist -- writing
      // would materialize backing for a page the generation never had.
      if (dst.is_backed(pfn)) {
        dst.page(pfn).zero();
        ++out.pages_written;
      }
      continue;
    }
    pages_.materialize(digest, dst.page(pfn));
    ++out.pages_written;
    ++unsealed;
  }
  out.cost = costs_->store_materialize_per_page * out.pages_written;
  if (pages_.sealed()) out.cost += costs_->crypto_unseal_per_page * unsealed;
  if (config_.crypto.attest) out.cost += costs_->crypto_root_verify;
  return out;
}

CheckpointStore::Restored CheckpointStore::rewind(std::uint64_t epoch,
                                                  ForeignMapping& dst) const {
  const std::size_t index = chain_.index_of(epoch);
  if (index == GenerationChain::npos) {
    throw std::invalid_argument(
        "CheckpointStore::rewind: generation not retained");
  }
  verify_generation_link(index);
  Restored out;
  out.vcpu = chain_.at(index).vcpu;
  std::size_t unsealed = 0;
  for (const auto& [pfn, digest] : chain_.diff(chain_.size() - 1, index)) {
    if (digest == kZeroDigest && !dst.is_backed(pfn)) continue;
    pages_.materialize(digest, dst.page(pfn));
    ++out.pages_written;
    if (digest != kZeroDigest) ++unsealed;
  }
  out.cost = costs_->store_materialize_per_page * out.pages_written;
  if (pages_.sealed()) out.cost += costs_->crypto_unseal_per_page * unsealed;
  if (config_.crypto.attest) out.cost += costs_->crypto_root_verify;
  return out;
}

Nanos CheckpointStore::truncate_to(std::uint64_t epoch) {
  const std::size_t index = chain_.index_of(epoch);
  if (index == GenerationChain::npos) {
    throw std::invalid_argument(
        "CheckpointStore::truncate_to: generation not retained");
  }
  const std::size_t released = chain_.truncate_after(index, pages_);
  return costs_->store_gc_per_page * released;
}

std::vector<std::uint64_t> CheckpointStore::retained_epochs() const {
  std::vector<std::uint64_t> out;
  out.reserve(chain_.size());
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    out.push_back(chain_.at(i).epoch);
  }
  return out;
}

Nanos CheckpointStore::extend_attestation(Generation& gen,
                                          std::uint64_t pages_digest) {
  if (!config_.crypto.attest) return Nanos{0};
  gen.attest_digest = pages_digest;
  gen.attest_prev_root = root();
  const std::uint64_t leaf = crypto::AttestationChain::leaf_hash(
      config_.crypto.tenant_key, frozen_leaf(gen));
  gen.attest_root = crypto::AttestationChain::chain_root(
      config_.crypto.tenant_key, gen.attest_prev_root, leaf);
  return costs_->crypto_leaf_extend;
}

void CheckpointStore::verify_generation_link(std::size_t index) const {
  if (!config_.crypto.attest) return;
  const Generation& gen = chain_.at(index);
  const std::uint64_t leaf = crypto::AttestationChain::leaf_hash(
      config_.crypto.tenant_key, frozen_leaf(gen));
  if (crypto::AttestationChain::chain_root(config_.crypto.tenant_key,
                                           gen.attest_prev_root,
                                           leaf) != gen.attest_root) {
    std::ostringstream msg;
    msg << "CheckpointStore: attestation link broken at epoch " << gen.epoch;
    throw crypto::TamperError(msg.str());
  }
}

void CheckpointStore::maybe_inject_tamper() {
  // The SEVurity-style adversary targets *sealed* state: without the
  // sealer armed the same corruption would be an undetectable store bug,
  // not an experiment, so the sites stay dormant.
  if (faults_ == nullptr || !pages_.sealed()) return;
  if (faults_->tampers_store()) {
    const std::uint64_t victim = faults_->tamper_victim();
    const TamperMode mode = ((victim >> 32) & 1) != 0 ? TamperMode::SwapEntries
                                                      : TamperMode::FlipByte;
    last_tamper_victim_ = pages_.tamper(victim, mode);
  }
  if (faults_->truncates_mac()) {
    last_tamper_victim_ =
        pages_.tamper(faults_->tamper_victim(), TamperMode::TruncateMac);
  }
}

CheckpointStore::SealAudit CheckpointStore::audit_seals() const {
  SealAudit out;
  out.bad_digests = pages_.verify_seals();
  out.cost = costs_->crypto_mac_per_record * pages_.entry_count();
  return out;
}

CheckpointStore::ChainAudit CheckpointStore::verify_chain() const {
  ChainAudit out;
  if (!config_.crypto.attest) return out;
  out.cost = costs_->crypto_root_verify * chain_.size();
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    const Generation& gen = chain_.at(i);
    const std::uint64_t leaf = crypto::AttestationChain::leaf_hash(
        config_.crypto.tenant_key, frozen_leaf(gen));
    if (crypto::AttestationChain::chain_root(config_.crypto.tenant_key,
                                             gen.attest_prev_root,
                                             leaf) != gen.attest_root) {
      out.ok = false;
      out.bad_index = i;
      out.reason =
          "link fails to recompute at epoch " + std::to_string(gen.epoch);
      return out;
    }
    // Adjacency applies only where GC has not opened an epoch gap; a
    // dropped predecessor leaves the local link as the only obligation.
    if (i > 0) {
      const Generation& prev = chain_.at(i - 1);
      if (gen.epoch == prev.epoch + 1 &&
          gen.attest_prev_root != prev.attest_root) {
        out.ok = false;
        out.bad_index = i;
        out.reason =
            "adjacent roots do not join at epoch " + std::to_string(gen.epoch);
        return out;
      }
    }
  }
  return out;
}

StoreStats CheckpointStore::stats() const {
  StoreStats out;
  out.generations = chain_.size();
  out.pages_unique = pages_.stats().pages_unique;
  out.bytes_logical = static_cast<std::uint64_t>(chain_.size()) *
                      image_pages_ * kPageSize;
  out.bytes_physical = pages_.stats().bytes_physical;
  out.generations_dropped = generations_dropped_;
  out.entries_merged = entries_merged_;
  out.pages_sealed = pages_.stats().pages_sealed;
  out.seal_failures = pages_.stats().seal_failures;
  if (!chain_.empty()) {
    const std::uint64_t newest_epoch = chain_.newest().epoch;
    for (std::size_t i = 0; i + 1 < chain_.size(); ++i) {
      const Generation& gen = chain_.at(i);
      if (!gen.pinned && !config_.retention.retains(gen.epoch, newest_epoch)) {
        ++out.gc_backlog;
      }
    }
  }
  return out;
}

}  // namespace crimes::store
