// Knobs for the multi-generation checkpoint store (DESIGN.md section 10).
//
// Deliberately dependency-light: CheckpointConfig embeds a StoreConfig by
// value, so this header is pulled into checkpointer.h and everything above
// it. The store machinery itself lives behind a pointer
// (store/checkpoint_store.h) and is only compiled into the epoch path when
// `enabled` is set.
#pragma once

#include "crypto/crypto_config.h"

#include <cstddef>
#include <cstdint>

namespace crimes::store {

// Which generations survive GC. A generation is retained when ANY rule
// claims it: recency (keep_last), the periodic archive lattice
// (keep_every), or an explicit pin. The newest generation -- the live
// backup image -- is always retained regardless of the rules.
struct RetentionPolicy {
  // Keep the newest N generations (the baseline seed counts as one).
  std::size_t keep_last = 8;
  // Additionally keep every generation whose epoch id is a multiple of K
  // (0 disables the lattice). Gives a sparse long tail for forensics
  // without retaining every epoch.
  std::size_t keep_every = 0;
  // When an audit fails, pin the newest generation -- the last *clean*
  // checkpoint, i.e. the forensic baseline -- so it survives GC no matter
  // how many epochs the investigation takes.
  bool pin_on_audit_failure = true;

  [[nodiscard]] bool retains(std::uint64_t epoch,
                             std::uint64_t newest_epoch) const {
    if (epoch == newest_epoch) return true;
    if (keep_last > 0 && epoch + keep_last > newest_epoch) return true;
    if (keep_every > 0 && epoch % keep_every == 0) return true;
    return false;
  }
};

struct StoreConfig {
  // Off by default: the Checkpointer never constructs the store and the
  // per-epoch path is a single null check (zero heap allocation, asserted
  // by test).
  bool enabled = false;
  RetentionPolicy retention;
  // Store a page as an XOR delta (RLE-packed) against the previous version
  // of the same PFN when that is smaller than RLE of the raw bytes.
  // Delta chains are capped at depth 1: a delta's base is always a raw
  // entry, so materialization decodes at most two payloads.
  bool delta_compress = true;
  // Digest the changed pages on the Checkpointer's ThreadPool at append
  // time (virtual-time charge becomes the sharded max + fork/join).
  bool parallel_hash = false;
  // GC drops at most this many aged-out generations per collect() call,
  // bounding the per-epoch GC pause; in steady state exactly one
  // generation ages out per epoch. 0 means drain everything due.
  std::size_t gc_generations_per_epoch = 1;
  // Durable store journal (DESIGN.md section 11): log every store
  // operation (seed/append/collect/pin/truncate) to an append-only,
  // checksummed device image so a crashed primary rebuilds the store
  // byte-identically. Requires `enabled`.
  bool journal = false;
  // Sealing/attestation subsystem (DESIGN.md section 15): encrypt+MAC
  // interned payloads and hash-chain committed generations into
  // attestation roots verified at every trust boundary. Requires
  // `enabled`; attestation additionally covers the journal and the
  // replication stream when those are on.
  crypto::CryptoConfig crypto;
};

}  // namespace crimes::store
