// The generation chain: one manifest per committed checkpoint.
//
// A manifest records *only the pages that changed* that epoch -- a sorted
// (pfn, digest) list lifted straight from the dirty bitmap at commit time
// -- plus the checkpointed vCPU and the audit verdict. The oldest retained
// generation is always "full coverage": it carries an entry for every page
// that was ever non-zero at its epoch, so the content of any page at any
// retained generation is the newest entry at or below it (zero-page if
// none exists).
//
// Dropping a generation (GC) merges it forward into its immediate
// successor: entries the successor overrides are released from the
// PageStore; entries it does not are moved into it. Every surviving
// generation reconstructs to exactly the same bytes before and after the
// merge -- that is the store's central invariant, pinned by tests.
#pragma once

#include "common/sim_clock.h"
#include "hypervisor/vm.h"
#include "store/page_store.h"

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

namespace crimes::store {

struct Generation {
  std::uint64_t epoch = 0;  // Checkpointer::checkpoints_taken at commit
  Nanos taken_at{0};
  VcpuState vcpu;
  // Verdict the epoch committed under. Always true today -- only audited
  // epochs append -- recorded so the chain stays self-describing if a
  // quarantine-degraded commit ever lands.
  bool audit_passed = true;
  bool pinned = false;  // survives GC regardless of RetentionPolicy
  // Pages this epoch changed, sorted by pfn. kZeroDigest = page became
  // (or started) all-zero.
  std::vector<std::pair<Pfn, std::uint64_t>> changed;
  // Attestation (DESIGN.md section 15; zero when attestation is off).
  // The leaf's pages digest is frozen at commit time over the *full*
  // dirty set of that epoch (not just `changed`): GC merges rewrite
  // `changed`, but the commit-time leaf -- what the journal and the
  // standby independently recompute -- must stay verifiable forever.
  std::uint64_t attest_digest = 0;
  // Root the chain held before this generation, and after it:
  // attest_root = H(key, attest_prev_root, leaf). Storing both makes a
  // generation's link locally verifiable even after GC drops its
  // predecessor (the adjacency check then applies only where epochs are
  // still consecutive).
  std::uint64_t attest_prev_root = 0;
  std::uint64_t attest_root = 0;
};

class GenerationChain {
 public:
  void append(Generation gen);

  [[nodiscard]] std::size_t size() const { return gens_.size(); }
  [[nodiscard]] bool empty() const { return gens_.empty(); }
  [[nodiscard]] const Generation& at(std::size_t index) const {
    return gens_.at(index);
  }
  [[nodiscard]] const Generation& newest() const { return gens_.back(); }
  // Index of the generation committed at `epoch`, or npos.
  [[nodiscard]] std::size_t index_of(std::uint64_t epoch) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Digest of `pfn` as of generation `index`: the newest changed-entry at
  // or below it, kZeroDigest when the page was never written.
  [[nodiscard]] std::uint64_t digest_at(std::size_t index, Pfn pfn) const;

  // Pages whose content differs between generations `a` and `b`, as
  // (pfn, digest-at-b) pairs sorted by pfn. O(sum of changed-lists
  // between them), never O(image).
  [[nodiscard]] std::vector<std::pair<Pfn, std::uint64_t>> diff(
      std::size_t a, std::size_t b) const;

  void pin(std::size_t index) { gens_.at(index).pinned = true; }

  // GC: removes generation `index` (never the newest), merging its entries
  // into the successor and releasing the superseded ones from `pages`.
  // Returns the number of manifest entries processed (the GC cost driver).
  std::size_t drop(std::size_t index, PageStore& pages);

  // Time-travel rollback: discards every generation newer than `index`,
  // releasing their references. Returns manifest entries released.
  std::size_t truncate_after(std::size_t index, PageStore& pages);

 private:
  std::deque<Generation> gens_;
};

}  // namespace crimes::store
