// The checkpoint store: a content-addressed, multi-generation snapshot
// history layered behind the Checkpointer (DESIGN.md section 10).
//
// CRIMES proper keeps exactly one backup VM -- the last clean checkpoint
// -- so the Analyzer can roll back one epoch and forensics can only diff
// "now vs. last clean". This store retains a *chain* of clean generations
// at O(changed pages) append cost: at commit time the dirty list is
// digested (optionally on the Checkpointer's pool), each changed page is
// interned into a refcounted PageStore (deduplicated across generations,
// delta-RLE packed), and a manifest joins the GenerationChain. A
// RetentionPolicy plus incremental GC bound the physical footprint; every
// retained generation materializes byte-identical, which is what makes
// rollback_to(epoch) and multi-epoch forensics possible.
//
// All durations are virtual: the store does real hashing, encoding and
// decoding, and charges CostModel::store_* for them. Nothing here touches
// the SimClock directly -- methods return costs and the Checkpointer
// advances the clock (store work happens after resume, off the
// pause-critical path, like Remus' asynchronous checkpoint drain).
#pragma once

#include "common/cost_model.h"
#include "common/thread_pool.h"
#include "crypto/attestation_chain.h"
#include "hypervisor/foreign_mapping.h"
#include "store/generation_chain.h"
#include "store/store_config.h"
#include "telemetry/metrics.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace crimes::fault {
class FaultInjector;
}  // namespace crimes::fault

namespace crimes::store {

struct StoreStats {
  std::size_t generations = 0;
  std::size_t pages_unique = 0;
  // What naive full-image copies of every retained generation would cost.
  std::uint64_t bytes_logical = 0;
  // What the store actually holds (payloads + entry overhead).
  std::uint64_t bytes_physical = 0;
  std::uint64_t generations_dropped = 0;  // lifetime GC work
  std::uint64_t entries_merged = 0;
  // Sealing (zero with crypto off): payloads sealed and MAC mismatches
  // detected over the store's lifetime.
  std::uint64_t pages_sealed = 0;
  std::uint64_t seal_failures = 0;
  // Generations an unbounded collect() would drop right now -- the
  // control plane's GC-pressure signal (store_backlog input).
  std::size_t gc_backlog = 0;

  [[nodiscard]] double dedup_ratio() const {
    return bytes_physical == 0
               ? 0.0
               : static_cast<double>(bytes_logical) /
                     static_cast<double>(bytes_physical);
  }
};

class CheckpointStore {
 public:
  CheckpointStore(const CostModel& costs, StoreConfig config)
      : costs_(&costs),
        config_(config),
        pages_(config.delta_compress),
        sealer_(config.crypto.tenant_key),
        attest_base_root_(crypto::AttestationChain::genesis_root(
            config.crypto.tenant_key)) {
    if (config_.crypto.seal) pages_.set_sealer(&sealer_);
  }

  // The sealer's address is wired into pages_; pinning the store in
  // place keeps that self-reference valid.
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  // Seeds the chain with generation `epoch` from a full image (the
  // Checkpointer's initial synchronization). Returns the virtual cost.
  Nanos seed(std::uint64_t epoch, ForeignMapping& image,
             const VcpuState& vcpu, Nanos now);

  // Appends the generation committed at `epoch`: digests `dirty` (on
  // `pool` when configured and available), interns the changed pages from
  // `image` (the just-committed backup) and records the manifest.
  Nanos append(std::uint64_t epoch, std::span<const Pfn> dirty,
               ForeignMapping& image, const VcpuState& vcpu, Nanos now,
               ThreadPool* pool);

  // Append with precomputed digests (digests[i] is page_digest() of
  // image's dirty[i] page): the CoW drain folds the FNV-1a sweep into its
  // copy loop, so this path skips the hash pass entirely -- its cost was
  // already charged as cow_fused_hash_per_page on the drain timeline.
  Nanos append_with_digests(std::uint64_t epoch, std::span<const Pfn> dirty,
                            std::span<const std::uint64_t> digests,
                            ForeignMapping& image, const VcpuState& vcpu,
                            Nanos now);

  // Incremental GC: drops aged-out generations (at most
  // gc_generations_per_epoch per call), merging each into its successor.
  // Returns the virtual cost; every call records into gc_pauses().
  Nanos collect();

  // Retention hooks.
  void note_audit_failure();  // pin the last clean generation, per policy
  void pin(std::uint64_t epoch);

  // Writes generation `epoch`'s full image into `dst`, touching every
  // tracked page (use on a scratch/unknown-content mapping).
  struct Restored {
    VcpuState vcpu;
    std::size_t pages_written = 0;
    Nanos cost{0};
  };
  Restored materialize(std::uint64_t epoch, ForeignMapping& dst) const;

  // Same result in O(changed) when `dst` currently holds the *newest*
  // generation's image -- the live backup: rewrites only differing pages.
  Restored rewind(std::uint64_t epoch, ForeignMapping& dst) const;

  // Time-travel commit: discards every generation newer than `epoch`
  // (their refs are released). The next append must use a larger epoch id.
  Nanos truncate_to(std::uint64_t epoch);

  [[nodiscard]] bool has_generation(std::uint64_t epoch) const {
    return chain_.index_of(epoch) != GenerationChain::npos;
  }
  [[nodiscard]] std::vector<std::uint64_t> retained_epochs() const;
  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const GenerationChain& chain() const { return chain_; }
  [[nodiscard]] const telemetry::Histogram& gc_pauses() const {
    return gc_pauses_;
  }
  [[nodiscard]] const StoreConfig& config() const { return config_; }

  // Runtime GC-budget actuator (control plane): generations collect()
  // may retire per call. 0 restores the drain-everything behavior.
  void set_gc_budget(std::size_t generations) {
    config_.gc_generations_per_epoch = generations;
  }

  // --- Sealing & attestation (DESIGN.md section 15) ---------------------

  // Adversarial tamper sites fire inside append (store-at-rest
  // corruption after the commit lands); nullptr disarms them.
  void set_fault_injector(fault::FaultInjector* faults) { faults_ = faults; }

  // Attestation root after the newest committed generation (the value
  // carried in journal records and on the replication stream); the
  // genesis root before the seed, 0 when attestation is off.
  [[nodiscard]] std::uint64_t root() const {
    if (!config_.crypto.attest) return 0;
    return chain_.empty() ? attest_base_root_ : chain_.newest().attest_root;
  }

  // Seal/attest share of the last seed/append/append_with_digests cost
  // (already included in the returned total; exposed for the trace's
  // nested "seal" span).
  [[nodiscard]] Nanos last_seal_cost() const { return last_seal_cost_; }

  // Store-boundary integrity sweep: recompute every sealed payload's MAC.
  struct SealAudit {
    std::vector<std::uint64_t> bad_digests;  // sorted; empty = clean
    Nanos cost{0};
  };
  [[nodiscard]] SealAudit audit_seals() const;

  // Store-boundary chain audit: every retained generation's link must
  // recompute (root = H(key, prev_root, leaf)), and adjacent links must
  // join wherever epochs are still consecutive (GC gaps are exempt).
  struct ChainAudit {
    bool ok = true;
    std::size_t bad_index = 0;  // chain index of the first broken link
    std::string reason;
    Nanos cost{0};
  };
  [[nodiscard]] ChainAudit verify_chain() const;

  // Victim digest of the most recent injected store tamper (evidence
  // pinning for the tamper-sweep bench); kZeroDigest if none fired.
  [[nodiscard]] std::uint64_t last_tamper_victim() const {
    return last_tamper_victim_;
  }

  [[nodiscard]] const PageStore& page_store() const { return pages_; }

 private:
  Nanos hash_pages(std::span<const Pfn> dirty, const ForeignMapping& image,
                   std::vector<std::uint64_t>& digests_out,
                   ThreadPool* pool) const;

  // Freezes the commit-time leaf into `gen` -- `pages_digest` is the
  // caller's fold over the *full* dirty digest list, in commit order
  // (the same sequence the journal encodes and the standby applies) --
  // and extends the root. No-op with attestation off. Returns the cost.
  Nanos extend_attestation(Generation& gen, std::uint64_t pages_digest);

  // Throws crypto::TamperError if generation `index`'s link fails to
  // recompute (rollback/materialize verify what they restore).
  void verify_generation_link(std::size_t index) const;

  // Store-at-rest adversary: fires the injector's tamper sites after an
  // append. Returns the added (zero) cost -- tampering is free for the
  // adversary.
  void maybe_inject_tamper();

  const CostModel* costs_;
  StoreConfig config_;
  PageStore pages_;
  GenerationChain chain_;
  crypto::PageSealer sealer_;
  std::uint64_t attest_base_root_ = 0;
  fault::FaultInjector* faults_ = nullptr;
  Nanos last_seal_cost_{0};
  std::uint64_t last_tamper_victim_ = kZeroDigest;
  std::size_t image_pages_ = 0;  // set by seed(); sizes bytes_logical
  telemetry::Histogram gc_pauses_;
  std::uint64_t generations_dropped_ = 0;
  std::uint64_t entries_merged_ = 0;
};

}  // namespace crimes::store
