#include "store/page_store.h"

#include "checkpoint/transport.h"  // crimes::rle -- the shared codec
#include "common/hash.h"

#include <algorithm>
#include <stdexcept>

namespace crimes::store {

namespace {

// Secondary hash for collision detection: same fold, different seed, so
// two contents colliding on both is no longer a birthday problem but a
// 128-bit accident.
std::uint64_t check_digest(const Page& page) {
  return fnv1a(page.bytes(), /*seed=*/0x9E3779B97F4A7C15ULL);
}

}  // namespace

std::uint64_t page_digest(const Page& page) {
  const std::uint64_t h = fnv1a(page.bytes());
  // kZeroDigest is the manifest's "zero page" sentinel; remap the (absurdly
  // unlikely) real page hashing to it onto an arbitrary fixed value.
  return h == kZeroDigest ? 0x9E3779B97F4A7C15ULL : h;
}

std::uint64_t PageStore::intern(const Page& page, std::uint64_t digest,
                                std::uint64_t prev_digest) {
  ++stats_.interns;
  if (auto it = entries_.find(digest); it != entries_.end()) {
    if (it->second.check != check_digest(page)) {
      // A genuine 64-bit digest collision. Refusing loudly beats silently
      // deduplicating two different pages into one.
      throw std::runtime_error("PageStore: FNV-1a digest collision");
    }
    ++it->second.refs;
    ++stats_.dedup_hits;
    return digest;
  }

  Entry entry;
  entry.refs = 1;
  entry.check = check_digest(page);
  entry.payload = rle::encode(page.bytes());

  // Delta candidate: XOR against the previous version of this PFN and keep
  // whichever encoding is smaller. Only raw entries may serve as bases
  // (depth-1 chains), and the base must still be live.
  if (delta_compress_ && prev_digest != kZeroDigest &&
      prev_digest != digest) {
    if (auto base = entries_.find(prev_digest);
        base != entries_.end() && base->second.base == kZeroDigest) {
      Page prev;
      bool base_intact = true;
      try {
        materialize(prev_digest, prev);
      } catch (const crypto::TamperError&) {
        // The base failed its MAC: a mid-run detection, already counted in
        // stats_.seal_failures and re-reported by the end-of-run seal
        // audit. Don't kill the pipeline for an optimization -- store the
        // new version raw and leave the tampered entry as evidence.
        base_intact = false;
      }
      if (base_intact) {
        Page delta;
        for (std::size_t i = 0; i < kPageSize; ++i) {
          delta.data[i] = page.data[i] ^ prev.data[i];
        }
        std::vector<std::byte> delta_rle = rle::encode(delta.bytes());
        if (delta_rle.size() < entry.payload.size()) {
          entry.base = prev_digest;
          entry.payload = std::move(delta_rle);
          ++base->second.refs;  // the delta pins its base
          ++stats_.delta_entries;
        }
      }
    }
  }

  // Seal last: the delta candidate above needed plaintext payloads, and
  // the tweak is the entry's own digest, so a sealed payload moved to a
  // different digest slot deciphers under the wrong keystream and its
  // MAC misses (SEVurity's block-move attack, detected not decoded).
  if (sealer_ != nullptr) {
    entry.mac = sealer_->seal(entry.payload, digest);
    ++stats_.pages_sealed;
  }

  stats_.bytes_physical += entry.payload.size() + kEntryOverhead;
  ++stats_.pages_unique;
  entries_.emplace(digest, std::move(entry));
  return digest;
}

void PageStore::release(std::uint64_t digest) {
  if (digest == kZeroDigest) return;
  const auto it = entries_.find(digest);
  if (it == entries_.end()) {
    throw std::logic_error("PageStore::release: unknown digest");
  }
  if (--it->second.refs > 0) return;
  const std::uint64_t base = it->second.base;
  stats_.bytes_physical -= it->second.payload.size() + kEntryOverhead;
  --stats_.pages_unique;
  if (base != kZeroDigest) --stats_.delta_entries;
  entries_.erase(it);
  if (base != kZeroDigest) release(base);
}

void PageStore::materialize(std::uint64_t digest, Page& out) const {
  if (digest == kZeroDigest) {
    out.zero();
    return;
  }
  const auto it = entries_.find(digest);
  if (it == entries_.end()) {
    throw std::logic_error("PageStore::materialize: unknown digest");
  }
  const Entry& entry = it->second;

  // Sealed store: verify the MAC before any decode, and decipher a copy
  // -- the stored payload stays sealed at rest. A mismatch is reported
  // as tampering (crypto::TamperError), never decrypted into garbage.
  std::vector<std::byte> unsealed;
  const std::vector<std::byte>* payload = &entry.payload;
  if (sealer_ != nullptr) {
    unsealed = entry.payload;
    if (!sealer_->unseal(unsealed, digest, entry.mac)) {
      ++stats_.seal_failures;
      throw crypto::TamperError(
          "PageStore::materialize: MAC mismatch on sealed payload");
    }
    payload = &unsealed;
  }

  if (entry.base == kZeroDigest) {
    if (!rle::decode(*payload, out.bytes())) {
      throw std::logic_error("PageStore::materialize: corrupt raw payload");
    }
    return;
  }
  materialize(entry.base, out);  // depth-1 chain: the base is raw
  Page delta;
  if (!rle::decode(*payload, delta.bytes())) {
    throw std::logic_error("PageStore::materialize: corrupt delta payload");
  }
  for (std::size_t i = 0; i < kPageSize; ++i) out.data[i] ^= delta.data[i];
}

std::uint32_t PageStore::refs(std::uint64_t digest) const {
  const auto it = entries_.find(digest);
  return it == entries_.end() ? 0 : it->second.refs;
}

std::vector<std::uint64_t> PageStore::sorted_digests() const {
  std::vector<std::uint64_t> digests;
  digests.reserve(entries_.size());
  for (const auto& [digest, entry] : entries_) digests.push_back(digest);
  std::sort(digests.begin(), digests.end());
  return digests;
}

std::vector<std::uint64_t> PageStore::verify_seals() const {
  std::vector<std::uint64_t> bad;
  if (sealer_ == nullptr) return bad;
  for (const std::uint64_t digest : sorted_digests()) {
    const Entry& entry = entries_.at(digest);
    if (sealer_->mac(entry.payload, digest) != entry.mac) {
      bad.push_back(digest);
      ++stats_.seal_failures;
    }
  }
  return bad;
}

std::uint64_t PageStore::tamper(std::uint64_t victim, TamperMode mode) {
  if (entries_.empty()) return kZeroDigest;
  const std::vector<std::uint64_t> digests = sorted_digests();
  const std::uint64_t target = digests[victim % digests.size()];
  Entry& entry = entries_.at(target);
  switch (mode) {
    case TamperMode::FlipByte:
      if (!entry.payload.empty()) {
        entry.payload[entry.payload.size() / 2] ^= std::byte{0x40};
      }
      break;
    case TamperMode::SwapEntries: {
      // Move attack: two sealed records trade places wholesale (payload
      // *and* tag). Each tag still matches its own bytes -- only the
      // digest-bound tweak gives the move away.
      if (digests.size() < 2) {
        entry.mac ^= 1;  // degenerate store: no partner to swap with
        break;
      }
      Entry& other =
          entries_.at(digests[(victim + 1) % digests.size()]);
      std::swap(entry.payload, other.payload);
      std::swap(entry.mac, other.mac);
      break;
    }
    case TamperMode::TruncateMac:
      entry.mac = 0;
      break;
  }
  return target;
}

}  // namespace crimes::store
