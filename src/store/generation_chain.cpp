#include "store/generation_chain.h"

#include <algorithm>
#include <stdexcept>

namespace crimes::store {

namespace {

// Binary search in a manifest's sorted changed-list.
const std::pair<Pfn, std::uint64_t>* find_entry(
    const std::vector<std::pair<Pfn, std::uint64_t>>& changed, Pfn pfn) {
  const auto it = std::lower_bound(
      changed.begin(), changed.end(), pfn,
      [](const auto& entry, Pfn key) { return entry.first.value() < key.value(); });
  if (it == changed.end() || it->first != pfn) return nullptr;
  return &*it;
}

}  // namespace

void GenerationChain::append(Generation gen) {
  if (!gens_.empty() && gen.epoch <= gens_.back().epoch) {
    throw std::logic_error("GenerationChain::append: epochs must ascend");
  }
  gens_.push_back(std::move(gen));
}

std::size_t GenerationChain::index_of(std::uint64_t epoch) const {
  // Epochs ascend but are not dense (GC leaves holes): binary search.
  const auto it = std::lower_bound(
      gens_.begin(), gens_.end(), epoch,
      [](const Generation& g, std::uint64_t e) { return g.epoch < e; });
  if (it == gens_.end() || it->epoch != epoch) return npos;
  return static_cast<std::size_t>(it - gens_.begin());
}

std::uint64_t GenerationChain::digest_at(std::size_t index, Pfn pfn) const {
  for (std::size_t i = index + 1; i-- > 0;) {
    if (const auto* entry = find_entry(gens_[i].changed, pfn)) {
      return entry->second;
    }
  }
  return kZeroDigest;
}

std::vector<std::pair<Pfn, std::uint64_t>> GenerationChain::diff(
    std::size_t a, std::size_t b) const {
  const std::size_t lo = std::min(a, b);
  const std::size_t hi = std::max(a, b);
  // Candidate set: every page some generation in (lo, hi] touched. Pages
  // outside it resolve identically from both endpoints.
  std::vector<Pfn> candidates;
  for (std::size_t i = lo + 1; i <= hi; ++i) {
    for (const auto& entry : gens_[i].changed) {
      candidates.push_back(entry.first);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](Pfn x, Pfn y) { return x.value() < y.value(); });
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<std::pair<Pfn, std::uint64_t>> out;
  for (const Pfn pfn : candidates) {
    const std::uint64_t at_b = digest_at(b, pfn);
    if (digest_at(a, pfn) != at_b) out.emplace_back(pfn, at_b);
  }
  return out;
}

std::size_t GenerationChain::drop(std::size_t index, PageStore& pages) {
  if (index + 1 >= gens_.size()) {
    throw std::logic_error("GenerationChain::drop: cannot drop the newest");
  }
  Generation& dropped = gens_[index];
  Generation& heir = gens_[index + 1];
  const std::size_t processed = dropped.changed.size();

  // Sorted two-pointer merge, successor winning ties: an entry the heir
  // overrides is dead weight (release it); one it lacks migrates forward
  // so every newer generation still resolves it.
  std::vector<std::pair<Pfn, std::uint64_t>> merged;
  merged.reserve(dropped.changed.size() + heir.changed.size());
  std::size_t di = 0, hi = 0;
  while (di < dropped.changed.size() && hi < heir.changed.size()) {
    const auto& d = dropped.changed[di];
    const auto& h = heir.changed[hi];
    if (d.first.value() < h.first.value()) {
      merged.push_back(d);
      ++di;
    } else if (h.first.value() < d.first.value()) {
      merged.push_back(h);
      ++hi;
    } else {
      pages.release(d.second);  // superseded by the heir
      merged.push_back(h);
      ++di;
      ++hi;
    }
  }
  for (; di < dropped.changed.size(); ++di) merged.push_back(dropped.changed[di]);
  for (; hi < heir.changed.size(); ++hi) merged.push_back(heir.changed[hi]);

  heir.changed = std::move(merged);
  gens_.erase(gens_.begin() + static_cast<std::ptrdiff_t>(index));
  return processed;
}

std::size_t GenerationChain::truncate_after(std::size_t index,
                                            PageStore& pages) {
  std::size_t released = 0;
  while (gens_.size() > index + 1) {
    for (const auto& entry : gens_.back().changed) {
      pages.release(entry.second);
      ++released;
    }
    gens_.pop_back();
  }
  return released;
}

}  // namespace crimes::store
