// Content-addressed page storage for the checkpoint store.
//
// Every distinct page content is stored once, keyed by its 64-bit FNV-1a
// digest, with a reference count of how many generation manifests point at
// it. Payloads are never raw 4 KiB frames: a page is kept either as the
// RLE encoding of its bytes or -- when smaller -- as the RLE encoding of
// its XOR delta against the previous version of the same PFN (the same
// codec CompressedSocketTransport puts on the wire). Delta chains are
// capped at depth 1: a delta's base is always a raw entry, so restoring
// any page decodes at most two payloads.
//
// Digest 0 is reserved as the "zero / never-backed page" sentinel and is
// never produced by page_digest(); generation manifests use it instead of
// interning the shared zero frame.
#pragma once

#include "machine/page.h"

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace crimes::store {

// Manifest sentinel: the page is all zeroes (or was never backed).
inline constexpr std::uint64_t kZeroDigest = 0;

// FNV-1a over the page bytes, remapped away from the reserved sentinel.
[[nodiscard]] std::uint64_t page_digest(const Page& page);

struct PageStoreStats {
  std::size_t pages_unique = 0;      // live entries
  std::uint64_t bytes_physical = 0;  // payload bytes + per-entry overhead
  std::uint64_t interns = 0;         // intern() calls, lifetime
  std::uint64_t dedup_hits = 0;      // interns satisfied by an existing entry
  std::uint64_t delta_entries = 0;   // live entries stored as XOR deltas
};

class PageStore {
 public:
  explicit PageStore(bool delta_compress) : delta_compress_(delta_compress) {}

  // Stores `page` (whose digest the caller computed via page_digest) and
  // returns the digest with one reference held by the caller. When
  // `prev_digest` names a live raw entry -- the previous version of the
  // same PFN -- the page may be stored as an XOR delta against it, in
  // which case the entry holds its own reference on the base.
  std::uint64_t intern(const Page& page, std::uint64_t digest,
                       std::uint64_t prev_digest = kZeroDigest);

  // Drops one reference; at zero the entry is freed (cascading to its
  // delta base). kZeroDigest is a no-op.
  void release(std::uint64_t digest);

  // Reconstructs the exact stored bytes into `out`. kZeroDigest zeroes the
  // page. Throws std::logic_error on an unknown digest or a corrupt
  // payload (both indicate a store bug, not a caller error).
  void materialize(std::uint64_t digest, Page& out) const;

  [[nodiscard]] bool contains(std::uint64_t digest) const {
    return entries_.count(digest) != 0;
  }
  [[nodiscard]] std::uint32_t refs(std::uint64_t digest) const;
  [[nodiscard]] const PageStoreStats& stats() const { return stats_; }

 private:
  // Accounting charge per entry beyond its payload (hash node, key,
  // refcount, base digest, vector header) -- keeps bytes_physical honest
  // about bookkeeping overhead, not just compressed payload bytes.
  static constexpr std::uint64_t kEntryOverhead = 64;

  struct Entry {
    std::uint32_t refs = 0;
    std::uint64_t check = 0;  // secondary hash: detects digest collisions
    std::uint64_t base = kZeroDigest;  // delta base (kZeroDigest = raw)
    std::vector<std::byte> payload;    // RLE of raw bytes or of XOR delta
  };

  bool delta_compress_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  PageStoreStats stats_;
};

}  // namespace crimes::store
