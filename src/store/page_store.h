// Content-addressed page storage for the checkpoint store.
//
// Every distinct page content is stored once, keyed by its 64-bit FNV-1a
// digest, with a reference count of how many generation manifests point at
// it. Payloads are never raw 4 KiB frames: a page is kept either as the
// RLE encoding of its bytes or -- when smaller -- as the RLE encoding of
// its XOR delta against the previous version of the same PFN (the same
// codec CompressedSocketTransport puts on the wire). Delta chains are
// capped at depth 1: a delta's base is always a raw entry, so restoring
// any page decodes at most two payloads.
//
// Digest 0 is reserved as the "zero / never-backed page" sentinel and is
// never produced by page_digest(); generation manifests use it instead of
// interning the shared zero frame.
#pragma once

#include "crypto/page_sealer.h"
#include "machine/page.h"

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace crimes::store {

// Manifest sentinel: the page is all zeroes (or was never backed).
inline constexpr std::uint64_t kZeroDigest = 0;

// FNV-1a over the page bytes, remapped away from the reserved sentinel.
[[nodiscard]] std::uint64_t page_digest(const Page& page);

struct PageStoreStats {
  std::size_t pages_unique = 0;      // live entries
  std::uint64_t bytes_physical = 0;  // payload bytes + per-entry overhead
  std::uint64_t interns = 0;         // intern() calls, lifetime
  std::uint64_t dedup_hits = 0;      // interns satisfied by an existing entry
  std::uint64_t delta_entries = 0;   // live entries stored as XOR deltas
  std::uint64_t pages_sealed = 0;    // payloads sealed at intern, lifetime
  std::uint64_t seal_failures = 0;   // MAC mismatches detected, lifetime
};

// Adversarial corruption modes (SEVurity, DESIGN.md section 15) the
// fault layer injects against sealed payloads "at rest".
enum class TamperMode {
  FlipByte,     // flip one ciphertext byte in place
  SwapEntries,  // move two entries' sealed payloads (and tags) wholesale
  TruncateMac,  // zero the stored tag
};

class PageStore {
 public:
  explicit PageStore(bool delta_compress) : delta_compress_(delta_compress) {}

  // Stores `page` (whose digest the caller computed via page_digest) and
  // returns the digest with one reference held by the caller. When
  // `prev_digest` names a live raw entry -- the previous version of the
  // same PFN -- the page may be stored as an XOR delta against it, in
  // which case the entry holds its own reference on the base.
  std::uint64_t intern(const Page& page, std::uint64_t digest,
                       std::uint64_t prev_digest = kZeroDigest);

  // Drops one reference; at zero the entry is freed (cascading to its
  // delta base). kZeroDigest is a no-op.
  void release(std::uint64_t digest);

  // Reconstructs the exact stored bytes into `out`. kZeroDigest zeroes the
  // page. Throws std::logic_error on an unknown digest or a corrupt
  // payload (both indicate a store bug, not a caller error), and
  // crypto::TamperError when the sealer is set and a payload fails its
  // MAC -- the sealed bytes are never decrypted into garbage.
  void materialize(std::uint64_t digest, Page& out) const;

  // Sealing (DESIGN.md section 15): with a sealer set, every interned
  // payload is ciphered under the tenant keystream (tweak = the entry's
  // own digest, so a payload moved to another slot deciphers under the
  // wrong tweak) and tagged with a keyed MAC verified on materialize.
  void set_sealer(const crypto::PageSealer* sealer) { sealer_ = sealer; }
  [[nodiscard]] bool sealed() const { return sealer_ != nullptr; }

  // Integrity sweep: recompute every live entry's MAC and return the
  // digests that fail, sorted (deterministic evidence order). Empty when
  // the sealer is unset. Also bumps stats().seal_failures.
  [[nodiscard]] std::vector<std::uint64_t> verify_seals() const;

  // Adversary hook for the fault layer: corrupt the sealed state at
  // rest. `victim` indexes the sorted digest list (deterministic across
  // runs); returns the victim digest for evidence pinning, or
  // kZeroDigest when the store is empty.
  std::uint64_t tamper(std::uint64_t victim, TamperMode mode);

  [[nodiscard]] bool contains(std::uint64_t digest) const {
    return entries_.count(digest) != 0;
  }
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  [[nodiscard]] std::uint32_t refs(std::uint64_t digest) const;
  [[nodiscard]] const PageStoreStats& stats() const { return stats_; }

 private:
  // Accounting charge per entry beyond its payload (hash node, key,
  // refcount, base digest, vector header) -- keeps bytes_physical honest
  // about bookkeeping overhead, not just compressed payload bytes.
  static constexpr std::uint64_t kEntryOverhead = 64;

  struct Entry {
    std::uint32_t refs = 0;
    std::uint64_t check = 0;  // secondary hash: detects digest collisions
    std::uint64_t base = kZeroDigest;  // delta base (kZeroDigest = raw)
    std::uint64_t mac = 0;  // keyed tag over the sealed payload (sealer set)
    std::vector<std::byte> payload;  // RLE of raw/XOR-delta bytes, sealed
  };

  // Digests of the live entries in sorted order: the deterministic
  // iteration the tamper hook and the verify sweep both use
  // (unordered_map order would break same-seed reproducibility).
  [[nodiscard]] std::vector<std::uint64_t> sorted_digests() const;

  bool delta_compress_;
  const crypto::PageSealer* sealer_ = nullptr;
  std::unordered_map<std::uint64_t, Entry> entries_;
  mutable PageStoreStats stats_;
};

}  // namespace crimes::store
