#!/usr/bin/env python3
"""Validate a CRIMES flight-recorder postmortem JSON.

A postmortem is the self-contained evidence bundle the flight recorder
freezes when something goes wrong (checkpoint retries exhausted, governor
freeze, failover, journal fsck failure). For it to be trustworthy
evidence it must be internally consistent, and this script holds it to
that:

  1. Schema: top level is a "crimes-postmortem-v1" object with reason,
     tenant, at_ms, epoch, config, flight, series and slo sections.
  2. Flight ring bounds: len(events) <= capacity, recorded >= len(events),
     recorded == len(events) + dropped, event timestamps and epochs
     non-decreasing (the ring is written in order), every kind from the
     known set, and the final event is the postmortem trigger itself.
  3. Series sanity (when present): samples_taken >= 1, every scalar series
     kind is counter|gauge with timestamps non-decreasing and at most
     samples_taken points, histogram percentiles ordered p50<=p95<=p99.
  4. SLO verdict consistency (when present): input epochs strictly
     increasing, verdicts from the known set, the monitor state equals the
     last recorded verdict, and warn/critical counts in the inputs never
     exceed the reported totals. When the input history covers the whole
     run (len(inputs) == epochs, i.e. nothing fell off the ring), the
     multi-window burn-rate state machine is replayed *in Python* from the
     embedded config and must reproduce every recorded verdict exactly.

With --run BINARY, runs `BINARY --postmortem-out JSON` first (the ctest
entry drives bench/ablation_telemetry_overhead end to end).

Exit status: 0 on success, 1 on any validation failure.
"""

import argparse
import json
import subprocess
import sys

KINDS = {"phase", "fault", "governor", "failover", "slo", "log", "postmortem",
         "control", "tamper", "host"}
STATES = ("Healthy", "Warn", "Critical")
DIMENSIONS = ("pause_ms", "replication_lag", "vulnerability_ms", "audit_ms")
BUDGET_KEYS = {
    "pause_ms": "pause_ms",
    "replication_lag": "replication_lag",
    "vulnerability_ms": "vulnerability_ms",
    "audit_ms": "audit_ms",
}


def fail(msg):
    print(f"check_postmortem: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(doc, key, types, where="postmortem"):
    if key not in doc:
        fail(f"{where}: missing field {key!r}")
    if not isinstance(doc[key], types):
        fail(f"{where}: field {key!r} has type {type(doc[key]).__name__}")
    return doc[key]


def check_flight(flight):
    capacity = require(flight, "capacity", int, "flight")
    recorded = require(flight, "recorded", int, "flight")
    dropped = require(flight, "dropped", int, "flight")
    events = require(flight, "events", list, "flight")
    if capacity <= 0:
        fail(f"flight: capacity {capacity} must be positive")
    if len(events) > capacity:
        fail(f"flight: {len(events)} events exceed ring capacity {capacity}")
    if recorded < len(events):
        fail(f"flight: recorded {recorded} < {len(events)} events in ring")
    if recorded != len(events) + dropped:
        fail(
            f"flight: recorded {recorded} != events {len(events)} + "
            f"dropped {dropped}"
        )
    if not events:
        fail("flight: ring is empty; the trigger itself should be recorded")
    prev_at, prev_epoch = -1.0, -1
    for i, ev in enumerate(events):
        for key in ("at_ms", "epoch", "kind", "what", "detail", "value"):
            if key not in ev:
                fail(f"flight event {i}: missing field {key!r}")
        if ev["kind"] not in KINDS:
            fail(f"flight event {i}: unknown kind {ev['kind']!r}")
        if ev["at_ms"] < prev_at:
            fail(
                f"flight event {i}: at_ms {ev['at_ms']} precedes previous "
                f"{prev_at}; the ring must be in record order"
            )
        if ev["epoch"] < prev_epoch:
            fail(
                f"flight event {i}: epoch {ev['epoch']} precedes previous "
                f"{prev_epoch}"
            )
        prev_at, prev_epoch = ev["at_ms"], ev["epoch"]
    last = events[-1]
    if last["kind"] != "postmortem":
        fail(
            f"flight: final ring event has kind {last['kind']!r}; the dump "
            "trigger must be the last thing recorded"
        )
    print(
        f"check_postmortem: flight ring OK ({len(events)} events, "
        f"capacity {capacity}, {dropped} dropped)"
    )
    return last


def check_series(series):
    if series is None:
        print("check_postmortem: no series section (telemetry off)")
        return
    samples = require(series, "samples_taken", int, "series")
    scalars = require(series, "scalars", dict, "series")
    histograms = require(series, "histograms", dict, "series")
    if samples < 1:
        fail("series: samples_taken must be >= 1 in a dumped run")
    for name, s in scalars.items():
        kind = require(s, "kind", str, f"series {name!r}")
        if kind not in ("counter", "gauge"):
            fail(f"series {name!r}: unknown kind {kind!r}")
        points = require(s, "samples", list, f"series {name!r}")
        if len(points) > samples:
            fail(
                f"series {name!r}: {len(points)} points exceed "
                f"samples_taken {samples}"
            )
        prev_t = -1.0
        for p in points:
            if not isinstance(p, list) or len(p) != 2:
                fail(f"series {name!r}: sample {p!r} is not a [t_ms, v] pair")
            if p[0] < prev_t:
                fail(f"series {name!r}: timestamps not monotonic at {p[0]}")
            prev_t = p[0]
    for name, h in histograms.items():
        for key in ("count", "p50", "p95", "p99"):
            require(h, key, (int, float), f"histogram {name!r}")
        if not h["p50"] <= h["p95"] <= h["p99"]:
            fail(
                f"histogram {name!r}: percentiles out of order "
                f"({h['p50']}, {h['p95']}, {h['p99']})"
            )
    print(
        f"check_postmortem: series OK ({len(scalars)} scalars, "
        f"{len(histograms)} histograms, {samples} samples)"
    )


def replay_slo(config, inputs):
    """Mirror of SloMonitor::observe (src/telemetry/slo.cpp): per-dimension
    violation-bit rings, burn over the full window with unseen epochs
    counted clean, Critical when fast AND slow burn hot, Warn escalating
    Healthy only, hysteretic step-down after clear_after clean epochs."""
    budget = config["budget"]
    fast_w = max(1, config["fast_window"])
    slow_w = max(fast_w, config["slow_window"])
    error_budget = config["error_budget"] or 0.05
    rings = {d: [0] * slow_w for d in DIMENSIONS}
    in_fast = {d: 0 for d in DIMENSIONS}
    in_slow = {d: 0 for d in DIMENSIONS}
    state, clean_streak, epochs = "Healthy", 0, 0
    verdicts = []
    for inp in inputs:
        any_warn = any_crit = False
        for d in DIMENSIONS:
            violated = 1 if inp[d] > budget[BUDGET_KEYS[d]] else 0
            slot = epochs % slow_w
            if epochs >= slow_w:
                in_slow[d] -= rings[d][slot]
            if epochs >= fast_w:
                in_fast[d] -= rings[d][(epochs - fast_w) % slow_w]
            rings[d][slot] = violated
            in_slow[d] += violated
            in_fast[d] += violated
            fast = in_fast[d] / fast_w / error_budget
            slow = in_slow[d] / slow_w / error_budget
            if fast >= config["critical_burn"] and slow >= config[
                "critical_burn"
            ]:
                any_crit = True
            elif fast >= config["warn_burn"]:
                any_warn = True
        if any_crit:
            state, clean_streak = "Critical", 0
        elif any_warn:
            if state == "Healthy":
                state = "Warn"
            clean_streak = 0
        else:
            clean_streak += 1
            if state != "Healthy" and clean_streak >= config["clear_after"]:
                state = "Warn" if state == "Critical" else "Healthy"
                clean_streak = 0
        verdicts.append(state)
        epochs += 1
    return verdicts


def check_slo(slo):
    if slo is None:
        print("check_postmortem: no slo section (monitor off)")
        return
    state = require(slo, "state", str, "slo")
    epochs = require(slo, "epochs", int, "slo")
    warn = require(slo, "warn_epochs", int, "slo")
    crit = require(slo, "critical_epochs", int, "slo")
    config = require(slo, "config", dict, "slo")
    inputs = require(slo, "inputs", list, "slo")
    require(config, "budget", dict, "slo config")
    if state not in STATES:
        fail(f"slo: unknown state {state!r}")
    if len(inputs) > epochs:
        fail(f"slo: {len(inputs)} inputs but only {epochs} epochs observed")
    prev_epoch = -1
    for i, inp in enumerate(inputs):
        for key in ("epoch", "verdict", *DIMENSIONS):
            if key not in inp:
                fail(f"slo input {i}: missing field {key!r}")
        if inp["verdict"] not in STATES:
            fail(f"slo input {i}: unknown verdict {inp['verdict']!r}")
        if inp["epoch"] <= prev_epoch:
            fail(
                f"slo input {i}: epoch {inp['epoch']} not strictly "
                f"increasing after {prev_epoch}"
            )
        prev_epoch = inp["epoch"]
    if not inputs:
        fail("slo: input history is empty; nothing to replay")
    if inputs[-1]["verdict"] != state:
        fail(
            f"slo: monitor state {state!r} disagrees with last recorded "
            f"verdict {inputs[-1]['verdict']!r}"
        )
    warn_in = sum(1 for i in inputs if i["verdict"] == "Warn")
    crit_in = sum(1 for i in inputs if i["verdict"] == "Critical")
    if warn_in > warn or crit_in > crit:
        fail(
            f"slo: verdict counts in inputs (warn {warn_in}, crit {crit_in}) "
            f"exceed reported totals (warn {warn}, crit {crit})"
        )
    if len(inputs) == epochs:
        # Nothing fell off the history ring: the whole run is replayable
        # from epoch zero, so the replay must match verdict for verdict.
        verdicts = replay_slo(config, inputs)
        for i, (got, want) in enumerate(
            zip(verdicts, (inp["verdict"] for inp in inputs))
        ):
            if got != want:
                fail(
                    f"slo replay diverges at input {i}: replayed {got!r}, "
                    f"recorded {want!r}"
                )
        if warn_in != warn or crit_in != crit:
            fail(
                f"slo: full history but input verdict counts (warn {warn_in},"
                f" crit {crit_in}) != totals (warn {warn}, crit {crit})"
            )
        print(
            f"check_postmortem: slo replay reproduces all "
            f"{len(inputs)} verdicts (state {state})"
        )
    else:
        print(
            f"check_postmortem: slo counts consistent "
            f"({len(inputs)}/{epochs} epochs in ring; replay skipped)"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--run", help="binary to run first (emits the postmortem)")
    ap.add_argument("--json", required=True, help="postmortem JSON path")
    args = ap.parse_args()

    if args.run:
        cmd = [args.run, "--postmortem-out", args.json]
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited with {proc.returncode}")

    try:
        with open(args.json, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.json}: {e}")

    if require(doc, "schema", str) != "crimes-postmortem-v1":
        fail(f"unknown schema {doc['schema']!r}")
    reason = require(doc, "reason", str)
    if not reason:
        fail("reason must be non-empty")
    require(doc, "tenant", str)
    require(doc, "config", str)
    at_ms = require(doc, "at_ms", (int, float))
    epoch = require(doc, "epoch", int)
    if at_ms < 0 or epoch < 0:
        fail(f"at_ms {at_ms} / epoch {epoch} must be non-negative")

    trigger = check_flight(require(doc, "flight", dict))
    if trigger["what"] != reason:
        fail(
            f"trigger event names {trigger['what']!r} but the dump's reason "
            f"is {reason!r}"
        )
    check_series(doc.get("series"))
    check_slo(doc.get("slo"))
    print(f"check_postmortem: PASS ({reason} at epoch {epoch})")


if __name__ == "__main__":
    main()
